//! Experiment E-T1/E-T1b end-to-end: the full Table 1 classification,
//! every canonical factor of length ≤ 5, brute force vs the paper.

use fibcube::core::classify::{classify_factor, row_matches};
use fibcube::core::theorems::{predict_paper, table1_expected};
use fibcube::prelude::*;
use fibcube::words::families;

/// d range large enough to witness every threshold in the table
/// (the latest transitions are at d = 7 → 8 for 11100 and 10101).
const D_MAX: usize = 9;

#[test]
fn table1_reproduced_in_full() {
    let expected = table1_expected();
    assert_eq!(expected.len(), families::canonical_factors_up_to(5).len());
    for (fs, class, _src) in &expected {
        let f = word(fs);
        let row = classify_factor(&f, D_MAX);
        assert!(
            row_matches(&row, *class),
            "factor {fs}: observed {:?}, paper says {:?}",
            row.observed,
            class
        );
    }
}

#[test]
fn oracle_never_contradicts_computation() {
    for f in families::canonical_factors_up_to(5) {
        for d in 1..=D_MAX {
            if let Some(p) = predict_paper(&f, d) {
                assert_eq!(
                    p.embeddable,
                    qdf_isometric(d, f),
                    "f={f} d={d} source={}",
                    p.source
                );
            } else {
                panic!("paper oracle must decide all |f| ≤ 5 (f={f}, d={d})");
            }
        }
    }
}

#[test]
fn paper_computer_checks_reproduced() {
    // The four checks the paper reports running by computer.
    assert!(qdf_isometric(6, word("1100")));
    assert!(qdf_isometric(6, word("10110")));
    assert!(qdf_isometric(6, word("10101")));
    assert!(qdf_isometric(7, word("10101")));
    // And the boundary cases right after each threshold.
    assert!(!qdf_isometric(7, word("1100")));
    assert!(!qdf_isometric(7, word("10110")));
    assert!(!qdf_isometric(8, word("10101")));
}

#[test]
fn symmetry_classes_share_classification() {
    // Lemmas 2.2–2.3 in action: every member of a symmetry class embeds or
    // not in lockstep. Spot-check the non-trivial classes.
    for fs in ["1100", "101", "11010", "10110"] {
        let f = word(fs);
        for g in families::symmetry_class(&f) {
            for d in 1..=7usize {
                assert_eq!(
                    qdf_isometric(d, f),
                    qdf_isometric(d, g),
                    "f={f} g={g} d={d}"
                );
            }
        }
    }
}

#[test]
fn isometric_subgraphs_have_hypercube_metric() {
    // When Q_d(f) ↪ Q_d, its metric is the Hamming metric — double-check
    // through the independent partial-cube recognizer.
    for (d, fs) in [(6, "11"), (6, "1100"), (7, "1010"), (7, "11010")] {
        let g = Qdf::new(d, word(fs));
        assert!(is_isometric(&g));
        assert!(
            fibcube::isometry::is_partial_cube(g.graph()),
            "isometric in Q_d ⇒ partial cube (f={fs})"
        );
        assert_eq!(fibcube::isometry::isometric_dimension(g.graph()), Some(d));
    }
}
