//! Experiment E-X1: computational evidence for the paper's Conjecture 8.1
//! (`Q_d(f) ↪ Q_d ⇒ Q_d(ff) ↪ Q_d`) and sweeps of the Section 3–4 series
//! theorems beyond the explicit Table 1 range (experiment E-P6).

use fibcube::core::classify::conjecture_8_1_evidence;
use fibcube::prelude::*;
use fibcube::words::families;

#[test]
fn conjecture_8_1_holds_on_small_factors() {
    // For every always-embeddable f with |f| ≤ 3, the doubled factor ff is
    // also embeddable throughout the tested range.
    let evidence = conjecture_8_1_evidence(3, 9);
    assert!(!evidence.is_empty());
    for (f, ff, holds) in &evidence {
        assert!(holds, "counterexample to Conjecture 8.1?! f={f}, ff={ff}");
    }
    // The premise-satisfying factors at |f| ≤ 3 are exactly
    // 1, 11, 10, 111, 110 (101 fails the premise at d = 4).
    let premise: Vec<String> = evidence.iter().map(|(f, _, _)| f.to_string()).collect();
    assert_eq!(premise, vec!["1", "11", "10", "111", "110"]);
}

#[test]
fn theorem_3_3_sweep_beyond_table1() {
    // (ii): f = 1^2 0^s embeds iff d ≤ s + 4 — check s = 2..4 computationally.
    for s in 2..=4usize {
        let f = families::ones_zeros(2, s);
        for d in 1..=s + 6 {
            assert_eq!(qdf_isometric(d, f), d <= s + 4, "f={f} d={d}");
        }
    }
    // (iii): f = 1^3 0^3 embeds iff d ≤ 9.
    let f = families::ones_zeros(3, 3);
    for d in 1..=11usize {
        assert_eq!(qdf_isometric(d, f), d <= 9, "d={d}");
    }
}

#[test]
fn proposition_3_2_sweep() {
    // f = 1^r 0^s 1^t never embeds past d = r+s+t.
    for (r, s, t) in [
        (1, 1, 1),
        (2, 1, 1),
        (1, 2, 1),
        (1, 1, 2),
        (2, 2, 1),
        (1, 3, 1),
    ] {
        let f = families::ones_zeros_ones(r, s, t);
        let len = r + s + t;
        for d in 1..=len + 3 {
            assert_eq!(qdf_isometric(d, f), d <= len, "f={f} d={d}");
        }
    }
}

#[test]
fn theorems_4_3_4_4_sweep() {
    // 1^s 0 1^s 0 and (10)^s embed for every tested d.
    for f in [
        families::ones_zero_twice(2), // 110110
        families::ones_zero_twice(3), // 11101110 (d ≤ 10 keeps this fast)
        families::ten_power(2),
        families::ten_power(3),
    ] {
        for d in 1..=10usize {
            assert!(qdf_isometric(d, f), "f={f} d={d}");
        }
    }
}

#[test]
fn propositions_4_1_4_2_sweep() {
    // (10)^2 1 = 10101: embeds iff d ≤ 7 (checks + Prop 4.1).
    let f = families::ten_power_one(2);
    for d in 1..=9usize {
        assert_eq!(qdf_isometric(d, f), d <= 7, "d={d}");
    }
    // (10) 1 (10) = 10110: embeds iff d ≤ 6.
    let f = families::ten_r_one_ten_s(1, 1);
    for d in 1..=8usize {
        assert_eq!(qdf_isometric(d, f), d <= 6, "d={d}");
    }
}

#[test]
fn proposition_5_1_sweep() {
    // 11010 embeds at least through d = 11 (the proposition says: all d).
    let f = word("11010");
    for d in 1..=11usize {
        assert!(qdf_isometric(d, f), "d={d}");
    }
}

#[test]
fn conjecture_8_1_spot_checks_on_doubles() {
    // Direct doubles beyond the generic evidence: 1010 → 10101010 and
    // 11 → 1111 stay embeddable; also 110110 (= (110)²) from Theorem 4.3.
    for (fs, dmax) in [("1111", 10), ("10101010", 10), ("110110", 10)] {
        let f = word(fs);
        for d in 1..=dmax {
            assert!(qdf_isometric(d, f), "f={fs} d={d}");
        }
    }
}
