//! Experiments E-F1, E-F2, E-R1…E-R5, E-P1, E-P2: the figures and the
//! Section 6 numerology, end to end across crates.

use fibcube::enumeration::{
    prop_6_2_edges, prop_6_2_edges_corollary_form, prop_6_3_squares, q110_series, q111_series,
};
use fibcube::prelude::*;
use fibcube::words::families;

#[test]
fn figure_1_q4_101() {
    // Fig. 1: Q_4(101) has 12 vertices (16 − 4 strings containing 101).
    let g = Qdf::new(4, word("101"));
    assert_eq!(g.order(), 12);
    // Q4 has 32 edges; the 4 removed vertices carry 14 distinct edges
    // (4 × deg 4 = 16 incidences, two of them internal: 0101–1101, 1010–1011).
    assert_eq!(g.size(), 18);
    assert!(g.is_connected());
    // Its DOT export names all 12 vertices by their strings.
    let dot = g.to_dot("q4_101");
    assert_eq!(dot.matches("label").count(), 12);
    for s in ["0000", "1111", "1100"] {
        assert!(dot.contains(&format!("label=\"{s}\"")));
    }
    for s in ["0101", "1010", "1011", "1101"] {
        assert!(!dot.contains(&format!("label=\"{s}\"")), "{s} was removed");
    }
}

#[test]
fn figure_2_gamma5_vs_q4_110() {
    // Fig. 2 confronts Γ_5 = Q_5(11) with Q_4(110).
    let gamma5 = Qdf::new(5, word("11"));
    let h4 = Qdf::new(4, word("110"));
    assert_eq!(gamma5.order(), 13); // F_7
    assert_eq!(h4.order(), 12); // F_7 − 1
    assert_eq!(h4.size(), gamma5.size() - 1);
    assert_eq!(h4.squares(), gamma5.squares());
    // Prop 6.1 contrast: diameters and max degrees are d and d+1.
    assert_eq!(gamma5.diameter(), Some(5));
    assert_eq!(gamma5.max_degree(), 5);
    assert_eq!(h4.diameter(), Some(4));
    assert_eq!(h4.max_degree(), 4);
}

#[test]
fn recurrences_match_graphs_to_d_11() {
    let g111 = q111_series(12);
    let g110 = q110_series(12);
    for d in 0..=11usize {
        let g = Qdf::new(d, word("111"));
        assert_eq!(g111[d].vertices, g.order() as u128, "V(G_{d})");
        assert_eq!(g111[d].edges, g.size() as u128, "E(G_{d})");
        assert_eq!(g111[d].squares, g.squares() as u128, "S(G_{d})");
        let h = Qdf::new(d, word("110"));
        assert_eq!(g110[d].vertices, h.order() as u128, "V(H_{d})");
        assert_eq!(g110[d].edges, h.size() as u128, "E(H_{d})");
        assert_eq!(g110[d].squares, h.squares() as u128, "S(H_{d})");
    }
}

#[test]
fn closed_forms_match_brute_force() {
    for d in 0..=11usize {
        let h = Qdf::new(d, word("110"));
        assert_eq!(prop_6_2_edges(d), h.size() as u128);
        assert_eq!(prop_6_2_edges_corollary_form(d), h.size() as u128);
        assert_eq!(prop_6_3_squares(d), h.squares() as u128);
    }
}

#[test]
fn prop_6_1_for_every_embeddable_table1_factor() {
    // max degree = diameter = d whenever Q_d(f) ↪ Q_d, f ∉ {1, 10, 01}.
    for f in families::canonical_factors_up_to(4) {
        let fs = f.to_string();
        if fs == "1" || fs == "10" {
            continue; // the proposition's excluded trivial cases
        }
        for d in 2..=8usize {
            if !qdf_isometric(d, f) {
                continue;
            }
            let g = Qdf::new(d, f);
            assert_eq!(g.max_degree(), d, "f={f} d={d}");
            assert_eq!(g.diameter(), Some(d as u32), "f={f} d={d}");
        }
    }
}

#[test]
fn prop_6_4_median_closed_iff_length_two() {
    use fibcube::core::properties::{is_median_closed, median_violation, verify_median_violation};
    // |f| = 2: paths and Fibonacci cubes are median closed.
    for fs in ["11", "00", "10", "01"] {
        for d in 2..=7usize {
            assert!(is_median_closed(&Qdf::new(d, word(fs))), "f={fs} d={d}");
        }
    }
    // |f| ≥ 3: never median closed once d ≥ |f|; the proof's triple shows it.
    for f in families::canonical_factors_of_length(3)
        .into_iter()
        .chain(families::canonical_factors_of_length(4))
    {
        for d in f.len()..=f.len() + 2 {
            let g = Qdf::new(d, f);
            assert!(!is_median_closed(&g), "f={f} d={d}");
            let v = median_violation(&f, d);
            assert!(verify_median_violation(&g, &v), "f={f} d={d}");
        }
    }
}

#[test]
fn counting_engine_agrees_with_graphs_for_random_factors() {
    // Automaton-product counting vs materialised graphs, all |f| = 4, d ≤ 8.
    for bits in 0..16u64 {
        let f = fibcube::words::Word::from_raw(bits, 4);
        for d in 0..=8usize {
            let g = Qdf::new(d, f);
            assert_eq!(count_vertices(&f, d), g.order() as u128, "V f={f} d={d}");
            assert_eq!(count_edges(&f, d), g.size() as u128, "E f={f} d={d}");
            assert_eq!(count_squares(&f, d), g.squares() as u128, "S f={f} d={d}");
        }
    }
}
