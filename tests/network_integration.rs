//! Experiments E-N1…E-N6: the interconnection-network layer end to end.

use fibcube::network::broadcast::{broadcast_all_port, broadcast_one_port, verify_schedule};
use fibcube::network::fault::{fault_sweep, FaultError};
use fibcube::network::hamilton::{hamiltonian_path, verify_hamiltonian, HamiltonResult};
use fibcube::network::metrics::metrics;
use fibcube::network::{DeliveryTracker, Mesh};
use fibcube::prelude::*;

#[test]
fn orders_follow_kbonacci_and_zeckendorf_addressing_roundtrips() {
    for k in 2..=4usize {
        for d in 1..=11usize {
            let net = FibonacciNet::new(d, k);
            assert_eq!(
                net.len() as u128,
                fibcube::words::zeckendorf::count_k_free(k, d),
                "order k={k} d={d}"
            );
            // Node i ↔ k-Zeckendorf code i.
            for i in 0..net.len() as u32 {
                let w = net.label(i);
                assert_eq!(
                    fibcube::words::zeckendorf::kzeckendorf_decode(k, &w),
                    Some(i as u128),
                    "address of node {i}"
                );
            }
        }
    }
}

#[test]
fn distributed_routing_is_bfs_shortest_on_all_topologies() {
    let topos: Vec<Box<dyn Topology>> = vec![
        Box::new(FibonacciNet::classical(8)),
        Box::new(FibonacciNet::new(7, 3)),
        Box::new(Hypercube::new(5)),
        Box::new(fibcube::network::Ring::new(11)),
        Box::new(Mesh::new(5, 4)),
    ];
    for t in &topos {
        let dist = fibcube::graph::distance_matrix(t.graph());
        for s in 0..t.len() as u32 {
            for d in 0..t.len() as u32 {
                let route = t.route(s, d).expect("routing converges");
                assert_eq!(
                    route.len() as u32 - 1,
                    dist[s as usize][d as usize],
                    "{} {s}→{d}",
                    t.name()
                );
            }
        }
    }
}

#[test]
fn simulator_delivers_everything_on_every_topology() {
    let topos: Vec<Box<dyn Topology>> = vec![
        Box::new(FibonacciNet::classical(9)),
        Box::new(Hypercube::new(6)),
        Box::new(Mesh::new(8, 8)),
    ];
    for t in &topos {
        for spec in [
            "uniform(count=1500,window=300)",
            "hotspot(count=800,window=300,hot=0.25)",
            "complement(window=10)",
        ] {
            let traffic: TrafficSpec = spec.parse().expect("scenario specs parse");
            let report = Experiment::on(t.as_ref())
                .traffic(traffic)
                .seed(99)
                .cycles(500_000)
                .run()
                .expect("preferred router resolves everywhere");
            let stats = &report.stats;
            assert_eq!(stats.delivered, stats.offered, "{} {spec}", t.name());
            assert!(stats.mean_latency >= 1.0, "{} {spec}", t.name());
        }
    }
}

#[test]
fn experiment_api_round_trips_through_the_facade() {
    // The facade prelude carries the whole experiment surface: build a
    // scenario from text, attach observers, get a JSON report.
    use fibcube::network::{LatencyHistogram, LinkHeatmap};
    let net = FibonacciNet::classical(9);
    let mut hist = LatencyHistogram::new();
    let mut heat = LinkHeatmap::new();
    let report = Experiment::on(&net)
        .router("adaptive".parse::<RouterSpec>().unwrap())
        .traffic(
            "uniform(count=1000,window=200)"
                .parse::<TrafficSpec>()
                .unwrap(),
        )
        .seed(13)
        .observe((&mut hist, &mut heat))
        .run()
        .expect("adaptive routing on Γ_9");
    assert_eq!(report.stats.delivered, 1000);
    assert_eq!(hist.delivered(), 1000);
    assert_eq!(heat.total_hops(), report.stats.total_hops);
    assert_eq!(hist.histogram(), &report.stats.latency_histogram[..]);
    let json = report.to_json();
    assert!(json.contains("\"topology\": \"Γ_9\""));
    assert!(json.contains("\"router\": \"adaptive\""));

    // Capability errors surface as typed values through `?`.
    let err = Experiment::on(&net)
        .router(RouterSpec::Ecube)
        .run()
        .expect_err("no e-cube routing on a Fibonacci net");
    assert!(err.to_string().contains("e-cube"), "{err}");
}

#[test]
fn latency_ordering_matches_topology_quality() {
    // Uniform traffic: hypercube ≤ fibonacci < mesh < ring (comparable n).
    let gamma = FibonacciNet::classical(8); // 55
    let q = Hypercube::new(6); // 64
    let mesh = Mesh::new(7, 8); // 56
    let ring = fibcube::network::Ring::new(55);
    let lat = |t: &dyn Topology| {
        let pkts = TrafficSpec::Uniform {
            count: 1200,
            window: 600,
        }
        .generate(t.len(), 4242);
        simulate(t, &pkts, 500_000).mean_latency
    };
    let (lg, lq, lm, lr) = (lat(&gamma), lat(&q), lat(&mesh), lat(&ring));
    assert!(lq <= lg + 0.5, "hypercube {lq} ≲ fibonacci {lg}");
    assert!(lg < lm, "fibonacci {lg} < mesh {lm}");
    assert!(lm < lr, "mesh {lm} < ring {lr}");
}

#[test]
fn broadcast_bounds_hold() {
    let net = FibonacciNet::classical(8);
    let zero = net.node_of(&fibcube::words::Word::zeros(8)).unwrap();
    let ap = broadcast_all_port(&net, zero).expect("Γ_8 is connected");
    assert!(verify_schedule(&net, &ap, false));
    assert_eq!(ap.rounds, 4, "ecc(0^8) = ⌈8/2⌉");
    let op = broadcast_one_port(&net, zero).expect("Γ_8 is connected");
    assert!(verify_schedule(&net, &op, true));
    let floor = (net.len() as f64).log2().ceil() as u32;
    assert!(op.rounds >= floor && op.rounds <= 8 + 2);
}

#[test]
fn collectives_run_live_through_the_facade() {
    // Broadcast as a simulated workload reproduces the static schedule,
    // and its spec round-trips through text like every other spec.
    let net = FibonacciNet::classical(8);
    let spec: CollectiveSpec = "broadcast(source=0,port=one)".parse().unwrap();
    assert_eq!(spec.to_string(), "broadcast(source=0,port=one)");
    let report = Experiment::on(&net)
        .collective(spec)
        .run()
        .expect("healthy broadcast runs");
    let op = broadcast_one_port(&net, 0).unwrap();
    let outcome = report.collective.expect("collective outcome");
    assert_eq!(outcome.completion_cycles, op.rounds as u64);
    assert_eq!(outcome.reached, net.len() - 1);
    assert_eq!(report.stats.delivered, report.stats.offered);
}

#[test]
fn fibonacci_cubes_have_hamiltonian_paths_through_d8() {
    for d in 1..=8usize {
        let net = FibonacciNet::classical(d);
        match hamiltonian_path(net.graph()) {
            HamiltonResult::Found(p) => {
                assert!(verify_hamiltonian(net.graph(), &p, false), "d={d}")
            }
            other => panic!("Γ_{d} must have a Hamiltonian path, got {other:?}"),
        }
    }
}

#[test]
fn metrics_shape_vs_hypercube() {
    // E-N1's qualitative claims on the metric table.
    let gamma = metrics(&FibonacciNet::classical(8)).unwrap();
    let q = metrics(&Hypercube::new(6)).unwrap();
    assert!(gamma.nodes < q.nodes);
    assert!((gamma.links as f64 / gamma.nodes as f64) < (q.links as f64 / q.nodes as f64));
    assert!(gamma.average_distance < 1.25 * q.average_distance);
    assert_eq!(gamma.diameter, 8);
}

#[test]
fn fault_tolerance_shape() {
    // Cubes degrade gracefully; rings shatter.
    let gamma = FibonacciNet::classical(8);
    let ring = fibcube::network::Ring::new(55);
    let g_rows = fault_sweep(&gamma, &[2, 5], 6).expect("valid sweep");
    let r_rows = fault_sweep(&ring, &[2, 5], 6).expect("valid sweep");
    let frac = |rows: &[fibcube::network::FaultSweepRow], i: usize| {
        rows[i]
            .mean_reachable_fraction
            .expect("survivor pairs exist")
    };
    assert!(frac(&g_rows, 0) > frac(&r_rows, 0), "Γ beats ring at k=2");
    assert!(frac(&g_rows, 1) > frac(&r_rows, 1), "Γ beats ring at k=5");
    assert!(
        frac(&g_rows, 1) > 0.9,
        "Γ_8 keeps >90% pairs after 5 faults"
    );
    // Hardened edge cases stay typed errors end to end.
    assert!(matches!(
        fault_sweep(&gamma, &[2], 0),
        Err(FaultError::ZeroTrials)
    ));
    assert!(fault_sweep(&gamma, &[gamma.len()], 3).is_err());
}

#[test]
fn fault_aware_experiment_on_the_acceptance_topology() {
    // Acceptance: a FaultSpec experiment on Γ_16 completes with
    // delivered + dropped + in-flight packet conservation, and the
    // zero-fault path is packet-for-packet identical to the healthy
    // engine.
    let gamma = FibonacciNet::classical(16);
    let traffic: TrafficSpec = "uniform(count=2000,window=400)".parse().unwrap();

    let healthy = Experiment::on(&gamma)
        .traffic(traffic.clone())
        .seed(9)
        .run()
        .expect("healthy run");
    let zero_fault = Experiment::on(&gamma)
        .traffic(traffic.clone())
        .faults("nodes(count=0)".parse::<FaultSpec>().unwrap())
        .seed(9)
        .run()
        .expect("zero-fault run");
    assert_eq!(zero_fault.stats, healthy.stats, "zero faults ≡ healthy");

    let mut tracker = DeliveryTracker::new();
    let degraded = Experiment::on(&gamma)
        .traffic(traffic)
        .faults(
            "mix(nodes(count=120)+links(count=40))"
                .parse::<FaultSpec>()
                .unwrap(),
        )
        .seed(9)
        .observe(&mut tracker)
        .run()
        .expect("degraded run");
    let s = &degraded.stats;
    assert_eq!(
        s.delivered + s.dropped(),
        s.offered,
        "uncapped: every packet delivered or typed-dropped"
    );
    assert!(s.dropped_dead_endpoint > 0, "120 dead nodes must show up");
    assert!(s.delivered > 0, "survivors still communicate");
    assert!(
        s.delivered < healthy.stats.delivered,
        "faults cost throughput"
    );
    // Observer and engine agree on every packet's fate.
    assert_eq!(tracker.injected() as usize, s.offered);
    assert_eq!(tracker.delivered() as usize, s.delivered);
    assert_eq!(tracker.dropped() as usize, s.dropped());
    assert_eq!(tracker.in_flight(), 0);
    // The report is self-describing about the scenario.
    assert_eq!(degraded.failed_nodes, 120);
    let json = degraded.to_json();
    assert!(json.contains("\"faults\": \"mix(nodes(count=120)+links(count=40))\""));
}
