//! Experiments E-P3, E-P4, E-X2: Section 7 dimensions and the Section 8
//! Winkler example, across crates.

use fibcube::graph::generators;
use fibcube::isometry::{
    dim_f_exact, dim_f_upper, is_partial_cube, isometric_dimension, section8_example, verify_ladder,
};
use fibcube::prelude::*;

#[test]
fn prop_7_1_sandwich_on_sample_graphs() {
    let f = word("11");
    let samples = vec![
        generators::path(2),
        generators::path(5),
        generators::cycle(4),
        generators::cycle(6),
        generators::star(4),
        generators::hypercube(3),
        generators::grid(2, 3),
    ];
    for g in &samples {
        let idim = isometric_dimension(g).expect("sample is a partial cube");
        let upper = dim_f_upper(g, &f).unwrap().dimension;
        let exact = dim_f_exact(g, &f, upper).expect("must embed within the upper bound");
        assert!(idim <= exact && exact <= upper);
        assert!(upper <= (3 * idim).saturating_sub(2).max(idim));
    }
}

#[test]
fn fdim_for_other_admissible_factors() {
    // f = 110 and f = 1010 are admissible (always embeddable) too.
    let p4 = generators::path(4);
    for fs in ["110", "1010"] {
        let f = word(fs);
        let upper = dim_f_upper(&p4, &f).unwrap();
        let exact = dim_f_exact(&p4, &f, upper.dimension).unwrap();
        assert!(exact <= upper.dimension, "f={fs}");
        // P4 is a "staircase" — it already sits inside Q_3(f) for both.
        assert_eq!(exact, 3, "f={fs}");
    }
}

#[test]
fn dim_f_of_qdf_itself() {
    // Q_d(f) embeds into itself: dim_f(Q_d(f)) ≤ d; and ≥ idim = d.
    let g = Qdf::fibonacci(4);
    assert_eq!(isometric_dimension(g.graph()), Some(4));
    assert_eq!(dim_f_exact(g.graph(), &word("11"), 6), Some(4));
}

#[test]
fn section_8_example_full() {
    for d in 4..=6 {
        let ex = section8_example(d);
        assert!(!ex.e_theta_f);
        assert!(ex.e_theta_star_f);
        assert!(!ex.is_partial_cube);
        assert!(verify_ladder(&ex));
        assert_eq!(ex.ladder.len(), d + (d - 3)); // phase 1: d rungs; phase 2: d−3.
    }
}

#[test]
fn non_embeddable_examples_are_not_partial_cubes() {
    // Problem 8.3 evidence: the small non-embeddable Q_d(f) are not
    // isometric in ANY hypercube (not just Q_d).
    for (d, fs) in [
        (4, "101"),
        (5, "101"),
        (5, "1101"),
        (5, "1001"),
        (7, "1100"),
    ] {
        let g = Qdf::new(d, word(fs));
        assert!(
            !is_isometric(&g),
            "premise: Q_{d}({fs}) not isometric in Q_{d}"
        );
        assert!(!is_partial_cube(g.graph()), "Q_{d}({fs}) in no hypercube");
    }
}

#[test]
fn embeddable_graphs_remain_partial_cubes() {
    // Contrast: embeddable ones are partial cubes with idim = d.
    for (d, fs) in [(6, "1100"), (6, "10110"), (7, "10101"), (8, "11010")] {
        let g = Qdf::new(d, word(fs));
        assert!(is_isometric(&g));
        assert_eq!(isometric_dimension(g.graph()), Some(d));
    }
}

#[test]
fn theta_transitivity_detects_partial_cubes() {
    use fibcube::isometry::Theta;
    // Winkler: connected bipartite ∧ Θ transitive ⟺ partial cube.
    let yes = generators::cycle(6);
    assert!(Theta::new(&yes).theta_is_transitive());
    let no = Qdf::new(4, word("101"));
    assert!(!Theta::new(no.graph()).theta_is_transitive());
}
