//! # fibcube — Generalized Fibonacci Cubes
//!
//! A full reproduction of Ilić, Klavžar, Rho, *Generalized Fibonacci
//! cubes*, Discrete Mathematics 312 (2012) 2–11, together with the
//! interconnection-network layer of the homonymous ICPP'93 lineage
//! (Hsu–Liu–Chung) that the paper builds on.
//!
//! The generalized Fibonacci cube `Q_d(f)` is the subgraph of the
//! hypercube `Q_d` induced by the binary strings of length `d` avoiding
//! the *forbidden factor* `f`; `Q_d(11)` is the classical Fibonacci cube
//! `Γ_d`. The central question of the paper — for which `f` and `d` is
//! `Q_d(f)` an **isometric** subgraph of `Q_d`? — is implemented here as a
//! parallel decision procedure, an oracle of the paper's theorems, and a
//! classification engine regenerating the paper's Table 1.
//!
//! ## Quickstart
//!
//! ```
//! use fibcube::core::Qdf;
//! use fibcube::words::word;
//!
//! // Build Γ_6 = Q_6(11): F_8 = 21 vertices, isometric in Q_6.
//! let gamma = Qdf::fibonacci(6);
//! assert_eq!(gamma.order(), 21);
//! assert!(fibcube::core::is_isometric(&gamma));
//!
//! // Q_4(101) — the paper's Figure 1 — is NOT isometric in Q_4 …
//! let q4_101 = Qdf::new(4, word("101"));
//! assert!(!fibcube::core::is_isometric(&q4_101));
//!
//! // … and the paper's theorems predict both facts:
//! assert!(fibcube::core::predict(&word("11"), 6).unwrap().embeddable);
//! assert!(!fibcube::core::predict(&word("101"), 4).unwrap().embeddable);
//! ```
//!
//! ## Crate map
//!
//! | Facade module | Crate | Contents |
//! |---|---|---|
//! | [`words`] | `fibcube-words` | binary words, factors, avoidance automata, Zeckendorf codes |
//! | [`graph`] | `fibcube-graph` | CSR graphs, parallel BFS, medians, squares, DOT |
//! | [`core`] | `fibcube-core` | `Q_d(f)`, isometry checker, critical words, theorem oracle, Table 1 |
//! | [`isometry`] | `fibcube-isometry` | Θ/Θ*, partial cubes, `idim`, `dim_f`, the Section 8 example |
//! | [`enumeration`] | `fibcube-enum` | vertex/edge/square counting, recurrences (1)–(6), Props 6.2/6.3 |
//! | [`network`] | `fibcube-network` | `Q_d(1^k)` networks: the `Experiment` API, routing, broadcast, simulation, faults |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fibcube_core as core;
pub use fibcube_enum as enumeration;
pub use fibcube_graph as graph;
pub use fibcube_isometry as isometry;
pub use fibcube_network as network;
pub use fibcube_words as words;

/// The most commonly used items in one import.
pub mod prelude {
    pub use fibcube_core::{is_isometric, predict, predict_paper, qdf_isometric, EmbedClass, Qdf};
    pub use fibcube_enum::{count_edges, count_squares, count_vertices};
    pub use fibcube_graph::CsrGraph;
    pub use fibcube_isometry::{dim_f_exact, dim_f_upper, isometric_dimension};
    pub use fibcube_network::{
        simulate, simulate_with, CollectiveSpec, Experiment, FaultSpec, FibonacciNet, Hypercube,
        Report, Router, RouterSpec, Topology, TrafficSpec,
    };
    pub use fibcube_words::{word, FactorAutomaton, Word};
}
