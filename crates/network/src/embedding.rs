//! Guest-graph embeddings into Fibonacci cubes — Hsu's argument that the
//! topology can *host* the classic structures (rings, paths, hypercubes)
//! with small dilation.
//!
//! * paths/rings: a Hamiltonian path hosts `P_n` at dilation 1; a
//!   Hamiltonian cycle (when the bipartition is balanced) hosts `C_n` at
//!   dilation 1, else the path-closure gives a near-ring;
//! * hypercubes: interleaving a `0` between address bits maps `Q_k`
//!   isometrically (dilation 1!) into `Γ_{2k−1}` — the same padding that
//!   powers Proposition 7.1 of the 2012 paper.

use fibcube_graph::csr::CsrGraph;
use fibcube_words::word::Word;

use crate::hamilton::{hamiltonian_cycle, hamiltonian_path, HamiltonResult};
use crate::topology::{FibonacciNet, Topology};

/// An embedding of a guest graph into a host network: `image[v]` is the
/// host node for guest vertex `v`.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// Host node per guest vertex.
    pub image: Vec<u32>,
    /// Maximum host distance across guest edges.
    pub dilation: u32,
    /// Guest order.
    pub guest_order: usize,
}

/// Measures the dilation of an explicit embedding.
pub fn measure_dilation(guest: &CsrGraph, host: &CsrGraph, image: &[u32]) -> u32 {
    let dist = fibcube_graph::parallel::parallel_distance_matrix(host);
    guest
        .edges()
        .map(|(u, v)| dist[image[u as usize] as usize][image[v as usize] as usize])
        .max()
        .unwrap_or(0)
}

/// Embeds the path `P_n` (`n` = host order) into `Γ_d` along a Hamiltonian
/// path — dilation 1. Returns `None` if the search fails (it never does for
/// the Fibonacci cubes in the tested range).
pub fn embed_path(net: &FibonacciNet) -> Option<Embedding> {
    match hamiltonian_path(net.graph()) {
        HamiltonResult::Found(order) => Some(Embedding {
            image: order,
            dilation: 1,
            guest_order: net.len(),
        }),
        _ => None,
    }
}

/// Embeds the ring `C_n` into `Γ_d`: dilation 1 when a Hamiltonian cycle
/// exists; otherwise closes a Hamiltonian path with one long chord and
/// reports the true dilation.
pub fn embed_ring(net: &FibonacciNet) -> Option<Embedding> {
    if let HamiltonResult::Found(cycle) = hamiltonian_cycle(net.graph()) {
        return Some(Embedding {
            image: cycle,
            dilation: 1,
            guest_order: net.len(),
        });
    }
    let path = match hamiltonian_path(net.graph()) {
        HamiltonResult::Found(p) => p,
        _ => return None,
    };
    // Close the path: the dilation is the distance between its endpoints.
    let closing = fibcube_graph::bfs::distance(
        net.graph(),
        *path.first().expect("non-empty"),
        *path.last().expect("non-empty"),
    );
    Some(Embedding {
        image: path,
        dilation: closing.max(1),
        guest_order: net.len(),
    })
}

/// The interleaving map `b₁b₂…b_k ↦ b₁0b₂0…0b_k`: embeds the hypercube
/// `Q_k` **isometrically** into the Fibonacci cube `Γ_{2k−1}` (the image
/// avoids `11`, and inserting constant zeros preserves Hamming distances).
/// Returns the embedding into the standard [`FibonacciNet`] node numbering.
///
/// # Panics
///
/// Panics if `k = 0` or `2k − 1` exceeds the word capacity.
pub fn embed_hypercube(k: usize) -> (FibonacciNet, Embedding) {
    assert!(k >= 1, "hypercube dimension must be positive");
    let d = 2 * k - 1;
    let net = FibonacciNet::classical(d);
    let image: Vec<u32> = (0..1u64 << k)
        .map(|label| {
            let mut w = Word::EMPTY;
            for i in (0..k).rev() {
                // Interleave from the most significant guest bit.
                w = w.concat(&Word::from_raw((label >> i) & 1, 1));
                if i > 0 {
                    w = w.concat(&Word::zeros(1));
                }
            }
            net.node_of(&w).expect("interleaved address avoids 11")
        })
        .collect();
    let guest = fibcube_graph::generators::hypercube(k);
    let dilation = measure_dilation(&guest, net.graph(), &image);
    (
        net,
        Embedding {
            image,
            dilation,
            guest_order: 1 << k,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use fibcube_graph::generators;

    #[test]
    fn path_embeddings_dilation_one() {
        for d in 2..=8usize {
            let net = FibonacciNet::classical(d);
            let e = embed_path(&net).expect("Γ_d has a Hamiltonian path");
            assert_eq!(e.image.len(), net.len());
            let guest = generators::path(net.len());
            assert_eq!(measure_dilation(&guest, net.graph(), &e.image), 1, "d={d}");
        }
    }

    #[test]
    fn ring_embeddings_small_dilation() {
        for d in 3..=8usize {
            let net = FibonacciNet::classical(d);
            let e = embed_ring(&net).expect("ring embedding exists");
            let guest = generators::cycle(net.len());
            let measured = measure_dilation(&guest, net.graph(), &e.image);
            assert_eq!(measured, e.dilation, "d={d}");
            // Either a true Hamiltonian cycle or a short closure.
            assert!(e.dilation <= d as u32, "d={d}: dilation {}", e.dilation);
        }
    }

    #[test]
    fn hypercube_embeds_isometrically() {
        for k in 1..=5usize {
            let (net, e) = embed_hypercube(k);
            assert_eq!(net.d(), 2 * k - 1);
            assert_eq!(e.guest_order, 1 << k);
            assert_eq!(e.dilation, 1, "k={k}: the interleaving is isometric");
            // Stronger: ALL pairwise distances are preserved.
            let guest = generators::hypercube(k);
            let gd = fibcube_graph::distance_matrix(&guest);
            let hd = fibcube_graph::distance_matrix(net.graph());
            for u in 0..guest.num_vertices() {
                for v in 0..guest.num_vertices() {
                    assert_eq!(
                        gd[u][v], hd[e.image[u] as usize][e.image[v] as usize],
                        "k={k} pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn images_are_injective() {
        let (_, e) = embed_hypercube(4);
        let mut seen = std::collections::HashSet::new();
        for &i in &e.image {
            assert!(seen.insert(i), "duplicate image {i}");
        }
    }
}
