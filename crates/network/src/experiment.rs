//! The unified experiment API: one composable entry point for every
//! topology/router/workload comparison in the crate.
//!
//! ```
//! use fibcube_network::{
//!     Experiment, FibonacciNet, LatencyHistogram, RouterSpec, TrafficSpec,
//! };
//!
//! let net = FibonacciNet::classical(10);
//! let mut hist = LatencyHistogram::new();
//! let report = Experiment::on(&net)
//!     .router(RouterSpec::Adaptive)
//!     .traffic(TrafficSpec::Uniform { count: 500, window: 100 })
//!     .seed(42)
//!     .observe(&mut hist)
//!     .run()
//!     .expect("adaptive routing is supported on Γ_10");
//! assert_eq!(report.stats.delivered, 500);
//! assert_eq!(hist.delivered(), 500);
//! println!("{}", report.to_json());
//! ```
//!
//! An [`Experiment`] is a builder over seven orthogonal choices:
//!
//! * **topology** — anything implementing
//!   [`Topology`] ([`Experiment::on`]);
//! * **router** — a declarative [`RouterSpec`], resolved against the
//!   topology with a typed capability check (requesting e-cube on a ring
//!   is an [`ExperimentError::UnsupportedRouter`], not a panic);
//! * **traffic** — a [`TrafficSpec`], parseable from CLI/JSON text;
//! * **switching** — a [`SwitchingSpec`]
//!   ([`switching`](Experiment::switching), default store-and-forward):
//!   wormhole specs route the run through the flit-level engine
//!   ([`simulate_wormhole`]) with virtual channels and credit-based
//!   backpressure;
//! * **faults** — a [`FaultSpec`] failure scenario
//!   ([`faults`](Experiment::faults), default none): the engine routes
//!   the degraded network through a fault-masking router and counts
//!   unroutable packets as typed drops;
//! * **budget** — a [`seed`](Experiment::seed) for the workload stream
//!   (and fault placement) and a [`cycles`](Experiment::cycles) cap
//!   (default: run until drained);
//! * **observers** — any [`SimObserver`], attached with
//!   [`observe`](Experiment::observe).
//!
//! [`run`](Experiment::run) feeds the generated packets through the
//! monomorphized active-set engine
//! ([`simulate_observed`](crate::simulator::simulate_observed)) and
//! returns a [`Report`]: the configuration echo, the engine's
//! [`SimStats`](crate::simulator::SimStats), and one JSON section per
//! observer. [`run_batch`](Experiment::run_batch) fans the same
//! configuration across many seeds on the workspace thread pool with
//! deterministic, order-independent results — the building block the
//! sweep grids ([`injection_sweep`](crate::sweep::injection_sweep),
//! [`fault_load_sweep`](crate::sweep::fault_load_sweep)) are built on.
//!
//! ## The observer contract
//!
//! Observers are compiled into the engine (generic, not `dyn`), so the
//! default [`NoopObserver`] costs nothing — a no-observer experiment
//! reproduces [`simulate_with`](crate::simulator::simulate_with) packet
//! for packet *and* cycle for cycle. Hooks fire in simulation order:
//! `on_inject` when a packet enters its source queue, `on_hop` per link
//! traversal, `on_deliver` on arrival (with end-to-end latency), and
//! `on_cycle_end` after each *simulated* cycle — the engine fast-forwards
//! idle stretches, so cycle numbers observed are not necessarily
//! consecutive. Observers must not assume they are; see
//! [`observer`](crate::observer) for details and the shipped
//! [`LatencyHistogram`](crate::observer::LatencyHistogram) /
//! [`LinkHeatmap`](crate::observer::LinkHeatmap) implementations.

use core::fmt;

use fibcube_graph::parallel::par_map;

use crate::broadcast::BroadcastError;
use crate::collective::{CollectiveOutcome, CollectiveSpec, CollectiveWorkload};
use crate::engine::{
    simulate_parallel_churn_observed, simulate_parallel_collective,
    simulate_parallel_request_reply, simulate_parallel_wormhole, RequestReplyLoad,
};
use crate::fault::{ChurnEvent, ChurnTarget, ChurnTimeline, FaultError, FaultSet, FaultSpec};
use crate::observer::{NoopObserver, SimObserver};
use crate::report::Report;
use crate::router::RouterSpec;
use crate::simulator::{
    simulate_churn, simulate_collective, simulate_request_reply, simulate_wormhole,
    simulate_wormhole_faulted,
};
use crate::switching::SwitchingSpec;
use crate::topology::Topology;
use crate::traffic::TrafficSpec;

/// A configuration the experiment layer rejected — every failure mode
/// that used to be a panic or an `assert!` at a call site, as a typed,
/// `?`-friendly error.
#[derive(Clone, Debug, PartialEq)]
pub enum ExperimentError {
    /// The requested routing policy cannot run on this topology.
    UnsupportedRouter {
        /// The requested policy.
        router: RouterSpec,
        /// Name of the topology that cannot run it.
        topology: String,
    },
    /// The traffic spec is degenerate for the target network.
    InvalidTraffic {
        /// The offending spec, in canonical text form.
        spec: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A spec string failed to parse (`FromStr` for [`TrafficSpec`],
    /// [`RouterSpec`], [`SwitchingSpec`], …).
    ParseSpec {
        /// Which kind of spec (`"traffic"`, `"router"`, `"switching"`, …).
        what: &'static str,
        /// The rejected input.
        input: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The switching spec is degenerate (zero flit size, zero virtual
    /// channels, zero buffer capacity) — see
    /// [`SwitchingSpec::validate`](crate::switching::SwitchingSpec::validate).
    InvalidSwitching {
        /// The offending spec, in canonical text form.
        spec: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A collective experiment produced a report without a
    /// [`CollectiveOutcome`] — an internal invariant violation the sweep
    /// layer surfaces as a typed error instead of a panic.
    MissingCollectiveOutcome {
        /// Name of the topology whose report lacked the outcome.
        topology: String,
    },
    /// The collective spec is degenerate for the target network
    /// (nonexistent source, too many multicast destinations, …).
    InvalidCollective {
        /// The offending spec, in canonical text form.
        spec: String,
        /// What is wrong with it.
        reason: String,
    },
    /// The experiment combines features that have no defined execution
    /// path — e.g. a tree collective (replication-based) under wormhole
    /// switching, which used to ignore the switching spec silently. See
    /// the support table in the [`collective`](Experiment::collective) /
    /// [`switching`](Experiment::switching) docs.
    UnsupportedCombination {
        /// The collective spec, in canonical text form.
        collective: String,
        /// The switching spec, in canonical text form.
        switching: String,
    },
    /// A dynamic-path feature (fault churn, closed-loop `request_reply`
    /// traffic) was combined with a configuration the churn engine does
    /// not model — wormhole switching or a collective workload. Both
    /// run on the store-and-forward point-to-point engine only.
    UnsupportedDynamic {
        /// The dynamic feature, in canonical text form
        /// (`churn(...)` or `request_reply(...)`).
        feature: String,
        /// What it was combined with, in canonical text form.
        with: String,
    },
    /// A thread budget above 1 was combined with an observer that does
    /// not implement [`SimObserver::fork`] / [`SimObserver::merge`]. The
    /// sharded engine runs one observer fork per lane and merges them
    /// back in lane order; an observer that cannot fork cannot attach to
    /// a sharded run. Use `threads(1)`, or implement `fork`/`merge` on
    /// the observer.
    UnforkableObserver {
        /// Rust type name of the offending observer
        /// (`std::any::type_name`).
        observer: String,
        /// The requested thread count.
        threads: usize,
    },
    /// The fault scenario is invalid for the target network (or its spec
    /// text failed to parse) — see [`FaultError`].
    Fault(FaultError),
    /// A broadcast schedule could not cover the network — see
    /// [`BroadcastError`]. (The collective path never produces this: it
    /// deliberately schedules partial coverage and types the rest as
    /// drops; the variant carries the static schedulers' errors through
    /// `?`.)
    Broadcast(BroadcastError),
    /// A dense `O(n²)` table ([`NextHopTable`](crate::router::NextHopTable)
    /// or [`DistanceTable`](crate::dist::DistanceTable)) was requested for
    /// a network too large to tabulate within
    /// [`TABLE_BYTE_BUDGET`](crate::router::TABLE_BYTE_BUDGET) — use the
    /// implicit / sampled paths instead of a multi-GiB allocation.
    TableTooLarge {
        /// Number of nodes the table would cover.
        nodes: usize,
        /// Bytes the dense table would occupy.
        bytes: u128,
    },
    /// A caller-supplied cached [`DistanceTable`](crate::dist::DistanceTable)
    /// covers a different node count than the topology it was paired
    /// with (see [`metrics_with`](crate::metrics::metrics_with)).
    TableMismatch {
        /// Nodes the cached table covers.
        table_nodes: usize,
        /// Nodes in the topology.
        topology_nodes: usize,
    },
}

impl From<FaultError> for ExperimentError {
    fn from(e: FaultError) -> ExperimentError {
        ExperimentError::Fault(e)
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnsupportedRouter { router, topology } => write!(
                f,
                "router `{router}` is not supported on `{topology}` \
                 (try `preferred` or `builtin`, which every topology runs)"
            ),
            ExperimentError::InvalidTraffic { spec, reason } => {
                write!(f, "invalid traffic `{spec}`: {reason}")
            }
            ExperimentError::ParseSpec {
                what,
                input,
                reason,
            } => write!(f, "cannot parse {what} spec `{input}`: {reason}"),
            ExperimentError::InvalidSwitching { spec, reason } => {
                write!(f, "invalid switching `{spec}`: {reason}")
            }
            ExperimentError::MissingCollectiveOutcome { topology } => write!(
                f,
                "collective experiment on `{topology}` reported no outcome \
                 (internal invariant violation)"
            ),
            ExperimentError::InvalidCollective { spec, reason } => {
                write!(f, "invalid collective `{spec}`: {reason}")
            }
            ExperimentError::UnsupportedCombination {
                collective,
                switching,
            } => write!(
                f,
                "collective `{collective}` cannot run under switching \
                 `{switching}`: tree collectives execute by packet \
                 replication, which has no flit-level wormhole model \
                 (use store_and_forward, or alltoallp, which runs as \
                 routed unicasts under either switching model)"
            ),
            ExperimentError::UnsupportedDynamic { feature, with } => write!(
                f,
                "`{feature}` runs on the store-and-forward point-to-point \
                 engine only and cannot combine with `{with}`"
            ),
            ExperimentError::UnforkableObserver { observer, threads } => write!(
                f,
                "observer `{observer}` does not implement \
                 SimObserver::fork/merge and cannot attach to a run \
                 sharded across {threads} threads (use threads(1), or \
                 implement fork/merge so the lanes can each run a fork)"
            ),
            ExperimentError::Fault(e) => write!(f, "invalid fault scenario: {e}"),
            ExperimentError::Broadcast(e) => write!(f, "broadcast failed: {e}"),
            ExperimentError::TableTooLarge { nodes, bytes } => write!(
                f,
                "dense O(n²) table over {nodes} nodes needs {bytes} bytes, \
                 over the {} byte budget — use implicit routing / sampled metrics",
                crate::router::TABLE_BYTE_BUDGET
            ),
            ExperimentError::TableMismatch {
                table_nodes,
                topology_nodes,
            } => write!(
                f,
                "cached distance table covers {table_nodes} nodes but the \
                 topology has {topology_nodes} — rebuild the table for this network"
            ),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Builder for one simulation experiment; see the [module docs](self)
/// for the full picture.
///
/// Defaults: [`RouterSpec::Preferred`], 1000 packets of uniform traffic
/// over a 250-cycle window, seed 0, no cycle cap (run until drained),
/// no observer.
#[derive(Clone, Debug)]
pub struct Experiment<'a, T: Topology + ?Sized, O: SimObserver = NoopObserver> {
    topology: &'a T,
    router: RouterSpec,
    traffic: TrafficSpec,
    switching: SwitchingSpec,
    collective: Option<CollectiveSpec>,
    faults: FaultSpec,
    max_cycles: u64,
    seed: u64,
    threads: usize,
    observer: O,
}

impl<'a, T: Topology + ?Sized> Experiment<'a, T, NoopObserver> {
    /// Starts an experiment on `topology` with the default configuration.
    pub fn on(topology: &'a T) -> Experiment<'a, T, NoopObserver> {
        Experiment {
            topology,
            router: RouterSpec::Preferred,
            traffic: TrafficSpec::Uniform {
                count: 1000,
                window: 250,
            },
            switching: SwitchingSpec::StoreAndForward,
            collective: None,
            faults: FaultSpec::None,
            max_cycles: u64::MAX,
            seed: 0,
            threads: 1,
            observer: NoopObserver,
        }
    }
}

/// The supported (collective × switching) grid — one explicit table
/// instead of scattered silent fallbacks:
///
/// | collective              | store-and-forward | wormhole |
/// |-------------------------|-------------------|----------|
/// | none (point-to-point)   | ✓                 | ✓        |
/// | broadcast / multicast   | ✓                 | ✗        |
/// | alltoallp (unicasts)    | ✓                 | ✓        |
///
/// Tree collectives execute by packet replication, which has no
/// flit-level wormhole model, so that combination is a typed error
/// rather than a silently ignored switching spec.
fn check_combination(
    collective: Option<&CollectiveSpec>,
    switching: &SwitchingSpec,
) -> Result<(), ExperimentError> {
    let supported = match (collective, switching) {
        (None, _) => true,
        (Some(CollectiveSpec::AllToAllPersonalized), _) => true,
        (Some(_), SwitchingSpec::StoreAndForward) => true,
        (Some(_), SwitchingSpec::Wormhole { .. }) => false,
    };
    if supported {
        Ok(())
    } else {
        Err(ExperimentError::UnsupportedCombination {
            collective: collective.map(|c| c.to_string()).unwrap_or_default(),
            switching: switching.to_string(),
        })
    }
}

/// Decorrelates fault placement from the traffic stream while keeping
/// both a pure function of the experiment seed. Shared with the sweep
/// grids so a sweep cell draws the same faults an equally-seeded
/// [`Experiment`] would.
pub(crate) fn fault_seed(seed: u64) -> u64 {
    seed ^ 0xFA17_5EED_0C0D_ED00
}

/// Decorrelates the collective's random draws (multicast destinations)
/// from traffic and fault placement.
fn collective_seed(seed: u64) -> u64 {
    seed ^ 0xC011_EC71_5EED_0001
}

/// The shared batch machinery behind [`Experiment::run_batch`] and the
/// sweep grids: runs `count` independently built experiment cells across
/// the workspace's scoped-thread pool
/// ([`fibcube_graph::parallel::par_map`]) and collects their reports *in
/// cell order* — thread scheduling never reorders results, and because
/// every run is a pure function of its configuration the aggregate is
/// deterministic and independent of how cells were interleaved. The
/// first failing cell's error (in cell order) wins.
pub(crate) fn run_cells<'a, T, F>(count: usize, build: F) -> Result<Vec<Report>, ExperimentError>
where
    T: Topology + Sync + ?Sized + 'a,
    F: Fn(usize) -> Experiment<'a, T, NoopObserver> + Sync,
{
    par_map(count, |i| build(i).run()).into_iter().collect()
}

impl<'a, T: Topology + Sync + ?Sized> Experiment<'a, T, NoopObserver> {
    /// Runs this configuration once per seed, fanned out across the
    /// workspace's scoped-thread pool, and returns the reports **in
    /// `seeds` order**. Each run is a pure function of `(configuration,
    /// seed)` — traffic and random fault placement both derive from the
    /// seed — so the batch is deterministic: permuting `seeds` permutes
    /// the reports identically, and any order-independent aggregate
    /// (means, sums, histograms merged commutatively) is byte-stable no
    /// matter how the thread pool interleaves the cells.
    ///
    /// Only observer-less experiments batch: a [`SimObserver`] is
    /// mutable per-run state that cannot be shared across parallel runs.
    /// Everything an aggregation typically needs is in
    /// [`Report::stats`]; run seeds sequentially via
    /// [`run`](Experiment::run) when per-event observation is required.
    ///
    /// Errors surface like [`run`](Experiment::run)'s, with the first
    /// failing seed (in `seeds` order) winning.
    pub fn run_batch(&self, seeds: &[u64]) -> Result<Vec<Report>, ExperimentError> {
        run_cells(seeds.len(), |i| {
            let mut cell = Experiment::on(self.topology)
                .router(self.router)
                .traffic(self.traffic.clone())
                .switching(self.switching.clone())
                .faults(self.faults.clone())
                .cycles(self.max_cycles)
                .seed(seeds[i]);
            cell.collective = self.collective.clone();
            cell
        })
    }
}

impl<'a, T: Topology + ?Sized, O: SimObserver> Experiment<'a, T, O> {
    /// Selects the routing policy (default [`RouterSpec::Preferred`]).
    pub fn router(mut self, spec: RouterSpec) -> Self {
        self.router = spec;
        self
    }

    /// Selects the workload (default 1000 uniform packets, window 250).
    pub fn traffic(mut self, spec: TrafficSpec) -> Self {
        self.traffic = spec;
        self
    }

    /// Selects the switching model (default
    /// [`SwitchingSpec::StoreAndForward`]). A wormhole spec routes the
    /// run through the flit-level engine
    /// ([`simulate_wormhole`] /
    /// [`simulate_wormhole_faulted`]): packets split into flits, stream
    /// through per-`(edge × virtual channel)` ring buffers under
    /// credit-based backpressure, and virtual channels are allocated
    /// against the topology's
    /// [`channel_class`](crate::topology::Topology::channel_class) order
    /// so the run is deadlock-free by construction. Tree collectives
    /// (broadcast/multicast) execute by packet replication, which has no
    /// wormhole model: combining them with a wormhole spec is a typed
    /// [`ExperimentError::UnsupportedCombination`]; `alltoallp` runs as
    /// routed unicasts under either switching model.
    pub fn switching(mut self, spec: SwitchingSpec) -> Self {
        self.switching = spec;
        self
    }

    /// Runs a collective-communication workload
    /// ([`CollectiveSpec`]) *instead of* point-to-point traffic: the
    /// [`traffic`](Experiment::traffic) spec is ignored while a
    /// collective is set. Tree collectives (broadcast/multicast) execute
    /// by packet replication over a
    /// [`CopyPlan`](crate::collective::CopyPlan) compiled against the
    /// (possibly degraded) network; `alltoallp` runs as routed unicasts.
    /// The [`Report`] gains a
    /// [`collective`](crate::report::Report::collective) outcome with the
    /// completion-time/round statistics.
    pub fn collective(mut self, spec: CollectiveSpec) -> Self {
        self.collective = Some(spec);
        self
    }

    /// Injects a failure scenario (default [`FaultSpec::None`] — the
    /// healthy network). Random variants draw their placement from the
    /// experiment [`seed`](Experiment::seed) (decorrelated from the
    /// traffic stream), so the same `(spec, topology, seed)` triple
    /// reproduces the same degraded network. The engine routes around
    /// the faults via a
    /// [`FaultMaskingRouter`](crate::router::FaultMaskingRouter) and
    /// counts unroutable packets as typed drops; an empty scenario is
    /// packet-for-packet identical to not calling this at all.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = spec;
        self
    }

    /// Caps the simulation at `max_cycles`; undelivered packets show up
    /// as `offered − delivered`. Default: no cap (`u64::MAX`) — safe
    /// because every shipped router is progressive, so runs drain.
    pub fn cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Seeds the traffic generator (default 0). Same (spec, topology,
    /// seed) ⇒ byte-identical packet stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Shards the run across `n` worker threads (default 1 — serial).
    /// The pooled engine executes the *same* stepper as the serial one
    /// and is **bit-identical** to it at any thread count, so this is
    /// purely a throughput knob. Every configuration shards: wormhole
    /// switching, collectives, fault churn, closed-loop `request_reply`
    /// traffic, and attached observers (each lane runs a
    /// [`SimObserver::fork`] and the forks merge back in lane order).
    /// The one configuration that cannot shard — an observer whose
    /// `fork` returns `None` — is a typed
    /// [`ExperimentError::UnforkableObserver`], never a silent serial
    /// fallback. [`run_batch`](Experiment::run_batch) cells always run
    /// serially — the batch already parallelizes across seeds.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Attaches an observer, replacing the current one. Pass a tuple to
    /// attach several (`.observe((hist, heatmap))`), or a `&mut` to keep
    /// ownership outside the experiment (`.observe(&mut hist)`).
    pub fn observe<O2: SimObserver>(self, observer: O2) -> Experiment<'a, T, O2> {
        Experiment {
            topology: self.topology,
            router: self.router,
            traffic: self.traffic,
            switching: self.switching,
            collective: self.collective,
            faults: self.faults,
            max_cycles: self.max_cycles,
            seed: self.seed,
            threads: self.threads,
            observer,
        }
    }

    /// Validates the configuration, generates the workload, materialises
    /// the fault scenario, resolves the router, runs the engine (healthy
    /// or degraded), and assembles the [`Report`]. A configured
    /// [`collective`](Experiment::collective) replaces the traffic
    /// workload and adds its [`CollectiveOutcome`] to the report.
    pub fn run(mut self) -> Result<Report, ExperimentError>
    where
        O: Send,
    {
        let n = self.topology.len();
        self.switching.validate()?;
        self.ensure_forkable()?;
        check_combination(self.collective.as_ref(), &self.switching)?;
        if self.faults.is_churn() {
            if let Some(spec) = &self.collective {
                return Err(ExperimentError::UnsupportedDynamic {
                    feature: self.faults.to_string(),
                    with: spec.to_string(),
                });
            }
        }
        let fault_set = self
            .faults
            .sample(self.topology.graph(), fault_seed(self.seed))?;
        if let Some(spec) = self.collective.take() {
            return self.run_collective(spec, fault_set);
        }
        self.traffic.validate(n)?;
        if self.faults.is_churn() || matches!(self.traffic, TrafficSpec::RequestReply { .. }) {
            return self.run_dynamic(fault_set);
        }
        let router = self.router.resolve(self.topology)?;
        // A degraded run executes the fault-masking wrapper, and the
        // report should say so rather than claim the bare policy ran.
        let router_name = if fault_set.is_empty() {
            router.name()
        } else {
            crate::router::masked_router_name(&router.name())
        };
        let packets = self.traffic.generate(n, self.seed);
        // `simulate_wormhole*` / `simulate_parallel_wormhole` dispatch
        // on the spec: store-and-forward runs the packet engine,
        // wormhole runs the flit-level engine. A thread budget above 1
        // shards either through the pooled stepper — bit-identical
        // results, so the choice is invisible in the report.
        let stats = if self.threads > 1 {
            simulate_parallel_wormhole(
                self.topology,
                &*router,
                &self.switching,
                &fault_set,
                &packets,
                self.max_cycles,
                self.threads,
                &mut self.observer,
            )
        } else if fault_set.is_empty() {
            simulate_wormhole(
                self.topology,
                &*router,
                &self.switching,
                &packets,
                self.max_cycles,
                &mut self.observer,
            )
        } else {
            simulate_wormhole_faulted(
                self.topology,
                &*router,
                &self.switching,
                &fault_set,
                &packets,
                self.max_cycles,
                &mut self.observer,
            )
        };
        Ok(Report {
            topology: self.topology.name(),
            nodes: n,
            router_spec: self.router.to_string(),
            router: router_name,
            traffic: self.traffic.to_string(),
            switching: self.switching.to_string(),
            faults: self.faults.to_string(),
            failed_nodes: fault_set.failed_nodes().len(),
            failed_links: fault_set.failed_links().len(),
            seed: self.seed,
            max_cycles: self.max_cycles,
            stats,
            collective: None,
            sections: self.observer.sections(),
        })
    }

    /// Rejects a thread budget the observer cannot follow: the pooled
    /// engine runs one [`SimObserver::fork`] per lane, so an observer
    /// whose `fork` returns `None` cannot attach to a sharded run.
    /// Checked up front so the failure is a typed error naming the
    /// observer type, never a mid-run panic or a silent serial fallback.
    fn ensure_forkable(&self) -> Result<(), ExperimentError> {
        if self.threads > 1 && self.topology.len() > 1 && self.observer.fork().is_none() {
            return Err(ExperimentError::UnforkableObserver {
                observer: std::any::type_name::<O>().to_string(),
                threads: self.threads,
            });
        }
        Ok(())
    }

    /// The dynamic half of [`run`](Experiment::run): fault churn and/or
    /// closed-loop `request_reply` traffic, both executed by the churn
    /// engine — [`simulate_churn`] / [`simulate_request_reply`] serially,
    /// [`simulate_parallel_churn_observed`] /
    /// [`simulate_parallel_request_reply`] under a thread budget. A
    /// churn spec draws its event timeline from the experiment seed over
    /// the `[0, max_cycles)` horizon; a *static* fault set under
    /// closed-loop traffic becomes the equivalent timeline of fail
    /// events pinned to cycle 0.
    fn run_dynamic(mut self, fault_set: FaultSet) -> Result<Report, ExperimentError>
    where
        O: Send,
    {
        let n = self.topology.len();
        let closed_loop = matches!(self.traffic, TrafficSpec::RequestReply { .. });
        let feature = if self.faults.is_churn() {
            self.faults.to_string()
        } else {
            self.traffic.to_string()
        };
        if !matches!(self.switching, SwitchingSpec::StoreAndForward) {
            return Err(ExperimentError::UnsupportedDynamic {
                feature,
                with: self.switching.to_string(),
            });
        }
        if self.max_cycles == u64::MAX {
            // Churn needs a horizon to bound its event timeline, and a
            // closed loop never drains — both require an explicit cap.
            return if closed_loop {
                Err(ExperimentError::InvalidTraffic {
                    spec: self.traffic.to_string(),
                    reason: "closed-loop sources never drain; set a finite cycles(..) cap"
                        .to_string(),
                })
            } else {
                Err(ExperimentError::Fault(FaultError::InvalidChurn {
                    reason: "churn needs a finite cycles(..) cap to bound its event timeline"
                        .to_string(),
                }))
            };
        }
        let timeline = match self.faults {
            FaultSpec::Churn {
                node_rate,
                link_rate,
                mttr,
            } => ChurnTimeline::generate(
                self.topology.graph(),
                node_rate,
                link_rate,
                mttr,
                fault_seed(self.seed),
                self.max_cycles,
            ),
            _ => ChurnTimeline::from_events(
                fault_set
                    .failed_nodes()
                    .iter()
                    .map(|&x| ChurnEvent {
                        cycle: 0,
                        target: ChurnTarget::Node(x),
                        failed: true,
                    })
                    .chain(fault_set.failed_links().iter().map(|&(u, v)| ChurnEvent {
                        cycle: 0,
                        target: ChurnTarget::Link(u, v),
                        failed: true,
                    })),
            ),
        };
        let router = self.router.resolve(self.topology)?;
        let router_name = if timeline.is_empty() {
            router.name()
        } else {
            crate::router::masked_router_name(&router.name())
        };
        let stats = if closed_loop {
            let TrafficSpec::RequestReply {
                clients,
                think,
                timeout,
                retries,
            } = self.traffic
            else {
                unreachable!("closed_loop implies RequestReply")
            };
            let load = RequestReplyLoad {
                clients,
                think,
                timeout,
                retries,
                seed: self.seed,
            };
            if self.threads > 1 {
                simulate_parallel_request_reply(
                    self.topology,
                    &*router,
                    &timeline,
                    &load,
                    self.max_cycles,
                    self.threads,
                    &mut self.observer,
                )
            } else {
                simulate_request_reply(
                    self.topology,
                    &*router,
                    &timeline,
                    &load,
                    self.max_cycles,
                    &mut self.observer,
                )
            }
        } else {
            let packets = self.traffic.generate(n, self.seed);
            if self.threads > 1 {
                simulate_parallel_churn_observed(
                    self.topology,
                    &*router,
                    &timeline,
                    &packets,
                    self.max_cycles,
                    self.threads,
                    &mut self.observer,
                )
            } else {
                simulate_churn(
                    self.topology,
                    &*router,
                    &timeline,
                    &packets,
                    self.max_cycles,
                    &mut self.observer,
                )
            }
        };
        Ok(Report {
            topology: self.topology.name(),
            nodes: n,
            router_spec: self.router.to_string(),
            router: router_name,
            traffic: self.traffic.to_string(),
            switching: self.switching.to_string(),
            faults: self.faults.to_string(),
            failed_nodes: fault_set.failed_nodes().len(),
            failed_links: fault_set.failed_links().len(),
            seed: self.seed,
            max_cycles: self.max_cycles,
            stats,
            collective: None,
            sections: self.observer.sections(),
        })
    }

    /// The collective half of [`run`](Experiment::run): compiles the spec
    /// against the (possibly degraded) network and executes it — tree
    /// collectives by replication through [`simulate_collective`]
    /// ([`simulate_parallel_collective`] under a thread budget), the
    /// personalized exchange as routed unicasts through the ordinary
    /// (healthy or faulted) engine.
    fn run_collective(
        mut self,
        spec: CollectiveSpec,
        fault_set: crate::fault::FaultSet,
    ) -> Result<Report, ExperimentError>
    where
        O: Send,
    {
        let n = self.topology.len();
        let workload = spec.compile(
            self.topology.graph(),
            &fault_set,
            collective_seed(self.seed),
        )?;
        let (stats, router_name, outcome) = match workload {
            CollectiveWorkload::Tree(plan) => {
                let (stats, reached) = if self.threads > 1 {
                    simulate_parallel_collective(
                        self.topology,
                        &plan,
                        self.max_cycles,
                        self.threads,
                        &mut self.observer,
                    )
                } else {
                    simulate_collective(self.topology, &plan, self.max_cycles, &mut self.observer)
                };
                let outcome = CollectiveOutcome {
                    spec: spec.to_string(),
                    targets: plan.targets(),
                    reached,
                    // Only the full broadcast has an exact static oracle;
                    // pruned multicast trees re-serialize more tightly.
                    schedule_rounds: spec.is_broadcast().then(|| plan.schedule_rounds()),
                    completion_cycles: stats.makespan,
                };
                // Tree forwarding consults no routing policy: the plan
                // resolved every edge at compile time.
                (stats, "tree-forward".to_string(), outcome)
            }
            CollectiveWorkload::Unicasts(packets) => {
                let router = self.router.resolve(self.topology)?;
                let router_name = if fault_set.is_empty() {
                    router.name()
                } else {
                    crate::router::masked_router_name(&router.name())
                };
                // Routed unicasts honor the switching spec (the
                // `simulate_wormhole*` entry points delegate
                // store-and-forward specs to the packet engine).
                let stats = if self.threads > 1 {
                    simulate_parallel_wormhole(
                        self.topology,
                        &*router,
                        &self.switching,
                        &fault_set,
                        &packets,
                        self.max_cycles,
                        self.threads,
                        &mut self.observer,
                    )
                } else if fault_set.is_empty() {
                    simulate_wormhole(
                        self.topology,
                        &*router,
                        &self.switching,
                        &packets,
                        self.max_cycles,
                        &mut self.observer,
                    )
                } else {
                    simulate_wormhole_faulted(
                        self.topology,
                        &*router,
                        &self.switching,
                        &fault_set,
                        &packets,
                        self.max_cycles,
                        &mut self.observer,
                    )
                };
                let outcome = CollectiveOutcome {
                    spec: spec.to_string(),
                    targets: packets.len(),
                    reached: stats.delivered,
                    schedule_rounds: None,
                    completion_cycles: stats.makespan,
                };
                (stats, router_name, outcome)
            }
        };
        Ok(Report {
            topology: self.topology.name(),
            nodes: n,
            router_spec: self.router.to_string(),
            router: router_name,
            traffic: spec.to_string(),
            switching: self.switching.to_string(),
            faults: self.faults.to_string(),
            failed_nodes: fault_set.failed_nodes().len(),
            failed_links: fault_set.failed_links().len(),
            seed: self.seed,
            max_cycles: self.max_cycles,
            stats,
            collective: Some(outcome),
            sections: self.observer.sections(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{LatencyHistogram, LinkHeatmap};
    use crate::simulator::{simulate_with, SimStats};
    use crate::topology::{FibonacciNet, Hypercube, Ring};

    fn run_spec(topo: &dyn Topology, router: RouterSpec) -> Result<Report, ExperimentError> {
        Experiment::on(topo)
            .router(router)
            .traffic(TrafficSpec::Uniform {
                count: 200,
                window: 50,
            })
            .seed(7)
            .run()
    }

    #[test]
    fn experiment_reproduces_simulate_with_on_the_acceptance_pair() {
        // Acceptance criterion: a no-op-observer experiment must match
        // `simulate_with` packet for packet on Γ_16 and Q_11 — same
        // histogram, makespan, hops, everything — and the zero-fault
        // path (explicit empty FaultSpec) must be indistinguishable
        // from the healthy engine.
        let gamma = FibonacciNet::classical(16);
        let q = Hypercube::new(11);
        for topo in [&gamma as &dyn Topology, &q] {
            let spec = TrafficSpec::Uniform {
                count: 1500,
                window: 400,
            };
            let direct: SimStats = simulate_with(
                topo,
                &*topo.router(),
                &spec.generate(topo.len(), 2026),
                4_000_000,
            );
            let report = Experiment::on(topo)
                .traffic(spec.clone())
                .seed(2026)
                .cycles(4_000_000)
                .run()
                .expect("preferred router always resolves");
            assert_eq!(report.stats, direct, "{}", topo.name());
            assert_eq!(report.stats.delivered, report.stats.offered);
            assert_eq!(report.topology, topo.name());
            // Zero-fault equivalence oracle (satellite): every way of
            // spelling "no faults" yields the identical packet-for-packet
            // run.
            for empty in [
                FaultSpec::Nodes { count: 0 },
                FaultSpec::NodeList(vec![]),
                FaultSpec::None,
            ] {
                let faulted = Experiment::on(topo)
                    .traffic(spec.clone())
                    .seed(2026)
                    .cycles(4_000_000)
                    .faults(empty.clone())
                    .run()
                    .expect("empty fault scenarios always sample");
                assert_eq!(faulted.stats, direct, "{} under {empty}", topo.name());
                assert_eq!(faulted.failed_nodes, 0);
                assert_eq!(faulted.failed_links, 0);
            }
        }
    }

    #[test]
    fn faulted_experiment_drops_are_typed_and_conserved() {
        let net = FibonacciNet::classical(10);
        let report = Experiment::on(&net)
            .traffic(TrafficSpec::Uniform {
                count: 2000,
                window: 300,
            })
            .faults(FaultSpec::Nodes { count: 20 })
            .seed(17)
            .run()
            .expect("valid degraded configuration");
        assert_eq!(report.failed_nodes, 20);
        let s = &report.stats;
        assert!(s.dropped_dead_endpoint > 0, "dead endpoints must show up");
        // Uncapped run: everything is delivered or typed-dropped.
        assert_eq!(s.delivered + s.dropped(), s.offered);
        assert_eq!(report.faults, "nodes(count=20)");
        // The report names the router that actually ran — the masked
        // wrapper, not the bare policy.
        assert_eq!(report.router, "fault-masked(canonical)");
        assert_eq!(report.router_spec, "preferred");
        let json = report.to_json();
        assert!(json.contains("\"faults\": \"nodes(count=20)\""), "{json}");
        assert!(json.contains("\"failed_nodes\": 20"), "{json}");
        // The human summary surfaces the drops.
        assert!(report.to_string().contains("dropped"), "{report}");
    }

    #[test]
    fn unforkable_observer_with_threads_is_a_typed_error() {
        // An observer that leaves `fork` at its `None` default cannot
        // attach to a sharded run: the builder must say so up front with
        // a typed error naming the observer type — never fall back to a
        // silent serial run, never panic mid-run.
        struct TapeObserver(Vec<u64>);
        impl SimObserver for TapeObserver {
            fn on_deliver(&mut self, cycle: u64, _dst: u32, _latency: u64) {
                self.0.push(cycle);
            }
        }
        let net = FibonacciNet::classical(7);
        let err = Experiment::on(&net)
            .observe(TapeObserver(Vec::new()))
            .threads(4)
            .run()
            .expect_err("an observer without fork/merge cannot shard");
        match &err {
            ExperimentError::UnforkableObserver { observer, threads } => {
                assert!(observer.contains("TapeObserver"), "{observer}");
                assert_eq!(*threads, 4);
            }
            other => panic!("expected UnforkableObserver, got {other:?}"),
        }
        assert!(err.to_string().contains("fork"), "{err}");
        // The same observer runs fine serially.
        let report = Experiment::on(&net)
            .observe(TapeObserver(Vec::new()))
            .threads(1)
            .run()
            .expect("serial run needs no fork");
        assert!(report.stats.delivered > 0);
    }

    #[test]
    fn threaded_request_reply_matches_serial_through_the_builder() {
        // Closed-loop traffic used to ignore the thread knob silently;
        // now it shards — and the report must not be able to tell.
        let net = FibonacciNet::classical(7);
        let run = |threads: usize| {
            Experiment::on(&net)
                .traffic(TrafficSpec::RequestReply {
                    clients: 6,
                    think: 2.0,
                    timeout: 40,
                    retries: 1,
                })
                .cycles(10_000)
                .seed(11)
                .threads(threads)
                .run()
                .expect("request/reply configuration resolves")
        };
        let serial = run(1);
        assert!(serial.stats.offered > 0);
        for t in [2usize, 4, 8] {
            assert_eq!(run(t).stats, serial.stats, "{t} threads");
        }
    }

    #[test]
    fn fault_spec_errors_surface_as_experiment_errors() {
        let q = Hypercube::new(3);
        let err = Experiment::on(&q)
            .faults(FaultSpec::Nodes { count: 8 })
            .run()
            .expect_err("failing every node is rejected");
        assert!(matches!(err, ExperimentError::Fault(_)));
        assert!(err.to_string().contains("invalid fault scenario"), "{err}");
        // And the text form works end to end with `?`.
        fn run() -> Result<Report, Box<dyn std::error::Error>> {
            let q = Hypercube::new(3);
            let faults: crate::fault::FaultSpec = "nodes(count=2)".parse()?;
            Ok(Experiment::on(&q)
                .traffic("alltoall".parse::<TrafficSpec>()?)
                .faults(faults)
                .run()?)
        }
        let report = run().expect("valid text configuration");
        assert_eq!(
            report.stats.delivered + report.stats.dropped(),
            report.stats.offered
        );
    }

    #[test]
    fn router_capability_errors_are_typed_not_panics() {
        let ring = Ring::new(9);
        match run_spec(&ring, RouterSpec::Ecube) {
            Err(ExperimentError::UnsupportedRouter { router, topology }) => {
                assert_eq!(router, RouterSpec::Ecube);
                assert_eq!(topology, "Ring_9");
            }
            other => panic!("expected UnsupportedRouter, got {other:?}"),
        }
        assert!(run_spec(&ring, RouterSpec::Canonical).is_err());
        assert!(run_spec(&ring, RouterSpec::Adaptive).is_err());
        assert!(run_spec(&ring, RouterSpec::Builtin).is_ok());

        let q = Hypercube::new(4);
        assert!(run_spec(&q, RouterSpec::Canonical).is_err());
        assert_eq!(run_spec(&q, RouterSpec::Ecube).unwrap().router, "e-cube");
    }

    #[test]
    fn experiment_errors_work_with_question_mark() {
        // Satellite: ExperimentError (like RouteError) must box into
        // `dyn Error` so callers can use `?`.
        fn run() -> Result<Report, Box<dyn std::error::Error>> {
            let ring = Ring::new(5);
            let spec: TrafficSpec = "uniform(count=20,window=5)".parse()?;
            let router: RouterSpec = "builtin".parse()?;
            Ok(Experiment::on(&ring).traffic(spec).router(router).run()?)
        }
        let report = run().expect("valid configuration");
        assert_eq!(report.stats.delivered, 20);

        fn bad() -> Result<Report, Box<dyn std::error::Error>> {
            let ring = Ring::new(5);
            let spec: TrafficSpec = "nonsense".parse()?;
            Ok(Experiment::on(&ring).traffic(spec).run()?)
        }
        let err = bad().expect_err("parse failure propagates");
        assert!(err.to_string().contains("traffic"));
    }

    #[test]
    fn invalid_traffic_is_rejected_before_running() {
        let q = Hypercube::new(3);
        let err = Experiment::on(&q)
            .traffic(TrafficSpec::Bernoulli {
                rate: 1.5,
                cycles: 10,
            })
            .run()
            .expect_err("rate 1.5 is not a probability");
        assert!(matches!(err, ExperimentError::InvalidTraffic { .. }));
    }

    #[test]
    fn observers_feed_report_sections() {
        let net = FibonacciNet::classical(8);
        let report = Experiment::on(&net)
            .router(RouterSpec::Canonical)
            .traffic(TrafficSpec::HotSpot {
                count: 400,
                window: 100,
                hot_fraction: 0.3,
            })
            .seed(5)
            .observe((LatencyHistogram::new(), LinkHeatmap::new()))
            .run()
            .unwrap();
        let names: Vec<&str> = report.sections.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["latency_histogram", "link_heatmap"]);
        let json = report.to_json();
        assert!(json.contains("\"latency_histogram\""), "{json}");
        assert!(json.contains("\"hottest\""), "{json}");
        assert!(json.contains("\"traffic\": \"hotspot(count=400,window=100,hot=0.3)\""));
    }

    #[test]
    fn borrowed_observer_stays_inspectable() {
        let q = Hypercube::new(5);
        let mut heat = LinkHeatmap::new();
        let report = Experiment::on(&q)
            .traffic(TrafficSpec::ComplementPermutation { window: 4 })
            .observe(&mut heat)
            .run()
            .unwrap();
        assert_eq!(heat.total_hops(), report.stats.total_hops);
        assert!(heat.total_hops() > 0);
        // Bit-complement on Q_5: every source is distance 5 from its dst.
        assert_eq!(report.stats.total_hops, 32 * 5);
    }

    #[test]
    fn run_batch_matches_sequential_runs_and_any_seed_order() {
        let net = FibonacciNet::classical(9);
        let template = Experiment::on(&net)
            .router(RouterSpec::Canonical)
            .traffic(TrafficSpec::Uniform {
                count: 300,
                window: 80,
            })
            .cycles(100_000);
        let seeds = [11u64, 7, 7, 42];
        let batch = template.run_batch(&seeds).expect("valid configuration");
        assert_eq!(batch.len(), seeds.len());
        // Each report equals the sequential run of the same seed …
        for (report, &seed) in batch.iter().zip(&seeds) {
            let solo = Experiment::on(&net)
                .router(RouterSpec::Canonical)
                .traffic(TrafficSpec::Uniform {
                    count: 300,
                    window: 80,
                })
                .cycles(100_000)
                .seed(seed)
                .run()
                .unwrap();
            assert_eq!(report.stats, solo.stats, "seed {seed}");
            assert_eq!(report.seed, seed);
        }
        // … so permuting the seeds permutes the reports identically and
        // any order-independent aggregate is byte-stable.
        let permuted = template.run_batch(&[42, 7, 11, 7]).unwrap();
        assert_eq!(permuted[0].stats, batch[3].stats);
        assert_eq!(permuted[2].stats, batch[0].stats);
        assert_eq!(permuted[1].stats, batch[1].stats);
        let mean =
            |rs: &[Report]| rs.iter().map(|r| r.stats.mean_latency).sum::<f64>() / rs.len() as f64;
        assert_eq!(mean(&batch), mean(&permuted));
    }

    #[test]
    fn run_batch_with_faults_is_deterministic_per_seed() {
        let q = Hypercube::new(5);
        let template = Experiment::on(&q)
            .traffic(TrafficSpec::Uniform {
                count: 200,
                window: 50,
            })
            .faults(FaultSpec::Nodes { count: 4 });
        let a = template.run_batch(&[1, 2, 3]).unwrap();
        let b = template.run_batch(&[3, 2, 1]).unwrap();
        for (x, y) in a.iter().zip(b.iter().rev()) {
            assert_eq!(x.stats, y.stats);
            assert_eq!(x.failed_nodes, 4);
            // Uncapped degraded runs conserve packets.
            assert_eq!(x.stats.delivered + x.stats.dropped(), x.stats.offered);
        }
        // Different seeds place different faults (decorrelated draws).
        assert_ne!(a[0].stats, a[1].stats);
    }

    #[test]
    fn run_batch_surfaces_configuration_errors() {
        let ring = Ring::new(6);
        let err = Experiment::on(&ring)
            .router(RouterSpec::Ecube)
            .run_batch(&[1, 2])
            .expect_err("no e-cube on a ring");
        assert!(matches!(err, ExperimentError::UnsupportedRouter { .. }));
        // An empty batch runs nothing and succeeds.
        assert!(Experiment::on(&ring).run_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn collective_completion_matches_static_schedule_on_the_acceptance_pair() {
        // Acceptance criterion of the collective path: on healthy Γ_16
        // and Q_11 the *simulated* one-port broadcast completes in
        // exactly the static schedule's round count, and the all-port
        // broadcast in exactly the source's eccentricity.
        use crate::broadcast::{broadcast_all_port, broadcast_one_port};
        use crate::collective::{CollectiveSpec, Port};
        let gamma = FibonacciNet::classical(16);
        let q = Hypercube::new(11);
        for topo in [&gamma as &dyn Topology, &q] {
            let one = broadcast_one_port(topo, 0).expect("connected");
            let report = Experiment::on(topo)
                .collective(CollectiveSpec::Broadcast {
                    source: 0,
                    port: Port::One,
                })
                .run()
                .expect("healthy broadcast runs");
            let outcome = report.collective.as_ref().expect("collective outcome");
            assert_eq!(
                outcome.completion_cycles,
                one.rounds as u64,
                "{}: live one-port completion must equal static rounds",
                topo.name()
            );
            assert_eq!(outcome.schedule_rounds, Some(one.rounds));
            assert_eq!(outcome.targets, topo.len() - 1);
            assert_eq!(outcome.reached, topo.len() - 1);
            assert_eq!(report.stats.delivered, report.stats.offered);
            assert_eq!(report.router, "tree-forward");
            assert_eq!(report.traffic, "broadcast(source=0,port=one)");

            let all = broadcast_all_port(topo, 0).expect("connected");
            let ecc = fibcube_graph::bfs::bfs_distances(topo.graph(), 0)
                .iter()
                .copied()
                .max()
                .unwrap() as u64;
            assert_eq!(all.rounds as u64, ecc);
            let report = Experiment::on(topo)
                .collective(CollectiveSpec::Broadcast {
                    source: 0,
                    port: Port::All,
                })
                .run()
                .unwrap();
            let outcome = report.collective.as_ref().unwrap();
            assert_eq!(
                outcome.completion_cycles,
                ecc,
                "{}: all-port completion must equal source eccentricity",
                topo.name()
            );
            assert_eq!(outcome.reached, topo.len() - 1);
        }
    }

    #[test]
    fn faulted_collective_delivers_exactly_the_survivor_component() {
        // Acceptance criterion: under node faults the broadcast reaches
        // exactly the source's surviving component — no more, no less —
        // with every other intended recipient typed, and conservation
        // extending to replicated copies.
        use crate::collective::{CollectiveSpec, Port};
        use fibcube_graph::bfs::{bfs_distances, INFINITY};
        let net = FibonacciNet::classical(10); // 144 nodes
        for seed in [3u64, 17, 99] {
            let spec = FaultSpec::Nodes { count: 30 };
            let fault_set = spec
                .sample(net.graph(), super::fault_seed(seed))
                .expect("30 of 144 is survivable");
            // The experiment draws the same fault set from the same seed.
            let mut delivered_to = crate::observer::DeliveryTracker::new();
            let report = Experiment::on(&net)
                .collective(CollectiveSpec::Broadcast {
                    source: 0,
                    port: Port::One,
                })
                .faults(spec.clone())
                .seed(seed)
                .observe(&mut delivered_to)
                .run()
                .expect("degraded broadcast runs");
            let outcome = report.collective.as_ref().unwrap();
            let s = &report.stats;
            // Static survivor component of the source.
            if !fault_set.node_alive(0) {
                assert_eq!(outcome.reached, 0, "dead source reaches nobody");
                assert_eq!(s.dropped_dead_endpoint, net.len() - 1);
                continue;
            }
            let (healthy, survivors) = fault_set.healthy_subgraph(net.graph());
            let src_new = survivors.iter().position(|&v| v == 0).unwrap() as u32;
            let dist = bfs_distances(&healthy, src_new);
            let component = dist.iter().filter(|&&d| d != INFINITY).count();
            assert_eq!(
                outcome.reached,
                component - 1,
                "seed {seed}: broadcast must reach exactly the survivor component"
            );
            assert_eq!(s.delivered, component - 1, "pure broadcast has no relays");
            // Typed drops: dead recipients + disconnected survivors.
            assert_eq!(s.dropped_dead_endpoint, fault_set.failed_nodes().len());
            assert_eq!(s.dropped_unreachable, survivors.len() - component);
            // Copy conservation: offered == delivered + dropped (drained).
            assert_eq!(s.offered, net.len() - 1);
            assert_eq!(s.delivered + s.dropped(), s.offered, "seed {seed}");
            assert_eq!(delivered_to.in_flight(), 0);
            // Completion still equals the degraded schedule's rounds.
            assert_eq!(
                outcome.completion_cycles,
                outcome.schedule_rounds.unwrap() as u64
            );
        }
    }

    #[test]
    fn collective_experiments_compose_with_the_rest_of_the_api() {
        use crate::collective::{CollectiveSpec, Port};
        // Multicast: seeded targets, pruned tree, relays counted as
        // deliveries but not as reached targets.
        let net = FibonacciNet::classical(9);
        let report = Experiment::on(&net)
            .collective(CollectiveSpec::Multicast {
                source: 0,
                count: 10,
                port: Port::All,
            })
            .seed(5)
            .run()
            .unwrap();
        let outcome = report.collective.as_ref().unwrap();
        assert_eq!(outcome.targets, 10);
        assert_eq!(outcome.reached, 10);
        assert!(report.stats.delivered >= 10, "relays also receive copies");
        assert_eq!(outcome.schedule_rounds, None, "no oracle for pruned trees");
        // Same seed ⇒ identical run; different seed ⇒ different targets.
        let again = Experiment::on(&net)
            .collective(CollectiveSpec::Multicast {
                source: 0,
                count: 10,
                port: Port::All,
            })
            .seed(5)
            .run()
            .unwrap();
        assert_eq!(again.stats, report.stats);

        // alltoallp runs as routed unicasts — with faults it degrades
        // like ordinary traffic, and the outcome echoes the makespan.
        let q = Hypercube::new(4);
        let report = Experiment::on(&q)
            .collective(CollectiveSpec::AllToAllPersonalized)
            .faults(FaultSpec::Nodes { count: 2 })
            .seed(1)
            .run()
            .unwrap();
        let outcome = report.collective.as_ref().unwrap();
        assert_eq!(outcome.targets, 16 * 15);
        assert_eq!(outcome.reached, report.stats.delivered);
        assert_eq!(outcome.completion_cycles, report.stats.makespan);
        assert!(report.router.starts_with("fault-masked("));
        assert_eq!(
            report.stats.delivered + report.stats.dropped(),
            report.stats.offered
        );

        // run_batch fans collectives out like any other configuration.
        let batch = Experiment::on(&net)
            .collective(CollectiveSpec::Broadcast {
                source: 0,
                port: Port::One,
            })
            .faults(FaultSpec::Nodes { count: 5 })
            .run_batch(&[1, 2, 3])
            .unwrap();
        assert_eq!(batch.len(), 3);
        for (r, seed) in batch.iter().zip([1u64, 2, 3]) {
            let solo = Experiment::on(&net)
                .collective(CollectiveSpec::Broadcast {
                    source: 0,
                    port: Port::One,
                })
                .faults(FaultSpec::Nodes { count: 5 })
                .seed(seed)
                .run()
                .unwrap();
            assert_eq!(r.stats, solo.stats, "seed {seed}");
            assert_eq!(r.collective, solo.collective, "seed {seed}");
        }

        // Degenerate configurations are typed errors.
        let err = Experiment::on(&q)
            .collective(CollectiveSpec::Broadcast {
                source: 99,
                port: Port::One,
            })
            .run()
            .expect_err("source 99 does not exist");
        assert!(matches!(err, ExperimentError::InvalidCollective { .. }));
        assert!(err.to_string().contains("collective"), "{err}");

        // And the text form works end to end with `?`.
        fn text_driven() -> Result<Report, Box<dyn std::error::Error>> {
            let q = Hypercube::new(5);
            let spec: crate::collective::CollectiveSpec = "broadcast(source=0,port=all)".parse()?;
            Ok(Experiment::on(&q).collective(spec).run()?)
        }
        let report = text_driven().expect("valid text configuration");
        assert_eq!(report.collective.unwrap().completion_cycles, 5);
    }

    #[test]
    fn ring_all_to_all_loads_both_directions_equally() {
        // Satellite regression: the even-ring antipodal tie used to break
        // always clockwise, so Ring_8 all-to-all overloaded that
        // direction (32 extra clockwise hops from the 8 antipodal pairs).
        // With the parity tie-break the two directions carry identical
        // totals.
        let ring = Ring::new(8);
        let mut heat = LinkHeatmap::new();
        let report = Experiment::on(&ring)
            .traffic(TrafficSpec::AllToAll)
            .observe(&mut heat)
            .run()
            .expect("builtin routing on a ring");
        assert_eq!(report.stats.delivered, 8 * 7);
        let g = ring.graph();
        let mut clockwise = 0u64;
        let mut counter = 0u64;
        for u in 0..8u32 {
            for e in g.edge_range(u) {
                let v = g.target(e);
                if v == (u + 1) % 8 {
                    clockwise += heat.load(e);
                } else {
                    counter += heat.load(e);
                }
            }
        }
        assert_eq!(heat.total_hops(), clockwise + counter);
        assert_eq!(
            clockwise, counter,
            "antipodal ties must balance the two directions"
        );
    }

    #[test]
    fn collective_report_json_carries_the_outcome() {
        use crate::collective::{CollectiveSpec, Port};
        let q = Hypercube::new(4);
        let report = Experiment::on(&q)
            .collective(CollectiveSpec::Broadcast {
                source: 3,
                port: Port::One,
            })
            .run()
            .unwrap();
        let json = report.to_json();
        for needle in [
            "\"traffic\": \"broadcast(source=3,port=one)\"",
            "\"router\": \"tree-forward\"",
            "\"collective\": {",
            "\"schedule_rounds\":",
            "\"completion_cycles\":",
            "\"reached_fraction\": 1",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Traffic-only reports serialise a null collective.
        let plain = Experiment::on(&q)
            .traffic(TrafficSpec::AllToAll)
            .run()
            .unwrap();
        assert!(plain.collective.is_none());
        assert!(plain.to_json().contains("\"collective\": null"));
        // The human summary mentions the collective.
        assert!(
            report.to_string().contains("collective reached"),
            "{report}"
        );
    }

    #[test]
    fn switching_spec_is_validated_and_echoed() {
        use crate::switching::SwitchingSpec;
        let q = Hypercube::new(4);
        let plain = Experiment::on(&q)
            .traffic(TrafficSpec::AllToAll)
            .run()
            .unwrap();
        assert_eq!(plain.switching, "store_and_forward");
        assert!(
            plain
                .to_json()
                .contains("\"switching\": \"store_and_forward\""),
            "{}",
            plain.to_json()
        );

        let worm = Experiment::on(&q)
            .traffic(TrafficSpec::AllToAll)
            .switching(SwitchingSpec::Wormhole {
                flit_size: 8,
                vcs: 2,
                buf_flits: 4,
            })
            .run()
            .expect("wormhole on a hypercube is deadlock-free");
        assert_eq!(worm.switching, "wormhole(flit_size=8,vcs=2,buf_flits=4)");
        assert_eq!(worm.stats.delivered, worm.stats.offered);

        let err = Experiment::on(&q)
            .switching(SwitchingSpec::Wormhole {
                flit_size: 0,
                vcs: 1,
                buf_flits: 1,
            })
            .run()
            .expect_err("zero flit size is degenerate");
        assert!(matches!(err, ExperimentError::InvalidSwitching { .. }));
        assert!(err.to_string().contains("switching"), "{err}");
    }

    #[test]
    fn run_batch_carries_the_switching_spec() {
        use crate::switching::SwitchingSpec;
        let net = FibonacciNet::classical(9);
        let spec = SwitchingSpec::Wormhole {
            flit_size: 16,
            vcs: 2,
            buf_flits: 4,
        };
        let template = Experiment::on(&net)
            .traffic(TrafficSpec::Uniform {
                count: 200,
                window: 60,
            })
            .switching(spec.clone());
        let batch = template.run_batch(&[3, 4]).expect("valid configuration");
        for (r, seed) in batch.iter().zip([3u64, 4]) {
            let solo = Experiment::on(&net)
                .traffic(TrafficSpec::Uniform {
                    count: 200,
                    window: 60,
                })
                .switching(spec.clone())
                .seed(seed)
                .run()
                .unwrap();
            assert_eq!(r.stats, solo.stats, "seed {seed}");
            assert_eq!(r.switching, "wormhole(flit_size=16,vcs=2,buf_flits=4)");
        }
    }

    #[test]
    fn collective_switching_combinations_follow_the_support_table() {
        use crate::collective::{CollectiveSpec, Port};
        use crate::switching::SwitchingSpec;
        let q = Hypercube::new(4);
        let worm = SwitchingSpec::Wormhole {
            flit_size: 8,
            vcs: 2,
            buf_flits: 4,
        };
        // Tree collectives + wormhole: a typed error, not a silently
        // ignored switching spec (the pre-table behaviour).
        for spec in [
            CollectiveSpec::Broadcast {
                source: 0,
                port: Port::One,
            },
            CollectiveSpec::Multicast {
                source: 0,
                count: 5,
                port: Port::All,
            },
        ] {
            let err = Experiment::on(&q)
                .collective(spec)
                .switching(worm.clone())
                .run()
                .expect_err("tree replication has no wormhole model");
            assert!(
                matches!(err, ExperimentError::UnsupportedCombination { .. }),
                "{err:?}"
            );
            assert!(err.to_string().contains("store_and_forward"), "{err}");
        }
        // The personalized exchange runs as routed unicasts and honors
        // the wormhole spec: multi-flit serialization must cost cycles.
        let saf = Experiment::on(&q)
            .collective(CollectiveSpec::AllToAllPersonalized)
            .run()
            .unwrap();
        let worm_run = Experiment::on(&q)
            .collective(CollectiveSpec::AllToAllPersonalized)
            .switching(worm)
            .run()
            .expect("alltoallp supports wormhole");
        assert_eq!(worm_run.stats.delivered, worm_run.stats.offered);
        assert!(
            worm_run.stats.makespan > saf.stats.makespan,
            "flit serialization must show up: wormhole {} vs SAF {}",
            worm_run.stats.makespan,
            saf.stats.makespan
        );
        // Tree collectives under store-and-forward remain supported.
        assert!(Experiment::on(&q)
            .collective(CollectiveSpec::Broadcast {
                source: 0,
                port: Port::One,
            })
            .run()
            .is_ok());
    }

    #[test]
    fn threaded_experiments_match_serial_bit_for_bit() {
        // The threads knob must be invisible in the results: healthy and
        // degraded runs shard onto the parallel engine and reproduce the
        // serial stats exactly, histograms included.
        let net = FibonacciNet::classical(12);
        let run_with = |threads: usize, faults: FaultSpec| {
            Experiment::on(&net)
                .traffic(TrafficSpec::Uniform {
                    count: 2_000,
                    window: 200,
                })
                .faults(faults)
                .seed(9)
                .threads(threads)
                .run()
                .unwrap()
        };
        for faults in [FaultSpec::None, FaultSpec::Nodes { count: 10 }] {
            let serial = run_with(1, faults.clone());
            for t in [2usize, 4, 8] {
                let par = run_with(t, faults.clone());
                assert_eq!(par.stats, serial.stats, "threads={t} faults={faults}");
            }
        }
    }

    #[test]
    fn report_json_echoes_configuration() {
        let q = Hypercube::new(3);
        let report = Experiment::on(&q)
            .router(RouterSpec::Adaptive)
            .traffic(TrafficSpec::AllToAll)
            .cycles(10_000)
            .run()
            .unwrap();
        let json = report.to_json();
        for needle in [
            "\"topology\": \"Q_3\"",
            "\"nodes\": 8",
            "\"router_spec\": \"adaptive\"",
            "\"router\": \"adaptive\"",
            "\"traffic\": \"alltoall\"",
            "\"max_cycles\": 10000",
            "\"delivered\": 56",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // No cap ⇒ null.
        let uncapped = Experiment::on(&q)
            .traffic(TrafficSpec::AllToAll)
            .run()
            .unwrap();
        assert!(uncapped.to_json().contains("\"max_cycles\": null"));
        // The human summary names the essentials.
        let line = uncapped.to_string();
        assert!(line.contains("Q_3") && line.contains("56"), "{line}");
    }
}
