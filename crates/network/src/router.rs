//! Routing algorithms, split out of [`Topology`].
//!
//! The seed fused "what the network looks like" and "how packets pick
//! their next hop" into one trait, which made it impossible to compare
//! routing *policies* on a fixed topology or to give the simulation engine
//! a load-aware router. This module separates the two:
//!
//! * [`EcubeRouter`] — dimension-ordered routing on the hypercube, pure
//!   bit arithmetic, `O(1)` per hop;
//! * [`CanonicalRouter`] — the Proposition 3.1 canonical-path rule on
//!   `Q_d(1^k)`, with the per-hop label binary search of the seed replaced
//!   by a precomputed `node × position → node` flip table, `O(1)` per hop;
//! * [`AdaptiveMinimal`] — a minimal *adaptive* router for
//!   Hamming-addressed topologies (hypercube and the isometric `Q_d(1^k)`):
//!   among all neighbors strictly closer to the destination it forwards to
//!   the least-loaded output link, using the live queue occupancies the
//!   engine exposes through [`LinkLoad`];
//! * [`NextHopRouter`] — adapter running any topology's built-in
//!   distributed rule, so ring/mesh (and external `Topology` impls) plug
//!   into the same engine;
//! * [`FaultMaskingRouter`] — adapter wrapping any of the above so it
//!   routes around a [`FaultSet`]: surviving inner hops pass through,
//!   dead ones detour (misroute) on the healthy adjacency.
//!
//! Every router here is *progressive* — each hop strictly decreases the
//! distance to the destination — which the property tests in
//! `tests/proptest_network.rs` verify against BFS ground truth.
//!
//! For declarative configuration (CLI flags, experiment builders),
//! [`RouterSpec`] names a policy and [`RouterSpec::resolve`] builds it
//! for a concrete topology with a typed capability check.

use core::fmt;
use core::str::FromStr;

use fibcube_graph::csr::{CsrGraph, SlotTable};
use fibcube_words::word::Word;

use crate::dist::DistanceTable;
use crate::experiment::ExperimentError;
use crate::fault::{ChurnEvent, ChurnTarget, FaultMasks, FaultSet};
use crate::topology::{FibonacciNet, Hypercube, Topology};

/// A declarative routing-policy choice, the router half of an
/// [`Experiment`](crate::experiment::Experiment). A spec is resolved
/// against a concrete topology by [`RouterSpec::resolve`]; policies a
/// topology cannot run (e-cube off the hypercube, canonical-path off
/// `Q_d(1^k)`, adaptive without Hamming addressing) yield a typed
/// [`ExperimentError::UnsupportedRouter`] instead of a panic.
///
/// `Display`/`FromStr` round-trip (`"preferred"`, `"builtin"`,
/// `"e-cube"`, `"canonical"`, `"adaptive"`; parsing also accepts
/// `"ecube"` and `"auto"`), so the choice is CLI/JSON-friendly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterSpec {
    /// The topology's preferred policy ([`Topology::router`]) — e-cube on
    /// hypercubes, precomputed canonical-path on Fibonacci networks, the
    /// built-in rule elsewhere. The default of an `Experiment`.
    Preferred,
    /// The topology's built-in distributed rule via [`NextHopRouter`] —
    /// available everywhere.
    Builtin,
    /// Dimension-ordered [`EcubeRouter`] — hypercubes only.
    Ecube,
    /// Precomputed canonical-path [`CanonicalRouter`] — Fibonacci
    /// networks only.
    Canonical,
    /// Load-aware [`AdaptiveMinimal`] — Hamming-addressed topologies
    /// (hypercube and `Q_d(1^k)`).
    Adaptive,
}

impl RouterSpec {
    /// Resolves the spec against `topo`, building the concrete router or
    /// reporting that the topology cannot run this policy.
    pub fn resolve<T: Topology + ?Sized>(
        self,
        topo: &T,
    ) -> Result<Box<dyn Router + Send + Sync + '_>, ExperimentError> {
        topo.resolve_router(self)
            .ok_or_else(|| ExperimentError::UnsupportedRouter {
                router: self,
                topology: topo.name(),
            })
    }
}

impl fmt::Display for RouterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RouterSpec::Preferred => "preferred",
            RouterSpec::Builtin => "builtin",
            RouterSpec::Ecube => "e-cube",
            RouterSpec::Canonical => "canonical",
            RouterSpec::Adaptive => "adaptive",
        })
    }
}

impl FromStr for RouterSpec {
    type Err = ExperimentError;

    fn from_str(s: &str) -> Result<RouterSpec, ExperimentError> {
        match s.trim() {
            "preferred" | "auto" => Ok(RouterSpec::Preferred),
            "builtin" => Ok(RouterSpec::Builtin),
            "e-cube" | "ecube" => Ok(RouterSpec::Ecube),
            "canonical" => Ok(RouterSpec::Canonical),
            "adaptive" => Ok(RouterSpec::Adaptive),
            other => Err(ExperimentError::ParseSpec {
                what: "router",
                input: other.to_string(),
                reason: "expected preferred, builtin, e-cube, canonical, or adaptive".to_string(),
            }),
        }
    }
}

/// Live occupancy of the deciding node's output links, as exposed by the
/// simulation engine. `load(slot)` is the number of packets currently
/// queued on the output link at `slot` (an index into the node's sorted
/// neighbor list). Deterministic routers ignore it.
pub trait LinkLoad {
    /// Queued packets on output slot `slot` of the current node.
    fn load(&self, slot: usize) -> usize;
}

/// The all-idle view, for route computation outside a simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoLoad;

impl LinkLoad for NoLoad {
    fn load(&self, _slot: usize) -> usize {
        0
    }
}

/// A distributed routing policy: given the current node, the destination,
/// and (optionally) the local link loads, pick the output neighbor.
pub trait Router {
    /// Short policy name (`"e-cube"`, `"canonical"`, `"adaptive"`, …).
    fn name(&self) -> String;

    /// The neighbor to forward to on the way from `cur` to `dst`, or
    /// `None` when `cur == dst`. Must be progressive: the hop strictly
    /// decreases the distance to `dst`.
    fn next_hop(&self, cur: u32, dst: u32, load: &dyn LinkLoad) -> Option<u32>;

    /// The policy's routes as a dense [`NextHopTable`], or `None` (the
    /// default) when the policy cannot be tabulated — because it is
    /// load-dependent ([`AdaptiveMinimal`], [`FaultMaskingRouter`]), has
    /// no per-entry-cheap closed form, or the `4n²`-byte table would
    /// exceed [`TABLE_BYTE_BUDGET`] (the engine then routes per hop,
    /// which the implicit routers make `O(d)`/lookup). A returned table must agree
    /// with [`next_hop`](Router::next_hop) under [`NoLoad`] on every
    /// `(cur, dst)` pair.
    ///
    /// The simulation engine calls this once per run *when the workload
    /// amortises the `O(n²)` build* (see [`NextHopTable`] for the
    /// trade-off) and then routes each hop with one table load instead of
    /// a (possibly virtual) policy call.
    fn precompute(&self, graph: &CsrGraph) -> Option<NextHopTable> {
        let _ = graph;
        None
    }
}

impl<R: Router + ?Sized> Router for &R {
    fn name(&self) -> String {
        (**self).name()
    }

    fn next_hop(&self, cur: u32, dst: u32, load: &dyn LinkLoad) -> Option<u32> {
        (**self).next_hop(cur, dst, load)
    }

    fn precompute(&self, graph: &CsrGraph) -> Option<NextHopTable> {
        (**self).precompute(graph)
    }
}

/// A dense precomputed routing table: `[node × destination] → output
/// directed edge`, built once per `(graph, policy)` and indexed per hop
/// with a single load — no virtual dispatch, no per-hop arithmetic, no
/// neighbor-list search.
///
/// # When precomputation pays off
///
/// Building the table costs `O(n²)` policy evaluations and `4n²` bytes;
/// each per-hop route lookup it replaces costs one (often virtual) call.
/// A run performs roughly `packets × average distance` lookups, so the
/// table wins once `packets × d̄ ≳ n²` — all-to-all workloads (`n²`
/// packets) and long saturation sweeps qualify; a few thousand packets on
/// a 2 500-node network do not, which is why the engine's
/// [`precompute`](Router::precompute) heuristic skips the build for
/// light fixed-load runs. Load-aware policies can never be tabulated:
/// their choices depend on live queue state.
#[derive(Clone, Debug)]
pub struct NextHopTable {
    n: usize,
    /// `edges[cur * n + dst]` — CSR directed-edge index of the link to
    /// take, or [`INVALID`] (`cur == dst`, or no route).
    edges: Vec<u32>,
}

/// Ceiling on any dense `O(n²)` table allocation ([`NextHopTable`],
/// [`DistanceTable`]): 1 GiB, enough for every shipped small topology
/// (`4n²` bytes crosses it at n ≈ 16 384) while refusing the terabyte
/// tables a Γ_30-scale network would imply. Builders return
/// [`ExperimentError::TableTooLarge`] instead of attempting the
/// allocation; `Router::precompute` degrades to per-hop (implicit)
/// routing.
pub const TABLE_BYTE_BUDGET: usize = 1 << 30;

/// Checks an `n × n × 4`-byte dense table against [`TABLE_BYTE_BUDGET`].
pub(crate) fn check_table_budget(n: usize) -> Result<(), ExperimentError> {
    let bytes = (n as u128) * (n as u128) * 4;
    if bytes > TABLE_BYTE_BUDGET as u128 {
        Err(ExperimentError::TableTooLarge { nodes: n, bytes })
    } else {
        Ok(())
    }
}

impl NextHopTable {
    /// Tabulates `next` (a `(cur, dst) → neighbor` rule, `None` meaning
    /// "arrived") over all ordered pairs of `g`'s nodes.
    ///
    /// Refuses with [`ExperimentError::TableTooLarge`] when the `4n²`-byte
    /// table would exceed [`TABLE_BYTE_BUDGET`] — callers fall back to
    /// per-hop (implicit) routing rather than allocating multiple GiB.
    pub fn build(
        g: &CsrGraph,
        mut next: impl FnMut(u32, u32) -> Option<u32>,
    ) -> Result<NextHopTable, ExperimentError> {
        let n = g.num_vertices();
        check_table_budget(n)?;
        let slots = SlotTable::new(g);
        let mut edges = vec![INVALID; n * n];
        for cur in 0..n as u32 {
            let base = g.edge_range(cur).start;
            let row = &mut edges[cur as usize * n..][..n];
            for dst in 0..n as u32 {
                if let Some(hop) = next(cur, dst) {
                    let slot = slots.slot(cur, hop).expect("next hop must be a neighbor");
                    row[dst as usize] = (base + slot as usize) as u32;
                }
            }
        }
        Ok(NextHopTable { n, edges })
    }

    /// Number of nodes the table covers.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// The directed-edge index of the output link from `cur` toward
    /// `dst`, or `None` when `cur == dst` (or the pair is unroutable).
    #[inline]
    pub fn next_edge(&self, cur: u32, dst: u32) -> Option<usize> {
        let e = self.edges[cur as usize * self.n + dst as usize];
        (e != INVALID).then_some(e as usize)
    }

    /// The next-hop *node* from `cur` toward `dst` on `g` (which must be
    /// the graph the table was built for).
    #[inline]
    pub fn next_hop(&self, g: &CsrGraph, cur: u32, dst: u32) -> Option<u32> {
        self.next_edge(cur, dst).map(|e| g.target(e))
    }
}

/// E-cube (dimension-ordered) routing on the binary hypercube: correct the
/// lowest differing dimension first. Node ids are the addresses, so the
/// policy needs no state at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct EcubeRouter;

impl EcubeRouter {
    /// The e-cube hop, usable without constructing a router value.
    #[inline]
    pub fn hop(cur: u32, dst: u32) -> Option<u32> {
        let diff = cur ^ dst;
        if diff == 0 {
            return None;
        }
        Some(cur ^ (diff & diff.wrapping_neg()))
    }
}

impl Router for EcubeRouter {
    fn name(&self) -> String {
        "e-cube".into()
    }

    fn next_hop(&self, cur: u32, dst: u32, _load: &dyn LinkLoad) -> Option<u32> {
        EcubeRouter::hop(cur, dst)
    }

    fn precompute(&self, graph: &CsrGraph) -> Option<NextHopTable> {
        NextHopTable::build(graph, EcubeRouter::hop).ok()
    }
}

/// Canonical-path routing on `Q_d(1^k)` (Proposition 3.1): flip the
/// leftmost `1 → 0` correction first, else the leftmost `0 → 1`.
///
/// The seed recomputed the flipped word and binary-searched the full label
/// list on **every hop** (`O(d + log n)`); this router precomputes the
/// `node × position → node` flip table once (`O(n·d·log n)` at build) and
/// then routes each hop with two bit operations and one table load.
#[derive(Clone, Debug)]
pub struct CanonicalRouter {
    d: usize,
    /// Raw label bits per node (`b₁` at bit `d−1`).
    bits: Vec<u64>,
    /// `flip[i·d + (p−1)]` — node id of `labels[i].flip(p)`, or `INVALID`
    /// when the flipped word leaves the network.
    flip: Vec<u32>,
}

const INVALID: u32 = u32::MAX;

impl CanonicalRouter {
    /// Builds the router for a label set of `d`-bit Zeckendorf addresses
    /// (sorted, as produced by [`FibonacciNet::labels`]).
    pub fn new(d: usize, labels: &[Word]) -> CanonicalRouter {
        let bits: Vec<u64> = labels.iter().map(Word::bits).collect();
        let mut flip = vec![INVALID; labels.len() * d];
        for (i, w) in labels.iter().enumerate() {
            for p in 1..=d {
                if let Ok(j) = labels.binary_search(&w.flip(p)) {
                    flip[i * d + (p - 1)] = j as u32;
                }
            }
        }
        CanonicalRouter { d, bits, flip }
    }

    /// Builds the router for a Fibonacci-cube network in `O(n·d + m)`:
    /// every valid flip is already materialised as a link, so the flip
    /// table is read straight off the adjacency lists instead of binary
    /// searching per (node, position) as [`CanonicalRouter::new`] must.
    pub fn for_net(net: &FibonacciNet) -> CanonicalRouter {
        let d = net.d();
        let labels = net.labels();
        let bits: Vec<u64> = labels.iter().map(Word::bits).collect();
        let mut flip = vec![INVALID; labels.len() * d];
        let g = net.graph();
        for u in 0..g.num_vertices() as u32 {
            for &v in g.neighbors(u) {
                // Each link flips exactly one position.
                let diff = bits[u as usize] ^ bits[v as usize];
                let p = d - diff.trailing_zeros() as usize;
                flip[u as usize * d + (p - 1)] = v;
            }
        }
        CanonicalRouter { d, bits, flip }
    }
}

impl Router for CanonicalRouter {
    fn name(&self) -> String {
        "canonical".into()
    }

    #[inline]
    fn next_hop(&self, cur: u32, dst: u32, _load: &dyn LinkLoad) -> Option<u32> {
        let c = self.bits[cur as usize];
        let t = self.bits[dst as usize];
        if c == t {
            return None;
        }
        // Leftmost position = highest bit (b₁ lives at bit d−1).
        let down = c & !t;
        let chosen = if down != 0 { down } else { t & !c };
        let p = self.d - (63 - chosen.leading_zeros() as usize);
        let hop = self.flip[cur as usize * self.d + (p - 1)];
        debug_assert_ne!(hop, INVALID, "canonical flips stay 1^k-free (Prop 3.1)");
        Some(hop)
    }

    fn precompute(&self, graph: &CsrGraph) -> Option<NextHopTable> {
        NextHopTable::build(graph, |cur, dst| self.next_hop(cur, dst, &NoLoad)).ok()
    }
}

/// Topologies whose node addresses realise graph distance as Hamming
/// distance — true for the hypercube and for `Q_d(1^k)`, which is an
/// isometric subgraph of `Q_d` (the 1993 line's "good codes" property).
pub trait HammingAddressed: Topology {
    /// The binary address of node `v`.
    fn address(&self, v: u32) -> u64;
}

impl HammingAddressed for Hypercube {
    fn address(&self, v: u32) -> u64 {
        v as u64
    }
}

impl HammingAddressed for FibonacciNet {
    fn address(&self, v: u32) -> u64 {
        self.label(v).bits()
    }
}

/// Minimal adaptive routing: among the neighbors strictly closer to the
/// destination (by address Hamming distance = graph distance), forward on
/// the least-loaded output link; ties break toward the smallest slot, so
/// the router stays deterministic under equal load.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveMinimal<'a, T: HammingAddressed + ?Sized> {
    topo: &'a T,
}

impl<'a, T: HammingAddressed + ?Sized> AdaptiveMinimal<'a, T> {
    /// Wraps a Hamming-addressed topology.
    pub fn new(topo: &'a T) -> AdaptiveMinimal<'a, T> {
        AdaptiveMinimal { topo }
    }
}

impl<T: HammingAddressed + ?Sized> Router for AdaptiveMinimal<'_, T> {
    fn name(&self) -> String {
        "adaptive".into()
    }

    fn next_hop(&self, cur: u32, dst: u32, load: &dyn LinkLoad) -> Option<u32> {
        let target = self.topo.address(dst);
        let cur_dist = (self.topo.address(cur) ^ target).count_ones();
        if cur_dist == 0 {
            return None;
        }
        let mut best: Option<(usize, u32)> = None;
        for (slot, &v) in self.topo.graph().neighbors(cur).iter().enumerate() {
            if (self.topo.address(v) ^ target).count_ones() < cur_dist {
                let l = load.load(slot);
                if best.is_none_or(|(bl, _)| l < bl) {
                    best = Some((l, v));
                }
            }
        }
        let (_, hop) = best.expect("isometric addressing guarantees a closer neighbor");
        Some(hop)
    }
}

/// Adapter running a topology's built-in distributed rule
/// ([`Topology::next_hop`]) as a [`Router`], ignoring link load. This is
/// what [`simulate`](crate::simulator::simulate) falls back to for
/// topologies without a dedicated split-out router (ring, mesh).
#[derive(Clone, Copy, Debug)]
pub struct NextHopRouter<'a, T: Topology + ?Sized> {
    topo: &'a T,
}

impl<'a, T: Topology + ?Sized> NextHopRouter<'a, T> {
    /// Wraps a topology's own routing rule.
    pub fn new(topo: &'a T) -> NextHopRouter<'a, T> {
        NextHopRouter { topo }
    }
}

impl<T: Topology + ?Sized> Router for NextHopRouter<'_, T> {
    fn name(&self) -> String {
        "builtin".into()
    }

    fn next_hop(&self, cur: u32, dst: u32, _load: &dyn LinkLoad) -> Option<u32> {
        self.topo.next_hop(cur, dst)
    }

    fn precompute(&self, graph: &CsrGraph) -> Option<NextHopTable> {
        // Built-in rules are deterministic and load-blind, so they
        // tabulate; `graph` must be the wrapped topology's own graph.
        debug_assert_eq!(graph.num_vertices(), self.topo.len());
        NextHopTable::build(graph, |cur, dst| self.topo.next_hop(cur, dst)).ok()
    }
}

/// Fault-masking adapter: wraps any [`Router`] and routes around a
/// [`FaultSet`] on the *healthy adjacency* — the degraded-network
/// rerouting the 1993 line's robustness claims are about.
///
/// Per hop the adapter first asks the wrapped policy; the inner hop is
/// taken verbatim whenever its link survives and it still makes progress
/// toward the destination *in the healthy subgraph*, so a zero-fault
/// masked router reproduces the wrapped router hop for hop. When the
/// inner hop is dead (or would walk into a region the faults cut off),
/// the adapter misroutes relative to the original network: among the
/// surviving neighbor links whose healthy-subgraph distance to the
/// destination strictly decreases it forwards on the least-loaded one
/// (ties toward the smallest slot). Healthy distances come from a
/// [`DistanceTable`] built **eagerly** at construction over the masked
/// adjacency, so the per-hop path is a plain slice index — no interior
/// mutability, no lazy-initialisation check. (The first version cached
/// per-destination BFS rows in a `RefCell`, which borrow-checked on every
/// hop and made the router `!Sync`; the eager table restores `Send +
/// Sync`, which the parallel batch runner relies on.) The trade: the
/// constructor pays one BFS per node and `4n²` bytes up front even when
/// the run routes toward few destinations — cheap against the fault
/// sweeps' Bernoulli/all-to-all workloads, which touch essentially every
/// destination and previously filled the lazy cache to the same size
/// anyway, but worth knowing for one-shot single-destination queries.
///
/// Every hop strictly decreases the healthy distance, so routes on the
/// degraded network remain livelock-free; packets whose destination is
/// unreachable must be dropped by the engine *before* routing
/// ([`simulate_faulted`](crate::simulator::simulate_faulted) does), and
/// [`FaultMaskingRouter::reachable`] is the query it uses.
///
/// The adapter never tabulates ([`Router::precompute`] stays `None`):
/// both the inner-policy consult and the detour rule read live link
/// loads, which a static table cannot capture.
pub struct FaultMaskingRouter<'a, R: Router + ?Sized> {
    graph: &'a CsrGraph,
    inner: &'a R,
    /// Per-node / per-directed-edge liveness.
    masks: FaultMasks,
    /// Pure per-directed-edge link failure state, independent of
    /// endpoint deaths, so recovering a node under churn does not
    /// resurrect a link that failed on its own. The composite mask is
    /// `node_dead(u) || node_dead(v) || link_down[e]`.
    link_down: Vec<bool>,
    /// Healthy-subgraph distances toward every destination (`INFINITY`
    /// marks unreachable or dead nodes), shared-form
    /// [`DistanceTable`], built once up front and patched incrementally
    /// under churn ([`apply_event`](FaultMaskingRouter::apply_event)).
    dist: DistanceTable,
}

impl<'a, R: Router + ?Sized> FaultMaskingRouter<'a, R> {
    /// Wraps `inner` so it routes on `graph` degraded by `faults`,
    /// building the masked distance table eagerly. Fault entries outside
    /// the graph are ignored.
    pub fn new(graph: &'a CsrGraph, inner: &'a R, faults: &FaultSet) -> FaultMaskingRouter<'a, R> {
        let masks = faults.masks(graph);
        let dist = DistanceTable::degraded(graph, &masks);
        FaultMaskingRouter::with_table(graph, inner, faults, masks, dist)
    }

    /// [`new`](FaultMaskingRouter::new) against a caller-provided
    /// degraded table (which must match `graph` + `faults`), so sweeps
    /// that revisit the same fault set skip the `O(n·m)` rebuild.
    pub(crate) fn with_table(
        graph: &'a CsrGraph,
        inner: &'a R,
        faults: &FaultSet,
        masks: FaultMasks,
        dist: DistanceTable,
    ) -> FaultMaskingRouter<'a, R> {
        let mut link_down = vec![false; graph.num_directed_edges()];
        for &(u, v) in faults.failed_links() {
            for (a, b) in [(u, v), (v, u)] {
                if let Some(slot) = graph.slot_of(a, b) {
                    link_down[graph.edge_range(a).start + slot] = true;
                }
            }
        }
        FaultMaskingRouter {
            graph,
            inner,
            masks,
            link_down,
            dist,
        }
    }

    /// `true` when node `v` survived the faults.
    pub fn node_alive(&self, v: u32) -> bool {
        self.masks.node_alive(v)
    }

    /// `true` when `src` can still reach `dst` through surviving nodes
    /// and links (both endpoints must be alive).
    pub fn reachable(&self, src: u32, dst: u32) -> bool {
        self.node_alive(src) && self.node_alive(dst) && self.dist.reachable(src, dst)
    }

    /// The healthy-subgraph distance table the adapter routes by.
    pub fn distances(&self) -> &DistanceTable {
        &self.dist
    }

    /// The current liveness masks (post any applied churn events).
    pub fn masks(&self) -> &FaultMasks {
        &self.masks
    }

    /// Applies one churn event: flips the liveness masks, then patches
    /// the distance table *incrementally*
    /// ([`DistanceTable::apply_event`]) instead of rebuilding it — the
    /// masked-BFS work is limited to the affected frontier, and the
    /// table's epoch tags record exactly which rows changed.
    pub fn apply_event(&mut self, event: &ChurnEvent) {
        match event.target {
            ChurnTarget::Node(x) => self.set_node(x, event.failed),
            ChurnTarget::Link(u, v) => self.set_link(u, v, event.failed),
        }
        self.dist.apply_event(self.graph, &self.masks, event);
    }

    /// Flips the pure link state of `u–v` (both directions) and
    /// refreshes the composite edge masks.
    fn set_link(&mut self, u: u32, v: u32, down: bool) {
        let g = self.graph;
        for (a, b) in [(u, v), (v, u)] {
            if let Some(slot) = g.slot_of(a, b) {
                let e = g.edge_range(a).start + slot;
                self.link_down[e] = down;
                self.refresh_edge(e, a, b);
            }
        }
    }

    /// Flips node `x`'s liveness and refreshes the composite masks of
    /// every incident directed edge, both directions.
    fn set_node(&mut self, x: u32, dead: bool) {
        let g = self.graph;
        self.masks.set_node(x, dead);
        let base = g.edge_range(x).start;
        for slot in 0..g.neighbors(x).len() {
            let y = g.neighbors(x)[slot];
            self.refresh_edge(base + slot, x, y);
            if let Some(back) = g.slot_of(y, x) {
                self.refresh_edge(g.edge_range(y).start + back, y, x);
            }
        }
    }

    fn refresh_edge(&mut self, e: usize, a: u32, b: u32) {
        let dead = self.link_down[e] || !self.masks.node_alive(a) || !self.masks.node_alive(b);
        self.masks.set_edge(e, dead);
    }
}

/// The display name of a [`FaultMaskingRouter`] wrapping a policy named
/// `inner` — shared with the experiment layer so a degraded run's
/// [`Report`](crate::report::Report) names the router that actually ran.
pub(crate) fn masked_router_name(inner: &str) -> String {
    format!("fault-masked({inner})")
}

impl<R: Router + ?Sized> Router for FaultMaskingRouter<'_, R> {
    fn name(&self) -> String {
        masked_router_name(&self.inner.name())
    }

    fn next_hop(&self, cur: u32, dst: u32, load: &dyn LinkLoad) -> Option<u32> {
        if cur == dst {
            return None;
        }
        let dist = self.dist.to_dst(dst);
        let dc = dist[cur as usize];
        debug_assert_ne!(
            dc,
            fibcube_graph::bfs::INFINITY,
            "engine must drop unreachable packets before routing"
        );
        let base = self.graph.edge_range(cur).start;
        // Honour the wrapped policy while its hop survives and still
        // approaches dst within the healthy subgraph.
        if let Some(hop) = self.inner.next_hop(cur, dst, load) {
            if let Some(slot) = self.graph.slot_of(cur, hop) {
                if self.masks.edge_alive(base + slot) && dist[hop as usize] < dc {
                    return Some(hop);
                }
            }
        }
        // Detour: least-loaded surviving link that makes progress.
        let mut best: Option<(usize, u32)> = None;
        for (slot, &v) in self.graph.neighbors(cur).iter().enumerate() {
            if self.masks.edge_alive(base + slot) && dist[v as usize] < dc {
                let l = load.load(slot);
                if best.is_none_or(|(bl, _)| l < bl) {
                    best = Some((l, v));
                }
            }
        }
        let (_, hop) = best.expect("reachable destinations always have a progressive hop");
        Some(hop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Ring;
    use fibcube_graph::bfs::bfs_distances;

    fn assert_progressive(topo: &dyn Topology, router: &dyn Router) {
        let g = topo.graph();
        for dst in 0..topo.len() as u32 {
            let dist = bfs_distances(g, dst);
            for src in 0..topo.len() as u32 {
                let mut cur = src;
                while let Some(hop) = router.next_hop(cur, dst, &NoLoad) {
                    assert!(
                        g.has_edge(cur, hop),
                        "{}: {cur}→{hop} not a link",
                        router.name()
                    );
                    assert_eq!(
                        dist[hop as usize] + 1,
                        dist[cur as usize],
                        "{}: hop {cur}→{hop} toward {dst} not progressive",
                        router.name()
                    );
                    cur = hop;
                }
                assert_eq!(cur, dst);
            }
        }
    }

    #[test]
    fn ecube_router_matches_hypercube_rule() {
        let q = Hypercube::new(5);
        assert_progressive(&q, &EcubeRouter);
        for cur in 0..32u32 {
            for dst in 0..32u32 {
                assert_eq!(
                    EcubeRouter.next_hop(cur, dst, &NoLoad),
                    q.next_hop(cur, dst)
                );
            }
        }
    }

    #[test]
    fn canonical_router_matches_seed_rule() {
        for (d, k) in [(7usize, 2usize), (6, 3), (5, 4)] {
            let net = FibonacciNet::new(d, k);
            let router = CanonicalRouter::for_net(&net);
            assert_progressive(&net, &router);
            for cur in 0..net.len() as u32 {
                for dst in 0..net.len() as u32 {
                    assert_eq!(
                        router.next_hop(cur, dst, &NoLoad),
                        net.next_hop(cur, dst),
                        "d={d} k={k} {cur}→{dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn for_net_fast_build_matches_label_build() {
        for (d, k) in [(0usize, 2usize), (1, 2), (8, 2), (6, 3)] {
            let net = FibonacciNet::new(d, k);
            let fast = CanonicalRouter::for_net(&net);
            let slow = CanonicalRouter::new(net.d(), net.labels());
            for cur in 0..net.len() as u32 {
                for dst in 0..net.len() as u32 {
                    assert_eq!(
                        fast.next_hop(cur, dst, &NoLoad),
                        slow.next_hop(cur, dst, &NoLoad),
                        "d={d} k={k} {cur}→{dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_minimal_is_progressive() {
        let q = Hypercube::new(4);
        assert_progressive(&q, &AdaptiveMinimal::new(&q));
        let net = FibonacciNet::classical(8);
        assert_progressive(&net, &AdaptiveMinimal::new(&net));
    }

    #[test]
    fn adaptive_minimal_avoids_loaded_links() {
        // At node 0000 of Q_4 heading to 0011, slots for nodes 0001 and
        // 0010 are both minimal; loading one must steer to the other.
        let q = Hypercube::new(4);
        let router = AdaptiveMinimal::new(&q);
        struct OneBusy(usize);
        impl LinkLoad for OneBusy {
            fn load(&self, slot: usize) -> usize {
                usize::from(slot == self.0)
            }
        }
        let slot_of = |v: u32| q.graph().slot_of(0, v).unwrap();
        assert_eq!(
            router.next_hop(0, 0b0011, &OneBusy(slot_of(0b0001))),
            Some(0b0010)
        );
        assert_eq!(
            router.next_hop(0, 0b0011, &OneBusy(slot_of(0b0010))),
            Some(0b0001)
        );
    }

    #[test]
    fn next_hop_router_wraps_any_topology() {
        let ring = Ring::new(9);
        assert_progressive(&ring, &NextHopRouter::new(&ring));
    }

    #[test]
    fn router_spec_round_trips_and_resolves() {
        for spec in [
            RouterSpec::Preferred,
            RouterSpec::Builtin,
            RouterSpec::Ecube,
            RouterSpec::Canonical,
            RouterSpec::Adaptive,
        ] {
            assert_eq!(spec.to_string().parse::<RouterSpec>().unwrap(), spec);
        }
        assert_eq!("ecube".parse::<RouterSpec>().unwrap(), RouterSpec::Ecube);
        assert_eq!("auto".parse::<RouterSpec>().unwrap(), RouterSpec::Preferred);
        assert!("dijkstra".parse::<RouterSpec>().is_err());

        let q = Hypercube::new(3);
        assert_eq!(RouterSpec::Ecube.resolve(&q).unwrap().name(), "e-cube");
        assert_eq!(RouterSpec::Preferred.resolve(&q).unwrap().name(), "e-cube");
        assert_eq!(RouterSpec::Adaptive.resolve(&q).unwrap().name(), "adaptive");
        let err = RouterSpec::Canonical
            .resolve(&q)
            .map(|r| r.name())
            .unwrap_err();
        assert!(err.to_string().contains("canonical"), "{err}");
        assert!(err.to_string().contains("Q_3"), "{err}");

        let net = FibonacciNet::classical(5);
        assert_eq!(
            RouterSpec::Canonical.resolve(&net).unwrap().name(),
            "canonical"
        );
        assert!(RouterSpec::Ecube.resolve(&net).is_err());

        let ring = Ring::new(5);
        assert_eq!(
            RouterSpec::Builtin.resolve(&ring).unwrap().name(),
            "builtin"
        );
        assert!(RouterSpec::Adaptive.resolve(&ring).is_err());
    }

    #[test]
    fn fault_mask_with_no_faults_is_the_inner_router_verbatim() {
        let q = Hypercube::new(4);
        let masked = FaultMaskingRouter::new(q.graph(), &EcubeRouter, &FaultSet::empty());
        for cur in 0..16u32 {
            for dst in 0..16u32 {
                assert_eq!(
                    masked.next_hop(cur, dst, &NoLoad),
                    EcubeRouter.next_hop(cur, dst, &NoLoad),
                    "{cur}→{dst}"
                );
            }
        }
        assert_eq!(masked.name(), "fault-masked(e-cube)");
    }

    #[test]
    fn fault_mask_detours_around_a_dead_node() {
        // e-cube 0→3 on Q_3 goes via node 1; kill it and the mask must
        // take the surviving shortest path via node 2.
        let q = Hypercube::new(3);
        let faults = FaultSet::new([1u32], []);
        let masked = FaultMaskingRouter::new(q.graph(), &EcubeRouter, &faults);
        assert_eq!(masked.next_hop(0, 3, &NoLoad), Some(2));
        assert_eq!(masked.next_hop(2, 3, &NoLoad), Some(3));
        assert!(!masked.node_alive(1));
        assert!(masked.reachable(0, 3));
        assert!(!masked.reachable(0, 1), "dead destination is unreachable");
    }

    #[test]
    fn fault_mask_detours_around_a_dead_link() {
        // Cut 0–1 on a 4-ring: 0→1 must go the long way round.
        let ring = Ring::new(4);
        let inner = NextHopRouter::new(&ring);
        let faults = FaultSet::new([], [(0u32, 1u32)]);
        let masked = FaultMaskingRouter::new(ring.graph(), &inner, &faults);
        assert_eq!(masked.next_hop(0, 1, &NoLoad), Some(3));
        assert_eq!(masked.next_hop(3, 1, &NoLoad), Some(2));
        assert_eq!(masked.next_hop(2, 1, &NoLoad), Some(1));
    }

    #[test]
    fn fault_mask_routes_are_shortest_on_the_healthy_subgraph() {
        // Every masked walk terminates in exactly healthy-BFS distance
        // hops — the progressivity that keeps degraded runs livelock-free.
        let net = FibonacciNet::classical(7);
        let inner = CanonicalRouter::for_net(&net);
        let faults = FaultSet::new([2u32, 9, 17], [(0u32, 1u32)]);
        let masked = FaultMaskingRouter::new(net.graph(), &inner, &faults);
        let (healthy, survivors) = faults.healthy_subgraph(net.graph());
        let mut old_of = survivors.clone();
        old_of.sort_unstable();
        assert_eq!(old_of, survivors, "survivor map is sorted");
        for (hi, &dst) in survivors.iter().enumerate() {
            let dist = bfs_distances(&healthy, hi as u32);
            for (hj, &src) in survivors.iter().enumerate() {
                if dist[hj] == fibcube_graph::bfs::INFINITY {
                    assert!(!masked.reachable(src, dst));
                    continue;
                }
                let mut cur = src;
                let mut hops = 0u32;
                while let Some(hop) = masked.next_hop(cur, dst, &NoLoad) {
                    assert!(net.graph().has_edge(cur, hop));
                    cur = hop;
                    hops += 1;
                    assert!(hops as usize <= net.len(), "runaway masked route");
                }
                assert_eq!(cur, dst);
                assert_eq!(hops, dist[hj], "masked route {src}→{dst} not shortest");
            }
        }
    }

    #[test]
    fn precomputed_tables_match_per_hop_routing() {
        // Every tabulable policy must tabulate to exactly its per-hop
        // choices — the invariant that lets the engine switch paths
        // without changing the event stream.
        let net = FibonacciNet::classical(8);
        let canonical = CanonicalRouter::for_net(&net);
        let q = Hypercube::new(5);
        let ring = Ring::new(11);
        let ring_router = NextHopRouter::new(&ring);
        for (topo, router) in [
            (&net as &dyn Topology, &canonical as &dyn Router),
            (&q, &EcubeRouter),
            (&ring, &ring_router),
        ] {
            let g = topo.graph();
            let table = router
                .precompute(g)
                .expect("deterministic policies tabulate");
            assert_eq!(table.nodes(), topo.len());
            for cur in 0..topo.len() as u32 {
                for dst in 0..topo.len() as u32 {
                    assert_eq!(
                        table.next_hop(g, cur, dst),
                        router.next_hop(cur, dst, &NoLoad),
                        "{} {cur}→{dst}",
                        router.name()
                    );
                    if let Some(e) = table.next_edge(cur, dst) {
                        assert!(g.edge_range(cur).contains(&e), "edge leaves cur");
                    }
                }
            }
        }
    }

    #[test]
    fn load_dependent_policies_refuse_to_tabulate() {
        let q = Hypercube::new(4);
        assert!(AdaptiveMinimal::new(&q).precompute(q.graph()).is_none());
        let masked = FaultMaskingRouter::new(q.graph(), &EcubeRouter, &FaultSet::new([1u32], []));
        assert!(masked.precompute(q.graph()).is_none());
        // The &R blanket impl forwards precompute.
        assert!(<&EcubeRouter as Router>::precompute(&&EcubeRouter, q.graph()).is_some());
    }

    #[test]
    fn masked_router_is_send_and_sync_for_the_batch_runner() {
        // Regression guard: the RefCell distance cache made this router
        // !Sync; the eager DistanceTable restores Send + Sync, which the
        // parallel batch runner (run_batch / sweep cells) relies on.
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let q = Hypercube::new(3);
        let faults = FaultSet::new([1u32], []);
        let masked = FaultMaskingRouter::new(q.graph(), &EcubeRouter, &faults);
        assert_send_sync(&masked);
        // And it still routes after the eager build.
        assert_eq!(masked.next_hop(0, 3, &NoLoad), Some(2));
        assert_eq!(masked.distances().distance(0, 3), 2);
    }

    #[test]
    fn churn_events_keep_masked_router_consistent() {
        // After every applied event the live router must equal one
        // rebuilt from scratch for the same net fault state — masks,
        // liveness and distances alike. Covers the node-recovery case
        // where an independently failed link must stay down.
        let q = Hypercube::new(4);
        let g = q.graph();
        let mut live = FaultMaskingRouter::new(g, &EcubeRouter, &FaultSet::empty());
        let ev = |target, failed| ChurnEvent {
            cycle: 0,
            target,
            failed,
        };
        let seq = [
            (
                ev(ChurnTarget::Link(0, 1), true),
                FaultSet::new([], [(0u32, 1u32)]),
            ),
            (
                ev(ChurnTarget::Node(3), true),
                FaultSet::new([3u32], [(0u32, 1u32)]),
            ),
            (
                ev(ChurnTarget::Node(3), false),
                FaultSet::new([], [(0u32, 1u32)]),
            ),
            (ev(ChurnTarget::Link(0, 1), false), FaultSet::empty()),
        ];
        for (event, set) in seq {
            live.apply_event(&event);
            let fresh = FaultMaskingRouter::new(g, &EcubeRouter, &set);
            for v in 0..16u32 {
                assert_eq!(live.node_alive(v), fresh.node_alive(v), "{event:?}");
                assert_eq!(
                    live.distances().to_dst(v),
                    fresh.distances().to_dst(v),
                    "{event:?} dst {v}"
                );
            }
            for e in 0..g.num_directed_edges() {
                assert_eq!(
                    live.masks().edge_alive(e),
                    fresh.masks().edge_alive(e),
                    "{event:?} edge {e}"
                );
            }
        }
    }

    #[test]
    fn oversized_tables_are_refused_not_allocated() {
        // 20 000 nodes → 1.6 GB dense table, over the 1 GiB budget: the
        // builder must return the typed error before touching the heap.
        let g = CsrGraph::empty(20_000);
        match NextHopTable::build(&g, |_, _| None) {
            Err(ExperimentError::TableTooLarge { nodes, bytes }) => {
                assert_eq!(nodes, 20_000);
                assert_eq!(bytes, 20_000u128 * 20_000 * 4);
            }
            other => panic!("expected TableTooLarge, got {other:?}"),
        }
        // And precompute degrades to per-hop routing instead of erroring.
        assert!(EcubeRouter.precompute(&g).is_none());
        assert!(check_table_budget(16_384).is_ok());
        assert!(check_table_budget(16_385).is_err());
    }

    #[test]
    fn router_names() {
        let q = Hypercube::new(3);
        assert_eq!(EcubeRouter.name(), "e-cube");
        assert_eq!(AdaptiveMinimal::new(&q).name(), "adaptive");
        assert_eq!(NextHopRouter::new(&q).name(), "builtin");
        assert_eq!(
            CanonicalRouter::for_net(&FibonacciNet::classical(4)).name(),
            "canonical"
        );
    }
}
