//! Collective communication as a *live, simulated* workload.
//!
//! The 1993 line treats one-to-all broadcasting on `Γ_d` as a headline
//! capability, but a static [`BroadcastSchedule`] only proves a round
//! count — it says nothing about how the collective behaves on the real
//! (possibly degraded) fabric. This module promotes collectives to
//! first-class experiment workloads:
//!
//! * [`CollectiveSpec`] — a declarative, parseable description
//!   (`broadcast(source=0,port=one)`, `multicast(source=0,count=8,port=all)`,
//!   `alltoallp`) that round-trips through `Display`/`FromStr` exactly
//!   like [`TrafficSpec`] and
//!   [`FaultSpec`](crate::fault::FaultSpec), attached to an experiment
//!   with [`Experiment::collective`](crate::experiment::Experiment::collective);
//! * [`CopyPlan`] — the spec compiled against a concrete (healthy or
//!   faulted) network: a `BroadcastSchedule`-derived **next-copy table**
//!   (per-node child/edge lists in round order, CSR layout) that the
//!   arena engine ([`simulate_collective`](crate::simulator::simulate_collective))
//!   executes by replicating packets at intermediate nodes — one copy per
//!   tree edge, chained through the struct-of-arrays
//!   [`PacketSlab`](crate::arena::PacketSlab) with no per-packet
//!   allocation;
//! * [`CollectiveOutcome`] — the completion-time/round statistics a
//!   collective run adds to its [`Report`](crate::report::Report).
//!
//! Under faults the plan is compiled on the healthy subgraph, so a
//! degraded collective delivers to *exactly* the survivor component of
//! the source: dead targets and targets the faults disconnect become
//! typed drops at cycle 0, and packet conservation extends to replicated
//! copies — `offered == delivered + dropped + in-flight` per copy.

use core::fmt;
use core::str::FromStr;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fibcube_graph::csr::CsrGraph;

use crate::broadcast::{partial_all_port, partial_one_port, BroadcastSchedule};
use crate::experiment::ExperimentError;
use crate::fault::FaultSet;
use crate::report::JsonValue;
use crate::traffic::{num, parse_kv_opt, split_call, Packet, TrafficSpec};

/// The port model of a tree collective: how many neighbors an informed
/// node may forward to per cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Port {
    /// Telephone model: one copy per node per cycle (text form `one`).
    /// The information-theoretic completion floor is `⌈log₂ n⌉` rounds.
    One,
    /// Shouting model: all children at once (text form `all`).
    /// Completion equals the source's eccentricity.
    All,
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Port::One => "one",
            Port::All => "all",
        })
    }
}

/// A declarative collective-communication workload, the collective half
/// of an [`Experiment`](crate::experiment::Experiment). See the
/// [module docs](self) for the execution model.
///
/// Canonical text forms (round-tripping through `Display`/`FromStr`;
/// `port=` may be omitted on parse and defaults to `one`):
///
/// | Variant | Text |
/// |---|---|
/// | `Broadcast` | `broadcast(source=0,port=one)` |
/// | `Multicast` | `multicast(source=0,count=8,port=all)` |
/// | `AllToAllPersonalized` | `alltoallp` |
#[derive(Clone, Debug, PartialEq)]
pub enum CollectiveSpec {
    /// One-to-all: `source` informs every other node over the broadcast
    /// tree of the (possibly degraded) network.
    Broadcast {
        /// The originating node.
        source: u32,
        /// Port model (`one` = telephone, `all` = shouting).
        port: Port,
    },
    /// One-to-many: `source` informs `count` seeded-random distinct
    /// destinations over the broadcast tree pruned to their ancestors
    /// (relay nodes still physically receive a copy).
    Multicast {
        /// The originating node.
        source: u32,
        /// Number of destinations (drawn from the experiment seed).
        count: usize,
        /// Port model (`one` = telephone, `all` = shouting).
        port: Port,
    },
    /// All-to-all personalized exchange: every ordered pair carries a
    /// *distinct* message, so nothing can be replicated — the collective
    /// runs as `n·(n−1)` routed unicasts and its completion time is the
    /// exchange makespan.
    AllToAllPersonalized,
}

impl CollectiveSpec {
    /// Checks the spec against a network of `n` nodes, returning a typed
    /// error instead of a later panic.
    pub fn validate(&self, n: usize) -> Result<(), ExperimentError> {
        let invalid = |reason: String| {
            Err(ExperimentError::InvalidCollective {
                spec: self.to_string(),
                reason,
            })
        };
        match *self {
            CollectiveSpec::Broadcast { source, .. } => {
                if source as usize >= n {
                    invalid(format!(
                        "source {source} does not exist (network has {n} nodes)"
                    ))
                } else {
                    Ok(())
                }
            }
            CollectiveSpec::Multicast { source, count, .. } => {
                if source as usize >= n {
                    invalid(format!(
                        "source {source} does not exist (network has {n} nodes)"
                    ))
                } else if count == 0 {
                    invalid("multicast needs at least one destination".to_string())
                } else if count > n.saturating_sub(1) {
                    invalid(format!(
                        "multicast to {count} destinations needs {} other nodes, \
                         the network has {}",
                        count,
                        n.saturating_sub(1)
                    ))
                } else {
                    Ok(())
                }
            }
            CollectiveSpec::AllToAllPersonalized => Ok(()),
        }
    }

    /// The intended recipients of the collective on a network of `n`
    /// nodes (multicast destinations draw from `seed`), and the port
    /// model — `None` for the unicast-only personalized exchange.
    fn tree_shape(&self, n: usize, seed: u64) -> Option<(u32, Vec<u32>, Port)> {
        match *self {
            CollectiveSpec::Broadcast { source, port } => {
                let targets = (0..n as u32).filter(|&v| v != source).collect();
                Some((source, targets, port))
            }
            CollectiveSpec::Multicast {
                source,
                count,
                port,
            } => {
                let mut others: Vec<u32> = (0..n as u32).filter(|&v| v != source).collect();
                others.shuffle(&mut StdRng::seed_from_u64(seed));
                others.truncate(count);
                others.sort_unstable();
                Some((source, others, port))
            }
            CollectiveSpec::AllToAllPersonalized => None,
        }
    }

    /// Compiles the spec against a concrete network degraded by `faults`:
    /// tree collectives become a [`CopyPlan`] over the survivor component
    /// of the source, the personalized exchange becomes its unicast
    /// packet set (which the faulted engine types and drops as usual).
    /// Deterministic in `(self, g, faults, seed)`.
    pub(crate) fn compile(
        &self,
        g: &CsrGraph,
        faults: &FaultSet,
        seed: u64,
    ) -> Result<CollectiveWorkload, ExperimentError> {
        self.validate(g.num_vertices())?;
        Ok(match self.tree_shape(g.num_vertices(), seed) {
            Some((source, targets, port)) => {
                CollectiveWorkload::Tree(CopyPlan::build(g, faults, source, &targets, port))
            }
            None => {
                CollectiveWorkload::Unicasts(TrafficSpec::AllToAll.generate(g.num_vertices(), 0))
            }
        })
    }

    /// `true` for the full one-to-all broadcast — the variant whose
    /// static schedule round count is an exact completion oracle.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, CollectiveSpec::Broadcast { .. })
    }
}

impl fmt::Display for CollectiveSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveSpec::Broadcast { source, port } => {
                write!(f, "broadcast(source={source},port={port})")
            }
            CollectiveSpec::Multicast {
                source,
                count,
                port,
            } => {
                write!(f, "multicast(source={source},count={count},port={port})")
            }
            CollectiveSpec::AllToAllPersonalized => write!(f, "alltoallp"),
        }
    }
}

fn parse_err(input: &str, reason: impl Into<String>) -> ExperimentError {
    ExperimentError::ParseSpec {
        what: "collective",
        input: input.to_string(),
        reason: reason.into(),
    }
}

fn parse_port(s: &str, value: Option<&str>) -> Result<Port, ExperimentError> {
    match value {
        None | Some("one") => Ok(Port::One),
        Some("all") => Ok(Port::All),
        Some(other) => Err(parse_err(
            s,
            format!("`port` must be `one` or `all`, got `{other}`"),
        )),
    }
}

impl FromStr for CollectiveSpec {
    type Err = ExperimentError;

    fn from_str(s: &str) -> Result<CollectiveSpec, ExperimentError> {
        let s = s.trim();
        let (name, body) = split_call(s).map_err(|e| parse_err(s, e))?;
        let body_or = |kind: &str| {
            body.ok_or_else(|| {
                parse_err(s, format!("`{kind}` needs arguments, e.g. `{kind}(...)`"))
            })
        };
        match name {
            "broadcast" => {
                let (req, opt) = parse_kv_opt(body_or("broadcast")?, &["source"], &["port"])
                    .map_err(|e| parse_err(s, e))?;
                Ok(CollectiveSpec::Broadcast {
                    source: num(req[0], "source").map_err(|e| parse_err(s, e))?,
                    port: parse_port(s, opt[0])?,
                })
            }
            "multicast" => {
                let (req, opt) =
                    parse_kv_opt(body_or("multicast")?, &["source", "count"], &["port"])
                        .map_err(|e| parse_err(s, e))?;
                Ok(CollectiveSpec::Multicast {
                    source: num(req[0], "source").map_err(|e| parse_err(s, e))?,
                    count: num(req[1], "count").map_err(|e| parse_err(s, e))?,
                    port: parse_port(s, opt[0])?,
                })
            }
            "alltoallp" => match body {
                None | Some("") => Ok(CollectiveSpec::AllToAllPersonalized),
                Some(extra) => Err(parse_err(
                    s,
                    format!("`alltoallp` takes no arguments: `{extra}`"),
                )),
            },
            other => Err(parse_err(
                s,
                format!("unknown collective `{other}` (expected broadcast, multicast, alltoallp)"),
            )),
        }
    }
}

/// A compiled collective workload: either a replication tree or the
/// unicast packet set of the personalized exchange.
pub(crate) enum CollectiveWorkload {
    /// Tree-forwarding plan for broadcast/multicast.
    Tree(CopyPlan),
    /// The `n·(n−1)` routed unicasts of `alltoallp`.
    Unicasts(Vec<Packet>),
}

/// The *next-copy table* of a tree collective: a
/// [`BroadcastSchedule`]-derived forwarding plan the arena engine
/// executes by replication. Per node it stores the children to inform —
/// in schedule-round order — together with the directed CSR edge that
/// reaches each child, so a spawn is two array loads and a ring-buffer
/// push. Intended recipients that a fault set kills or disconnects are
/// recorded as typed drops the engine reports at cycle 0.
///
/// Built from a static schedule via [`CopyPlan::from_schedule`] (healthy
/// networks), or compiled from a [`CollectiveSpec`] against a fault set
/// by the experiment layer.
#[derive(Clone, Debug)]
pub struct CopyPlan {
    one_port: bool,
    source: u32,
    /// CSR offsets: node `u`'s children live at
    /// `children[child_offsets[u] .. child_offsets[u + 1]]`.
    child_offsets: Vec<u32>,
    /// Child node per plan edge, grouped by parent, round-ordered.
    children: Vec<u32>,
    /// Directed CSR edge (parent → child) per plan edge.
    child_edges: Vec<u32>,
    /// `is_target[v]` — `v` is an intended recipient (not just a relay).
    is_target: Vec<bool>,
    /// Intended recipients whose node (or the source) died.
    dropped_dead: Vec<u32>,
    /// Surviving intended recipients the faults disconnect.
    dropped_unreachable: Vec<u32>,
    /// Rounds of the static schedule restricted to the kept tree.
    schedule_rounds: u32,
}

impl CopyPlan {
    /// Derives the next-copy table from a static [`BroadcastSchedule`] on
    /// the healthy network `g` (the graph the schedule was computed on).
    /// Every node is an intended recipient; `one_port` selects the
    /// replication discipline the engine applies.
    pub fn from_schedule(g: &CsrGraph, schedule: &BroadcastSchedule, one_port: bool) -> CopyPlan {
        let n = g.num_vertices();
        let mut calls = schedule.calls.clone();
        calls.sort_by_key(|&(_, v)| schedule.round[v as usize]);
        let mut is_target = vec![true; n];
        is_target[schedule.source as usize] = false;
        CopyPlan::assemble(
            g,
            one_port,
            schedule.source,
            &calls,
            is_target,
            Vec::new(),
            Vec::new(),
            schedule.rounds,
        )
    }

    /// Compiles a tree collective against `g` degraded by `faults`:
    /// schedules on the healthy subgraph, prunes the tree to the targets'
    /// ancestors, and types every unreachable target as a drop.
    pub(crate) fn build(
        g: &CsrGraph,
        faults: &FaultSet,
        source: u32,
        targets: &[u32],
        port: Port,
    ) -> CopyPlan {
        let n = g.num_vertices();
        let one_port = port == Port::One;
        let mut is_target = vec![false; n];
        for &t in targets {
            is_target[t as usize] = true;
        }
        if !faults.node_alive(source) {
            // A dead source reaches nothing: every intended recipient
            // drops with a dead endpoint, exactly like a unicast whose
            // source failed.
            return CopyPlan::assemble(
                g,
                one_port,
                source,
                &[],
                is_target,
                targets.to_vec(),
                Vec::new(),
                0,
            );
        }
        let (healthy, survivors) = faults.healthy_subgraph(g);
        let new_of = |old: u32| survivors.binary_search(&old).ok();
        let src_new = new_of(source).expect("alive nodes appear in the survivor map") as u32;
        let partial = if one_port {
            partial_one_port(&healthy, src_new)
        } else {
            partial_all_port(&healthy, src_new)
        };
        // Type the drops: dead target vs surviving-but-disconnected.
        let mut dropped_dead = Vec::new();
        let mut dropped_unreachable = Vec::new();
        for &t in targets {
            match new_of(t) {
                None => dropped_dead.push(t),
                Some(i) if partial.round[i] == u32::MAX => dropped_unreachable.push(t),
                Some(_) => {}
            }
        }
        // Prune to the targets and their ancestors (relays), using the
        // parent pointers of the schedule tree.
        let hn = healthy.num_vertices();
        let mut parent = vec![u32::MAX; hn];
        for &(u, v) in &partial.calls {
            parent[v as usize] = u;
        }
        let mut keep = vec![false; hn];
        for &t in targets {
            if let Some(i) = new_of(t) {
                if partial.round[i] != u32::MAX {
                    let mut cur = i as u32;
                    while cur != src_new && !keep[cur as usize] {
                        keep[cur as usize] = true;
                        cur = parent[cur as usize];
                    }
                }
            }
        }
        let mut rounds = 0u32;
        let calls: Vec<(u32, u32)> = partial
            .calls
            .iter()
            .filter(|&&(_, v)| keep[v as usize])
            .map(|&(u, v)| {
                rounds = rounds.max(partial.round[v as usize]);
                (survivors[u as usize], survivors[v as usize])
            })
            .collect();
        CopyPlan::assemble(
            g,
            one_port,
            source,
            &calls,
            is_target,
            dropped_dead,
            dropped_unreachable,
            rounds,
        )
    }

    /// Packs round-ordered `(parent, child)` calls (original node ids)
    /// into the CSR next-copy table, resolving each call to its directed
    /// edge once so the engine never searches.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        g: &CsrGraph,
        one_port: bool,
        source: u32,
        calls: &[(u32, u32)],
        is_target: Vec<bool>,
        dropped_dead: Vec<u32>,
        dropped_unreachable: Vec<u32>,
        schedule_rounds: u32,
    ) -> CopyPlan {
        let n = g.num_vertices();
        let mut counts = vec![0u32; n + 1];
        for &(u, _) in calls {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let child_offsets = counts.clone();
        let mut cursor = counts;
        let mut children = vec![0u32; calls.len()];
        let mut child_edges = vec![0u32; calls.len()];
        for &(u, v) in calls {
            let at = cursor[u as usize] as usize;
            cursor[u as usize] += 1;
            children[at] = v;
            let slot = g
                .slot_of(u, v)
                .expect("schedule calls are links of the network");
            child_edges[at] = (g.edge_range(u).start + slot) as u32;
        }
        CopyPlan {
            one_port,
            source,
            child_offsets,
            children,
            child_edges,
            is_target,
            dropped_dead,
            dropped_unreachable,
            schedule_rounds,
        }
    }

    /// `true` when the plan replicates one copy per node per cycle
    /// (telephone model); `false` for all-port (shouting).
    pub fn one_port(&self) -> bool {
        self.one_port
    }

    /// The collective's source node.
    pub fn source(&self) -> u32 {
        self.source
    }

    /// Copies the plan will spawn — one per kept tree edge.
    pub fn total_copies(&self) -> usize {
        self.children.len()
    }

    /// Intended recipients, reachable or not.
    pub fn targets(&self) -> usize {
        self.is_target.iter().filter(|&&t| t).count()
    }

    /// Copies the engine must account for: spawned plus dropped —
    /// the `offered` figure of the run's
    /// [`SimStats`](crate::simulator::SimStats).
    pub fn offered(&self) -> usize {
        self.total_copies() + self.dropped_dead.len() + self.dropped_unreachable.len()
    }

    /// Rounds of the static schedule restricted to the kept tree — the
    /// completion oracle for an uncontended run (exact for broadcast).
    pub fn schedule_rounds(&self) -> u32 {
        self.schedule_rounds
    }

    /// The plan-edge range of node `u`'s children.
    #[inline]
    pub(crate) fn children_range(&self, u: u32) -> core::ops::Range<usize> {
        self.child_offsets[u as usize] as usize..self.child_offsets[u as usize + 1] as usize
    }

    /// The child node of plan edge `idx`.
    #[inline]
    pub(crate) fn child(&self, idx: usize) -> u32 {
        self.children[idx]
    }

    /// The directed CSR edge of plan edge `idx`.
    #[inline]
    pub(crate) fn edge(&self, idx: usize) -> usize {
        self.child_edges[idx] as usize
    }

    /// `true` when `v` is an intended recipient (not just a relay).
    #[inline]
    pub(crate) fn is_target(&self, v: u32) -> bool {
        self.is_target[v as usize]
    }

    /// Intended recipients dropped at cycle 0 with a dead endpoint.
    pub(crate) fn dropped_dead(&self) -> &[u32] {
        &self.dropped_dead
    }

    /// Surviving intended recipients the faults disconnect.
    pub(crate) fn dropped_unreachable(&self) -> &[u32] {
        &self.dropped_unreachable
    }
}

/// The completion-time/round statistics of one collective run, reported
/// alongside the engine's [`SimStats`](crate::simulator::SimStats) in the
/// experiment [`Report`](crate::report::Report).
#[derive(Clone, Debug, PartialEq)]
pub struct CollectiveOutcome {
    /// The [`CollectiveSpec`] that ran, in canonical parseable form.
    pub spec: String,
    /// Intended recipients (for `alltoallp`: ordered pairs).
    pub targets: usize,
    /// Intended recipients actually reached.
    pub reached: usize,
    /// Static schedule rounds — the completion oracle. `Some` only for
    /// full broadcasts, where the simulated completion must match it
    /// exactly on an uncontended network.
    pub schedule_rounds: Option<u32>,
    /// Cycle at which the last copy was delivered (the run's makespan).
    pub completion_cycles: u64,
}

impl CollectiveOutcome {
    /// `reached / targets`, or `None` for a collective with no targets.
    pub fn reached_fraction(&self) -> Option<f64> {
        (self.targets > 0).then(|| self.reached as f64 / self.targets as f64)
    }

    /// The outcome as a JSON object for the report's `collective` field.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj([
            ("spec", JsonValue::Str(self.spec.clone())),
            ("targets", JsonValue::Int(self.targets as u64)),
            ("reached", JsonValue::Int(self.reached as u64)),
            (
                "schedule_rounds",
                match self.schedule_rounds {
                    Some(r) => JsonValue::Int(r as u64),
                    None => JsonValue::Null,
                },
            ),
            ("completion_cycles", JsonValue::Int(self.completion_cycles)),
            (
                "reached_fraction",
                match self.reached_fraction() {
                    Some(f) => JsonValue::Num(f),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::broadcast_one_port;
    use crate::topology::{FibonacciNet, Hypercube, Topology};

    #[test]
    fn spec_round_trips_through_text() {
        let specs = [
            CollectiveSpec::Broadcast {
                source: 0,
                port: Port::One,
            },
            CollectiveSpec::Broadcast {
                source: 7,
                port: Port::All,
            },
            CollectiveSpec::Multicast {
                source: 3,
                count: 8,
                port: Port::One,
            },
            CollectiveSpec::AllToAllPersonalized,
        ];
        for spec in specs {
            let text = spec.to_string();
            let parsed: CollectiveSpec = text.parse().unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(parsed, spec, "round-trip of `{text}`");
        }
        // The port key may be omitted and defaults to one-port.
        assert_eq!(
            "broadcast(source=2)".parse::<CollectiveSpec>().unwrap(),
            CollectiveSpec::Broadcast {
                source: 2,
                port: Port::One
            }
        );
        assert_eq!(
            " multicast( count=4 , source=1 ) "
                .parse::<CollectiveSpec>()
                .unwrap(),
            CollectiveSpec::Multicast {
                source: 1,
                count: 4,
                port: Port::One
            }
        );
    }

    #[test]
    fn spec_rejects_malformed_text() {
        for bad in [
            "nonsense",
            "broadcast",
            "broadcast()",
            "broadcast(source=zero)",
            "broadcast(source=0,port=two)",
            "broadcast(source=0,source=1)",
            "multicast(source=0)",
            "alltoallp(3)",
            "",
        ] {
            let err = bad.parse::<CollectiveSpec>().expect_err(bad);
            assert!(err.to_string().contains("collective"), "{bad}: {err}");
        }
    }

    #[test]
    fn validate_catches_degenerate_configs() {
        let b = |source| CollectiveSpec::Broadcast {
            source,
            port: Port::One,
        };
        assert!(b(0).validate(8).is_ok());
        assert!(b(8).validate(8).is_err());
        let m = |source, count| CollectiveSpec::Multicast {
            source,
            count,
            port: Port::All,
        };
        assert!(m(0, 7).validate(8).is_ok());
        assert!(m(0, 8).validate(8).is_err());
        assert!(m(0, 0).validate(8).is_err());
        assert!(m(9, 1).validate(8).is_err());
        assert!(CollectiveSpec::AllToAllPersonalized.validate(1).is_ok());
    }

    #[test]
    fn from_schedule_mirrors_the_static_tree() {
        let q = Hypercube::new(4);
        let schedule = broadcast_one_port(&q, 0).unwrap();
        let plan = CopyPlan::from_schedule(q.graph(), &schedule, true);
        assert!(plan.one_port());
        assert_eq!(plan.source(), 0);
        assert_eq!(plan.total_copies(), q.len() - 1, "one copy per tree edge");
        assert_eq!(plan.targets(), q.len() - 1);
        assert_eq!(plan.offered(), q.len() - 1);
        assert_eq!(plan.schedule_rounds(), schedule.rounds);
        // Children are round-ordered per node and reached over real links.
        for u in 0..q.len() as u32 {
            let range = plan.children_range(u);
            let mut last = 0;
            for idx in range {
                let v = plan.child(idx);
                assert!(q.graph().has_edge(u, v));
                assert_eq!(q.graph().target(plan.edge(idx)), v);
                let r = schedule.round[v as usize];
                assert!(r >= last, "children of {u} must be round-ordered");
                last = r;
            }
        }
    }

    #[test]
    fn multicast_plans_prune_relays_but_keep_ancestors() {
        let net = FibonacciNet::classical(8);
        let spec = CollectiveSpec::Multicast {
            source: 0,
            count: 5,
            port: Port::One,
        };
        let CollectiveWorkload::Tree(plan) = spec
            .compile(net.graph(), &FaultSet::empty(), 42)
            .expect("valid multicast")
        else {
            panic!("multicast compiles to a tree")
        };
        assert_eq!(plan.targets(), 5);
        // The pruned tree spans the targets: at least the targets appear,
        // every kept leaf is a target, and nothing drops on the healthy
        // network.
        assert!(plan.total_copies() >= 5);
        assert!(plan.total_copies() < net.len() - 1, "relays were pruned");
        assert_eq!(plan.offered(), plan.total_copies());
        assert!(plan.dropped_dead().is_empty());
        assert!(plan.dropped_unreachable().is_empty());
        // Deterministic in the seed, different across seeds.
        let CollectiveWorkload::Tree(again) =
            spec.compile(net.graph(), &FaultSet::empty(), 42).unwrap()
        else {
            unreachable!()
        };
        assert_eq!(plan.children, again.children);
        let CollectiveWorkload::Tree(other) =
            spec.compile(net.graph(), &FaultSet::empty(), 43).unwrap()
        else {
            unreachable!()
        };
        assert_ne!(plan.is_target, other.is_target, "seeded target draw");
    }

    #[test]
    fn faulted_plans_type_every_unreached_target() {
        // Isolate a node of Γ_8 (one not adjacent to the source) by
        // killing its neighbors: the broadcast plan must cover exactly
        // the surviving component of the source and type the rest.
        let net = FibonacciNet::classical(8);
        let isolated = (1..net.len() as u32)
            .find(|&v| !net.graph().neighbors(v).contains(&0))
            .expect("Γ_8 has nodes not adjacent to 0");
        let cut: Vec<u32> = net.graph().neighbors(isolated).to_vec();
        let faults = FaultSet::new(cut.clone(), []);
        let spec = CollectiveSpec::Broadcast {
            source: 0,
            port: Port::All,
        };
        let CollectiveWorkload::Tree(plan) = spec.compile(net.graph(), &faults, 0).unwrap() else {
            panic!("broadcast compiles to a tree")
        };
        assert_eq!(plan.dropped_dead().len(), cut.len());
        assert!(
            plan.dropped_unreachable().contains(&isolated),
            "isolated survivor must be typed unreachable"
        );
        assert_eq!(
            plan.total_copies() + plan.dropped_unreachable().len(),
            net.len() - 1 - cut.len(),
            "every surviving recipient is either covered or typed"
        );
        assert_eq!(plan.offered(), net.len() - 1);

        // A dead source drops everything as dead-endpoint.
        let dead_src = FaultSet::new([0u32], []);
        let CollectiveWorkload::Tree(plan) = spec.compile(net.graph(), &dead_src, 0).unwrap()
        else {
            unreachable!()
        };
        assert_eq!(plan.total_copies(), 0);
        assert_eq!(plan.dropped_dead().len(), net.len() - 1);
    }

    #[test]
    fn alltoallp_compiles_to_the_unicast_exchange() {
        let q = Hypercube::new(3);
        let CollectiveWorkload::Unicasts(pkts) = CollectiveSpec::AllToAllPersonalized
            .compile(q.graph(), &FaultSet::empty(), 9)
            .unwrap()
        else {
            panic!("alltoallp is unicasts")
        };
        assert_eq!(pkts.len(), 8 * 7);
    }

    #[test]
    fn outcome_serialises_with_null_oracle_when_absent() {
        let done = CollectiveOutcome {
            spec: "broadcast(source=0,port=one)".into(),
            targets: 10,
            reached: 8,
            schedule_rounds: Some(5),
            completion_cycles: 5,
        };
        assert_eq!(done.reached_fraction(), Some(0.8));
        let json = done.to_json_value().to_string();
        assert!(json.contains("\"schedule_rounds\": 5"), "{json}");
        assert!(json.contains("\"reached_fraction\": 0.8"), "{json}");
        let open = CollectiveOutcome {
            spec: "alltoallp".into(),
            targets: 0,
            reached: 0,
            schedule_rounds: None,
            completion_cycles: 0,
        };
        assert_eq!(open.reached_fraction(), None);
        let json = open.to_json_value().to_string();
        assert!(json.contains("\"schedule_rounds\": null"), "{json}");
        assert!(json.contains("\"reached_fraction\": null"), "{json}");
    }
}
