//! Synchronous store-and-forward network simulator.
//!
//! Model: time advances in cycles. Every node has one FIFO output queue per
//! neighbor (virtual-channel-free store-and-forward); each directed link
//! moves at most one packet per cycle. Arriving packets are re-enqueued
//! toward their next hop (computed by a [`Router`]) or retired with their
//! latency recorded. The model is deliberately simple — the experiments
//! compare *topologies under identical rules*, which is the shape of the
//! 1993-era evaluations.
//!
//! ## Engine
//!
//! [`simulate_observed`] is an **active-set** engine: per-link FIFOs live
//! in one flat vector indexed by the graph's directed-edge index
//! (`offsets[u] + slot`), the `(node, neighbor) → slot` mapping comes from
//! a precomputed [`SlotTable`], and each cycle touches only the worklist
//! of nodes that actually hold packets — so an idle or lightly loaded
//! cycle costs `O(active · degree)`, not `O(n · degree)`. Empty stretches
//! between injections are skipped entirely. The function is generic over
//! the topology, the router, *and* the attached
//! [`SimObserver`], so concrete callers
//! monomorphize — [`simulate_with`] (no observer) compiles to the same
//! hot loop as before observers existed. `&dyn Topology` still works
//! (the bench bins use it) because the bound is `?Sized`.
//!
//! The seed's original engine — full node scan every cycle, binary search
//! per hop — is preserved as [`simulate_reference`]: it is the behavioural
//! oracle the property tests compare against and the baseline the sweep
//! binary measures speedups over.

use std::collections::VecDeque;

use fibcube_graph::csr::SlotTable;

use crate::fault::FaultSet;
use crate::observer::{NoopObserver, SimObserver};
use crate::router::{FaultMaskingRouter, LinkLoad, Router};
use crate::topology::Topology;
use crate::traffic::Packet;

/// Why a packet was dropped at injection instead of routed — the typed
/// accounting behind [`SimStats::dropped_dead_endpoint`] /
/// [`SimStats::dropped_unreachable`] and the
/// [`on_drop`](SimObserver::on_drop) observer hook. Drops only happen on
/// degraded networks ([`simulate_faulted`]); the healthy engine never
/// drops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The packet's source or destination node failed.
    DeadEndpoint,
    /// Both endpoints survive, but the faults disconnect them.
    Unreachable,
}

/// Aggregate results of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimStats {
    /// Packets handed to the simulator.
    pub offered: usize,
    /// Packets delivered before the cycle cap.
    pub delivered: usize,
    /// Packets dropped at injection because their source or destination
    /// node failed (degraded runs only).
    pub dropped_dead_endpoint: usize,
    /// Packets dropped at injection because the faults disconnect their
    /// (surviving) endpoints (degraded runs only).
    pub dropped_unreachable: usize,
    /// Cycle at which the last packet was delivered (0 when none).
    pub makespan: u64,
    /// Mean end-to-end latency (inject → arrival) of delivered packets.
    pub mean_latency: f64,
    /// Latency histogram: `hist[l]` = packets delivered with latency `l`.
    pub latency_histogram: Vec<u64>,
    /// 99th-percentile latency.
    pub p99_latency: u64,
    /// Total packet-hops transmitted (link utilisation numerator).
    pub total_hops: u64,
    /// Delivered packets per cycle (throughput).
    pub throughput: f64,
}

impl SimStats {
    /// Total typed drops. Packet conservation reads
    /// `offered == delivered + dropped() + still-in-flight`, where the
    /// in-flight remainder is nonzero only when the cycle cap truncated
    /// the run.
    pub fn dropped(&self) -> usize {
        self.dropped_dead_endpoint + self.dropped_unreachable
    }
}

#[derive(Clone, Debug)]
struct InFlight {
    dst: u32,
    inject_time: u64,
}

/// Occupancy view of one node's output links, handed to adaptive routers.
struct NodeLoad<'a> {
    queues: &'a [VecDeque<InFlight>],
    base: usize,
}

impl LinkLoad for NodeLoad<'_> {
    fn load(&self, slot: usize) -> usize {
        self.queues[self.base + slot].len()
    }
}

/// Accumulates delivery statistics shared by both engines.
#[derive(Default)]
struct StatsAcc {
    delivered: usize,
    dropped_dead_endpoint: usize,
    dropped_unreachable: usize,
    total_latency: u64,
    hist: Vec<u64>,
    total_hops: u64,
    makespan: u64,
}

impl StatsAcc {
    fn deliver(&mut self, now: u64, inject_time: u64) {
        self.delivered += 1;
        let lat = now - inject_time;
        self.total_latency += lat;
        bump(&mut self.hist, lat);
        self.makespan = self.makespan.max(now);
    }

    /// A self-addressed packet: delivered at latency 0 without touching
    /// the makespan (it never occupied a link — seed semantics).
    fn deliver_instant(&mut self) {
        self.delivered += 1;
        bump(&mut self.hist, 0);
    }

    fn finish(self, offered: usize) -> SimStats {
        let mean_latency = if self.delivered > 0 {
            self.total_latency as f64 / self.delivered as f64
        } else {
            0.0
        };
        let p99 = percentile(&self.hist, 0.99);
        let throughput = if self.makespan > 0 {
            self.delivered as f64 / self.makespan as f64
        } else {
            self.delivered as f64
        };
        SimStats {
            offered,
            delivered: self.delivered,
            dropped_dead_endpoint: self.dropped_dead_endpoint,
            dropped_unreachable: self.dropped_unreachable,
            makespan: self.makespan,
            mean_latency,
            latency_histogram: self.hist,
            p99_latency: p99,
            total_hops: self.total_hops,
            throughput,
        }
    }
}

/// Runs the store-and-forward simulation with the topology's preferred
/// router (e-cube on hypercubes, precomputed canonical-path on Fibonacci
/// networks, the built-in rule elsewhere).
///
/// `max_cycles` caps the run so that pathological configurations
/// terminate; undelivered packets are reported via `offered − delivered`.
pub fn simulate<T: Topology + ?Sized>(
    topology: &T,
    packets: &[Packet],
    max_cycles: u64,
) -> SimStats {
    simulate_with(topology, &*topology.router(), packets, max_cycles)
}

/// Routes `pkt` at `node` and enqueues it on the chosen output link —
/// the one mutation path shared by the injection and arrival phases.
fn route_and_enqueue<R: Router + ?Sized>(
    g: &fibcube_graph::csr::CsrGraph,
    slots: &SlotTable,
    router: &R,
    queues: &mut [VecDeque<InFlight>],
    occupancy: &mut [u32],
    node: u32,
    pkt: InFlight,
) {
    let base = g.edge_range(node).start;
    let hop = {
        let load = NodeLoad { queues, base };
        router
            .next_hop(node, pkt.dst, &load)
            .expect("routing a packet not yet at dst")
    };
    let slot = slots
        .slot(node, hop)
        .expect("next_hop must return a neighbor");
    queues[base + slot as usize].push_back(pkt);
    occupancy[node as usize] += 1;
}

/// Runs the active-set store-and-forward simulation under an explicit
/// routing policy, with no observer attached. Equivalent to
/// [`simulate_observed`] with a [`NoopObserver`] — which monomorphizes
/// to the identical hot loop.
pub fn simulate_with<T, R>(
    topology: &T,
    router: &R,
    packets: &[Packet],
    max_cycles: u64,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
{
    simulate_observed(topology, router, packets, max_cycles, &mut NoopObserver)
}

/// Runs the active-set store-and-forward simulation under an explicit
/// routing policy, reporting every event to `observer` (see
/// [`SimObserver`] for the event contract). Generic over all three
/// parameters, so concrete call sites monomorphize the hot loop and a
/// no-op observer costs nothing; `?Sized` keeps `&dyn` topology/router
/// callers working.
pub fn simulate_observed<T, R, O>(
    topology: &T,
    router: &R,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    engine(topology, router, packets, max_cycles, observer, &AdmitAll)
}

/// Runs the active-set engine on the network degraded by `faults`: the
/// given `router` is wrapped in a [`FaultMaskingRouter`] so live packets
/// detour around dead nodes and links, while packets that *cannot* be
/// routed are counted as typed drops at injection ([`DropReason`]) —
/// dead source or destination, or surviving endpoints the faults
/// disconnect. Nothing is silently stranded:
/// `offered == delivered + dropped + still-in-flight` always holds.
///
/// An empty `faults` set delegates to [`simulate_observed`] — the
/// zero-fault run is packet-for-packet identical to the healthy engine.
pub fn simulate_faulted<T, R, O>(
    topology: &T,
    router: &R,
    faults: &FaultSet,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    if faults.is_empty() {
        return simulate_observed(topology, router, packets, max_cycles, observer);
    }
    let masked = FaultMaskingRouter::new(topology.graph(), router, faults);
    let admission = FaultAdmission { masked: &masked };
    engine(topology, &masked, packets, max_cycles, observer, &admission)
}

/// Injection-time admission policy: decides per packet whether the
/// engine routes it or drops it with a typed reason. The healthy engine
/// uses the zero-cost [`AdmitAll`]; the degraded engine consults the
/// fault masks.
trait Admission {
    /// `Some(reason)` to drop the packet at injection, `None` to route.
    fn verdict(&self, src: u32, dst: u32) -> Option<DropReason>;
}

/// Admits everything — monomorphizes the drop branch away entirely.
struct AdmitAll;

impl Admission for AdmitAll {
    #[inline]
    fn verdict(&self, _src: u32, _dst: u32) -> Option<DropReason> {
        None
    }
}

/// Admission against a [`FaultMaskingRouter`]'s masks and healthy-BFS
/// reachability.
struct FaultAdmission<'a, 'b, R: Router + ?Sized> {
    masked: &'a FaultMaskingRouter<'b, R>,
}

impl<R: Router + ?Sized> Admission for FaultAdmission<'_, '_, R> {
    fn verdict(&self, src: u32, dst: u32) -> Option<DropReason> {
        if !self.masked.node_alive(src) || !self.masked.node_alive(dst) {
            Some(DropReason::DeadEndpoint)
        } else if src != dst && !self.masked.reachable(src, dst) {
            Some(DropReason::Unreachable)
        } else {
            None
        }
    }
}

/// The shared active-set engine body behind [`simulate_observed`] and
/// [`simulate_faulted`].
fn engine<T, R, O, A>(
    topology: &T,
    router: &R,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
    admission: &A,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
    A: Admission,
{
    let n = topology.len();
    let g = topology.graph();
    let slots = SlotTable::new(g);

    // Flat per-link FIFOs, indexed by directed-edge index.
    let mut queues: Vec<VecDeque<InFlight>> = vec![VecDeque::new(); g.num_directed_edges()];
    // Per-node count of queued packets, and the active-node worklist.
    let mut occupancy = vec![0u32; n];
    let mut on_list = vec![false; n];
    let mut active: Vec<u32> = Vec::new();
    let mut next_active: Vec<u32> = Vec::new();
    let mut arrivals: Vec<(u32, InFlight)> = Vec::new();

    // Injection list sorted by time.
    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let mut next_inject = 0usize;

    let mut acc = StatsAcc::default();
    let mut in_flight = 0usize;

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        // Skip straight to the next injection when the network is empty.
        if in_flight == 0 {
            match inj.get(next_inject) {
                None => break,
                Some(p) if p.inject_time > cycle => {
                    if p.inject_time >= max_cycles {
                        break;
                    }
                    cycle = p.inject_time;
                }
                Some(_) => {}
            }
        }

        // Inject everything due this cycle.
        while next_inject < inj.len() && inj[next_inject].inject_time <= cycle {
            let p = inj[next_inject];
            next_inject += 1;
            observer.on_inject(cycle, p.src, p.dst);
            if let Some(reason) = admission.verdict(p.src, p.dst) {
                match reason {
                    DropReason::DeadEndpoint => acc.dropped_dead_endpoint += 1,
                    DropReason::Unreachable => acc.dropped_unreachable += 1,
                }
                observer.on_drop(cycle, p.src, p.dst, reason);
                continue;
            }
            if p.src == p.dst {
                // Degenerate: counts as instantly delivered.
                acc.deliver_instant();
                observer.on_deliver(cycle, p.dst, 0);
                continue;
            }
            route_and_enqueue(
                g,
                &slots,
                router,
                &mut queues,
                &mut occupancy,
                p.src,
                InFlight {
                    dst: p.dst,
                    inject_time: p.inject_time,
                },
            );
            in_flight += 1;
            if !on_list[p.src as usize] {
                on_list[p.src as usize] = true;
                active.push(p.src);
            }
        }

        // Each directed link of an active node forwards one packet.
        // Ascending node order makes same-cycle FIFO tie-breaking match
        // the reference engine's full scan exactly.
        active.sort_unstable();
        for &u in &active {
            on_list[u as usize] = false;
            for e in g.edge_range(u) {
                if let Some(pkt) = queues[e].pop_front() {
                    let v = g.target(e);
                    observer.on_hop(cycle, u, v, e);
                    arrivals.push((v, pkt));
                    occupancy[u as usize] -= 1;
                    acc.total_hops += 1;
                }
            }
            if occupancy[u as usize] > 0 {
                on_list[u as usize] = true;
                next_active.push(u);
            }
        }
        active.clear();
        std::mem::swap(&mut active, &mut next_active);

        // Process arrivals (at the cycle + 1 boundary).
        let now = cycle + 1;
        for (node, pkt) in arrivals.drain(..) {
            if node == pkt.dst {
                in_flight -= 1;
                acc.deliver(now, pkt.inject_time);
                observer.on_deliver(now, node, now - pkt.inject_time);
            } else {
                route_and_enqueue(g, &slots, router, &mut queues, &mut occupancy, node, pkt);
                if !on_list[node as usize] {
                    on_list[node as usize] = true;
                    active.push(node);
                }
            }
        }
        observer.on_cycle_end(cycle, in_flight);
        cycle += 1;
    }

    acc.finish(packets.len())
}

/// The seed's original engine, kept verbatim as a behavioural oracle and
/// speedup baseline: scans every node every cycle and binary-searches the
/// neighbor list on every hop, routing through `Topology::next_hop`.
pub fn simulate_reference(
    topology: &dyn Topology,
    packets: &[Packet],
    max_cycles: u64,
) -> SimStats {
    let n = topology.len();
    let graph = topology.graph();
    let mut queues: Vec<Vec<VecDeque<InFlight>>> = (0..n)
        .map(|u| vec![VecDeque::new(); graph.degree(u as u32)])
        .collect();
    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let mut next_inject = 0usize;

    let slot_of = |u: u32, v: u32| -> usize {
        graph
            .neighbors(u)
            .binary_search(&v)
            .expect("next_hop must return a neighbor")
    };

    let mut acc = StatsAcc::default();
    let mut in_flight = 0usize;

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        while next_inject < inj.len() && inj[next_inject].inject_time <= cycle {
            let p = inj[next_inject];
            next_inject += 1;
            if p.src == p.dst {
                acc.deliver_instant();
                continue;
            }
            let hop = topology.next_hop(p.src, p.dst).expect("src ≠ dst");
            queues[p.src as usize][slot_of(p.src, hop)].push_back(InFlight {
                dst: p.dst,
                inject_time: p.inject_time,
            });
            in_flight += 1;
        }
        if in_flight == 0 && next_inject >= inj.len() {
            break;
        }
        let mut arrivals: Vec<(u32, InFlight)> = Vec::new();
        for u in 0..n as u32 {
            for (slot, &v) in graph.neighbors(u).iter().enumerate() {
                if let Some(pkt) = queues[u as usize][slot].pop_front() {
                    arrivals.push((v, pkt));
                    acc.total_hops += 1;
                }
            }
        }
        let now = cycle + 1;
        for (node, pkt) in arrivals {
            if node == pkt.dst {
                in_flight -= 1;
                acc.deliver(now, pkt.inject_time);
            } else {
                let hop = topology.next_hop(node, pkt.dst).expect("progressive");
                queues[node as usize][slot_of(node, hop)].push_back(pkt);
            }
        }
        cycle += 1;
    }

    acc.finish(packets.len())
}

pub(crate) fn bump(hist: &mut Vec<u64>, lat: u64) {
    let lat = lat as usize;
    if hist.len() <= lat {
        hist.resize(lat + 1, 0);
    }
    hist[lat] += 1;
}

pub(crate) fn percentile(hist: &[u64], q: f64) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil() as u64;
    let mut acc = 0u64;
    for (lat, &c) in hist.iter().enumerate() {
        acc += c;
        if acc >= target {
            return lat as u64;
        }
    }
    hist.len() as u64 - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{LatencyHistogram, LinkHeatmap};
    use crate::router::{AdaptiveMinimal, CanonicalRouter, EcubeRouter};
    use crate::topology::{FibonacciNet, Hypercube, Ring};
    use crate::traffic::TrafficSpec;

    fn uniform(n: usize, count: usize, window: u64, seed: u64) -> Vec<Packet> {
        TrafficSpec::Uniform { count, window }.generate(n, seed)
    }

    fn all_to_all(n: usize) -> Vec<Packet> {
        TrafficSpec::AllToAll.generate(n, 0)
    }

    #[test]
    fn single_packet_latency_is_distance() {
        let q = Hypercube::new(4);
        let pkts = vec![Packet {
            src: 0b0000,
            dst: 0b1111,
            inject_time: 0,
        }];
        let stats = simulate(&q, &pkts, 1000);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.mean_latency, 4.0);
        assert_eq!(stats.total_hops, 4);
        assert_eq!(stats.makespan, 4);
    }

    #[test]
    fn all_packets_delivered_uniform() {
        for topo in [
            &FibonacciNet::classical(8) as &dyn Topology,
            &Hypercube::new(5),
            &Ring::new(21),
        ] {
            let pkts = uniform(topo.len(), 300, 100, 42);
            let stats = simulate(topo, &pkts, 50_000);
            assert_eq!(stats.delivered, stats.offered, "{}", topo.name());
            assert!(stats.mean_latency >= 1.0);
            assert!(stats.p99_latency as f64 >= stats.mean_latency.floor());
        }
    }

    #[test]
    fn contention_raises_latency_above_distance() {
        // Many packets into one node: queueing must show up.
        let q = Hypercube::new(3);
        let pkts: Vec<Packet> = (1..8)
            .map(|s| Packet {
                src: s,
                dst: 0,
                inject_time: 0,
            })
            .collect();
        let stats = simulate(&q, &pkts, 1000);
        assert_eq!(stats.delivered, 7);
        // Node 0 has 3 in-links; 7 packets need ≥ ⌈7/3⌉ = 3 cycles.
        assert!(stats.makespan >= 3);
    }

    #[test]
    fn zero_time_cap_delivers_nothing() {
        let q = Hypercube::new(3);
        let pkts = vec![Packet {
            src: 0,
            dst: 7,
            inject_time: 0,
        }];
        let stats = simulate(&q, &pkts, 0);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.offered, 1);
    }

    #[test]
    fn all_to_all_mean_latency_at_least_average_distance() {
        let net = FibonacciNet::classical(6);
        let pkts = all_to_all(net.len());
        let stats = simulate(&net, &pkts, 100_000);
        assert_eq!(stats.delivered, stats.offered);
        let avg_dist = fibcube_graph::distance::average_distance(net.graph());
        assert!(
            stats.mean_latency + 1e-9 >= avg_dist,
            "latency {} < average distance {avg_dist}",
            stats.mean_latency
        );
    }

    #[test]
    fn self_addressed_packets_count_as_delivered() {
        let q = Hypercube::new(2);
        let pkts = vec![Packet {
            src: 1,
            dst: 1,
            inject_time: 5,
        }];
        let stats = simulate(&q, &pkts, 100);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.mean_latency, 0.0);
        assert_eq!(
            stats.makespan, 0,
            "a packet that never used a link leaves no makespan"
        );
    }

    #[test]
    fn active_set_engine_agrees_with_reference() {
        // Deterministic routers and matching same-cycle service order ⇒
        // the two engines must agree packet for packet: same deliveries,
        // hops, latency distribution, and makespan.
        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(13),
        ] {
            for (count, window, seed) in [(50usize, 20u64, 1u64), (400, 60, 2), (1, 0, 3)] {
                let pkts = uniform(topo.len(), count, window, seed);
                let fast = simulate(topo, &pkts, 100_000);
                let slow = simulate_reference(topo, &pkts, 100_000);
                assert_eq!(fast.delivered, slow.delivered, "{}", topo.name());
                assert_eq!(fast.total_hops, slow.total_hops, "{}", topo.name());
                assert_eq!(fast.offered, slow.offered);
                assert_eq!(
                    fast.latency_histogram,
                    slow.latency_histogram,
                    "{}",
                    topo.name()
                );
                assert_eq!(fast.mean_latency, slow.mean_latency, "{}", topo.name());
                assert_eq!(fast.makespan, slow.makespan, "{}", topo.name());
                assert_eq!(fast.p99_latency, slow.p99_latency, "{}", topo.name());
            }
        }
    }

    #[test]
    fn explicit_routers_deliver_everything() {
        let q = Hypercube::new(5);
        let pkts = uniform(q.len(), 400, 80, 9);
        for stats in [
            simulate_with(&q, &EcubeRouter, &pkts, 100_000),
            simulate_with(&q, &AdaptiveMinimal::new(&q), &pkts, 100_000),
        ] {
            assert_eq!(stats.delivered, stats.offered);
        }
        let net = FibonacciNet::classical(9);
        let pkts = uniform(net.len(), 400, 80, 9);
        let canonical = CanonicalRouter::for_net(&net);
        for stats in [
            simulate_with(&net, &canonical, &pkts, 100_000),
            simulate_with(&net, &AdaptiveMinimal::new(&net), &pkts, 100_000),
        ] {
            assert_eq!(stats.delivered, stats.offered);
        }
    }

    #[test]
    fn adaptive_router_no_worse_under_hotspot() {
        // Adaptive minimal routing must still deliver everything when one
        // node draws concentrated traffic.
        let q = Hypercube::new(5);
        let pkts = TrafficSpec::HotSpot {
            count: 600,
            window: 150,
            hot_fraction: 0.4,
        }
        .generate(q.len(), 11);
        let stats = simulate_with(&q, &AdaptiveMinimal::new(&q), &pkts, 200_000);
        assert_eq!(stats.delivered, stats.offered);
    }

    #[test]
    fn observers_see_every_event_and_match_engine_accounting() {
        let net = FibonacciNet::classical(9);
        let pkts = uniform(net.len(), 500, 120, 21);
        let router = CanonicalRouter::for_net(&net);
        let baseline = simulate_with(&net, &router, &pkts, 100_000);

        let mut obs = (LatencyHistogram::new(), LinkHeatmap::new());
        let observed = simulate_observed(&net, &router, &pkts, 100_000, &mut obs);
        assert_eq!(observed, baseline, "observer must not perturb the run");
        let (hist, heat) = obs;
        assert_eq!(hist.histogram(), &baseline.latency_histogram[..]);
        assert_eq!(hist.delivered() as usize, baseline.delivered);
        assert_eq!(hist.mean(), baseline.mean_latency);
        assert_eq!(hist.p99(), baseline.p99_latency);
        assert_eq!(heat.total_hops(), baseline.total_hops);
    }

    #[test]
    fn observer_sees_self_addressed_delivery_and_sparse_cycles() {
        #[derive(Default)]
        struct Trace {
            injects: Vec<(u64, u32, u32)>,
            delivers: Vec<(u64, u32, u64)>,
            cycle_ends: Vec<(u64, usize)>,
        }
        impl SimObserver for Trace {
            fn on_inject(&mut self, cycle: u64, src: u32, dst: u32) {
                self.injects.push((cycle, src, dst));
            }
            fn on_deliver(&mut self, cycle: u64, dst: u32, latency: u64) {
                self.delivers.push((cycle, dst, latency));
            }
            fn on_cycle_end(&mut self, cycle: u64, in_flight: usize) {
                self.cycle_ends.push((cycle, in_flight));
            }
        }

        let q = Hypercube::new(3);
        let pkts = vec![
            Packet {
                src: 2,
                dst: 2,
                inject_time: 0,
            },
            Packet {
                src: 0,
                dst: 7,
                inject_time: 1_000,
            },
        ];
        let mut trace = Trace::default();
        let stats = simulate_observed(&q, &EcubeRouter, &pkts, 1_000_000, &mut trace);
        assert_eq!(stats.delivered, 2);
        assert_eq!(trace.injects, vec![(0, 2, 2), (1_000, 0, 7)]);
        // Self-addressed at latency 0, then the real packet at distance 3.
        assert_eq!(trace.delivers, vec![(0, 2, 0), (1_003, 7, 3)]);
        // The idle gap 1..1000 is fast-forwarded: no cycle-end events there.
        assert!(trace.cycle_ends.iter().all(|&(c, _)| c == 0 || c >= 1_000));
        assert_eq!(trace.cycle_ends.last(), Some(&(1_002, 0)));
    }

    #[test]
    fn empty_fault_set_is_packet_for_packet_identical() {
        let net = FibonacciNet::classical(9);
        let pkts = uniform(net.len(), 400, 100, 13);
        let router = CanonicalRouter::for_net(&net);
        let healthy = simulate_with(&net, &router, &pkts, 100_000);
        let faulted = simulate_faulted(
            &net,
            &router,
            &crate::fault::FaultSet::empty(),
            &pkts,
            100_000,
            &mut NoopObserver,
        );
        assert_eq!(faulted, healthy);
        assert_eq!(faulted.dropped(), 0);
    }

    #[test]
    fn dead_endpoints_are_typed_drops_and_survivors_deliver() {
        // Kill node 0 of Q_3 under all-to-all traffic: the 14 ordered
        // pairs touching node 0 drop as DeadEndpoint, the other 42
        // deliver via detours where e-cube would have crossed node 0.
        let q = Hypercube::new(3);
        let faults = crate::fault::FaultSet::new([0u32], []);
        let pkts = all_to_all(q.len());
        let mut tracker = crate::observer::DeliveryTracker::new();
        let stats = simulate_faulted(&q, &EcubeRouter, &faults, &pkts, 100_000, &mut tracker);
        assert_eq!(stats.offered, 56);
        assert_eq!(stats.dropped_dead_endpoint, 14);
        assert_eq!(stats.dropped_unreachable, 0);
        assert_eq!(stats.delivered, 42);
        assert_eq!(tracker.delivered(), 42);
        assert_eq!(tracker.dropped_dead_endpoint(), 14);
        assert_eq!(tracker.in_flight(), 0, "nothing silently stranded");
    }

    #[test]
    fn disconnected_survivors_drop_as_unreachable() {
        // Cut links 0–1 and 3–4 of a 6-ring: components {1,2,3} and
        // {4,5,0}. Cross-component pairs (2·3·3 = 18) drop Unreachable;
        // within-component pairs (2·3·2 = 12) deliver.
        let ring = Ring::new(6);
        let faults = crate::fault::FaultSet::new([], [(0u32, 1u32), (3u32, 4u32)]);
        let pkts = all_to_all(ring.len());
        let router = ring.router();
        let stats = simulate_faulted(&ring, &*router, &faults, &pkts, 100_000, &mut NoopObserver);
        assert_eq!(stats.offered, 30);
        assert_eq!(stats.dropped_unreachable, 18);
        assert_eq!(stats.dropped_dead_endpoint, 0);
        assert_eq!(stats.delivered, 12);
    }

    #[test]
    fn faulted_runs_conserve_packets_under_a_cycle_cap() {
        let net = FibonacciNet::classical(8);
        let faults = crate::fault::FaultSet::new([3u32, 11, 40], [(0u32, 1u32)]);
        let pkts = uniform(net.len(), 500, 50, 7);
        let router = CanonicalRouter::for_net(&net);
        for cap in [0u64, 3, 10, 100_000] {
            let mut tracker = crate::observer::DeliveryTracker::new();
            let stats = simulate_faulted(&net, &router, &faults, &pkts, cap, &mut tracker);
            assert!(
                stats.delivered + stats.dropped() <= stats.offered,
                "cap {cap}"
            );
            // Observer and engine accounting agree; the remainder is the
            // in-flight truncation, never a silent strand.
            assert_eq!(tracker.delivered() as usize, stats.delivered, "cap {cap}");
            assert_eq!(tracker.dropped() as usize, stats.dropped(), "cap {cap}");
            if cap == 100_000 {
                assert_eq!(stats.delivered + stats.dropped(), stats.offered);
                assert_eq!(tracker.in_flight(), 0);
            }
        }
    }

    #[test]
    fn idle_gap_fast_forward_preserves_semantics() {
        // Two packets separated by a huge idle gap: the active-set engine
        // must skip the gap, not simulate it, and still report identical
        // latencies to the reference engine.
        let q = Hypercube::new(3);
        let pkts = vec![
            Packet {
                src: 0,
                dst: 7,
                inject_time: 0,
            },
            Packet {
                src: 7,
                dst: 0,
                inject_time: 1_000_000,
            },
        ];
        let fast = simulate(&q, &pkts, 2_000_000);
        let slow = simulate_reference(&q, &pkts, 2_000_000);
        assert_eq!(fast.delivered, 2);
        assert_eq!(fast.delivered, slow.delivered);
        assert_eq!(fast.mean_latency, slow.mean_latency);
        assert_eq!(fast.makespan, slow.makespan);
    }
}
