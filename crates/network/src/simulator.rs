//! Facade over the unified [`engine`](crate::engine) subsystem, kept for
//! source compatibility: every historical `crate::simulator::*` path
//! still resolves here. The engine core, its policy traits, and the
//! seven entry points live in [`crate::engine`]; see that module for the
//! model and the policy-axis architecture, and
//! [`crate::engine::policy`] for the traits a new switching, fault, or
//! replication behaviour implements.

pub(crate) use crate::engine::stats::{bump, percentile};
pub use crate::engine::{
    simulate, simulate_churn, simulate_collective, simulate_faulted, simulate_faulted_reference,
    simulate_observed, simulate_reference, simulate_request_reply, simulate_with,
    simulate_wormhole, simulate_wormhole_faulted, DropReason, LogHistogram, RequestReplyLoad,
    SimStats, DENSE_HISTOGRAM_NODE_LIMIT,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{LatencyHistogram, LinkHeatmap, NoopObserver, SimObserver};
    use crate::router::{AdaptiveMinimal, CanonicalRouter, EcubeRouter};
    use crate::topology::{FibonacciNet, Hypercube, Ring, Topology};
    use crate::traffic::{Packet, TrafficSpec};

    fn uniform(n: usize, count: usize, window: u64, seed: u64) -> Vec<Packet> {
        TrafficSpec::Uniform { count, window }.generate(n, seed)
    }

    fn all_to_all(n: usize) -> Vec<Packet> {
        TrafficSpec::AllToAll.generate(n, 0)
    }

    #[test]
    fn single_packet_latency_is_distance() {
        let q = Hypercube::new(4);
        let pkts = vec![Packet {
            src: 0b0000,
            dst: 0b1111,
            inject_time: 0,
        }];
        let stats = simulate(&q, &pkts, 1000);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.mean_latency, 4.0);
        assert_eq!(stats.total_hops, 4);
        assert_eq!(stats.makespan, 4);
    }

    #[test]
    fn all_packets_delivered_uniform() {
        for topo in [
            &FibonacciNet::classical(8) as &dyn Topology,
            &Hypercube::new(5),
            &Ring::new(21),
        ] {
            let pkts = uniform(topo.len(), 300, 100, 42);
            let stats = simulate(topo, &pkts, 50_000);
            assert_eq!(stats.delivered, stats.offered, "{}", topo.name());
            assert!(stats.mean_latency >= 1.0);
            assert!(stats.p99_latency as f64 >= stats.mean_latency.floor());
        }
    }

    #[test]
    fn contention_raises_latency_above_distance() {
        // Many packets into one node: queueing must show up.
        let q = Hypercube::new(3);
        let pkts: Vec<Packet> = (1..8)
            .map(|s| Packet {
                src: s,
                dst: 0,
                inject_time: 0,
            })
            .collect();
        let stats = simulate(&q, &pkts, 1000);
        assert_eq!(stats.delivered, 7);
        // Node 0 has 3 in-links; 7 packets need ≥ ⌈7/3⌉ = 3 cycles.
        assert!(stats.makespan >= 3);
    }

    #[test]
    fn zero_time_cap_delivers_nothing() {
        let q = Hypercube::new(3);
        let pkts = vec![Packet {
            src: 0,
            dst: 7,
            inject_time: 0,
        }];
        let stats = simulate(&q, &pkts, 0);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.offered, 1);
    }

    #[test]
    fn all_to_all_mean_latency_at_least_average_distance() {
        let net = FibonacciNet::classical(6);
        let pkts = all_to_all(net.len());
        let stats = simulate(&net, &pkts, 100_000);
        assert_eq!(stats.delivered, stats.offered);
        let avg_dist = fibcube_graph::distance::average_distance(net.graph());
        assert!(
            stats.mean_latency + 1e-9 >= avg_dist,
            "latency {} < average distance {avg_dist}",
            stats.mean_latency
        );
    }

    #[test]
    fn self_addressed_packets_count_as_delivered() {
        let q = Hypercube::new(2);
        let pkts = vec![Packet {
            src: 1,
            dst: 1,
            inject_time: 5,
        }];
        let stats = simulate(&q, &pkts, 100);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.mean_latency, 0.0);
        assert_eq!(
            stats.makespan, 0,
            "a packet that never used a link leaves no makespan"
        );
    }

    #[test]
    fn active_set_engine_agrees_with_reference() {
        // Deterministic routers and matching same-cycle service order ⇒
        // the two engines must agree packet for packet: same deliveries,
        // hops, latency distribution, and makespan.
        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(13),
        ] {
            for (count, window, seed) in [(50usize, 20u64, 1u64), (400, 60, 2), (1, 0, 3)] {
                let pkts = uniform(topo.len(), count, window, seed);
                let fast = simulate(topo, &pkts, 100_000);
                let slow = simulate_reference(topo, &pkts, 100_000);
                assert_eq!(fast.delivered, slow.delivered, "{}", topo.name());
                assert_eq!(fast.total_hops, slow.total_hops, "{}", topo.name());
                assert_eq!(fast.offered, slow.offered);
                assert_eq!(
                    fast.latency_histogram,
                    slow.latency_histogram,
                    "{}",
                    topo.name()
                );
                assert_eq!(fast.mean_latency, slow.mean_latency, "{}", topo.name());
                assert_eq!(fast.makespan, slow.makespan, "{}", topo.name());
                assert_eq!(fast.p99_latency, slow.p99_latency, "{}", topo.name());
            }
        }
    }

    #[test]
    fn explicit_routers_deliver_everything() {
        let q = Hypercube::new(5);
        let pkts = uniform(q.len(), 400, 80, 9);
        for stats in [
            simulate_with(&q, &EcubeRouter, &pkts, 100_000),
            simulate_with(&q, &AdaptiveMinimal::new(&q), &pkts, 100_000),
        ] {
            assert_eq!(stats.delivered, stats.offered);
        }
        let net = FibonacciNet::classical(9);
        let pkts = uniform(net.len(), 400, 80, 9);
        let canonical = CanonicalRouter::for_net(&net);
        for stats in [
            simulate_with(&net, &canonical, &pkts, 100_000),
            simulate_with(&net, &AdaptiveMinimal::new(&net), &pkts, 100_000),
        ] {
            assert_eq!(stats.delivered, stats.offered);
        }
    }

    #[test]
    fn adaptive_router_no_worse_under_hotspot() {
        // Adaptive minimal routing must still deliver everything when one
        // node draws concentrated traffic.
        let q = Hypercube::new(5);
        let pkts = TrafficSpec::HotSpot {
            count: 600,
            window: 150,
            hot_fraction: 0.4,
        }
        .generate(q.len(), 11);
        let stats = simulate_with(&q, &AdaptiveMinimal::new(&q), &pkts, 200_000);
        assert_eq!(stats.delivered, stats.offered);
    }

    #[test]
    fn observers_see_every_event_and_match_engine_accounting() {
        let net = FibonacciNet::classical(9);
        let pkts = uniform(net.len(), 500, 120, 21);
        let router = CanonicalRouter::for_net(&net);
        let baseline = simulate_with(&net, &router, &pkts, 100_000);

        let mut obs = (LatencyHistogram::new(), LinkHeatmap::new());
        let observed = simulate_observed(&net, &router, &pkts, 100_000, &mut obs);
        assert_eq!(observed, baseline, "observer must not perturb the run");
        let (hist, heat) = obs;
        assert_eq!(hist.histogram(), &baseline.latency_histogram[..]);
        assert_eq!(hist.delivered() as usize, baseline.delivered);
        assert_eq!(hist.mean(), baseline.mean_latency);
        assert_eq!(hist.p99(), baseline.p99_latency);
        assert_eq!(heat.total_hops(), baseline.total_hops);
    }

    #[test]
    fn observer_sees_self_addressed_delivery_and_sparse_cycles() {
        #[derive(Default)]
        struct Trace {
            injects: Vec<(u64, u32, u32)>,
            delivers: Vec<(u64, u32, u64)>,
            cycle_ends: Vec<(u64, usize)>,
        }
        impl SimObserver for Trace {
            fn on_inject(&mut self, cycle: u64, src: u32, dst: u32) {
                self.injects.push((cycle, src, dst));
            }
            fn on_deliver(&mut self, cycle: u64, dst: u32, latency: u64) {
                self.delivers.push((cycle, dst, latency));
            }
            fn on_cycle_end(&mut self, cycle: u64, in_flight: usize) {
                self.cycle_ends.push((cycle, in_flight));
            }
        }

        let q = Hypercube::new(3);
        let pkts = vec![
            Packet {
                src: 2,
                dst: 2,
                inject_time: 0,
            },
            Packet {
                src: 0,
                dst: 7,
                inject_time: 1_000,
            },
        ];
        let mut trace = Trace::default();
        let stats = simulate_observed(&q, &EcubeRouter, &pkts, 1_000_000, &mut trace);
        assert_eq!(stats.delivered, 2);
        assert_eq!(trace.injects, vec![(0, 2, 2), (1_000, 0, 7)]);
        // Self-addressed at latency 0, then the real packet at distance 3.
        assert_eq!(trace.delivers, vec![(0, 2, 0), (1_003, 7, 3)]);
        // The idle gap 1..1000 is fast-forwarded: no cycle-end events there.
        assert!(trace.cycle_ends.iter().all(|&(c, _)| c == 0 || c >= 1_000));
        assert_eq!(trace.cycle_ends.last(), Some(&(1_002, 0)));
    }

    #[test]
    fn empty_fault_set_is_packet_for_packet_identical() {
        let net = FibonacciNet::classical(9);
        let pkts = uniform(net.len(), 400, 100, 13);
        let router = CanonicalRouter::for_net(&net);
        let healthy = simulate_with(&net, &router, &pkts, 100_000);
        let faulted = simulate_faulted(
            &net,
            &router,
            &crate::fault::FaultSet::empty(),
            &pkts,
            100_000,
            &mut NoopObserver,
        );
        assert_eq!(faulted, healthy);
        assert_eq!(faulted.dropped(), 0);
    }

    #[test]
    fn dead_endpoints_are_typed_drops_and_survivors_deliver() {
        // Kill node 0 of Q_3 under all-to-all traffic: the 14 ordered
        // pairs touching node 0 drop as DeadEndpoint, the other 42
        // deliver via detours where e-cube would have crossed node 0.
        let q = Hypercube::new(3);
        let faults = crate::fault::FaultSet::new([0u32], []);
        let pkts = all_to_all(q.len());
        let mut tracker = crate::observer::DeliveryTracker::new();
        let stats = simulate_faulted(&q, &EcubeRouter, &faults, &pkts, 100_000, &mut tracker);
        assert_eq!(stats.offered, 56);
        assert_eq!(stats.dropped_dead_endpoint, 14);
        assert_eq!(stats.dropped_unreachable, 0);
        assert_eq!(stats.delivered, 42);
        assert_eq!(tracker.delivered(), 42);
        assert_eq!(tracker.dropped_dead_endpoint(), 14);
        assert_eq!(tracker.in_flight(), 0, "nothing silently stranded");
    }

    #[test]
    fn disconnected_survivors_drop_as_unreachable() {
        // Cut links 0–1 and 3–4 of a 6-ring: components {1,2,3} and
        // {4,5,0}. Cross-component pairs (2·3·3 = 18) drop Unreachable;
        // within-component pairs (2·3·2 = 12) deliver.
        let ring = Ring::new(6);
        let faults = crate::fault::FaultSet::new([], [(0u32, 1u32), (3u32, 4u32)]);
        let pkts = all_to_all(ring.len());
        let router = ring.router();
        let stats = simulate_faulted(&ring, &*router, &faults, &pkts, 100_000, &mut NoopObserver);
        assert_eq!(stats.offered, 30);
        assert_eq!(stats.dropped_unreachable, 18);
        assert_eq!(stats.dropped_dead_endpoint, 0);
        assert_eq!(stats.delivered, 12);
    }

    #[test]
    fn faulted_runs_conserve_packets_under_a_cycle_cap() {
        let net = FibonacciNet::classical(8);
        let faults = crate::fault::FaultSet::new([3u32, 11, 40], [(0u32, 1u32)]);
        let pkts = uniform(net.len(), 500, 50, 7);
        let router = CanonicalRouter::for_net(&net);
        for cap in [0u64, 3, 10, 100_000] {
            let mut tracker = crate::observer::DeliveryTracker::new();
            let stats = simulate_faulted(&net, &router, &faults, &pkts, cap, &mut tracker);
            assert!(
                stats.delivered + stats.dropped() <= stats.offered,
                "cap {cap}"
            );
            // Observer and engine accounting agree; the remainder is the
            // in-flight truncation, never a silent strand.
            assert_eq!(tracker.delivered() as usize, stats.delivered, "cap {cap}");
            assert_eq!(tracker.dropped() as usize, stats.dropped(), "cap {cap}");
            if cap == 100_000 {
                assert_eq!(stats.delivered + stats.dropped(), stats.offered);
                assert_eq!(tracker.in_flight(), 0);
            }
        }
    }

    #[test]
    fn ring_overflow_preserves_fifo_against_reference() {
        // Funnel far more packets through single links than the ring
        // stride holds: 40 same-direction packets on a 4-ring, plus a
        // hot-spot drain on Q_3. The spill/promote path must stay
        // packet-for-packet identical to the reference engine.
        let ring = Ring::new(4);
        let pkts: Vec<Packet> = (0..40)
            .map(|i| Packet {
                src: 0,
                dst: 1,
                inject_time: i % 3,
            })
            .collect();
        let fast = simulate(&ring, &pkts, 100_000);
        let slow = simulate_reference(&ring, &pkts, 100_000);
        assert_eq!(fast, slow);
        assert_eq!(fast.delivered, 40);

        let q = Hypercube::new(3);
        let pkts: Vec<Packet> = (0..60)
            .map(|i| Packet {
                src: (1 + i % 7) as u32,
                dst: 0,
                inject_time: i / 14,
            })
            .collect();
        let fast = simulate(&q, &pkts, 100_000);
        let slow = simulate_reference(&q, &pkts, 100_000);
        assert_eq!(fast, slow);
    }

    #[test]
    fn table_routing_path_agrees_with_reference() {
        // All-to-all workloads trip the precompute heuristic
        // (packets ≈ n² ≫ n²/d̄), so this exercises the NextHopTable hop
        // path end to end against the per-hop reference engine.
        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(9),
        ] {
            let pkts = all_to_all(topo.len());
            let fast = simulate(topo, &pkts, 1_000_000);
            let slow = simulate_reference(topo, &pkts, 1_000_000);
            assert_eq!(fast, slow, "{}", topo.name());
        }
    }

    #[test]
    fn faulted_engine_agrees_with_faulted_reference() {
        // The arena engine under faults ≡ the full-scan faulted oracle,
        // with node faults, link faults, and a cycle cap in the mix.
        let net = FibonacciNet::classical(8);
        let router = CanonicalRouter::for_net(&net);
        let faults = crate::fault::FaultSet::new([3u32, 11, 40], [(0u32, 1u32)]);
        for (count, window, cap) in [(400usize, 80u64, 100_000u64), (300, 50, 25)] {
            let pkts = uniform(net.len(), count, window, 5);
            let fast = simulate_faulted(&net, &router, &faults, &pkts, cap, &mut NoopObserver);
            let slow = simulate_faulted_reference(&net, &router, &faults, &pkts, cap);
            assert_eq!(fast, slow, "count={count} cap={cap}");
        }
        // And with no faults the oracle degenerates to the healthy
        // reference engine.
        let pkts = uniform(net.len(), 200, 60, 9);
        let empty = crate::fault::FaultSet::empty();
        let oracle = simulate_faulted_reference(&net, &router, &empty, &pkts, 100_000);
        assert_eq!(oracle, simulate_with(&net, &router, &pkts, 100_000));
    }

    #[test]
    fn collective_one_port_completion_equals_static_rounds() {
        // The gating oracle of the collective path, small scale: the live
        // replication engine must complete a one-port broadcast in
        // exactly the static schedule's round count (no cross-traffic, so
        // the serialization chain is the only latency source).
        use crate::broadcast::broadcast_one_port;
        use crate::collective::CopyPlan;
        for topo in [
            &FibonacciNet::classical(8) as &dyn Topology,
            &Hypercube::new(5),
            &Ring::new(12),
        ] {
            for src in [0u32, (topo.len() / 2) as u32] {
                let schedule = broadcast_one_port(topo, src).expect("connected");
                let plan = CopyPlan::from_schedule(topo.graph(), &schedule, true);
                let (stats, reached) =
                    simulate_collective(topo, &plan, 1_000_000, &mut NoopObserver);
                assert_eq!(stats.offered, topo.len() - 1, "{}", topo.name());
                assert_eq!(stats.delivered, topo.len() - 1, "{}", topo.name());
                assert_eq!(reached, topo.len() - 1);
                assert_eq!(
                    stats.makespan,
                    schedule.rounds as u64,
                    "{} src={src}: live one-port completion must equal static rounds",
                    topo.name()
                );
                assert_eq!(
                    stats.total_hops,
                    (topo.len() - 1) as u64,
                    "one hop per copy"
                );
            }
        }
    }

    #[test]
    fn collective_all_port_completion_equals_source_eccentricity() {
        use crate::broadcast::broadcast_all_port;
        use crate::collective::CopyPlan;
        for topo in [
            &FibonacciNet::classical(8) as &dyn Topology,
            &Hypercube::new(5),
        ] {
            let schedule = broadcast_all_port(topo, 0).expect("connected");
            let plan = CopyPlan::from_schedule(topo.graph(), &schedule, false);
            let (stats, _) = simulate_collective(topo, &plan, 1_000_000, &mut NoopObserver);
            let ecc = fibcube_graph::bfs::bfs_distances(topo.graph(), 0)
                .iter()
                .copied()
                .max()
                .unwrap() as u64;
            assert_eq!(stats.makespan, ecc, "{}", topo.name());
            assert_eq!(stats.delivered, topo.len() - 1);
            assert_eq!(stats.mean_latency, 1.0, "uncontended copies take one cycle");
        }
    }

    #[test]
    fn collective_copies_conserve_under_a_cycle_cap() {
        use crate::broadcast::broadcast_one_port;
        use crate::collective::CopyPlan;
        let net = FibonacciNet::classical(8);
        let schedule = broadcast_one_port(&net, 0).unwrap();
        let plan = CopyPlan::from_schedule(net.graph(), &schedule, true);
        for cap in [0u64, 1, 3, schedule.rounds as u64, 1_000] {
            let mut tracker = crate::observer::DeliveryTracker::new();
            let (stats, reached) = simulate_collective(&net, &plan, cap, &mut tracker);
            assert_eq!(stats.offered, net.len() - 1, "cap {cap}");
            assert!(stats.delivered + stats.dropped() <= stats.offered);
            assert!(reached <= stats.delivered);
            // Observer and engine accounting agree copy for copy; spawned
            // copies not yet delivered are the tracker's in-flight.
            assert_eq!(tracker.delivered() as usize, stats.delivered, "cap {cap}");
            assert_eq!(
                tracker.injected() - tracker.delivered(),
                tracker.in_flight(),
                "cap {cap}"
            );
            if cap >= schedule.rounds as u64 {
                assert_eq!(stats.delivered, stats.offered, "cap {cap}: drained");
                assert_eq!(tracker.in_flight(), 0);
            }
        }
    }

    #[test]
    fn collective_observer_sees_replication_events_in_order() {
        // Q_2 one-port from 0. Verify the event stream shape rather than
        // one hard-coded tree: every inject names a real link out of an
        // informed node, and every copy is delivered exactly one cycle
        // after it was injected (uncontended tree edges).
        #[derive(Default)]
        struct Trace {
            injects: Vec<(u64, u32, u32)>,
            delivers: Vec<(u64, u32)>,
        }
        impl SimObserver for Trace {
            fn on_inject(&mut self, cycle: u64, src: u32, dst: u32) {
                self.injects.push((cycle, src, dst));
            }
            fn on_deliver(&mut self, cycle: u64, dst: u32, _latency: u64) {
                self.delivers.push((cycle, dst));
            }
        }
        use crate::broadcast::broadcast_one_port;
        use crate::collective::CopyPlan;
        let q = Hypercube::new(2);
        let schedule = broadcast_one_port(&q, 0).unwrap();
        let plan = CopyPlan::from_schedule(q.graph(), &schedule, true);
        let mut trace = Trace::default();
        let (stats, _) = simulate_collective(&q, &plan, 1_000, &mut trace);
        assert_eq!(stats.delivered, 3);
        assert_eq!(trace.injects.len(), 3);
        let mut informed_at = [u64::MAX; 4];
        informed_at[0] = 0;
        // Injects are causal: the caller was informed strictly earlier.
        for &(cycle, src, dst) in &trace.injects {
            assert!(q.graph().has_edge(src, dst));
            assert!(
                informed_at[src as usize] <= cycle,
                "caller must already hold the message"
            );
            let (dcycle, _) = *trace
                .delivers
                .iter()
                .find(|&&(_, d)| d == dst)
                .expect("every copy is delivered");
            assert_eq!(dcycle, cycle + 1, "uncontended copies take one cycle");
            informed_at[dst as usize] = dcycle;
        }
        assert_eq!(stats.makespan, schedule.rounds as u64);
    }

    #[test]
    fn idle_gap_fast_forward_preserves_semantics() {
        // Two packets separated by a huge idle gap: the active-set engine
        // must skip the gap, not simulate it, and still report identical
        // latencies to the reference engine.
        let q = Hypercube::new(3);
        let pkts = vec![
            Packet {
                src: 0,
                dst: 7,
                inject_time: 0,
            },
            Packet {
                src: 7,
                dst: 0,
                inject_time: 1_000_000,
            },
        ];
        let fast = simulate(&q, &pkts, 2_000_000);
        let slow = simulate_reference(&q, &pkts, 2_000_000);
        assert_eq!(fast.delivered, 2);
        assert_eq!(fast.delivered, slow.delivered);
        assert_eq!(fast.mean_latency, slow.mean_latency);
        assert_eq!(fast.makespan, slow.makespan);
    }

    #[test]
    fn log_histogram_buckets_by_powers_of_two() {
        let mut h = LogHistogram::new();
        for lat in [0, 1, 2, 3, 4, 6, 7, 100, u64::MAX] {
            h.record(lat);
        }
        // Bucket i covers [2^i − 1, 2^{i+1} − 2].
        assert_eq!(h.buckets()[0], 1); // latency 0
        assert_eq!(h.buckets()[1], 2); // 1, 2
        assert_eq!(h.buckets()[2], 3); // 3, 4, 6
        assert_eq!(h.buckets()[3], 1); // 7
        assert_eq!(h.buckets()[6], 1); // 100 ∈ [63, 126]
        assert_eq!(h.buckets()[63], 1); // saturates, no overflow
        assert_eq!(h.count(), 9);
    }

    #[test]
    fn log_histogram_ranges_tile_the_latency_axis() {
        let mut expected_lo = 0u64;
        for i in 0..64 {
            let (lo, hi) = LogHistogram::bucket_range(i);
            assert_eq!(lo, expected_lo, "bucket {i} starts where {} ended", i);
            assert!(hi >= lo);
            if i < 63 {
                expected_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn log_percentile_upper_bound_never_underestimates() {
        let mut h = LogHistogram::new();
        let mut exact = Vec::new();
        for lat in [0u64, 1, 1, 3, 5, 9, 9, 9, 20, 70] {
            h.record(lat);
            exact.push(lat);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let idx = ((exact.len() as f64 * q).ceil() as usize).max(1) - 1;
            let truth = exact[idx];
            let bound = h.percentile_upper_bound(q);
            assert!(bound >= truth, "q={q}: bound {bound} < exact {truth}");
        }
        assert_eq!(LogHistogram::new().percentile_upper_bound(0.99), 0);
    }

    #[test]
    fn log_histogram_matches_dense_histogram_on_a_real_run() {
        // Below DENSE_HISTOGRAM_NODE_LIMIT both forms are filled; the
        // log buckets must be exactly the dense vector folded by log₂.
        let net = FibonacciNet::classical(8);
        let pkts = uniform(net.len(), 400, 64, 9);
        let stats = simulate(&net, &pkts, 100_000);
        assert_eq!(
            stats.latency_buckets.count() as usize,
            stats.delivered,
            "every delivery lands in exactly one bucket"
        );
        let mut folded = LogHistogram::new();
        for (lat, &c) in stats.latency_histogram.iter().enumerate() {
            for _ in 0..c {
                folded.record(lat as u64);
            }
        }
        assert_eq!(stats.latency_buckets, folded);
        // The bucketed p99 upper bound dominates the exact dense p99.
        assert!(stats.latency_buckets.percentile_upper_bound(0.99) >= stats.p99_latency);
    }
}

#[cfg(test)]
mod wormhole_tests {
    use super::*;
    use crate::fault::FaultSet;
    use crate::observer::{NoopObserver, SimObserver};
    use crate::router::{AdaptiveMinimal, EcubeRouter};
    use crate::switching::{SwitchingSpec, VcOccupancy, PACKET_LENGTH_UNITS};
    use crate::topology::{FibonacciNet, Hypercube, Mesh, Ring, Topology};
    use crate::traffic::{Packet, TrafficSpec};

    /// Degenerate wormhole: one flit per packet, one VC, effectively
    /// unbounded buffers — structurally the store-and-forward engine.
    fn degenerate() -> SwitchingSpec {
        SwitchingSpec::Wormhole {
            flit_size: PACKET_LENGTH_UNITS,
            vcs: 1,
            buf_flits: 1_000_000,
        }
    }

    #[test]
    fn store_and_forward_spec_delegates_to_the_packet_engine() {
        let q = Hypercube::new(4);
        let pkts = TrafficSpec::Uniform {
            count: 200,
            window: 50,
        }
        .generate(q.len(), 5);
        let saf = simulate_with(&q, &EcubeRouter, &pkts, 100_000);
        let via_spec = simulate_wormhole(
            &q,
            &EcubeRouter,
            &SwitchingSpec::StoreAndForward,
            &pkts,
            100_000,
            &mut NoopObserver,
        );
        assert_eq!(via_spec, saf);
    }

    #[test]
    fn degenerate_wormhole_matches_store_and_forward_on_small_topologies() {
        let spec = degenerate();
        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(13),
            &Mesh::new(4, 3),
        ] {
            for (count, window, seed) in [(60usize, 20u64, 1u64), (300, 80, 2), (1, 0, 3)] {
                let pkts = TrafficSpec::Uniform { count, window }.generate(topo.len(), seed);
                let router = topo.router();
                let saf = simulate_with(topo, &*router, &pkts, 100_000);
                let worm =
                    simulate_wormhole(topo, &*router, &spec, &pkts, 100_000, &mut NoopObserver);
                assert_eq!(worm, saf, "{} count={count} seed={seed}", topo.name());
            }
        }
    }

    #[test]
    fn degenerate_wormhole_matches_faulted_engine() {
        // The masked router's detour rule is load-aware (least-loaded
        // progressive link), and the wormhole engine routes heads when
        // they leave a buffer (credit needs the output known before
        // crossing) while the packet engine routes on arrival — so the
        // two can break detour ties differently and shift queueing
        // latencies by a cycle. The equivalence oracle is therefore the
        // packet-set one: identical delivered set, identical typed
        // drops, identical per-packet hop counts. Hops are pinned
        // exactly: every masked hop strictly decreases the degraded
        // distance, so each packet's hop count is at least that
        // distance, and matching both totals against the distance-sum
        // oracle forces per-packet equality in both engines.
        #[derive(Default)]
        struct DeliveryCensus {
            per_node: Vec<u64>,
        }
        impl SimObserver for DeliveryCensus {
            fn on_deliver(&mut self, _cycle: u64, node: u32, _latency: u64) {
                let i = node as usize;
                if self.per_node.len() <= i {
                    self.per_node.resize(i + 1, 0);
                }
                self.per_node[i] += 1;
            }
        }
        let net = FibonacciNet::classical(7);
        let faults = FaultSet::new([1u32, 5], [(0u32, 2u32)]);
        let pkts = TrafficSpec::Uniform {
            count: 250,
            window: 60,
        }
        .generate(net.len(), 9);
        let router = net.router();
        let spec = degenerate();
        let mut saf_census = DeliveryCensus::default();
        let saf = simulate_faulted(&net, &*router, &faults, &pkts, 100_000, &mut saf_census);
        let mut worm_census = DeliveryCensus::default();
        let worm = simulate_wormhole_faulted(
            &net,
            &*router,
            &spec,
            &faults,
            &pkts,
            100_000,
            &mut worm_census,
        );
        assert!(worm.dropped() > 0, "faults must actually bite");
        assert_eq!(worm.offered, saf.offered);
        assert_eq!(worm.delivered, saf.delivered);
        assert_eq!(worm.dropped_dead_endpoint, saf.dropped_dead_endpoint);
        assert_eq!(worm.dropped_unreachable, saf.dropped_unreachable);
        assert_eq!(
            worm_census.per_node, saf_census.per_node,
            "same delivered packet set"
        );
        // Per-packet hop oracle: admitted packets cost exactly their
        // degraded-graph distance.
        let masks = faults.masks(net.graph());
        let dist = crate::dist::DistanceTable::degraded(net.graph(), &masks);
        let expected: u64 = pkts
            .iter()
            .filter(|p| {
                p.src != p.dst
                    && masks.node_alive(p.src)
                    && masks.node_alive(p.dst)
                    && dist.reachable(p.src, p.dst)
            })
            .map(|p| dist.distance(p.src, p.dst) as u64)
            .sum();
        assert_eq!(saf.total_hops, expected);
        assert_eq!(worm.total_hops, expected);
    }

    #[test]
    fn empty_fault_set_delegates_to_the_healthy_wormhole_engine() {
        let q = Hypercube::new(3);
        let pkts = TrafficSpec::Uniform {
            count: 40,
            window: 10,
        }
        .generate(q.len(), 3);
        let spec = SwitchingSpec::Wormhole {
            flit_size: 8,
            vcs: 2,
            buf_flits: 2,
        };
        let healthy = simulate_wormhole(&q, &EcubeRouter, &spec, &pkts, 100_000, &mut NoopObserver);
        let faulted = simulate_wormhole_faulted(
            &q,
            &EcubeRouter,
            &spec,
            &FaultSet::default(),
            &pkts,
            100_000,
            &mut NoopObserver,
        );
        assert_eq!(faulted, healthy);
    }

    #[test]
    fn multi_flit_packet_pipelines_at_distance_plus_serialization() {
        // One 4-flit packet over 4 hops: the tail leaves the source at
        // cycle 3 and crosses 4 links — latency dist + flits − 1 = 7.
        let q = Hypercube::new(4);
        let pkts = vec![Packet {
            src: 0b0000,
            dst: 0b1111,
            inject_time: 0,
        }];
        let spec = SwitchingSpec::Wormhole {
            flit_size: 8, // 32 / 8 = 4 flits
            vcs: 1,
            buf_flits: 4,
        };
        let stats = simulate_wormhole(&q, &EcubeRouter, &spec, &pkts, 1000, &mut NoopObserver);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.mean_latency, 7.0);
        assert_eq!(stats.makespan, 7);
        assert_eq!(stats.total_hops, 4, "hops count the head flit only");
    }

    #[test]
    fn tight_buffers_drain_on_order_based_topologies() {
        // buf_flits = 1 with multi-flit packets is the hardest blocking
        // regime; order-based VC selection must still drain everything.
        let spec = SwitchingSpec::Wormhole {
            flit_size: 8,
            vcs: 2,
            buf_flits: 1,
        };
        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(12),
            &Mesh::new(4, 3),
        ] {
            let pkts = TrafficSpec::Uniform {
                count: 200,
                window: 60,
            }
            .generate(topo.len(), 11);
            let router = topo.router();
            let stats =
                simulate_wormhole(topo, &*router, &spec, &pkts, 4_000_000, &mut NoopObserver);
            assert_eq!(
                stats.delivered + stats.dropped(),
                stats.offered,
                "{} must drain under tight buffers",
                topo.name()
            );
        }
    }

    #[test]
    fn self_addressed_and_zero_cap_match_packet_engine_conventions() {
        let q = Hypercube::new(3);
        let spec = degenerate();
        let selfed = vec![Packet {
            src: 2,
            dst: 2,
            inject_time: 5,
        }];
        let stats = simulate_wormhole(&q, &EcubeRouter, &spec, &selfed, 100, &mut NoopObserver);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.makespan, 0);
        let capped = simulate_wormhole(
            &q,
            &EcubeRouter,
            &spec,
            &[Packet {
                src: 0,
                dst: 7,
                inject_time: 0,
            }],
            0,
            &mut NoopObserver,
        );
        assert_eq!(capped.delivered, 0);
        assert_eq!(capped.offered, 1);
    }

    #[test]
    fn vc_occupancy_observer_profiles_wormhole_runs() {
        let r = Ring::new(12);
        let pkts = TrafficSpec::Uniform {
            count: 150,
            window: 40,
        }
        .generate(r.len(), 7);
        let spec = SwitchingSpec::Wormhole {
            flit_size: 8,
            vcs: 2,
            buf_flits: 2,
        };
        let router = r.router();
        let mut occ = VcOccupancy::new();
        let stats = simulate_wormhole(&r, &*router, &spec, &pkts, 1_000_000, &mut occ);
        assert_eq!(stats.delivered, stats.offered);
        assert!(occ.total_flit_hops() > 0);
        assert!(
            occ.total_flit_hops() >= stats.total_hops,
            "every packet hop moves at least its head flit"
        );
        // The ring's dateline forces some traffic onto VC level 1.
        assert!(occ.flit_hops(0) > 0);
        assert!(occ.flit_hops(1) > 0, "wrap routes must escape to VC 1");
        // Store-and-forward runs emit no flit events at all.
        let mut saf_occ = VcOccupancy::new();
        simulate_wormhole(
            &r,
            &*router,
            &SwitchingSpec::StoreAndForward,
            &pkts,
            1_000_000,
            &mut saf_occ,
        );
        assert_eq!(saf_occ.total_flit_hops(), 0);
    }

    #[test]
    fn adaptive_routing_still_drains_with_enough_vcs_and_credit() {
        // Adaptive hops are not order-based; with roomy buffers the run
        // must still complete (deadlock freedom is best-effort there,
        // but ample credit keeps the network live).
        let q = Hypercube::new(4);
        let pkts = TrafficSpec::Uniform {
            count: 150,
            window: 40,
        }
        .generate(q.len(), 13);
        let spec = SwitchingSpec::Wormhole {
            flit_size: 16,
            vcs: 3,
            buf_flits: 64,
        };
        let stats = simulate_wormhole(
            &q,
            &AdaptiveMinimal::new(&q),
            &spec,
            &pkts,
            4_000_000,
            &mut NoopObserver,
        );
        assert_eq!(stats.delivered, stats.offered);
    }
}
