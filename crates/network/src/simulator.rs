//! Synchronous store-and-forward network simulator.
//!
//! Model: time advances in cycles. Every node has one FIFO output queue per
//! neighbor (virtual-channel-free store-and-forward); each directed link
//! moves at most one packet per cycle. Arriving packets are re-enqueued
//! toward their next hop (computed by a [`Router`]) or retired with their
//! latency recorded. The model is deliberately simple — the experiments
//! compare *topologies under identical rules*, which is the shape of the
//! 1993-era evaluations.
//!
//! ## Engine
//!
//! [`simulate_observed`] is an **arena-backed active-set** engine. All
//! per-packet and per-link state lives in flat arrays
//! (see [`arena`](crate::arena)): in-flight packets sit in a
//! struct-of-arrays [`PacketSlab`] and are referred to by `u32` id, and
//! every directed link owns a fixed-stride ring-buffer FIFO in one
//! contiguous [`LinkQueues`] arena indexed by the graph's directed-edge
//! index (`offsets[u] + slot`), spilling to an overflow list only when a
//! link saturates. Each cycle touches only the worklist of nodes that
//! actually hold packets — so an idle or lightly loaded cycle costs
//! `O(active · degree)`, not `O(n · degree)` — and empty stretches
//! between injections are skipped entirely.
//!
//! Routing takes one of two monomorphized paths: when the workload
//! amortises the build, deterministic policies are tabulated once into a
//! dense [`NextHopTable`] ([`Router::precompute`]) and each hop is a
//! single load; otherwise the policy is called per hop with the live
//! link-load view and the `(node, neighbor) → slot` answer comes from a
//! binary search in the node's (already cache-hot) neighbor slice.
//! Either way the event stream observers see is identical — the table is
//! only ever built for policies whose tabulated choice equals their
//! per-hop choice.
//!
//! The function is generic over the topology, the router, *and* the
//! attached [`SimObserver`], so concrete callers monomorphize —
//! [`simulate_with`] (no observer) compiles to the same hot loop as
//! before observers existed. `&dyn Topology` still works (the bench bins
//! use it) because the bound is `?Sized`.
//!
//! The seed's original engine — full node scan every cycle, binary search
//! per hop — is preserved as [`simulate_reference`]: it is the behavioural
//! oracle the property tests compare against and the baseline the sweep
//! binary measures speedups over. [`simulate_faulted_reference`] extends
//! the same full-scan oracle to degraded networks.
//!
//! [`simulate_collective`] runs tree collectives
//! ([`CopyPlan`]) on the same arena storage
//! with **packet replication at intermediate nodes** instead of
//! end-to-end routing; its completion oracle is the static
//! [`BroadcastSchedule`](crate::broadcast::BroadcastSchedule) round
//! count.
//!
//! [`simulate_wormhole`] / [`simulate_wormhole_faulted`] run the same
//! workloads under flit-level **wormhole switching** with virtual
//! channels ([`SwitchingSpec`]): packets stretch across chains of
//! (link × VC) flit buffers with credit backpressure, and VC selection
//! follows the topology's
//! [`channel_class`](crate::topology::Topology::channel_class) order so
//! blocking is deadlock-free by construction — see the
//! [`switching`](crate::switching) module for the model and the proof
//! sketch. A degenerate wormhole configuration (one flit per packet, one
//! VC, effectively unbounded buffers) reproduces the store-and-forward
//! engine's results exactly; the property tests gate on that equivalence.

use std::collections::VecDeque;

use fibcube_graph::csr::CsrGraph;

use crate::arena::{FlitQueues, LinkQueues, PacketSlab, NO_COPY};
use crate::collective::CopyPlan;
use crate::fault::FaultSet;
use crate::observer::{NoopObserver, SimObserver};
use crate::router::{FaultMaskingRouter, LinkLoad, NextHopTable, Router};
use crate::switching::SwitchingSpec;
use crate::topology::Topology;
use crate::traffic::Packet;

/// Why a packet was dropped at injection instead of routed — the typed
/// accounting behind [`SimStats::dropped_dead_endpoint`] /
/// [`SimStats::dropped_unreachable`] and the
/// [`on_drop`](SimObserver::on_drop) observer hook. Drops only happen on
/// degraded networks ([`simulate_faulted`]); the healthy engine never
/// drops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The packet's source or destination node failed.
    DeadEndpoint,
    /// Both endpoints survive, but the faults disconnect them.
    Unreachable,
}

/// Aggregate results of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimStats {
    /// Packets handed to the simulator.
    pub offered: usize,
    /// Packets delivered before the cycle cap.
    pub delivered: usize,
    /// Packets dropped at injection because their source or destination
    /// node failed (degraded runs only).
    pub dropped_dead_endpoint: usize,
    /// Packets dropped at injection because the faults disconnect their
    /// (surviving) endpoints (degraded runs only).
    pub dropped_unreachable: usize,
    /// Cycle at which the last packet was delivered (0 when none).
    pub makespan: u64,
    /// Mean end-to-end latency (inject → arrival) of delivered packets.
    pub mean_latency: f64,
    /// Exact latency histogram: `hist[l]` = packets delivered with
    /// latency `l`. Kept only up to [`DENSE_HISTOGRAM_NODE_LIMIT`] nodes
    /// — empty (not truncated) beyond it, where the streaming
    /// [`latency_buckets`](SimStats::latency_buckets) carry the
    /// distribution in constant space.
    pub latency_histogram: Vec<u64>,
    /// Streaming log₂-bucketed latency histogram — always populated, the
    /// scale-safe view of the latency distribution.
    pub latency_buckets: LogHistogram,
    /// 99th-percentile latency. Exact below
    /// [`DENSE_HISTOGRAM_NODE_LIMIT`] nodes; the log-bucket upper bound
    /// beyond.
    pub p99_latency: u64,
    /// Total packet-hops transmitted (link utilisation numerator).
    pub total_hops: u64,
    /// Delivered packets per cycle (throughput).
    pub throughput: f64,
}

impl SimStats {
    /// Total typed drops. Packet conservation reads
    /// `offered == delivered + dropped() + still-in-flight`, where the
    /// in-flight remainder is nonzero only when the cycle cap truncated
    /// the run.
    pub fn dropped(&self) -> usize {
        self.dropped_dead_endpoint + self.dropped_unreachable
    }
}

/// The reference engines' per-packet record (the arena engine keeps this
/// state in the [`PacketSlab`] columns instead).
#[derive(Clone, Debug)]
struct InFlight {
    dst: u32,
    inject_time: u64,
}

/// Occupancy view of one node's output links, handed to adaptive routers:
/// a window into the [`LinkQueues`] occupancy column.
struct NodeLoad<'a> {
    loads: &'a [u32],
    base: usize,
}

impl LinkLoad for NodeLoad<'_> {
    fn load(&self, slot: usize) -> usize {
        self.loads[self.base + slot] as usize
    }
}

/// Node count past which the engines stop keeping the dense per-latency
/// histogram (which grows with the observed max latency) and rely on the
/// constant-space [`LogHistogram`] instead. 64 Ki nodes keeps every
/// shipped small/medium topology byte-identical to the seed while the
/// million-node scale runs stay `O(1)` in histogram memory.
pub const DENSE_HISTOGRAM_NODE_LIMIT: usize = 65_536;

/// Streaming log₂-bucketed latency histogram: 64 fixed buckets, `O(1)`
/// record, 512 bytes total — the memory-lean companion to the exact
/// [`SimStats::latency_histogram`]. Bucket `i` counts deliveries with
/// latency in `[2^i − 1, 2^{i+1} − 2]` (bucket 0 is exactly latency 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 64],
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram { buckets: [0; 64] }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one delivery at `lat` cycles.
    #[inline]
    pub fn record(&mut self, lat: u64) {
        // lat + 1 ∈ [2^i, 2^{i+1}) ⇒ bucket i; lat = u64::MAX saturates
        // into the top bucket rather than wrapping.
        let i = 63 - lat.saturating_add(1).leading_zeros() as usize;
        self.buckets[i] += 1;
    }

    /// The 64 bucket counts.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Inclusive latency range `[lo, hi]` covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        assert!(i < 64);
        let lo = (1u64 << i) - 1;
        let hi = if i == 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 2
        };
        (lo, hi)
    }

    /// Total recorded deliveries.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 for the
    /// empty histogram) — the scale-mode stand-in for an exact
    /// percentile, never below the true value.
    pub fn percentile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let threshold = (total as f64 * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= threshold {
                return LogHistogram::bucket_range(i).1;
            }
        }
        LogHistogram::bucket_range(63).1
    }
}

/// Accumulates delivery statistics shared by both engines.
#[derive(Default)]
struct StatsAcc {
    delivered: usize,
    dropped_dead_endpoint: usize,
    dropped_unreachable: usize,
    total_latency: u64,
    hist: Vec<u64>,
    buckets: LogHistogram,
    /// Keep the dense per-latency vector? Off past
    /// [`DENSE_HISTOGRAM_NODE_LIMIT`] nodes.
    dense: bool,
    total_hops: u64,
    makespan: u64,
}

impl StatsAcc {
    /// Accumulator sized for an `n`-node network: the dense histogram is
    /// kept only below [`DENSE_HISTOGRAM_NODE_LIMIT`].
    fn for_network(n: usize) -> StatsAcc {
        StatsAcc {
            dense: n <= DENSE_HISTOGRAM_NODE_LIMIT,
            ..StatsAcc::default()
        }
    }

    fn deliver(&mut self, now: u64, inject_time: u64) {
        self.delivered += 1;
        let lat = now - inject_time;
        self.total_latency += lat;
        if self.dense {
            bump(&mut self.hist, lat);
        }
        self.buckets.record(lat);
        self.makespan = self.makespan.max(now);
    }

    /// A self-addressed packet: delivered at latency 0 without touching
    /// the makespan (it never occupied a link — seed semantics).
    fn deliver_instant(&mut self) {
        self.delivered += 1;
        if self.dense {
            bump(&mut self.hist, 0);
        }
        self.buckets.record(0);
    }

    fn finish(self, offered: usize) -> SimStats {
        let mean_latency = if self.delivered > 0 {
            self.total_latency as f64 / self.delivered as f64
        } else {
            0.0
        };
        let p99 = if self.dense {
            percentile(&self.hist, 0.99)
        } else {
            self.buckets.percentile_upper_bound(0.99)
        };
        let throughput = if self.makespan > 0 {
            self.delivered as f64 / self.makespan as f64
        } else {
            self.delivered as f64
        };
        SimStats {
            offered,
            delivered: self.delivered,
            dropped_dead_endpoint: self.dropped_dead_endpoint,
            dropped_unreachable: self.dropped_unreachable,
            makespan: self.makespan,
            mean_latency,
            latency_histogram: self.hist,
            latency_buckets: self.buckets,
            p99_latency: p99,
            total_hops: self.total_hops,
            throughput,
        }
    }
}

/// Runs the store-and-forward simulation with the topology's preferred
/// router (e-cube on hypercubes, precomputed canonical-path on Fibonacci
/// networks, the built-in rule elsewhere).
///
/// `max_cycles` caps the run so that pathological configurations
/// terminate; undelivered packets are reported via `offered − delivered`.
pub fn simulate<T: Topology + ?Sized>(
    topology: &T,
    packets: &[Packet],
    max_cycles: u64,
) -> SimStats {
    simulate_with(topology, &*topology.router(), packets, max_cycles)
}

/// How the engine resolves each hop: a dense precomputed table (one load
/// per hop) or per-hop policy calls (live link-load view plus a slot
/// search in the node's neighbor list — a couple of compares in one
/// already-hot cache line, which beats any big-table lookup here).
enum Routing<'t, R: ?Sized> {
    Table(NextHopTable),
    PerHop(&'t R),
}

/// Picks the routing path for one run: tabulate when the expected number
/// of route lookups (≈ `packets × diameter/2`, a proxy for packets ×
/// average distance) amortises the `O(n²)` table build *and* the policy
/// can be tabulated at all. See [`NextHopTable`] for the trade-off.
fn routing_for<'t, T, R>(topology: &T, router: &'t R, packets: usize) -> Routing<'t, R>
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
{
    let g = topology.graph();
    let n = g.num_vertices() as u64;
    let lookups = (packets as u64).saturating_mul((topology.diameter_bound() as u64 / 2).max(1));
    if lookups >= n.saturating_mul(n) {
        if let Some(table) = router.precompute(g) {
            return Routing::Table(table);
        }
    }
    Routing::PerHop(router)
}

/// The engine's mutable link/node state: the ring-buffer FIFOs plus the
/// per-node occupancy counters and occupied-slot bitmasks that keep the
/// worklist and the forward scan cheap. Grouped so the routing helper
/// takes one handle.
struct Fabric {
    queues: LinkQueues,
    /// Queued packets per node (drives the active worklist).
    occupancy: Vec<u32>,
    /// Per-node bitmask of output slots holding packets, so the forward
    /// phase pops exactly the occupied queues instead of probing every
    /// out-edge of every active node. Empty (disabled — the forward
    /// phase falls back to the plain edge scan) in the off-design case
    /// of degrees above 64.
    slot_mask: Vec<u64>,
}

impl Fabric {
    fn new(g: &CsrGraph) -> Fabric {
        let n = g.num_vertices();
        let masked_scan = g.max_degree() <= 64;
        Fabric {
            queues: LinkQueues::new(g.num_directed_edges()),
            occupancy: vec![0u32; n],
            slot_mask: vec![0; if masked_scan { n } else { 0 }],
        }
    }

    /// Routes packet `id` at `node`, enqueues it on the chosen output
    /// link, and marks that link's slot in the node's non-empty bitmask —
    /// the one mutation path shared by the injection and arrival phases.
    #[inline]
    fn route_and_enqueue<R: Router + ?Sized>(
        &mut self,
        g: &CsrGraph,
        routing: &Routing<'_, R>,
        node: u32,
        id: u32,
        dst: u32,
    ) {
        let base = g.edge_range(node).start;
        let e = match routing {
            Routing::Table(table) => table
                .next_edge(node, dst)
                .expect("routing a packet not yet at dst"),
            Routing::PerHop(router) => {
                let hop = {
                    let load = NodeLoad {
                        loads: self.queues.loads(),
                        base,
                    };
                    router
                        .next_hop(node, dst, &load)
                        .expect("routing a packet not yet at dst")
                };
                base + g
                    .slot_of(node, hop)
                    .expect("next_hop must return a neighbor")
            }
        };
        self.queues.push(e, id);
        if let Some(mask) = self.slot_mask.get_mut(node as usize) {
            *mask |= 1u64 << (e - base);
        }
        self.occupancy[node as usize] += 1;
    }

    /// Enqueues packet `id` directly on the directed edge `e` out of
    /// `node` — the collective path, where the next-copy table already
    /// names the edge and no routing policy is consulted.
    #[inline]
    fn enqueue_on_edge(&mut self, g: &CsrGraph, node: u32, e: usize, id: u32) {
        let base = g.edge_range(node).start;
        self.queues.push(e, id);
        if let Some(mask) = self.slot_mask.get_mut(node as usize) {
            *mask |= 1u64 << (e - base);
        }
        self.occupancy[node as usize] += 1;
    }
}

/// Runs the active-set store-and-forward simulation under an explicit
/// routing policy, with no observer attached. Equivalent to
/// [`simulate_observed`] with a [`NoopObserver`] — which monomorphizes
/// to the identical hot loop.
pub fn simulate_with<T, R>(
    topology: &T,
    router: &R,
    packets: &[Packet],
    max_cycles: u64,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
{
    simulate_observed(topology, router, packets, max_cycles, &mut NoopObserver)
}

/// Runs the active-set store-and-forward simulation under an explicit
/// routing policy, reporting every event to `observer` (see
/// [`SimObserver`] for the event contract). Generic over all three
/// parameters, so concrete call sites monomorphize the hot loop and a
/// no-op observer costs nothing; `?Sized` keeps `&dyn` topology/router
/// callers working.
pub fn simulate_observed<T, R, O>(
    topology: &T,
    router: &R,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    engine(topology, router, packets, max_cycles, observer, &AdmitAll)
}

/// Runs the active-set engine on the network degraded by `faults`: the
/// given `router` is wrapped in a [`FaultMaskingRouter`] so live packets
/// detour around dead nodes and links, while packets that *cannot* be
/// routed are counted as typed drops at injection ([`DropReason`]) —
/// dead source or destination, or surviving endpoints the faults
/// disconnect. Nothing is silently stranded:
/// `offered == delivered + dropped + still-in-flight` always holds.
///
/// An empty `faults` set delegates to [`simulate_observed`] — the
/// zero-fault run is packet-for-packet identical to the healthy engine.
pub fn simulate_faulted<T, R, O>(
    topology: &T,
    router: &R,
    faults: &FaultSet,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    if faults.is_empty() {
        return simulate_observed(topology, router, packets, max_cycles, observer);
    }
    let masked = FaultMaskingRouter::new(topology.graph(), router, faults);
    let admission = FaultAdmission { masked: &masked };
    engine(topology, &masked, packets, max_cycles, observer, &admission)
}

/// Spawns the copy of plan edge `idx` at its parent `u`: allocates the
/// packet in the slab (chaining the next sibling in one-port mode),
/// reports the injection, and enqueues it on the tree edge the plan
/// resolved at compile time. Shared by the cycle-0 source prelude, the
/// replicate-on-delivery path, and the one-port sibling chain.
#[allow(clippy::too_many_arguments)]
#[inline]
fn spawn_copy<O: SimObserver>(
    g: &CsrGraph,
    plan: &CopyPlan,
    slab: &mut PacketSlab,
    fabric: &mut Fabric,
    on_list: &mut [bool],
    active: &mut Vec<u32>,
    observer: &mut O,
    cycle: u64,
    u: u32,
    idx: usize,
) {
    let child = plan.child(idx);
    let id = slab.alloc(child, cycle);
    if plan.one_port() && idx + 1 < plan.children_range(u).end {
        slab.set_next_copy(id, (idx + 1) as u32);
    }
    observer.on_inject(cycle, u, child);
    fabric.enqueue_on_edge(g, u, plan.edge(idx), id);
    if !on_list[u as usize] {
        on_list[u as usize] = true;
        active.push(u);
    }
}

/// Runs a tree collective ([`CopyPlan`]) through the arena engine:
/// packets are **replicated at intermediate nodes** instead of routed
/// end to end. The source emits its first copies at cycle 0; every
/// delivery informs the receiving node, which starts forwarding to its
/// own children — all of them at once (all-port), or one per cycle
/// chained through the slab's next-copy column (one-port: the follow-up
/// copy is spawned when its predecessor departs, so an informed node
/// occupies exactly one output port per cycle). Copies travel exactly
/// one tree edge, so no routing policy is consulted; the plan resolved
/// every directed edge at compile time.
///
/// Intended recipients the plan could not cover (dead or disconnected
/// by the fault set it was compiled against) are reported as typed
/// drops at cycle 0 — packet conservation extends to replicated copies:
/// uncapped, `offered == delivered + dropped` with
/// `offered = tree copies + drops`; under a cycle cap the remainder is
/// copies still queued *or not yet spawned* (a truncated chain).
///
/// Returns the run's [`SimStats`] plus the number of *intended targets*
/// reached (relay deliveries count toward `delivered` but not toward
/// the target tally). On an uncontended network the makespan equals the
/// static schedule's round count — the gating oracle of the collective
/// path.
pub fn simulate_collective<T, O>(
    topology: &T,
    plan: &CopyPlan,
    max_cycles: u64,
    observer: &mut O,
) -> (SimStats, usize)
where
    T: Topology + ?Sized,
    O: SimObserver,
{
    let n = topology.len();
    let g = topology.graph();
    let offered = plan.offered();

    let mut slab = PacketSlab::new();
    let mut fabric = Fabric::new(g);
    let masked_scan = !fabric.slot_mask.is_empty();
    let mut on_list = vec![false; n];
    let mut active: Vec<u32> = Vec::new();
    let mut next_active: Vec<u32> = Vec::new();
    let mut arrivals: Vec<(u32, u32)> = Vec::new();
    // One-port sibling spawns, deferred past the forward phase so a
    // follow-up copy never departs in the cycle its predecessor did.
    let mut chained: Vec<(u32, usize)> = Vec::new();

    let mut acc = StatsAcc::for_network(n);
    let mut in_flight = 0usize;
    let mut reached_targets = 0usize;
    let mut started = false;

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        if !started {
            started = true;
            // Cycle-0 prelude: type the recipients the plan cannot cover,
            // then let the source start its children.
            for &t in plan.dropped_dead() {
                observer.on_inject(0, plan.source(), t);
                acc.dropped_dead_endpoint += 1;
                observer.on_drop(0, plan.source(), t, DropReason::DeadEndpoint);
            }
            for &t in plan.dropped_unreachable() {
                observer.on_inject(0, plan.source(), t);
                acc.dropped_unreachable += 1;
                observer.on_drop(0, plan.source(), t, DropReason::Unreachable);
            }
            let src = plan.source();
            let range = plan.children_range(src);
            let first = if plan.one_port() {
                range.start..range.end.min(range.start + 1)
            } else {
                range
            };
            for idx in first {
                spawn_copy(
                    g,
                    plan,
                    &mut slab,
                    &mut fabric,
                    &mut on_list,
                    &mut active,
                    observer,
                    0,
                    src,
                    idx,
                );
                in_flight += 1;
            }
        }
        if in_flight == 0 {
            break;
        }

        // Forward phase: identical FIFO/worklist discipline to the
        // unicast engine, plus the next-copy chain capture at pop time.
        active.sort_unstable();
        for &u in &active {
            on_list[u as usize] = false;
            let base = g.edge_range(u).start;
            if masked_scan {
                let mut mask = fabric.slot_mask[u as usize];
                let mut remaining = mask;
                while remaining != 0 {
                    let slot = remaining.trailing_zeros() as usize;
                    remaining &= remaining - 1;
                    let e = base + slot;
                    let id = fabric
                        .queues
                        .pop(e)
                        .expect("mask bit implies a queued packet");
                    if fabric.queues.load(e) == 0 {
                        mask &= !(1u64 << slot);
                    }
                    let v = g.target(e);
                    observer.on_hop(cycle, u, v, e);
                    slab.record_hop(id);
                    let next = slab.next_copy(id);
                    if next != NO_COPY {
                        chained.push((u, next as usize));
                    }
                    arrivals.push((v, id));
                    fabric.occupancy[u as usize] -= 1;
                    acc.total_hops += 1;
                }
                fabric.slot_mask[u as usize] = mask;
            } else {
                for e in g.edge_range(u) {
                    if let Some(id) = fabric.queues.pop(e) {
                        let v = g.target(e);
                        observer.on_hop(cycle, u, v, e);
                        slab.record_hop(id);
                        let next = slab.next_copy(id);
                        if next != NO_COPY {
                            chained.push((u, next as usize));
                        }
                        arrivals.push((v, id));
                        fabric.occupancy[u as usize] -= 1;
                        acc.total_hops += 1;
                    }
                }
            }
            if fabric.occupancy[u as usize] > 0 {
                on_list[u as usize] = true;
                next_active.push(u);
            }
        }
        active.clear();
        std::mem::swap(&mut active, &mut next_active);

        // Arrivals (at the cycle + 1 boundary): every copy ends exactly
        // at its tree child — deliver it, then replicate there.
        let now = cycle + 1;
        for (node, id) in arrivals.drain(..) {
            debug_assert_eq!(node, slab.dst(id), "copies travel exactly one tree edge");
            in_flight -= 1;
            let inject_time = slab.inject(id);
            acc.deliver(now, inject_time);
            observer.on_deliver(now, node, now - inject_time);
            slab.release(id);
            if plan.is_target(node) {
                reached_targets += 1;
            }
            let range = plan.children_range(node);
            let first = if plan.one_port() {
                range.start..range.end.min(range.start + 1)
            } else {
                range
            };
            for idx in first {
                spawn_copy(
                    g,
                    plan,
                    &mut slab,
                    &mut fabric,
                    &mut on_list,
                    &mut active,
                    observer,
                    now,
                    node,
                    idx,
                );
                in_flight += 1;
            }
        }
        // One-port siblings chained off copies that departed this cycle:
        // enqueued now, so they depart next cycle — one port per node per
        // cycle, exactly the telephone model.
        for (u, idx) in chained.drain(..) {
            spawn_copy(
                g,
                plan,
                &mut slab,
                &mut fabric,
                &mut on_list,
                &mut active,
                observer,
                now,
                u,
                idx,
            );
            in_flight += 1;
        }
        observer.on_cycle_end(cycle, in_flight);
        cycle += 1;
    }

    (acc.finish(offered), reached_targets)
}

/// Injection-time admission policy: decides per packet whether the
/// engine routes it or drops it with a typed reason. The healthy engine
/// uses the zero-cost [`AdmitAll`]; the degraded engine consults the
/// fault masks.
trait Admission {
    /// `Some(reason)` to drop the packet at injection, `None` to route.
    fn verdict(&self, src: u32, dst: u32) -> Option<DropReason>;
}

/// Admits everything — monomorphizes the drop branch away entirely.
struct AdmitAll;

impl Admission for AdmitAll {
    #[inline]
    fn verdict(&self, _src: u32, _dst: u32) -> Option<DropReason> {
        None
    }
}

/// Admission against a [`FaultMaskingRouter`]'s masks and healthy-BFS
/// reachability.
struct FaultAdmission<'a, 'b, R: Router + ?Sized> {
    masked: &'a FaultMaskingRouter<'b, R>,
}

impl<R: Router + ?Sized> Admission for FaultAdmission<'_, '_, R> {
    fn verdict(&self, src: u32, dst: u32) -> Option<DropReason> {
        if !self.masked.node_alive(src) || !self.masked.node_alive(dst) {
            Some(DropReason::DeadEndpoint)
        } else if src != dst && !self.masked.reachable(src, dst) {
            Some(DropReason::Unreachable)
        } else {
            None
        }
    }
}

/// The shared active-set engine body behind [`simulate_observed`] and
/// [`simulate_faulted`].
fn engine<T, R, O, A>(
    topology: &T,
    router: &R,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
    admission: &A,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
    A: Admission,
{
    let n = topology.len();
    let g = topology.graph();
    let routing = routing_for(topology, router, packets.len());

    // The arena core: SoA packet slab + ring-buffer link FIFOs with
    // their per-node occupancy/bitmask bookkeeping.
    let mut slab = PacketSlab::new();
    let mut fabric = Fabric::new(g);
    let masked_scan = !fabric.slot_mask.is_empty();
    // The active-node worklist.
    let mut on_list = vec![false; n];
    let mut active: Vec<u32> = Vec::new();
    let mut next_active: Vec<u32> = Vec::new();
    let mut arrivals: Vec<(u32, u32)> = Vec::new();

    // Injection list sorted by time.
    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let mut next_inject = 0usize;

    let mut acc = StatsAcc::for_network(n);
    let mut in_flight = 0usize;

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        // Skip straight to the next injection when the network is empty.
        if in_flight == 0 {
            match inj.get(next_inject) {
                None => break,
                Some(p) if p.inject_time > cycle => {
                    if p.inject_time >= max_cycles {
                        break;
                    }
                    cycle = p.inject_time;
                }
                Some(_) => {}
            }
        }

        // Inject everything due this cycle.
        while next_inject < inj.len() && inj[next_inject].inject_time <= cycle {
            let p = inj[next_inject];
            next_inject += 1;
            observer.on_inject(cycle, p.src, p.dst);
            if let Some(reason) = admission.verdict(p.src, p.dst) {
                match reason {
                    DropReason::DeadEndpoint => acc.dropped_dead_endpoint += 1,
                    DropReason::Unreachable => acc.dropped_unreachable += 1,
                }
                observer.on_drop(cycle, p.src, p.dst, reason);
                continue;
            }
            if p.src == p.dst {
                // Degenerate: counts as instantly delivered.
                acc.deliver_instant();
                observer.on_deliver(cycle, p.dst, 0);
                continue;
            }
            let id = slab.alloc(p.dst, p.inject_time);
            fabric.route_and_enqueue(g, &routing, p.src, id, p.dst);
            in_flight += 1;
            if !on_list[p.src as usize] {
                on_list[p.src as usize] = true;
                active.push(p.src);
            }
        }

        // Each directed link of an active node forwards one packet.
        // Ascending node order makes same-cycle FIFO tie-breaking match
        // the reference engine's full scan exactly.
        active.sort_unstable();
        for &u in &active {
            on_list[u as usize] = false;
            let base = g.edge_range(u).start;
            if masked_scan {
                // Visit only the occupied slots, lowest slot first — the
                // same order the plain scan forwards in.
                let mut mask = fabric.slot_mask[u as usize];
                let mut remaining = mask;
                while remaining != 0 {
                    let slot = remaining.trailing_zeros() as usize;
                    remaining &= remaining - 1;
                    let e = base + slot;
                    let id = fabric
                        .queues
                        .pop(e)
                        .expect("mask bit implies a queued packet");
                    if fabric.queues.load(e) == 0 {
                        mask &= !(1u64 << slot);
                    }
                    let v = g.target(e);
                    observer.on_hop(cycle, u, v, e);
                    slab.record_hop(id);
                    arrivals.push((v, id));
                    fabric.occupancy[u as usize] -= 1;
                    acc.total_hops += 1;
                }
                fabric.slot_mask[u as usize] = mask;
            } else {
                for e in g.edge_range(u) {
                    if let Some(id) = fabric.queues.pop(e) {
                        let v = g.target(e);
                        observer.on_hop(cycle, u, v, e);
                        slab.record_hop(id);
                        arrivals.push((v, id));
                        fabric.occupancy[u as usize] -= 1;
                        acc.total_hops += 1;
                    }
                }
            }
            if fabric.occupancy[u as usize] > 0 {
                on_list[u as usize] = true;
                next_active.push(u);
            }
        }
        active.clear();
        std::mem::swap(&mut active, &mut next_active);

        // Process arrivals (at the cycle + 1 boundary).
        let now = cycle + 1;
        for (node, id) in arrivals.drain(..) {
            let dst = slab.dst(id);
            if node == dst {
                in_flight -= 1;
                let inject_time = slab.inject(id);
                debug_assert!(
                    slab.hops(id) as u64 <= now - inject_time,
                    "hops can never exceed latency"
                );
                acc.deliver(now, inject_time);
                observer.on_deliver(now, node, now - inject_time);
                slab.release(id);
            } else {
                fabric.route_and_enqueue(g, &routing, node, id, dst);
                if !on_list[node as usize] {
                    on_list[node as usize] = true;
                    active.push(node);
                }
            }
        }
        observer.on_cycle_end(cycle, in_flight);
        cycle += 1;
    }

    acc.finish(packets.len())
}

// ---------------------------------------------------------------------
// Wormhole switching: the flit-level engine.
// ---------------------------------------------------------------------

/// Head-flit flag in a packed flit record (bit 56).
const FLIT_HEAD: u64 = 1 << 56;
/// Tail-flit flag in a packed flit record (bit 57). Single-flit packets
/// carry both flags.
const FLIT_TAIL: u64 = 1 << 57;
/// No packet claims this (edge × VC) buffer.
const NO_CLAIM: u32 = u32::MAX;
/// Arrival-list sentinel: the flit leaves the network at its destination
/// instead of entering a buffer.
const EJECT: u32 = u32::MAX;

/// Packs one flit: packet id in the low 32 bits, the index of the buffer
/// it occupies within its packet's reserved chain in bits 32..56, flags
/// above. Everything the forward phase needs travels in the queue word.
#[inline]
fn flit(id: u32, idx: usize, head: bool, tail: bool) -> u64 {
    debug_assert!(idx < (1 << 24), "path longer than 16M hops");
    let mut f = id as u64 | ((idx as u64) << 32);
    if head {
        f |= FLIT_HEAD;
    }
    if tail {
        f |= FLIT_TAIL;
    }
    f
}

/// The chain index of a packed flit.
#[inline]
fn flit_idx(f: u64) -> usize {
    ((f >> 32) & 0xFF_FFFF) as usize
}

/// Per-packet wormhole state in parallel columns indexed by slab id
/// (recycled with the slab's freelist, reset on allocation): the source,
/// the chain of buffer indices the head has reserved, the VC level and
/// last channel class driving VC selection, and the source-side streaming
/// progress.
#[derive(Default)]
struct WormState {
    src: Vec<u32>,
    /// Buffer indices (`edge * vcs + vc`) the head has claimed, in hop
    /// order — body flits follow this chain by their flit index.
    path: Vec<Vec<u32>>,
    level: Vec<u32>,
    last_class: Vec<u32>,
    flits_total: Vec<u32>,
    flits_sent: Vec<u32>,
    head_ejected: Vec<bool>,
}

impl WormState {
    fn reset(&mut self, id: u32, src: u32, flits: u32) {
        let i = id as usize;
        if self.src.len() <= i {
            let n = i + 1;
            self.src.resize(n, 0);
            self.path.resize_with(n, Vec::new);
            self.level.resize(n, 0);
            self.last_class.resize(n, 0);
            self.flits_total.resize(n, 0);
            self.flits_sent.resize(n, 0);
            self.head_ejected.resize(n, false);
        }
        self.src[i] = src;
        self.path[i].clear();
        self.level[i] = 0;
        self.last_class[i] = 0;
        self.flits_total[i] = flits;
        self.flits_sent[i] = 0;
        self.head_ejected[i] = false;
    }
}

/// Resolves the output edge for one hop — [`Fabric::route_and_enqueue`]'s
/// routing half, shared with the wormhole engine (which reserves buffers
/// instead of enqueuing packets).
#[inline]
fn route_edge<R: Router + ?Sized>(
    g: &CsrGraph,
    routing: &Routing<'_, R>,
    loads: &[u32],
    node: u32,
    dst: u32,
) -> usize {
    match routing {
        Routing::Table(table) => table
            .next_edge(node, dst)
            .expect("routing a packet not yet at dst"),
        Routing::PerHop(router) => {
            let base = g.edge_range(node).start;
            let hop = {
                let load = NodeLoad { loads, base };
                router
                    .next_hop(node, dst, &load)
                    .expect("routing a packet not yet at dst")
            };
            base + g
                .slot_of(node, hop)
                .expect("next_hop must return a neighbor")
        }
    }
}

/// Runs the flit-level wormhole engine under an explicit routing policy.
/// [`SwitchingSpec::StoreAndForward`] delegates to [`simulate_observed`]
/// — one entry point covers both switching models.
///
/// Model: each packet is [`SwitchingSpec::flits_per_packet`] flits. The
/// head flit claims a chain of (directed link × virtual channel) buffers
/// of `buf_flits` capacity, routing one hop per cycle exactly like the
/// store-and-forward engine; body flits stream behind it through the
/// same chain (one injected per cycle at the source) and the tail
/// releases each buffer as it passes — so a blocked packet occupies
/// buffers along its whole path, the defining wormhole behaviour.
/// Advancement is credit-based (a flit moves only when the next buffer
/// has space, counting same-cycle reservations) and each directed link
/// still moves at most one flit per cycle, scanning VCs lowest-first.
/// Virtual channels are keyed to
/// [`Topology::channel_class`]: a hop whose class does not increase
/// bumps the packet to the next VC level (clamped to `vcs − 1`), which
/// on order-based routes makes the channel-dependency graph acyclic —
/// see [`switching`](crate::switching) for the argument.
///
/// Packet-level accounting ([`SimStats`], [`SimObserver::on_hop`],
/// hop counts) follows the **head** flit, so a degenerate configuration
/// (one flit per packet, one VC, effectively unbounded buffers)
/// reproduces [`simulate_with`] exactly. Flit-level movement is
/// observable through [`SimObserver::on_flit_hop`].
pub fn simulate_wormhole<T, R, O>(
    topology: &T,
    router: &R,
    spec: &SwitchingSpec,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    match *spec {
        SwitchingSpec::StoreAndForward => {
            simulate_observed(topology, router, packets, max_cycles, observer)
        }
        SwitchingSpec::Wormhole { vcs, buf_flits, .. } => wormhole_engine(
            topology,
            router,
            spec.flits_per_packet(),
            vcs,
            buf_flits,
            packets,
            max_cycles,
            observer,
            &AdmitAll,
        ),
    }
}

/// [`simulate_wormhole`] on the network degraded by `faults`: the same
/// [`FaultMaskingRouter`] wrapping and typed injection drops as
/// [`simulate_faulted`], with flits detouring around dead nodes and
/// links. An empty fault set delegates to the healthy wormhole engine;
/// a [`SwitchingSpec::StoreAndForward`] spec delegates to
/// [`simulate_faulted`].
///
/// Fault detours are not order-based, so on degraded networks the VC
/// level can clamp at `vcs − 1` and deadlock freedom is best-effort —
/// the experiments keep the conservation invariant
/// `offered == delivered + dropped + still-in-flight` either way.
pub fn simulate_wormhole_faulted<T, R, O>(
    topology: &T,
    router: &R,
    spec: &SwitchingSpec,
    faults: &FaultSet,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    if faults.is_empty() {
        return simulate_wormhole(topology, router, spec, packets, max_cycles, observer);
    }
    match *spec {
        SwitchingSpec::StoreAndForward => {
            simulate_faulted(topology, router, faults, packets, max_cycles, observer)
        }
        SwitchingSpec::Wormhole { vcs, buf_flits, .. } => {
            let masked = FaultMaskingRouter::new(topology.graph(), router, faults);
            let admission = FaultAdmission { masked: &masked };
            wormhole_engine(
                topology,
                &masked,
                spec.flits_per_packet(),
                vcs,
                buf_flits,
                packets,
                max_cycles,
                observer,
                &admission,
            )
        }
    }
}

/// Tries to place packet `id`'s head flit into VC 0 of its first output
/// link: routes the first hop, checks the buffer's claim (multi-flit
/// packets need exclusive worm occupancy) and credit, and on success
/// starts the packet's chain. Shared by fresh injections and the pending
/// retry queue; a `false` return leaves the packet unplaced (its state
/// untouched) for retry next cycle.
#[allow(clippy::too_many_arguments)]
#[inline]
fn try_place_head<T, R, O>(
    topology: &T,
    g: &CsrGraph,
    routing: &Routing<'_, R>,
    queues: &mut FlitQueues,
    link_load: &mut [u32],
    claimed: &mut [u32],
    reserved: &[u32],
    worm: &mut WormState,
    slab: &PacketSlab,
    occupancy: &mut [u32],
    on_list: &mut [bool],
    active: &mut Vec<u32>,
    streams: &mut Vec<u32>,
    observer: &mut O,
    vcs: usize,
    buf_flits: u64,
    cycle: u64,
    id: u32,
) -> bool
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    let i = id as usize;
    let src = worm.src[i];
    let dst = slab.dst(id);
    let e0 = route_edge(g, routing, link_load, src, dst);
    let b0 = e0 * vcs;
    let multi = worm.flits_total[i] > 1;
    if multi && claimed[b0] != NO_CLAIM {
        return false;
    }
    if queues.load(b0) as u64 + reserved[b0] as u64 >= buf_flits {
        return false;
    }
    worm.level[i] = 0;
    worm.last_class[i] = topology.channel_class(src, g.target(e0));
    worm.path[i].push(b0 as u32);
    worm.flits_sent[i] = 1;
    if multi {
        claimed[b0] = id;
        streams.push(id);
    }
    queues.push(b0, flit(id, 0, true, !multi));
    link_load[e0] += 1;
    occupancy[src as usize] += 1;
    observer.on_flit_hop(cycle, e0, 0, queues.load(b0) as u32);
    if !on_list[src as usize] {
        on_list[src as usize] = true;
        active.push(src);
    }
    true
}

/// The shared flit-level engine body behind [`simulate_wormhole`] and
/// [`simulate_wormhole_faulted`]. See [`simulate_wormhole`] for the
/// model; the cycle structure deliberately mirrors [`engine`] phase for
/// phase (idle fast-forward, injection, forward scan in ascending node
/// and edge order, arrivals at the `cycle + 1` boundary) so the
/// degenerate configuration is event-for-event identical.
#[allow(clippy::too_many_arguments)]
fn wormhole_engine<T, R, O, A>(
    topology: &T,
    router: &R,
    flits_per_packet: u32,
    vcs: u32,
    buf_flits: u32,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
    admission: &A,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
    A: Admission,
{
    let n = topology.len();
    let g = topology.graph();
    let routing = routing_for(topology, router, packets.len());
    let vcs = vcs.max(1) as usize;
    let buf_flits = buf_flits.max(1) as u64;
    let fpp = flits_per_packet.max(1);
    let max_level = vcs as u32 - 1;

    let links = g.num_directed_edges();
    let mut queues = FlitQueues::new(links, vcs);
    // Aggregated per-link flit occupancy: drives the cheap forward-scan
    // skip and doubles as the load view adaptive routers consult.
    let mut link_load: Vec<u32> = vec![0; links];
    // Which multi-flit packet holds each buffer (worms may not
    // interleave; single-flit packets are self-contained and bypass
    // claims entirely).
    let mut claimed: Vec<u32> = vec![NO_CLAIM; links * vcs];
    // Same-cycle credit reservations, consumed by the arrival phase.
    let mut reserved: Vec<u32> = vec![0; links * vcs];

    let mut slab = PacketSlab::new();
    let mut worm = WormState::default();
    // Flits queued per node (drives the active worklist).
    let mut occupancy = vec![0u32; n];
    let mut on_list = vec![false; n];
    let mut active: Vec<u32> = Vec::new();
    let mut next_active: Vec<u32> = Vec::new();
    // (flit record, buffer index or EJECT, buffer-owning/destination node)
    let mut arrivals: Vec<(u64, u32, u32)> = Vec::new();
    // Heads that could not claim their first buffer, in injection order.
    let mut pending: VecDeque<u32> = VecDeque::new();
    // Multi-flit packets still streaming body flits from their source.
    let mut streams: Vec<u32> = Vec::new();

    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let mut next_inject = 0usize;

    let mut acc = StatsAcc::for_network(n);
    let mut in_flight = 0usize;

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        // Skip straight to the next injection when the network is empty.
        if in_flight == 0 {
            match inj.get(next_inject) {
                None => break,
                Some(p) if p.inject_time > cycle => {
                    if p.inject_time >= max_cycles {
                        break;
                    }
                    cycle = p.inject_time;
                }
                Some(_) => {}
            }
        }

        let mut progressed = false;

        // Streaming continuation: each multi-flit packet feeds at most
        // one body flit per cycle into its claimed first buffer. The
        // claim is released once the tail has entered the network.
        streams.retain(|&id| {
            let i = id as usize;
            let b0 = worm.path[i][0] as usize;
            if queues.load(b0) as u64 + reserved[b0] as u64 >= buf_flits {
                return true;
            }
            let sent = worm.flits_sent[i];
            let is_tail = sent + 1 == worm.flits_total[i];
            queues.push(b0, flit(id, 0, false, is_tail));
            let e0 = b0 / vcs;
            link_load[e0] += 1;
            let src = worm.src[i] as usize;
            occupancy[src] += 1;
            observer.on_flit_hop(cycle, e0, (b0 % vcs) as u32, queues.load(b0) as u32);
            if !on_list[src] {
                on_list[src] = true;
                active.push(src as u32);
            }
            worm.flits_sent[i] = sent + 1;
            progressed = true;
            if is_tail {
                if claimed[b0] == id {
                    claimed[b0] = NO_CLAIM;
                }
                false
            } else {
                true
            }
        });

        // Retry heads that failed to claim their first buffer, oldest
        // first; failures keep their order without blocking later ones.
        for _ in 0..pending.len() {
            let id = pending.pop_front().expect("iteration is len-bounded");
            if try_place_head(
                topology,
                g,
                &routing,
                &mut queues,
                &mut link_load,
                &mut claimed,
                &reserved,
                &mut worm,
                &slab,
                &mut occupancy,
                &mut on_list,
                &mut active,
                &mut streams,
                observer,
                vcs,
                buf_flits,
                cycle,
                id,
            ) {
                progressed = true;
            } else {
                pending.push_back(id);
            }
        }

        // Inject everything due this cycle (same admission and
        // self-addressed handling as the store-and-forward engine).
        while next_inject < inj.len() && inj[next_inject].inject_time <= cycle {
            let p = inj[next_inject];
            next_inject += 1;
            observer.on_inject(cycle, p.src, p.dst);
            if let Some(reason) = admission.verdict(p.src, p.dst) {
                match reason {
                    DropReason::DeadEndpoint => acc.dropped_dead_endpoint += 1,
                    DropReason::Unreachable => acc.dropped_unreachable += 1,
                }
                observer.on_drop(cycle, p.src, p.dst, reason);
                continue;
            }
            if p.src == p.dst {
                acc.deliver_instant();
                observer.on_deliver(cycle, p.dst, 0);
                continue;
            }
            let id = slab.alloc(p.dst, p.inject_time);
            worm.reset(id, p.src, fpp);
            in_flight += 1;
            if try_place_head(
                topology,
                g,
                &routing,
                &mut queues,
                &mut link_load,
                &mut claimed,
                &reserved,
                &mut worm,
                &slab,
                &mut occupancy,
                &mut on_list,
                &mut active,
                &mut streams,
                observer,
                vcs,
                buf_flits,
                cycle,
                id,
            ) {
                progressed = true;
            } else {
                pending.push_back(id);
            }
        }

        // Forward phase: each directed link of an active node moves at
        // most one flit, scanning VCs lowest-first for a front flit that
        // can advance. Ascending node and edge order matches the
        // store-and-forward engine's service order exactly.
        active.sort_unstable();
        for &u in &active {
            on_list[u as usize] = false;
            for e in g.edge_range(u) {
                if link_load[e] == 0 {
                    continue;
                }
                for vc in 0..vcs {
                    let b = e * vcs + vc;
                    let Some(f) = queues.front(b) else { continue };
                    let id = f as u32;
                    let i = id as usize;
                    let idx = flit_idx(f);
                    if f & FLIT_HEAD != 0 {
                        let v = g.target(e);
                        let dst = slab.dst(id);
                        if v == dst {
                            queues.pop(b);
                            link_load[e] -= 1;
                            occupancy[u as usize] -= 1;
                            observer.on_hop(cycle, u, v, e);
                            slab.record_hop(id);
                            acc.total_hops += 1;
                            arrivals.push((f, EJECT, v));
                            progressed = true;
                            break;
                        }
                        let e2 = route_edge(g, &routing, &link_load, v, dst);
                        let c2 = topology.channel_class(v, g.target(e2));
                        let mut lvl = worm.level[i];
                        if c2 <= worm.last_class[i] {
                            // Class order broken (a ring dateline or a
                            // fault detour): escape one VC level up.
                            lvl = (lvl + 1).min(max_level);
                        }
                        let b2 = e2 * vcs + lvl as usize;
                        let multi = worm.flits_total[i] > 1;
                        if multi && claimed[b2] != NO_CLAIM && claimed[b2] != id {
                            continue;
                        }
                        if queues.load(b2) as u64 + reserved[b2] as u64 >= buf_flits {
                            continue;
                        }
                        queues.pop(b);
                        link_load[e] -= 1;
                        occupancy[u as usize] -= 1;
                        if multi {
                            claimed[b2] = id;
                        }
                        reserved[b2] += 1;
                        worm.level[i] = lvl;
                        worm.last_class[i] = c2;
                        worm.path[i].push(b2 as u32);
                        observer.on_hop(cycle, u, v, e);
                        slab.record_hop(id);
                        acc.total_hops += 1;
                        arrivals.push((flit(id, idx + 1, true, f & FLIT_TAIL != 0), b2 as u32, v));
                        progressed = true;
                        break;
                    }
                    // Body/tail flit: follow the head's reserved chain.
                    let path = &worm.path[i];
                    if idx + 1 < path.len() {
                        let b2 = path[idx + 1] as usize;
                        if queues.load(b2) as u64 + reserved[b2] as u64 >= buf_flits {
                            continue;
                        }
                        queues.pop(b);
                        link_load[e] -= 1;
                        occupancy[u as usize] -= 1;
                        reserved[b2] += 1;
                        arrivals.push((
                            flit(id, idx + 1, false, f & FLIT_TAIL != 0),
                            b2 as u32,
                            g.target(e),
                        ));
                        progressed = true;
                        break;
                    }
                    if worm.head_ejected[i] {
                        // End of the chain with the head gone: this flit
                        // crosses the final link into the destination.
                        queues.pop(b);
                        link_load[e] -= 1;
                        occupancy[u as usize] -= 1;
                        arrivals.push((f, EJECT, g.target(e)));
                        progressed = true;
                        break;
                    }
                    // Head still parked one buffer ahead: wait.
                }
            }
            if occupancy[u as usize] > 0 {
                on_list[u as usize] = true;
                next_active.push(u);
            }
        }
        active.clear();
        std::mem::swap(&mut active, &mut next_active);

        // Arrivals (at the cycle + 1 boundary): flits enter their
        // reserved buffers or leave the network at the destination.
        let now = cycle + 1;
        for (f, buf, node) in arrivals.drain(..) {
            let id = f as u32;
            if buf == EJECT {
                if f & FLIT_TAIL != 0 {
                    in_flight -= 1;
                    let inject_time = slab.inject(id);
                    acc.deliver(now, inject_time);
                    observer.on_deliver(now, node, now - inject_time);
                    slab.release(id);
                } else if f & FLIT_HEAD != 0 {
                    worm.head_ejected[id as usize] = true;
                }
                // Body flits between head and tail vanish at dst.
            } else {
                let b = buf as usize;
                let e = b / vcs;
                reserved[b] -= 1;
                queues.push(b, f);
                link_load[e] += 1;
                occupancy[node as usize] += 1;
                observer.on_flit_hop(now, e, (b % vcs) as u32, queues.load(b) as u32);
                if f & FLIT_TAIL != 0 && claimed[b] == id {
                    claimed[b] = NO_CLAIM;
                }
                if !on_list[node as usize] {
                    on_list[node as usize] = true;
                    active.push(node);
                }
            }
        }
        observer.on_cycle_end(cycle, in_flight);

        if !progressed && in_flight > 0 {
            // Nothing moved. With a future injection the network may
            // unstick (new packets can place on other links): jump there.
            // With none, this is a genuine deadlock — only reachable off
            // the order-based configurations — so stop instead of
            // spinning to the cap; the stranded packets surface as
            // `offered − delivered − dropped`.
            match inj.get(next_inject) {
                Some(p) if p.inject_time >= max_cycles => break,
                Some(p) => {
                    cycle = p.inject_time.max(cycle + 1);
                    continue;
                }
                None => break,
            }
        }
        cycle += 1;
    }

    acc.finish(packets.len())
}

/// The seed's original engine, kept verbatim as a behavioural oracle and
/// speedup baseline: scans every node every cycle and binary-searches the
/// neighbor list on every hop, routing through `Topology::next_hop`.
pub fn simulate_reference(
    topology: &dyn Topology,
    packets: &[Packet],
    max_cycles: u64,
) -> SimStats {
    let n = topology.len();
    let graph = topology.graph();
    let mut queues: Vec<Vec<VecDeque<InFlight>>> = (0..n)
        .map(|u| vec![VecDeque::new(); graph.degree(u as u32)])
        .collect();
    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let mut next_inject = 0usize;

    let slot_of = |u: u32, v: u32| -> usize {
        graph
            .neighbors(u)
            .binary_search(&v)
            .expect("next_hop must return a neighbor")
    };

    let mut acc = StatsAcc::for_network(n);
    let mut in_flight = 0usize;

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        while next_inject < inj.len() && inj[next_inject].inject_time <= cycle {
            let p = inj[next_inject];
            next_inject += 1;
            if p.src == p.dst {
                acc.deliver_instant();
                continue;
            }
            let hop = topology.next_hop(p.src, p.dst).expect("src ≠ dst");
            queues[p.src as usize][slot_of(p.src, hop)].push_back(InFlight {
                dst: p.dst,
                inject_time: p.inject_time,
            });
            in_flight += 1;
        }
        if in_flight == 0 && next_inject >= inj.len() {
            break;
        }
        let mut arrivals: Vec<(u32, InFlight)> = Vec::new();
        for u in 0..n as u32 {
            for (slot, &v) in graph.neighbors(u).iter().enumerate() {
                if let Some(pkt) = queues[u as usize][slot].pop_front() {
                    arrivals.push((v, pkt));
                    acc.total_hops += 1;
                }
            }
        }
        let now = cycle + 1;
        for (node, pkt) in arrivals {
            if node == pkt.dst {
                in_flight -= 1;
                acc.deliver(now, pkt.inject_time);
            } else {
                let hop = topology.next_hop(node, pkt.dst).expect("progressive");
                queues[node as usize][slot_of(node, hop)].push_back(pkt);
            }
        }
        cycle += 1;
    }

    acc.finish(packets.len())
}

/// Full-scan oracle for **degraded** runs, mirroring
/// [`simulate_reference`]: the same admission rules (dead or disconnected
/// endpoints become typed drops at injection) and the same
/// [`FaultMaskingRouter`] policy as [`simulate_faulted`], but run through
/// the seed-style engine — per-node `VecDeque`s, every node scanned every
/// cycle, routing consulted per hop with the live queue lengths. A test
/// harness, far too slow for experiments: the property tests compare the
/// arena engine against it packet for packet.
pub fn simulate_faulted_reference(
    topology: &dyn Topology,
    router: &dyn Router,
    faults: &FaultSet,
    packets: &[Packet],
    max_cycles: u64,
) -> SimStats {
    let n = topology.len();
    let graph = topology.graph();
    let masked = FaultMaskingRouter::new(graph, &router, faults);
    let mut queues: Vec<Vec<VecDeque<InFlight>>> = (0..n)
        .map(|u| vec![VecDeque::new(); graph.degree(u as u32)])
        .collect();
    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let mut next_inject = 0usize;

    struct RefLoad<'a> {
        queues: &'a [VecDeque<InFlight>],
    }
    impl LinkLoad for RefLoad<'_> {
        fn load(&self, slot: usize) -> usize {
            self.queues[slot].len()
        }
    }
    let route = |queues: &mut Vec<Vec<VecDeque<InFlight>>>, node: u32, pkt: InFlight| {
        let hop = {
            let load = RefLoad {
                queues: &queues[node as usize],
            };
            masked
                .next_hop(node, pkt.dst, &load)
                .expect("routing a packet not yet at dst")
        };
        let slot = graph
            .slot_of(node, hop)
            .expect("next_hop must return a neighbor");
        queues[node as usize][slot].push_back(pkt);
    };

    let mut acc = StatsAcc::for_network(n);
    let mut in_flight = 0usize;

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        while next_inject < inj.len() && inj[next_inject].inject_time <= cycle {
            let p = inj[next_inject];
            next_inject += 1;
            if !masked.node_alive(p.src) || !masked.node_alive(p.dst) {
                acc.dropped_dead_endpoint += 1;
                continue;
            }
            if p.src != p.dst && !masked.reachable(p.src, p.dst) {
                acc.dropped_unreachable += 1;
                continue;
            }
            if p.src == p.dst {
                acc.deliver_instant();
                continue;
            }
            route(
                &mut queues,
                p.src,
                InFlight {
                    dst: p.dst,
                    inject_time: p.inject_time,
                },
            );
            in_flight += 1;
        }
        if in_flight == 0 && next_inject >= inj.len() {
            break;
        }
        let mut arrivals: Vec<(u32, InFlight)> = Vec::new();
        for u in 0..n as u32 {
            for (slot, &v) in graph.neighbors(u).iter().enumerate() {
                if let Some(pkt) = queues[u as usize][slot].pop_front() {
                    arrivals.push((v, pkt));
                    acc.total_hops += 1;
                }
            }
        }
        let now = cycle + 1;
        for (node, pkt) in arrivals {
            if node == pkt.dst {
                in_flight -= 1;
                acc.deliver(now, pkt.inject_time);
            } else {
                route(&mut queues, node, pkt);
            }
        }
        cycle += 1;
    }

    acc.finish(packets.len())
}

pub(crate) fn bump(hist: &mut Vec<u64>, lat: u64) {
    let lat = lat as usize;
    if hist.len() <= lat {
        hist.resize(lat + 1, 0);
    }
    hist[lat] += 1;
}

pub(crate) fn percentile(hist: &[u64], q: f64) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil() as u64;
    let mut acc = 0u64;
    for (lat, &c) in hist.iter().enumerate() {
        acc += c;
        if acc >= target {
            return lat as u64;
        }
    }
    hist.len() as u64 - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{LatencyHistogram, LinkHeatmap};
    use crate::router::{AdaptiveMinimal, CanonicalRouter, EcubeRouter};
    use crate::topology::{FibonacciNet, Hypercube, Ring};
    use crate::traffic::TrafficSpec;

    fn uniform(n: usize, count: usize, window: u64, seed: u64) -> Vec<Packet> {
        TrafficSpec::Uniform { count, window }.generate(n, seed)
    }

    fn all_to_all(n: usize) -> Vec<Packet> {
        TrafficSpec::AllToAll.generate(n, 0)
    }

    #[test]
    fn single_packet_latency_is_distance() {
        let q = Hypercube::new(4);
        let pkts = vec![Packet {
            src: 0b0000,
            dst: 0b1111,
            inject_time: 0,
        }];
        let stats = simulate(&q, &pkts, 1000);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.mean_latency, 4.0);
        assert_eq!(stats.total_hops, 4);
        assert_eq!(stats.makespan, 4);
    }

    #[test]
    fn all_packets_delivered_uniform() {
        for topo in [
            &FibonacciNet::classical(8) as &dyn Topology,
            &Hypercube::new(5),
            &Ring::new(21),
        ] {
            let pkts = uniform(topo.len(), 300, 100, 42);
            let stats = simulate(topo, &pkts, 50_000);
            assert_eq!(stats.delivered, stats.offered, "{}", topo.name());
            assert!(stats.mean_latency >= 1.0);
            assert!(stats.p99_latency as f64 >= stats.mean_latency.floor());
        }
    }

    #[test]
    fn contention_raises_latency_above_distance() {
        // Many packets into one node: queueing must show up.
        let q = Hypercube::new(3);
        let pkts: Vec<Packet> = (1..8)
            .map(|s| Packet {
                src: s,
                dst: 0,
                inject_time: 0,
            })
            .collect();
        let stats = simulate(&q, &pkts, 1000);
        assert_eq!(stats.delivered, 7);
        // Node 0 has 3 in-links; 7 packets need ≥ ⌈7/3⌉ = 3 cycles.
        assert!(stats.makespan >= 3);
    }

    #[test]
    fn zero_time_cap_delivers_nothing() {
        let q = Hypercube::new(3);
        let pkts = vec![Packet {
            src: 0,
            dst: 7,
            inject_time: 0,
        }];
        let stats = simulate(&q, &pkts, 0);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.offered, 1);
    }

    #[test]
    fn all_to_all_mean_latency_at_least_average_distance() {
        let net = FibonacciNet::classical(6);
        let pkts = all_to_all(net.len());
        let stats = simulate(&net, &pkts, 100_000);
        assert_eq!(stats.delivered, stats.offered);
        let avg_dist = fibcube_graph::distance::average_distance(net.graph());
        assert!(
            stats.mean_latency + 1e-9 >= avg_dist,
            "latency {} < average distance {avg_dist}",
            stats.mean_latency
        );
    }

    #[test]
    fn self_addressed_packets_count_as_delivered() {
        let q = Hypercube::new(2);
        let pkts = vec![Packet {
            src: 1,
            dst: 1,
            inject_time: 5,
        }];
        let stats = simulate(&q, &pkts, 100);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.mean_latency, 0.0);
        assert_eq!(
            stats.makespan, 0,
            "a packet that never used a link leaves no makespan"
        );
    }

    #[test]
    fn active_set_engine_agrees_with_reference() {
        // Deterministic routers and matching same-cycle service order ⇒
        // the two engines must agree packet for packet: same deliveries,
        // hops, latency distribution, and makespan.
        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(13),
        ] {
            for (count, window, seed) in [(50usize, 20u64, 1u64), (400, 60, 2), (1, 0, 3)] {
                let pkts = uniform(topo.len(), count, window, seed);
                let fast = simulate(topo, &pkts, 100_000);
                let slow = simulate_reference(topo, &pkts, 100_000);
                assert_eq!(fast.delivered, slow.delivered, "{}", topo.name());
                assert_eq!(fast.total_hops, slow.total_hops, "{}", topo.name());
                assert_eq!(fast.offered, slow.offered);
                assert_eq!(
                    fast.latency_histogram,
                    slow.latency_histogram,
                    "{}",
                    topo.name()
                );
                assert_eq!(fast.mean_latency, slow.mean_latency, "{}", topo.name());
                assert_eq!(fast.makespan, slow.makespan, "{}", topo.name());
                assert_eq!(fast.p99_latency, slow.p99_latency, "{}", topo.name());
            }
        }
    }

    #[test]
    fn explicit_routers_deliver_everything() {
        let q = Hypercube::new(5);
        let pkts = uniform(q.len(), 400, 80, 9);
        for stats in [
            simulate_with(&q, &EcubeRouter, &pkts, 100_000),
            simulate_with(&q, &AdaptiveMinimal::new(&q), &pkts, 100_000),
        ] {
            assert_eq!(stats.delivered, stats.offered);
        }
        let net = FibonacciNet::classical(9);
        let pkts = uniform(net.len(), 400, 80, 9);
        let canonical = CanonicalRouter::for_net(&net);
        for stats in [
            simulate_with(&net, &canonical, &pkts, 100_000),
            simulate_with(&net, &AdaptiveMinimal::new(&net), &pkts, 100_000),
        ] {
            assert_eq!(stats.delivered, stats.offered);
        }
    }

    #[test]
    fn adaptive_router_no_worse_under_hotspot() {
        // Adaptive minimal routing must still deliver everything when one
        // node draws concentrated traffic.
        let q = Hypercube::new(5);
        let pkts = TrafficSpec::HotSpot {
            count: 600,
            window: 150,
            hot_fraction: 0.4,
        }
        .generate(q.len(), 11);
        let stats = simulate_with(&q, &AdaptiveMinimal::new(&q), &pkts, 200_000);
        assert_eq!(stats.delivered, stats.offered);
    }

    #[test]
    fn observers_see_every_event_and_match_engine_accounting() {
        let net = FibonacciNet::classical(9);
        let pkts = uniform(net.len(), 500, 120, 21);
        let router = CanonicalRouter::for_net(&net);
        let baseline = simulate_with(&net, &router, &pkts, 100_000);

        let mut obs = (LatencyHistogram::new(), LinkHeatmap::new());
        let observed = simulate_observed(&net, &router, &pkts, 100_000, &mut obs);
        assert_eq!(observed, baseline, "observer must not perturb the run");
        let (hist, heat) = obs;
        assert_eq!(hist.histogram(), &baseline.latency_histogram[..]);
        assert_eq!(hist.delivered() as usize, baseline.delivered);
        assert_eq!(hist.mean(), baseline.mean_latency);
        assert_eq!(hist.p99(), baseline.p99_latency);
        assert_eq!(heat.total_hops(), baseline.total_hops);
    }

    #[test]
    fn observer_sees_self_addressed_delivery_and_sparse_cycles() {
        #[derive(Default)]
        struct Trace {
            injects: Vec<(u64, u32, u32)>,
            delivers: Vec<(u64, u32, u64)>,
            cycle_ends: Vec<(u64, usize)>,
        }
        impl SimObserver for Trace {
            fn on_inject(&mut self, cycle: u64, src: u32, dst: u32) {
                self.injects.push((cycle, src, dst));
            }
            fn on_deliver(&mut self, cycle: u64, dst: u32, latency: u64) {
                self.delivers.push((cycle, dst, latency));
            }
            fn on_cycle_end(&mut self, cycle: u64, in_flight: usize) {
                self.cycle_ends.push((cycle, in_flight));
            }
        }

        let q = Hypercube::new(3);
        let pkts = vec![
            Packet {
                src: 2,
                dst: 2,
                inject_time: 0,
            },
            Packet {
                src: 0,
                dst: 7,
                inject_time: 1_000,
            },
        ];
        let mut trace = Trace::default();
        let stats = simulate_observed(&q, &EcubeRouter, &pkts, 1_000_000, &mut trace);
        assert_eq!(stats.delivered, 2);
        assert_eq!(trace.injects, vec![(0, 2, 2), (1_000, 0, 7)]);
        // Self-addressed at latency 0, then the real packet at distance 3.
        assert_eq!(trace.delivers, vec![(0, 2, 0), (1_003, 7, 3)]);
        // The idle gap 1..1000 is fast-forwarded: no cycle-end events there.
        assert!(trace.cycle_ends.iter().all(|&(c, _)| c == 0 || c >= 1_000));
        assert_eq!(trace.cycle_ends.last(), Some(&(1_002, 0)));
    }

    #[test]
    fn empty_fault_set_is_packet_for_packet_identical() {
        let net = FibonacciNet::classical(9);
        let pkts = uniform(net.len(), 400, 100, 13);
        let router = CanonicalRouter::for_net(&net);
        let healthy = simulate_with(&net, &router, &pkts, 100_000);
        let faulted = simulate_faulted(
            &net,
            &router,
            &crate::fault::FaultSet::empty(),
            &pkts,
            100_000,
            &mut NoopObserver,
        );
        assert_eq!(faulted, healthy);
        assert_eq!(faulted.dropped(), 0);
    }

    #[test]
    fn dead_endpoints_are_typed_drops_and_survivors_deliver() {
        // Kill node 0 of Q_3 under all-to-all traffic: the 14 ordered
        // pairs touching node 0 drop as DeadEndpoint, the other 42
        // deliver via detours where e-cube would have crossed node 0.
        let q = Hypercube::new(3);
        let faults = crate::fault::FaultSet::new([0u32], []);
        let pkts = all_to_all(q.len());
        let mut tracker = crate::observer::DeliveryTracker::new();
        let stats = simulate_faulted(&q, &EcubeRouter, &faults, &pkts, 100_000, &mut tracker);
        assert_eq!(stats.offered, 56);
        assert_eq!(stats.dropped_dead_endpoint, 14);
        assert_eq!(stats.dropped_unreachable, 0);
        assert_eq!(stats.delivered, 42);
        assert_eq!(tracker.delivered(), 42);
        assert_eq!(tracker.dropped_dead_endpoint(), 14);
        assert_eq!(tracker.in_flight(), 0, "nothing silently stranded");
    }

    #[test]
    fn disconnected_survivors_drop_as_unreachable() {
        // Cut links 0–1 and 3–4 of a 6-ring: components {1,2,3} and
        // {4,5,0}. Cross-component pairs (2·3·3 = 18) drop Unreachable;
        // within-component pairs (2·3·2 = 12) deliver.
        let ring = Ring::new(6);
        let faults = crate::fault::FaultSet::new([], [(0u32, 1u32), (3u32, 4u32)]);
        let pkts = all_to_all(ring.len());
        let router = ring.router();
        let stats = simulate_faulted(&ring, &*router, &faults, &pkts, 100_000, &mut NoopObserver);
        assert_eq!(stats.offered, 30);
        assert_eq!(stats.dropped_unreachable, 18);
        assert_eq!(stats.dropped_dead_endpoint, 0);
        assert_eq!(stats.delivered, 12);
    }

    #[test]
    fn faulted_runs_conserve_packets_under_a_cycle_cap() {
        let net = FibonacciNet::classical(8);
        let faults = crate::fault::FaultSet::new([3u32, 11, 40], [(0u32, 1u32)]);
        let pkts = uniform(net.len(), 500, 50, 7);
        let router = CanonicalRouter::for_net(&net);
        for cap in [0u64, 3, 10, 100_000] {
            let mut tracker = crate::observer::DeliveryTracker::new();
            let stats = simulate_faulted(&net, &router, &faults, &pkts, cap, &mut tracker);
            assert!(
                stats.delivered + stats.dropped() <= stats.offered,
                "cap {cap}"
            );
            // Observer and engine accounting agree; the remainder is the
            // in-flight truncation, never a silent strand.
            assert_eq!(tracker.delivered() as usize, stats.delivered, "cap {cap}");
            assert_eq!(tracker.dropped() as usize, stats.dropped(), "cap {cap}");
            if cap == 100_000 {
                assert_eq!(stats.delivered + stats.dropped(), stats.offered);
                assert_eq!(tracker.in_flight(), 0);
            }
        }
    }

    #[test]
    fn ring_overflow_preserves_fifo_against_reference() {
        // Funnel far more packets through single links than the ring
        // stride holds: 40 same-direction packets on a 4-ring, plus a
        // hot-spot drain on Q_3. The spill/promote path must stay
        // packet-for-packet identical to the reference engine.
        let ring = Ring::new(4);
        let pkts: Vec<Packet> = (0..40)
            .map(|i| Packet {
                src: 0,
                dst: 1,
                inject_time: i % 3,
            })
            .collect();
        let fast = simulate(&ring, &pkts, 100_000);
        let slow = simulate_reference(&ring, &pkts, 100_000);
        assert_eq!(fast, slow);
        assert_eq!(fast.delivered, 40);

        let q = Hypercube::new(3);
        let pkts: Vec<Packet> = (0..60)
            .map(|i| Packet {
                src: (1 + i % 7) as u32,
                dst: 0,
                inject_time: i / 14,
            })
            .collect();
        let fast = simulate(&q, &pkts, 100_000);
        let slow = simulate_reference(&q, &pkts, 100_000);
        assert_eq!(fast, slow);
    }

    #[test]
    fn table_routing_path_agrees_with_reference() {
        // All-to-all workloads trip the precompute heuristic
        // (packets ≈ n² ≫ n²/d̄), so this exercises the NextHopTable hop
        // path end to end against the per-hop reference engine.
        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(9),
        ] {
            let pkts = all_to_all(topo.len());
            let fast = simulate(topo, &pkts, 1_000_000);
            let slow = simulate_reference(topo, &pkts, 1_000_000);
            assert_eq!(fast, slow, "{}", topo.name());
        }
    }

    #[test]
    fn faulted_engine_agrees_with_faulted_reference() {
        // The arena engine under faults ≡ the full-scan faulted oracle,
        // with node faults, link faults, and a cycle cap in the mix.
        let net = FibonacciNet::classical(8);
        let router = CanonicalRouter::for_net(&net);
        let faults = crate::fault::FaultSet::new([3u32, 11, 40], [(0u32, 1u32)]);
        for (count, window, cap) in [(400usize, 80u64, 100_000u64), (300, 50, 25)] {
            let pkts = uniform(net.len(), count, window, 5);
            let fast = simulate_faulted(&net, &router, &faults, &pkts, cap, &mut NoopObserver);
            let slow = simulate_faulted_reference(&net, &router, &faults, &pkts, cap);
            assert_eq!(fast, slow, "count={count} cap={cap}");
        }
        // And with no faults the oracle degenerates to the healthy
        // reference engine.
        let pkts = uniform(net.len(), 200, 60, 9);
        let empty = crate::fault::FaultSet::empty();
        let oracle = simulate_faulted_reference(&net, &router, &empty, &pkts, 100_000);
        assert_eq!(oracle, simulate_with(&net, &router, &pkts, 100_000));
    }

    #[test]
    fn collective_one_port_completion_equals_static_rounds() {
        // The gating oracle of the collective path, small scale: the live
        // replication engine must complete a one-port broadcast in
        // exactly the static schedule's round count (no cross-traffic, so
        // the serialization chain is the only latency source).
        use crate::broadcast::broadcast_one_port;
        use crate::collective::CopyPlan;
        for topo in [
            &FibonacciNet::classical(8) as &dyn Topology,
            &Hypercube::new(5),
            &Ring::new(12),
        ] {
            for src in [0u32, (topo.len() / 2) as u32] {
                let schedule = broadcast_one_port(topo, src).expect("connected");
                let plan = CopyPlan::from_schedule(topo.graph(), &schedule, true);
                let (stats, reached) =
                    simulate_collective(topo, &plan, 1_000_000, &mut NoopObserver);
                assert_eq!(stats.offered, topo.len() - 1, "{}", topo.name());
                assert_eq!(stats.delivered, topo.len() - 1, "{}", topo.name());
                assert_eq!(reached, topo.len() - 1);
                assert_eq!(
                    stats.makespan,
                    schedule.rounds as u64,
                    "{} src={src}: live one-port completion must equal static rounds",
                    topo.name()
                );
                assert_eq!(
                    stats.total_hops,
                    (topo.len() - 1) as u64,
                    "one hop per copy"
                );
            }
        }
    }

    #[test]
    fn collective_all_port_completion_equals_source_eccentricity() {
        use crate::broadcast::broadcast_all_port;
        use crate::collective::CopyPlan;
        for topo in [
            &FibonacciNet::classical(8) as &dyn Topology,
            &Hypercube::new(5),
        ] {
            let schedule = broadcast_all_port(topo, 0).expect("connected");
            let plan = CopyPlan::from_schedule(topo.graph(), &schedule, false);
            let (stats, _) = simulate_collective(topo, &plan, 1_000_000, &mut NoopObserver);
            let ecc = fibcube_graph::bfs::bfs_distances(topo.graph(), 0)
                .iter()
                .copied()
                .max()
                .unwrap() as u64;
            assert_eq!(stats.makespan, ecc, "{}", topo.name());
            assert_eq!(stats.delivered, topo.len() - 1);
            assert_eq!(stats.mean_latency, 1.0, "uncontended copies take one cycle");
        }
    }

    #[test]
    fn collective_copies_conserve_under_a_cycle_cap() {
        use crate::broadcast::broadcast_one_port;
        use crate::collective::CopyPlan;
        let net = FibonacciNet::classical(8);
        let schedule = broadcast_one_port(&net, 0).unwrap();
        let plan = CopyPlan::from_schedule(net.graph(), &schedule, true);
        for cap in [0u64, 1, 3, schedule.rounds as u64, 1_000] {
            let mut tracker = crate::observer::DeliveryTracker::new();
            let (stats, reached) = simulate_collective(&net, &plan, cap, &mut tracker);
            assert_eq!(stats.offered, net.len() - 1, "cap {cap}");
            assert!(stats.delivered + stats.dropped() <= stats.offered);
            assert!(reached <= stats.delivered);
            // Observer and engine accounting agree copy for copy; spawned
            // copies not yet delivered are the tracker's in-flight.
            assert_eq!(tracker.delivered() as usize, stats.delivered, "cap {cap}");
            assert_eq!(
                tracker.injected() - tracker.delivered(),
                tracker.in_flight(),
                "cap {cap}"
            );
            if cap >= schedule.rounds as u64 {
                assert_eq!(stats.delivered, stats.offered, "cap {cap}: drained");
                assert_eq!(tracker.in_flight(), 0);
            }
        }
    }

    #[test]
    fn collective_observer_sees_replication_events_in_order() {
        // Q_2 one-port from 0. Verify the event stream shape rather than
        // one hard-coded tree: every inject names a real link out of an
        // informed node, and every copy is delivered exactly one cycle
        // after it was injected (uncontended tree edges).
        #[derive(Default)]
        struct Trace {
            injects: Vec<(u64, u32, u32)>,
            delivers: Vec<(u64, u32)>,
        }
        impl SimObserver for Trace {
            fn on_inject(&mut self, cycle: u64, src: u32, dst: u32) {
                self.injects.push((cycle, src, dst));
            }
            fn on_deliver(&mut self, cycle: u64, dst: u32, _latency: u64) {
                self.delivers.push((cycle, dst));
            }
        }
        use crate::broadcast::broadcast_one_port;
        use crate::collective::CopyPlan;
        let q = Hypercube::new(2);
        let schedule = broadcast_one_port(&q, 0).unwrap();
        let plan = CopyPlan::from_schedule(q.graph(), &schedule, true);
        let mut trace = Trace::default();
        let (stats, _) = simulate_collective(&q, &plan, 1_000, &mut trace);
        assert_eq!(stats.delivered, 3);
        assert_eq!(trace.injects.len(), 3);
        let mut informed_at = [u64::MAX; 4];
        informed_at[0] = 0;
        // Injects are causal: the caller was informed strictly earlier.
        for &(cycle, src, dst) in &trace.injects {
            assert!(q.graph().has_edge(src, dst));
            assert!(
                informed_at[src as usize] <= cycle,
                "caller must already hold the message"
            );
            let (dcycle, _) = *trace
                .delivers
                .iter()
                .find(|&&(_, d)| d == dst)
                .expect("every copy is delivered");
            assert_eq!(dcycle, cycle + 1, "uncontended copies take one cycle");
            informed_at[dst as usize] = dcycle;
        }
        assert_eq!(stats.makespan, schedule.rounds as u64);
    }

    #[test]
    fn idle_gap_fast_forward_preserves_semantics() {
        // Two packets separated by a huge idle gap: the active-set engine
        // must skip the gap, not simulate it, and still report identical
        // latencies to the reference engine.
        let q = Hypercube::new(3);
        let pkts = vec![
            Packet {
                src: 0,
                dst: 7,
                inject_time: 0,
            },
            Packet {
                src: 7,
                dst: 0,
                inject_time: 1_000_000,
            },
        ];
        let fast = simulate(&q, &pkts, 2_000_000);
        let slow = simulate_reference(&q, &pkts, 2_000_000);
        assert_eq!(fast.delivered, 2);
        assert_eq!(fast.delivered, slow.delivered);
        assert_eq!(fast.mean_latency, slow.mean_latency);
        assert_eq!(fast.makespan, slow.makespan);
    }

    #[test]
    fn log_histogram_buckets_by_powers_of_two() {
        let mut h = LogHistogram::new();
        for lat in [0, 1, 2, 3, 4, 6, 7, 100, u64::MAX] {
            h.record(lat);
        }
        // Bucket i covers [2^i − 1, 2^{i+1} − 2].
        assert_eq!(h.buckets()[0], 1); // latency 0
        assert_eq!(h.buckets()[1], 2); // 1, 2
        assert_eq!(h.buckets()[2], 3); // 3, 4, 6
        assert_eq!(h.buckets()[3], 1); // 7
        assert_eq!(h.buckets()[6], 1); // 100 ∈ [63, 126]
        assert_eq!(h.buckets()[63], 1); // saturates, no overflow
        assert_eq!(h.count(), 9);
    }

    #[test]
    fn log_histogram_ranges_tile_the_latency_axis() {
        let mut expected_lo = 0u64;
        for i in 0..64 {
            let (lo, hi) = LogHistogram::bucket_range(i);
            assert_eq!(lo, expected_lo, "bucket {i} starts where {} ended", i);
            assert!(hi >= lo);
            if i < 63 {
                expected_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn log_percentile_upper_bound_never_underestimates() {
        let mut h = LogHistogram::new();
        let mut exact = Vec::new();
        for lat in [0u64, 1, 1, 3, 5, 9, 9, 9, 20, 70] {
            h.record(lat);
            exact.push(lat);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let idx = ((exact.len() as f64 * q).ceil() as usize).max(1) - 1;
            let truth = exact[idx];
            let bound = h.percentile_upper_bound(q);
            assert!(bound >= truth, "q={q}: bound {bound} < exact {truth}");
        }
        assert_eq!(LogHistogram::new().percentile_upper_bound(0.99), 0);
    }

    #[test]
    fn log_histogram_matches_dense_histogram_on_a_real_run() {
        // Below DENSE_HISTOGRAM_NODE_LIMIT both forms are filled; the
        // log buckets must be exactly the dense vector folded by log₂.
        let net = FibonacciNet::classical(8);
        let pkts = uniform(net.len(), 400, 64, 9);
        let stats = simulate(&net, &pkts, 100_000);
        assert_eq!(
            stats.latency_buckets.count() as usize,
            stats.delivered,
            "every delivery lands in exactly one bucket"
        );
        let mut folded = LogHistogram::new();
        for (lat, &c) in stats.latency_histogram.iter().enumerate() {
            for _ in 0..c {
                folded.record(lat as u64);
            }
        }
        assert_eq!(stats.latency_buckets, folded);
        // The bucketed p99 upper bound dominates the exact dense p99.
        assert!(stats.latency_buckets.percentile_upper_bound(0.99) >= stats.p99_latency);
    }
}

#[cfg(test)]
mod wormhole_tests {
    use super::*;
    use crate::router::{AdaptiveMinimal, EcubeRouter};
    use crate::switching::{SwitchingSpec, VcOccupancy, PACKET_LENGTH_UNITS};
    use crate::topology::{FibonacciNet, Hypercube, Mesh, Ring};
    use crate::traffic::TrafficSpec;

    /// Degenerate wormhole: one flit per packet, one VC, effectively
    /// unbounded buffers — structurally the store-and-forward engine.
    fn degenerate() -> SwitchingSpec {
        SwitchingSpec::Wormhole {
            flit_size: PACKET_LENGTH_UNITS,
            vcs: 1,
            buf_flits: 1_000_000,
        }
    }

    #[test]
    fn store_and_forward_spec_delegates_to_the_packet_engine() {
        let q = Hypercube::new(4);
        let pkts = TrafficSpec::Uniform {
            count: 200,
            window: 50,
        }
        .generate(q.len(), 5);
        let saf = simulate_with(&q, &EcubeRouter, &pkts, 100_000);
        let via_spec = simulate_wormhole(
            &q,
            &EcubeRouter,
            &SwitchingSpec::StoreAndForward,
            &pkts,
            100_000,
            &mut NoopObserver,
        );
        assert_eq!(via_spec, saf);
    }

    #[test]
    fn degenerate_wormhole_matches_store_and_forward_on_small_topologies() {
        let spec = degenerate();
        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(13),
            &Mesh::new(4, 3),
        ] {
            for (count, window, seed) in [(60usize, 20u64, 1u64), (300, 80, 2), (1, 0, 3)] {
                let pkts = TrafficSpec::Uniform { count, window }.generate(topo.len(), seed);
                let router = topo.router();
                let saf = simulate_with(topo, &*router, &pkts, 100_000);
                let worm =
                    simulate_wormhole(topo, &*router, &spec, &pkts, 100_000, &mut NoopObserver);
                assert_eq!(worm, saf, "{} count={count} seed={seed}", topo.name());
            }
        }
    }

    #[test]
    fn degenerate_wormhole_matches_faulted_engine() {
        // The masked router's detour rule is load-aware (least-loaded
        // progressive link), and the wormhole engine routes heads when
        // they leave a buffer (credit needs the output known before
        // crossing) while the packet engine routes on arrival — so the
        // two can break detour ties differently and shift queueing
        // latencies by a cycle. The equivalence oracle is therefore the
        // packet-set one: identical delivered set, identical typed
        // drops, identical per-packet hop counts. Hops are pinned
        // exactly: every masked hop strictly decreases the degraded
        // distance, so each packet's hop count is at least that
        // distance, and matching both totals against the distance-sum
        // oracle forces per-packet equality in both engines.
        #[derive(Default)]
        struct DeliveryCensus {
            per_node: Vec<u64>,
        }
        impl SimObserver for DeliveryCensus {
            fn on_deliver(&mut self, _cycle: u64, node: u32, _latency: u64) {
                let i = node as usize;
                if self.per_node.len() <= i {
                    self.per_node.resize(i + 1, 0);
                }
                self.per_node[i] += 1;
            }
        }
        let net = FibonacciNet::classical(7);
        let faults = FaultSet::new([1u32, 5], [(0u32, 2u32)]);
        let pkts = TrafficSpec::Uniform {
            count: 250,
            window: 60,
        }
        .generate(net.len(), 9);
        let router = net.router();
        let spec = degenerate();
        let mut saf_census = DeliveryCensus::default();
        let saf = simulate_faulted(&net, &*router, &faults, &pkts, 100_000, &mut saf_census);
        let mut worm_census = DeliveryCensus::default();
        let worm = simulate_wormhole_faulted(
            &net,
            &*router,
            &spec,
            &faults,
            &pkts,
            100_000,
            &mut worm_census,
        );
        assert!(worm.dropped() > 0, "faults must actually bite");
        assert_eq!(worm.offered, saf.offered);
        assert_eq!(worm.delivered, saf.delivered);
        assert_eq!(worm.dropped_dead_endpoint, saf.dropped_dead_endpoint);
        assert_eq!(worm.dropped_unreachable, saf.dropped_unreachable);
        assert_eq!(
            worm_census.per_node, saf_census.per_node,
            "same delivered packet set"
        );
        // Per-packet hop oracle: admitted packets cost exactly their
        // degraded-graph distance.
        let masks = faults.masks(net.graph());
        let dist = crate::dist::DistanceTable::degraded(net.graph(), &masks);
        let expected: u64 = pkts
            .iter()
            .filter(|p| {
                p.src != p.dst
                    && masks.node_alive(p.src)
                    && masks.node_alive(p.dst)
                    && dist.reachable(p.src, p.dst)
            })
            .map(|p| dist.distance(p.src, p.dst) as u64)
            .sum();
        assert_eq!(saf.total_hops, expected);
        assert_eq!(worm.total_hops, expected);
    }

    #[test]
    fn empty_fault_set_delegates_to_the_healthy_wormhole_engine() {
        let q = Hypercube::new(3);
        let pkts = TrafficSpec::Uniform {
            count: 40,
            window: 10,
        }
        .generate(q.len(), 3);
        let spec = SwitchingSpec::Wormhole {
            flit_size: 8,
            vcs: 2,
            buf_flits: 2,
        };
        let healthy = simulate_wormhole(&q, &EcubeRouter, &spec, &pkts, 100_000, &mut NoopObserver);
        let faulted = simulate_wormhole_faulted(
            &q,
            &EcubeRouter,
            &spec,
            &FaultSet::default(),
            &pkts,
            100_000,
            &mut NoopObserver,
        );
        assert_eq!(faulted, healthy);
    }

    #[test]
    fn multi_flit_packet_pipelines_at_distance_plus_serialization() {
        // One 4-flit packet over 4 hops: the tail leaves the source at
        // cycle 3 and crosses 4 links — latency dist + flits − 1 = 7.
        let q = Hypercube::new(4);
        let pkts = vec![Packet {
            src: 0b0000,
            dst: 0b1111,
            inject_time: 0,
        }];
        let spec = SwitchingSpec::Wormhole {
            flit_size: 8, // 32 / 8 = 4 flits
            vcs: 1,
            buf_flits: 4,
        };
        let stats = simulate_wormhole(&q, &EcubeRouter, &spec, &pkts, 1000, &mut NoopObserver);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.mean_latency, 7.0);
        assert_eq!(stats.makespan, 7);
        assert_eq!(stats.total_hops, 4, "hops count the head flit only");
    }

    #[test]
    fn tight_buffers_drain_on_order_based_topologies() {
        // buf_flits = 1 with multi-flit packets is the hardest blocking
        // regime; order-based VC selection must still drain everything.
        let spec = SwitchingSpec::Wormhole {
            flit_size: 8,
            vcs: 2,
            buf_flits: 1,
        };
        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(12),
            &Mesh::new(4, 3),
        ] {
            let pkts = TrafficSpec::Uniform {
                count: 200,
                window: 60,
            }
            .generate(topo.len(), 11);
            let router = topo.router();
            let stats =
                simulate_wormhole(topo, &*router, &spec, &pkts, 4_000_000, &mut NoopObserver);
            assert_eq!(
                stats.delivered + stats.dropped(),
                stats.offered,
                "{} must drain under tight buffers",
                topo.name()
            );
        }
    }

    #[test]
    fn self_addressed_and_zero_cap_match_packet_engine_conventions() {
        let q = Hypercube::new(3);
        let spec = degenerate();
        let selfed = vec![Packet {
            src: 2,
            dst: 2,
            inject_time: 5,
        }];
        let stats = simulate_wormhole(&q, &EcubeRouter, &spec, &selfed, 100, &mut NoopObserver);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.makespan, 0);
        let capped = simulate_wormhole(
            &q,
            &EcubeRouter,
            &spec,
            &[Packet {
                src: 0,
                dst: 7,
                inject_time: 0,
            }],
            0,
            &mut NoopObserver,
        );
        assert_eq!(capped.delivered, 0);
        assert_eq!(capped.offered, 1);
    }

    #[test]
    fn vc_occupancy_observer_profiles_wormhole_runs() {
        let r = Ring::new(12);
        let pkts = TrafficSpec::Uniform {
            count: 150,
            window: 40,
        }
        .generate(r.len(), 7);
        let spec = SwitchingSpec::Wormhole {
            flit_size: 8,
            vcs: 2,
            buf_flits: 2,
        };
        let router = r.router();
        let mut occ = VcOccupancy::new();
        let stats = simulate_wormhole(&r, &*router, &spec, &pkts, 1_000_000, &mut occ);
        assert_eq!(stats.delivered, stats.offered);
        assert!(occ.total_flit_hops() > 0);
        assert!(
            occ.total_flit_hops() >= stats.total_hops,
            "every packet hop moves at least its head flit"
        );
        // The ring's dateline forces some traffic onto VC level 1.
        assert!(occ.flit_hops(0) > 0);
        assert!(occ.flit_hops(1) > 0, "wrap routes must escape to VC 1");
        // Store-and-forward runs emit no flit events at all.
        let mut saf_occ = VcOccupancy::new();
        simulate_wormhole(
            &r,
            &*router,
            &SwitchingSpec::StoreAndForward,
            &pkts,
            1_000_000,
            &mut saf_occ,
        );
        assert_eq!(saf_occ.total_flit_hops(), 0);
    }

    #[test]
    fn adaptive_routing_still_drains_with_enough_vcs_and_credit() {
        // Adaptive hops are not order-based; with roomy buffers the run
        // must still complete (deadlock freedom is best-effort there,
        // but ample credit keeps the network live).
        let q = Hypercube::new(4);
        let pkts = TrafficSpec::Uniform {
            count: 150,
            window: 40,
        }
        .generate(q.len(), 13);
        let spec = SwitchingSpec::Wormhole {
            flit_size: 16,
            vcs: 3,
            buf_flits: 64,
        };
        let stats = simulate_wormhole(
            &q,
            &AdaptiveMinimal::new(&q),
            &spec,
            &pkts,
            4_000_000,
            &mut NoopObserver,
        );
        assert_eq!(stats.delivered, stats.offered);
    }
}
