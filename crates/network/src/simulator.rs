//! Synchronous store-and-forward network simulator.
//!
//! Model: time advances in cycles. Every node has one FIFO output queue per
//! neighbor (virtual-channel-free store-and-forward); each directed link
//! moves at most one packet per cycle. Arriving packets are re-enqueued
//! toward their next hop (computed by the topology's distributed router) or
//! retired with their latency recorded. The model is deliberately simple —
//! the experiments compare *topologies under identical rules*, which is the
//! shape of the 1993-era evaluations.

use std::collections::VecDeque;

use crate::topology::Topology;
use crate::traffic::Packet;

/// Aggregate results of one simulation run.
#[derive(Clone, Debug)]
pub struct SimStats {
    /// Packets handed to the simulator.
    pub offered: usize,
    /// Packets delivered before the cycle cap.
    pub delivered: usize,
    /// Cycle at which the last packet was delivered (0 when none).
    pub makespan: u64,
    /// Mean end-to-end latency (inject → arrival) of delivered packets.
    pub mean_latency: f64,
    /// Latency histogram: `hist[l]` = packets delivered with latency `l`.
    pub latency_histogram: Vec<u64>,
    /// 99th-percentile latency.
    pub p99_latency: u64,
    /// Total packet-hops transmitted (link utilisation numerator).
    pub total_hops: u64,
    /// Delivered packets per cycle (throughput).
    pub throughput: f64,
}

#[derive(Clone, Debug)]
struct InFlight {
    dst: u32,
    inject_time: u64,
}

/// Runs the synchronous store-and-forward simulation.
///
/// `max_cycles` caps the run so that pathological configurations terminate;
/// undelivered packets are reported via `offered − delivered` (the
/// simulator never deadlocks logically — progressive routers always move
/// packets closer — but finite time can truncate).
pub fn simulate(topology: &dyn Topology, packets: &[Packet], max_cycles: u64) -> SimStats {
    let n = topology.len();
    // Per-node, per-neighbor-slot FIFO queues of (packet, queued_since).
    let graph = topology.graph();
    let mut queues: Vec<Vec<VecDeque<InFlight>>> =
        (0..n).map(|u| vec![VecDeque::new(); graph.degree(u as u32)]).collect();
    // Injection list sorted by time.
    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let mut next_inject = 0usize;

    let slot_of = |u: u32, v: u32| -> usize {
        graph
            .neighbors(u)
            .binary_search(&v)
            .expect("next_hop must return a neighbor")
    };

    let mut delivered = 0usize;
    let mut total_latency = 0u64;
    let mut hist: Vec<u64> = Vec::new();
    let mut total_hops = 0u64;
    let mut makespan = 0u64;
    let mut in_flight = 0usize;

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        // Inject everything due this cycle.
        while next_inject < inj.len() && inj[next_inject].inject_time <= cycle {
            let p = inj[next_inject];
            next_inject += 1;
            if p.src == p.dst {
                // Degenerate: counts as instantly delivered.
                delivered += 1;
                bump(&mut hist, 0);
                continue;
            }
            let hop = topology.next_hop(p.src, p.dst).expect("src ≠ dst");
            queues[p.src as usize][slot_of(p.src, hop)]
                .push_back(InFlight { dst: p.dst, inject_time: p.inject_time });
            in_flight += 1;
        }
        if in_flight == 0 && next_inject >= inj.len() {
            break;
        }
        // Each directed link forwards one packet.
        let mut arrivals: Vec<(u32, InFlight)> = Vec::new();
        for u in 0..n as u32 {
            for (slot, &v) in graph.neighbors(u).iter().enumerate() {
                if let Some(pkt) = queues[u as usize][slot].pop_front() {
                    arrivals.push((v, pkt));
                    total_hops += 1;
                }
            }
        }
        // Process arrivals (at cycle+1 boundary).
        let now = cycle + 1;
        for (node, pkt) in arrivals {
            if node == pkt.dst {
                delivered += 1;
                in_flight -= 1;
                let lat = now - pkt.inject_time;
                total_latency += lat;
                bump(&mut hist, lat);
                makespan = makespan.max(now);
            } else {
                let hop = topology.next_hop(node, pkt.dst).expect("progressive");
                queues[node as usize][slot_of(node, hop)].push_back(pkt);
            }
        }
        cycle += 1;
    }

    let mean_latency =
        if delivered > 0 { total_latency as f64 / delivered as f64 } else { 0.0 };
    let p99 = percentile(&hist, 0.99);
    let throughput =
        if makespan > 0 { delivered as f64 / makespan as f64 } else { delivered as f64 };
    SimStats {
        offered: packets.len(),
        delivered,
        makespan,
        mean_latency,
        latency_histogram: hist,
        p99_latency: p99,
        total_hops,
        throughput,
    }
}

fn bump(hist: &mut Vec<u64>, lat: u64) {
    let lat = lat as usize;
    if hist.len() <= lat {
        hist.resize(lat + 1, 0);
    }
    hist[lat] += 1;
}

fn percentile(hist: &[u64], q: f64) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil() as u64;
    let mut acc = 0u64;
    for (lat, &c) in hist.iter().enumerate() {
        acc += c;
        if acc >= target {
            return lat as u64;
        }
    }
    hist.len() as u64 - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FibonacciNet, Hypercube, Ring};
    use crate::traffic::{all_to_all, uniform};

    #[test]
    fn single_packet_latency_is_distance() {
        let q = Hypercube::new(4);
        let pkts = vec![Packet { src: 0b0000, dst: 0b1111, inject_time: 0 }];
        let stats = simulate(&q, &pkts, 1000);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.mean_latency, 4.0);
        assert_eq!(stats.total_hops, 4);
        assert_eq!(stats.makespan, 4);
    }

    #[test]
    fn all_packets_delivered_uniform() {
        for topo in [&FibonacciNet::classical(8) as &dyn Topology, &Hypercube::new(5), &Ring::new(21)]
        {
            let pkts = uniform(topo.len(), 300, 100, 42);
            let stats = simulate(topo, &pkts, 50_000);
            assert_eq!(stats.delivered, stats.offered, "{}", topo.name());
            assert!(stats.mean_latency >= 1.0);
            assert!(stats.p99_latency as f64 >= stats.mean_latency.floor());
        }
    }

    #[test]
    fn contention_raises_latency_above_distance() {
        // Many packets into one node: queueing must show up.
        let q = Hypercube::new(3);
        let pkts: Vec<Packet> =
            (1..8).map(|s| Packet { src: s, dst: 0, inject_time: 0 }).collect();
        let stats = simulate(&q, &pkts, 1000);
        assert_eq!(stats.delivered, 7);
        // Node 0 has 3 in-links; 7 packets need ≥ ⌈7/3⌉ = 3 cycles.
        assert!(stats.makespan >= 3);
    }

    #[test]
    fn zero_time_cap_delivers_nothing() {
        let q = Hypercube::new(3);
        let pkts = vec![Packet { src: 0, dst: 7, inject_time: 0 }];
        let stats = simulate(&q, &pkts, 0);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.offered, 1);
    }

    #[test]
    fn all_to_all_mean_latency_at_least_average_distance() {
        let net = FibonacciNet::classical(6);
        let pkts = all_to_all(net.len());
        let stats = simulate(&net, &pkts, 100_000);
        assert_eq!(stats.delivered, stats.offered);
        let avg_dist = fibcube_graph::distance::average_distance(net.graph());
        assert!(
            stats.mean_latency + 1e-9 >= avg_dist,
            "latency {} < average distance {avg_dist}",
            stats.mean_latency
        );
    }

    #[test]
    fn self_addressed_packets_count_as_delivered() {
        let q = Hypercube::new(2);
        let pkts = vec![Packet { src: 1, dst: 1, inject_time: 5 }];
        let stats = simulate(&q, &pkts, 100);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.mean_latency, 0.0);
    }
}
