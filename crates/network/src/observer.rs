//! Pluggable simulation observers.
//!
//! A [`SimObserver`] is threaded through the active-set engine
//! ([`simulate_observed`](crate::simulator::simulate_observed)) and
//! receives one callback per event:
//!
//! * [`on_inject`](SimObserver::on_inject) — a packet enters its source's
//!   output queue (self-addressed packets are injected and delivered in
//!   the same call sequence, at latency 0);
//! * [`on_hop`](SimObserver::on_hop) — a packet traverses one directed
//!   link (`edge` is the CSR directed-edge index, stable per topology);
//! * [`on_drop`](SimObserver::on_drop) — a packet is dropped at
//!   injection with a typed
//!   [`DropReason`] (degraded runs
//!   only — see [`simulate_faulted`](crate::simulator::simulate_faulted));
//! * [`on_deliver`](SimObserver::on_deliver) — a packet reaches its
//!   destination, with its end-to-end latency;
//! * [`on_cycle_end`](SimObserver::on_cycle_end) — a *simulated* cycle
//!   finished. The engine fast-forwards across idle stretches, so this
//!   fires only for cycles in which the network held packets — observers
//!   must not assume consecutive cycle numbers;
//! * [`on_flit_hop`](SimObserver::on_flit_hop) — **wormhole runs only**
//!   ([`simulate_wormhole`](crate::simulator::simulate_wormhole)): one
//!   flit entered an (edge × virtual-channel) buffer. Store-and-forward
//!   runs never emit it; [`VcOccupancy`](crate::switching::VcOccupancy)
//!   is the ready-made consumer.
//!
//! Every hook has a default empty body and the engine is generic over the
//! observer type, so [`NoopObserver`] monomorphizes to nothing — the fast
//! path with no observer attached costs exactly what it did before
//! observers existed (the `sweep` bench bin asserts the ≥10× envelope over
//! the seed engine through this path). The event stream is part of the
//! engine's contract: the arena engine emits exactly the sequence the
//! original per-link-`VecDeque` engine did, whether it routes per hop or
//! through a precomputed
//! [`NextHopTable`](crate::router::NextHopTable).
//!
//! Collective runs
//! ([`simulate_collective`](crate::simulator::simulate_collective)) emit
//! the same hooks per *copy*: `on_inject(cycle, origin, child)` when a
//! replica is spawned at its tree parent (so injections happen throughout
//! the run, not just in the workload window), `on_drop` at cycle 0 for
//! intended recipients the fault set killed or disconnected, and one
//! single-hop `on_hop`/`on_deliver` pair per copy. [`DeliveryTracker`]
//! therefore accounts collectives copy for copy with no changes.
//!
//! Three ready-made observers ship with the crate: [`LatencyHistogram`]
//! (per-packet latency distribution, independently of [`SimStats`]'s own
//! accounting), [`LinkHeatmap`] (per-directed-link traversal counts —
//! the instrument that exposes the canonical-routing hub congestion on
//! `Γ_d`), and [`DeliveryTracker`] (delivered/dropped/undeliverable
//! fractions — the fault-resilience measure).
//!
//! [`SimStats`]: crate::simulator::SimStats

use crate::report::JsonValue;
use crate::simulator::{bump, percentile, DropReason};

/// Event hooks invoked by the simulation engine. All hooks default to
/// no-ops; implement only what you need. See the [module
/// docs](self) for the exact contract of each event.
pub trait SimObserver {
    /// `true` when every hook is statically known to be a no-op —
    /// [`NoopObserver`] and compositions of it. Purely an optimization
    /// hint (a no-op observer monomorphizes every hook away); sharded
    /// runs attach any observer through [`fork`](SimObserver::fork) /
    /// [`merge`](SimObserver::merge) regardless of this flag.
    const IS_NOOP: bool = false;

    /// Creates the per-lane instance a sharded run gives each lane, or
    /// `None` if this observer cannot shard (the experiment layer then
    /// reports a typed error for `threads > 1`).
    ///
    /// # Contract
    ///
    /// The engine partitions *packet* events (`on_inject`, `on_hop`,
    /// `on_drop`, `on_deliver`, `on_flit_hop`) across forks by the node
    /// that owns them, preserving relative order within a lane, and
    /// replays *global* events (`on_cycle_end` with the global in-flight
    /// count, `on_fault_event`) identically on **every** fork. A correct
    /// implementation therefore sums packet-event state and deduplicates
    /// global-event state in [`merge`](SimObserver::merge), such that
    /// fork → events → merge (in ascending lane order) reproduces the
    /// serial observer bit for bit.
    fn fork(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Folds one lane's fork back into `self`. Called once per fork, in
    /// ascending lane order, after the run completes — see
    /// [`fork`](SimObserver::fork) for the exactness contract.
    fn merge(&mut self, fork: Self)
    where
        Self: Sized,
    {
        let _ = fork;
    }

    /// A packet from `src` to `dst` entered the network at `cycle`.
    #[inline]
    fn on_inject(&mut self, cycle: u64, src: u32, dst: u32) {
        let _ = (cycle, src, dst);
    }

    /// A packet crossed the directed link `from → to` during `cycle`.
    /// `edge` is the link's CSR directed-edge index.
    #[inline]
    fn on_hop(&mut self, cycle: u64, from: u32, to: u32, edge: usize) {
        let _ = (cycle, from, to, edge);
    }

    /// A packet was dropped at injection during `cycle` — only on
    /// degraded networks
    /// ([`simulate_faulted`](crate::simulator::simulate_faulted)), with
    /// the typed [`DropReason`]. Fires after the packet's
    /// [`on_inject`](SimObserver::on_inject).
    #[inline]
    fn on_drop(&mut self, cycle: u64, src: u32, dst: u32, reason: DropReason) {
        let _ = (cycle, src, dst, reason);
    }

    /// A packet arrived at its destination `dst` at `cycle`, `latency`
    /// cycles after injection.
    #[inline]
    fn on_deliver(&mut self, cycle: u64, dst: u32, latency: u64) {
        let _ = (cycle, dst, latency);
    }

    /// A simulated cycle ended with `in_flight` packets still queued.
    /// Idle cycles are fast-forwarded and produce no call.
    #[inline]
    fn on_cycle_end(&mut self, cycle: u64, in_flight: usize) {
        let _ = (cycle, in_flight);
    }

    /// A flit entered the buffer of directed link `edge`, virtual channel
    /// `vc`, during `cycle`; `occupancy` is that buffer's flit count
    /// *after* the push. Fired only by the wormhole engine
    /// ([`simulate_wormhole`](crate::simulator::simulate_wormhole)) —
    /// store-and-forward runs emit packet-level
    /// [`on_hop`](SimObserver::on_hop) events only.
    #[inline]
    fn on_flit_hop(&mut self, cycle: u64, edge: usize, vc: u32, occupancy: u32) {
        let _ = (cycle, edge, vc, occupancy);
    }

    /// A churn event committed at the boundary of `cycle`: `failed` is
    /// `true` for a fail event, `false` for a recovery. Fired only by the
    /// churn engine
    /// ([`simulate_churn`](crate::simulator::simulate_churn)) — static
    /// fault runs never emit it. Fires before the cycle's injections.
    #[inline]
    fn on_fault_event(&mut self, cycle: u64, failed: bool) {
        let _ = (cycle, failed);
    }

    /// Named JSON sections for the experiment [`Report`]
    /// (one `(name, value)` pair per section). Defaults to none.
    ///
    /// [`Report`]: crate::report::Report
    fn sections(&self) -> Vec<(String, JsonValue)> {
        Vec::new()
    }
}

/// The zero-cost default observer: every hook is an empty inline body,
/// so the monomorphized engine is identical to one without observers.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {
    const IS_NOOP: bool = true;

    fn fork(&self) -> Option<Self> {
        Some(NoopObserver)
    }
}

/// Mutable references observe through to the referent, so an experiment
/// can borrow an observer (`.observe(&mut hist)`) and the caller keeps
/// ownership for inspection after the run.
impl<O: SimObserver + ?Sized> SimObserver for &mut O {
    const IS_NOOP: bool = O::IS_NOOP;

    #[inline]
    fn on_inject(&mut self, cycle: u64, src: u32, dst: u32) {
        (**self).on_inject(cycle, src, dst);
    }

    #[inline]
    fn on_hop(&mut self, cycle: u64, from: u32, to: u32, edge: usize) {
        (**self).on_hop(cycle, from, to, edge);
    }

    #[inline]
    fn on_drop(&mut self, cycle: u64, src: u32, dst: u32, reason: DropReason) {
        (**self).on_drop(cycle, src, dst, reason);
    }

    #[inline]
    fn on_deliver(&mut self, cycle: u64, dst: u32, latency: u64) {
        (**self).on_deliver(cycle, dst, latency);
    }

    #[inline]
    fn on_cycle_end(&mut self, cycle: u64, in_flight: usize) {
        (**self).on_cycle_end(cycle, in_flight);
    }

    #[inline]
    fn on_flit_hop(&mut self, cycle: u64, edge: usize, vc: u32, occupancy: u32) {
        (**self).on_flit_hop(cycle, edge, vc, occupancy);
    }

    #[inline]
    fn on_fault_event(&mut self, cycle: u64, failed: bool) {
        (**self).on_fault_event(cycle, failed);
    }

    fn sections(&self) -> Vec<(String, JsonValue)> {
        (**self).sections()
    }
}

/// Pairs compose: both observers see every event (left first), and their
/// report sections concatenate. Nest pairs for three or more.
impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    const IS_NOOP: bool = A::IS_NOOP && B::IS_NOOP;

    fn fork(&self) -> Option<Self> {
        Some((self.0.fork()?, self.1.fork()?))
    }

    fn merge(&mut self, fork: Self) {
        self.0.merge(fork.0);
        self.1.merge(fork.1);
    }

    #[inline]
    fn on_inject(&mut self, cycle: u64, src: u32, dst: u32) {
        self.0.on_inject(cycle, src, dst);
        self.1.on_inject(cycle, src, dst);
    }

    #[inline]
    fn on_hop(&mut self, cycle: u64, from: u32, to: u32, edge: usize) {
        self.0.on_hop(cycle, from, to, edge);
        self.1.on_hop(cycle, from, to, edge);
    }

    #[inline]
    fn on_drop(&mut self, cycle: u64, src: u32, dst: u32, reason: DropReason) {
        self.0.on_drop(cycle, src, dst, reason);
        self.1.on_drop(cycle, src, dst, reason);
    }

    #[inline]
    fn on_deliver(&mut self, cycle: u64, dst: u32, latency: u64) {
        self.0.on_deliver(cycle, dst, latency);
        self.1.on_deliver(cycle, dst, latency);
    }

    #[inline]
    fn on_cycle_end(&mut self, cycle: u64, in_flight: usize) {
        self.0.on_cycle_end(cycle, in_flight);
        self.1.on_cycle_end(cycle, in_flight);
    }

    #[inline]
    fn on_flit_hop(&mut self, cycle: u64, edge: usize, vc: u32, occupancy: u32) {
        self.0.on_flit_hop(cycle, edge, vc, occupancy);
        self.1.on_flit_hop(cycle, edge, vc, occupancy);
    }

    #[inline]
    fn on_fault_event(&mut self, cycle: u64, failed: bool) {
        self.0.on_fault_event(cycle, failed);
        self.1.on_fault_event(cycle, failed);
    }

    fn sections(&self) -> Vec<(String, JsonValue)> {
        let mut s = self.0.sections();
        s.extend(self.1.sections());
        s
    }
}

/// Observer building the end-to-end latency distribution from
/// [`on_deliver`](SimObserver::on_deliver) events. Its histogram must
/// match [`SimStats::latency_histogram`](crate::simulator::SimStats) for
/// the same run — the experiment tests use exactly that as the observer
/// contract check.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    hist: Vec<u64>,
    delivered: u64,
    total_latency: u64,
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// `histogram()[l]` = packets delivered with latency `l`.
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }

    /// Packets observed so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Mean observed latency (0 when nothing was delivered).
    pub fn mean(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// 99th-percentile observed latency.
    pub fn p99(&self) -> u64 {
        percentile(&self.hist, 0.99)
    }
}

impl SimObserver for LatencyHistogram {
    fn fork(&self) -> Option<Self> {
        Some(LatencyHistogram::new())
    }

    /// Deliveries partition across lanes, so the counts just add.
    fn merge(&mut self, fork: Self) {
        if self.hist.len() < fork.hist.len() {
            self.hist.resize(fork.hist.len(), 0);
        }
        for (lat, c) in fork.hist.into_iter().enumerate() {
            self.hist[lat] += c;
        }
        self.delivered += fork.delivered;
        self.total_latency += fork.total_latency;
    }

    #[inline]
    fn on_deliver(&mut self, _cycle: u64, _dst: u32, latency: u64) {
        bump(&mut self.hist, latency);
        self.delivered += 1;
        self.total_latency += latency;
    }

    fn sections(&self) -> Vec<(String, JsonValue)> {
        vec![(
            "latency_histogram".to_string(),
            JsonValue::obj([
                ("delivered", JsonValue::Int(self.delivered)),
                ("mean_latency", JsonValue::Num(self.mean())),
                ("p99_latency", JsonValue::Int(self.p99())),
                (
                    "histogram",
                    JsonValue::Arr(self.hist.iter().map(|&c| JsonValue::Int(c)).collect()),
                ),
            ]),
        )]
    }
}

/// Observer counting traversals per directed link — the load picture
/// behind saturation: on `Γ_d` under deterministic canonical routing a
/// few hub links carry an outsized share, which this map makes visible.
#[derive(Clone, Debug, Default)]
pub struct LinkHeatmap {
    /// `counts[edge]` = packets that crossed that directed link.
    counts: Vec<u64>,
    /// `(from, to)` endpoints per edge index, recorded on first use.
    endpoints: Vec<(u32, u32)>,
    total: u64,
}

impl LinkHeatmap {
    /// A fresh, empty heatmap (grows on demand as links are used).
    pub fn new() -> LinkHeatmap {
        LinkHeatmap::default()
    }

    /// Traversal count of the directed link with CSR edge index `edge`
    /// (0 for links never used).
    pub fn load(&self, edge: usize) -> u64 {
        self.counts.get(edge).copied().unwrap_or(0)
    }

    /// Total link traversals observed (equals `SimStats::total_hops`).
    pub fn total_hops(&self) -> u64 {
        self.total
    }

    /// Number of distinct directed links used at least once.
    pub fn links_used(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The `k` most-used links as `(from, to, count)`, most loaded first
    /// (ties broken by edge index).
    pub fn hottest(&self, k: usize) -> Vec<(u32, u32, u64)> {
        let mut used: Vec<usize> = (0..self.counts.len())
            .filter(|&e| self.counts[e] > 0)
            .collect();
        used.sort_by_key(|&e| (std::cmp::Reverse(self.counts[e]), e));
        used.truncate(k);
        used.into_iter()
            .map(|e| {
                let (f, t) = self.endpoints[e];
                (f, t, self.counts[e])
            })
            .collect()
    }
}

impl SimObserver for LinkHeatmap {
    fn fork(&self) -> Option<Self> {
        Some(LinkHeatmap::new())
    }

    /// Hops partition across lanes by the popping node, so per-edge
    /// counts add; endpoints come from whichever side saw the edge.
    fn merge(&mut self, fork: Self) {
        if self.counts.len() < fork.counts.len() {
            self.counts.resize(fork.counts.len(), 0);
            self.endpoints
                .resize(fork.counts.len(), (u32::MAX, u32::MAX));
        }
        for (e, c) in fork.counts.into_iter().enumerate() {
            self.counts[e] += c;
            if c > 0 {
                self.endpoints[e] = fork.endpoints[e];
            }
        }
        self.total += fork.total;
    }

    #[inline]
    fn on_hop(&mut self, _cycle: u64, from: u32, to: u32, edge: usize) {
        if self.counts.len() <= edge {
            self.counts.resize(edge + 1, 0);
            self.endpoints.resize(edge + 1, (u32::MAX, u32::MAX));
        }
        self.counts[edge] += 1;
        self.endpoints[edge] = (from, to);
        self.total += 1;
    }

    fn sections(&self) -> Vec<(String, JsonValue)> {
        let hottest = self
            .hottest(8)
            .into_iter()
            .map(|(from, to, count)| {
                JsonValue::obj([
                    ("from", JsonValue::Int(from as u64)),
                    ("to", JsonValue::Int(to as u64)),
                    ("count", JsonValue::Int(count)),
                ])
            })
            .collect();
        vec![(
            "link_heatmap".to_string(),
            JsonValue::obj([
                ("total_hops", JsonValue::Int(self.total)),
                ("links_used", JsonValue::Int(self.links_used() as u64)),
                ("hottest", JsonValue::Arr(hottest)),
            ]),
        )]
    }
}

/// Observer accounting for every packet's fate on a (possibly degraded)
/// network: delivered, dropped with a dead endpoint, dropped as
/// unreachable, or still in flight when the cycle cap hit. Its
/// fractions are the delivered-throughput degradation measure the
/// fault-resilience experiments report.
///
/// Fractions are `None` until at least one packet was injected — an
/// idle run has no meaningful ratio, mirroring the `Option` convention
/// of [`FaultTrial`](crate::fault::FaultTrial).
#[derive(Clone, Debug, Default)]
pub struct DeliveryTracker {
    injected: u64,
    delivered: u64,
    dropped_dead_endpoint: u64,
    dropped_unreachable: u64,
    dropped_link_died: u64,
    dropped_node_died: u64,
    dropped_retries_exhausted: u64,
}

impl DeliveryTracker {
    /// A fresh tracker.
    pub fn new() -> DeliveryTracker {
        DeliveryTracker::default()
    }

    /// Packets injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Packets dropped because their source or destination failed.
    pub fn dropped_dead_endpoint(&self) -> u64 {
        self.dropped_dead_endpoint
    }

    /// Packets dropped because the faults disconnect their endpoints.
    pub fn dropped_unreachable(&self) -> u64 {
        self.dropped_unreachable
    }

    /// Packets dropped mid-run because their queued link failed.
    pub fn dropped_link_died(&self) -> u64 {
        self.dropped_link_died
    }

    /// Packets dropped mid-run because a node they occupied (or were
    /// addressed to) failed.
    pub fn dropped_node_died(&self) -> u64 {
        self.dropped_node_died
    }

    /// Closed-loop requests abandoned after exhausting their retry
    /// budget.
    pub fn dropped_retries_exhausted(&self) -> u64 {
        self.dropped_retries_exhausted
    }

    /// Total typed drops.
    pub fn dropped(&self) -> u64 {
        self.dropped_dead_endpoint
            + self.dropped_unreachable
            + self.dropped_link_died
            + self.dropped_node_died
            + self.dropped_retries_exhausted
    }

    /// Packets neither delivered nor dropped — still queued when the run
    /// ended (nonzero only under a cycle cap).
    pub fn in_flight(&self) -> u64 {
        self.injected - self.delivered - self.dropped()
    }

    /// `delivered / injected`, or `None` before any injection.
    pub fn delivered_fraction(&self) -> Option<f64> {
        (self.injected > 0).then(|| self.delivered as f64 / self.injected as f64)
    }

    /// `dropped / injected` (both drop kinds), or `None` before any
    /// injection.
    pub fn dropped_fraction(&self) -> Option<f64> {
        (self.injected > 0).then(|| self.dropped() as f64 / self.injected as f64)
    }

    /// `dropped_unreachable / injected` — the statically undeliverable
    /// share — or `None` before any injection.
    pub fn undeliverable_fraction(&self) -> Option<f64> {
        (self.injected > 0).then(|| self.dropped_unreachable as f64 / self.injected as f64)
    }
}

fn fraction_json(x: Option<f64>) -> JsonValue {
    match x {
        Some(v) => JsonValue::Num(v),
        None => JsonValue::Null,
    }
}

impl SimObserver for DeliveryTracker {
    fn fork(&self) -> Option<Self> {
        Some(DeliveryTracker::new())
    }

    /// Every tracked event is a partitioned packet event: sum.
    fn merge(&mut self, fork: Self) {
        self.injected += fork.injected;
        self.delivered += fork.delivered;
        self.dropped_dead_endpoint += fork.dropped_dead_endpoint;
        self.dropped_unreachable += fork.dropped_unreachable;
        self.dropped_link_died += fork.dropped_link_died;
        self.dropped_node_died += fork.dropped_node_died;
        self.dropped_retries_exhausted += fork.dropped_retries_exhausted;
    }

    #[inline]
    fn on_inject(&mut self, _cycle: u64, _src: u32, _dst: u32) {
        self.injected += 1;
    }

    #[inline]
    fn on_deliver(&mut self, _cycle: u64, _dst: u32, _latency: u64) {
        self.delivered += 1;
    }

    #[inline]
    fn on_drop(&mut self, _cycle: u64, _src: u32, _dst: u32, reason: DropReason) {
        match reason {
            DropReason::DeadEndpoint => self.dropped_dead_endpoint += 1,
            DropReason::Unreachable => self.dropped_unreachable += 1,
            DropReason::LinkDied => self.dropped_link_died += 1,
            DropReason::NodeDied => self.dropped_node_died += 1,
            DropReason::RetriesExhausted => self.dropped_retries_exhausted += 1,
        }
    }

    fn sections(&self) -> Vec<(String, JsonValue)> {
        vec![(
            "delivery".to_string(),
            JsonValue::obj([
                ("injected", JsonValue::Int(self.injected)),
                ("delivered", JsonValue::Int(self.delivered)),
                (
                    "dropped_dead_endpoint",
                    JsonValue::Int(self.dropped_dead_endpoint),
                ),
                (
                    "dropped_unreachable",
                    JsonValue::Int(self.dropped_unreachable),
                ),
                ("dropped_link_died", JsonValue::Int(self.dropped_link_died)),
                ("dropped_node_died", JsonValue::Int(self.dropped_node_died)),
                (
                    "dropped_retries_exhausted",
                    JsonValue::Int(self.dropped_retries_exhausted),
                ),
                ("in_flight", JsonValue::Int(self.in_flight())),
                (
                    "delivered_fraction",
                    fraction_json(self.delivered_fraction()),
                ),
                ("dropped_fraction", fraction_json(self.dropped_fraction())),
                (
                    "undeliverable_fraction",
                    fraction_json(self.undeliverable_fraction()),
                ),
            ]),
        )]
    }
}

/// Delivered-fraction threshold at which [`SloTracker`] considers
/// service recovered after a fault event.
pub const SLO_DELIVERED_TARGET: f64 = 0.99;

/// One aggregation window of an [`SloTracker`] run. Windows are sparse:
/// only windows in which at least one event fired are recorded, so
/// consumers must not assume consecutive [`start`](SloWindow::start)
/// values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloWindow {
    start: u64,
    end: u64,
    injected: u64,
    delivered: u64,
    dropped: u64,
    hist: Vec<u64>,
}

impl SloWindow {
    /// First cycle covered by this window (inclusive).
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last cycle covered by this window.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Packets injected during this window.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Packets delivered during this window.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Packets dropped (any [`DropReason`]) during this window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `delivered / injected` for this window, or `None` when nothing
    /// was injected in it.
    pub fn delivered_fraction(&self) -> Option<f64> {
        (self.injected > 0).then(|| self.delivered as f64 / self.injected as f64)
    }

    /// 99th-percentile latency of packets delivered in this window.
    pub fn p99(&self) -> u64 {
        percentile(&self.hist, 0.99)
    }

    /// 99.9th-percentile latency of packets delivered in this window.
    pub fn p999(&self) -> u64 {
        percentile(&self.hist, 0.999)
    }
}

/// Per-fault-event recovery record computed by
/// [`SloTracker::recoveries`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloRecovery {
    /// Cycle boundary at which the event committed.
    pub cycle: u64,
    /// `true` for a fail event, `false` for a recovery event.
    pub failed: bool,
    /// Cycles from the event until the end of the first window at or
    /// after it whose delivered fraction met
    /// [`SLO_DELIVERED_TARGET`]; `None` when service never recovered
    /// before the run ended.
    pub time_to_recover: Option<u64>,
}

/// Service-level observer for churn runs: windowed
/// delivered-fraction-over-time, windowed tail latency (p99/p99.9),
/// and time-to-recover after each fault event.
///
/// Attach to a churn run
/// ([`simulate_churn`](crate::simulator::simulate_churn)) and read the
/// typed accessors, or let [`sections`](SimObserver::sections) emit an
/// `"slo"` report section. Windows aggregate `window` cycles each and
/// are recorded sparsely (idle windows are absent).
#[derive(Clone, Debug)]
pub struct SloTracker {
    window: u64,
    windows: Vec<SloWindow>,
    fault_events: Vec<(u64, bool)>,
}

impl SloTracker {
    /// A fresh tracker aggregating `window` cycles per window
    /// (clamped to at least 1).
    pub fn new(window: u64) -> SloTracker {
        SloTracker {
            window: window.max(1),
            windows: Vec::new(),
            fault_events: Vec::new(),
        }
    }

    /// Cycles per aggregation window.
    pub fn window_cycles(&self) -> u64 {
        self.window
    }

    /// The recorded windows, ordered by start cycle (sparse — idle
    /// windows are skipped).
    pub fn windows(&self) -> &[SloWindow] {
        &self.windows
    }

    /// Every `(cycle, failed)` churn event observed, in commit order.
    pub fn fault_events(&self) -> &[(u64, bool)] {
        &self.fault_events
    }

    /// Time-to-recover per observed churn event: the first window at or
    /// after the event with traffic whose delivered fraction meets
    /// [`SLO_DELIVERED_TARGET`] closes the recovery, and
    /// `time_to_recover` is measured from the event to that window's
    /// end.
    pub fn recoveries(&self) -> Vec<SloRecovery> {
        self.fault_events
            .iter()
            .map(|&(cycle, failed)| {
                let time_to_recover = self
                    .windows
                    .iter()
                    .filter(|w| w.end > cycle && w.injected > 0)
                    .find(|w| {
                        w.delivered_fraction()
                            .is_some_and(|f| f >= SLO_DELIVERED_TARGET)
                    })
                    .map(|w| w.end - cycle);
                SloRecovery {
                    cycle,
                    failed,
                    time_to_recover,
                }
            })
            .collect()
    }

    fn window_mut(&mut self, cycle: u64) -> &mut SloWindow {
        let start = cycle - cycle % self.window;
        // Events arrive in non-decreasing cycle order, so the right
        // window is almost always the last one.
        let pos = match self.windows.iter().rposition(|w| w.start == start) {
            Some(pos) => pos,
            None => {
                let pos = self.windows.partition_point(|w| w.start < start);
                self.windows.insert(
                    pos,
                    SloWindow {
                        start,
                        end: start + self.window,
                        injected: 0,
                        delivered: 0,
                        dropped: 0,
                        hist: Vec::new(),
                    },
                );
                pos
            }
        };
        &mut self.windows[pos]
    }
}

impl SimObserver for SloTracker {
    fn fork(&self) -> Option<Self> {
        Some(SloTracker::new(self.window))
    }

    /// Packet events (window counters) partition across lanes and sum
    /// window-by-window; fault events are global — every fork records
    /// the identical sequence, so the first non-empty one stands.
    fn merge(&mut self, fork: Self) {
        for w in fork.windows {
            let mine = self.window_mut(w.start);
            mine.injected += w.injected;
            mine.delivered += w.delivered;
            mine.dropped += w.dropped;
            if mine.hist.len() < w.hist.len() {
                mine.hist.resize(w.hist.len(), 0);
            }
            for (lat, c) in w.hist.into_iter().enumerate() {
                mine.hist[lat] += c;
            }
        }
        if self.fault_events.is_empty() {
            self.fault_events = fork.fault_events;
        } else {
            debug_assert_eq!(
                self.fault_events, fork.fault_events,
                "fault events are global: every fork must see the same sequence"
            );
        }
    }

    #[inline]
    fn on_inject(&mut self, cycle: u64, _src: u32, _dst: u32) {
        self.window_mut(cycle).injected += 1;
    }

    #[inline]
    fn on_deliver(&mut self, cycle: u64, _dst: u32, latency: u64) {
        let w = self.window_mut(cycle);
        w.delivered += 1;
        bump(&mut w.hist, latency);
    }

    #[inline]
    fn on_drop(&mut self, cycle: u64, _src: u32, _dst: u32, _reason: DropReason) {
        self.window_mut(cycle).dropped += 1;
    }

    #[inline]
    fn on_fault_event(&mut self, cycle: u64, failed: bool) {
        self.fault_events.push((cycle, failed));
    }

    fn sections(&self) -> Vec<(String, JsonValue)> {
        let windows = self
            .windows
            .iter()
            .map(|w| {
                JsonValue::obj([
                    ("start", JsonValue::Int(w.start)),
                    ("end", JsonValue::Int(w.end)),
                    ("injected", JsonValue::Int(w.injected)),
                    ("delivered", JsonValue::Int(w.delivered)),
                    ("dropped", JsonValue::Int(w.dropped)),
                    ("delivered_fraction", fraction_json(w.delivered_fraction())),
                    ("p99_latency", JsonValue::Int(w.p99())),
                    ("p999_latency", JsonValue::Int(w.p999())),
                ])
            })
            .collect();
        let events = self
            .recoveries()
            .into_iter()
            .map(|r| {
                JsonValue::obj([
                    ("cycle", JsonValue::Int(r.cycle)),
                    ("failed", JsonValue::Bool(r.failed)),
                    (
                        "time_to_recover",
                        match r.time_to_recover {
                            Some(t) => JsonValue::Int(t),
                            None => JsonValue::Null,
                        },
                    ),
                ])
            })
            .collect();
        vec![(
            "slo".to_string(),
            JsonValue::obj([
                ("window_cycles", JsonValue::Int(self.window)),
                ("windows", JsonValue::Arr(windows)),
                ("fault_events", JsonValue::Arr(events)),
            ]),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_tracker_types_every_fate() {
        let mut t = DeliveryTracker::new();
        assert_eq!(t.delivered_fraction(), None, "no injections yet");
        for _ in 0..10 {
            t.on_inject(0, 1, 2);
        }
        for _ in 0..6 {
            t.on_deliver(3, 2, 3);
        }
        t.on_drop(0, 1, 2, DropReason::DeadEndpoint);
        t.on_drop(0, 1, 2, DropReason::Unreachable);
        t.on_drop(0, 1, 2, DropReason::Unreachable);
        assert_eq!(t.injected(), 10);
        assert_eq!(t.delivered(), 6);
        assert_eq!(t.dropped_dead_endpoint(), 1);
        assert_eq!(t.dropped_unreachable(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.delivered_fraction(), Some(0.6));
        assert_eq!(t.dropped_fraction(), Some(0.3));
        assert_eq!(t.undeliverable_fraction(), Some(0.2));
        let sections = t.sections();
        assert_eq!(sections[0].0, "delivery");
        let json = sections[0].1.to_string();
        assert!(json.contains("\"delivered_fraction\": 0.6"), "{json}");
        assert!(json.contains("\"in_flight\": 1"), "{json}");
    }

    #[test]
    fn slo_tracker_windows_and_recoveries() {
        let mut t = SloTracker::new(10);
        assert_eq!(t.window_cycles(), 10);
        // Window [0, 10): healthy traffic, all delivered.
        for c in 0..4 {
            t.on_inject(c, 0, 1);
            t.on_deliver(c, 1, 2);
        }
        // Fault at cycle 12; window [10, 20) degrades to 50%.
        t.on_fault_event(12, true);
        for c in [12, 14] {
            t.on_inject(c, 0, 1);
        }
        t.on_deliver(14, 1, 2);
        t.on_drop(12, 0, 1, DropReason::LinkDied);
        // Recovery at 20; window [30, 40) is healthy again (windows are
        // sparse: [20, 30) saw no events and is absent).
        t.on_fault_event(20, false);
        t.on_inject(33, 0, 1);
        t.on_deliver(33, 1, 7);
        let w = t.windows();
        assert_eq!(w.len(), 3, "sparse windows: {w:?}");
        assert_eq!((w[0].start(), w[0].end()), (0, 10));
        assert_eq!(w[0].delivered_fraction(), Some(1.0));
        assert_eq!(w[1].delivered_fraction(), Some(0.5));
        assert_eq!(w[1].dropped(), 1);
        assert_eq!(w[2].p999(), 7);
        let rec = t.recoveries();
        assert_eq!(rec.len(), 2);
        // First healthy window at/after cycle 12 is [30, 40).
        assert_eq!(rec[0].time_to_recover, Some(40 - 12));
        assert_eq!(rec[1].time_to_recover, Some(40 - 20));
        let sections = t.sections();
        assert_eq!(sections[0].0, "slo");
        let json = sections[0].1.to_string();
        assert!(json.contains("\"window_cycles\": 10"), "{json}");
        assert!(json.contains("\"p999_latency\""), "{json}");
        assert!(json.contains("\"time_to_recover\": 28"), "{json}");
    }

    #[test]
    fn latency_histogram_accumulates() {
        let mut h = LatencyHistogram::new();
        for (lat, times) in [(2u64, 3u64), (5, 1)] {
            for _ in 0..times {
                h.on_deliver(10, 0, lat);
            }
        }
        assert_eq!(h.histogram(), &[0, 0, 3, 0, 0, 1]);
        assert_eq!(h.delivered(), 4);
        assert_eq!(h.mean(), 11.0 / 4.0);
        assert_eq!(h.p99(), 5);
        let sections = h.sections();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].0, "latency_histogram");
    }

    #[test]
    fn link_heatmap_counts_and_ranks() {
        let mut m = LinkHeatmap::new();
        m.on_hop(0, 1, 2, 7);
        m.on_hop(1, 1, 2, 7);
        m.on_hop(1, 2, 3, 3);
        assert_eq!(m.total_hops(), 3);
        assert_eq!(m.links_used(), 2);
        assert_eq!(m.load(7), 2);
        assert_eq!(m.load(99), 0);
        assert_eq!(m.hottest(8), vec![(1, 2, 2), (2, 3, 1)]);
    }

    #[test]
    fn pair_observer_fans_out_and_concatenates_sections() {
        let mut pair = (LatencyHistogram::new(), LinkHeatmap::new());
        pair.on_hop(0, 0, 1, 0);
        pair.on_deliver(1, 1, 1);
        assert_eq!(pair.0.delivered(), 1);
        assert_eq!(pair.1.total_hops(), 1);
        let names: Vec<String> = pair.sections().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["latency_histogram", "link_heatmap"]);
    }

    #[test]
    fn mut_ref_observer_delegates() {
        let mut h = LatencyHistogram::new();
        {
            let mut r = &mut h;
            SimObserver::on_deliver(&mut r, 0, 0, 3);
            assert_eq!(SimObserver::sections(&r).len(), 1);
        }
        assert_eq!(h.delivered(), 1);
    }
}
