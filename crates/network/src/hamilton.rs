//! Hamiltonicity of generalized Fibonacci cubes.
//!
//! Liu–Hsu–Chung (*Generalized Fibonacci cubes are mostly Hamiltonian*,
//! J. Graph Theory 18 (1994)) show `Q_d(1^k)` has a Hamiltonian path for
//! every `d` and is Hamiltonian (has a Hamiltonian cycle) except for a thin
//! family of parities; Zagaglia Salvi studies even cycle lengths. We
//! provide an exact backtracking search (degree-sorted, prune on
//! disconnection) adequate for the experiment sizes, plus the bipartite
//! balance obstruction for quick "no" answers.

use fibcube_graph::csr::CsrGraph;

/// Hard cap on backtracking steps so adversarial inputs cannot hang tests.
const STEP_BUDGET: u64 = 50_000_000;

/// Searches for a Hamiltonian path; returns the vertex order if found,
/// `None` if none exists (or the step budget is exhausted — distinguished
/// by [`HamiltonResult`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HamiltonResult {
    /// A witness order of all vertices.
    Found(Vec<u32>),
    /// Exhaustive search proved none exists.
    None,
    /// Step budget exhausted before resolution.
    Unknown,
}

impl HamiltonResult {
    /// `true` for [`HamiltonResult::Found`].
    pub fn is_found(&self) -> bool {
        matches!(self, HamiltonResult::Found(_))
    }
}

/// Bipartite balance bound: a Hamiltonian *path* in a bipartite graph needs
/// `|count(side0) − count(side1)| ≤ 1`; a Hamiltonian *cycle* needs exact
/// balance. Returns `(path_possible, cycle_possible)` from parity alone.
pub fn bipartite_obstruction(g: &CsrGraph) -> (bool, bool) {
    match fibcube_graph::properties::bipartition(g) {
        Some(colors) => {
            let ones = colors.iter().filter(|&&c| c == 1).count();
            let zeros = colors.len() - ones;
            let diff = ones.abs_diff(zeros);
            (diff <= 1, diff == 0)
        }
        None => (true, true), // non-bipartite: parity is silent
    }
}

/// Exact Hamiltonian path search from any start.
pub fn hamiltonian_path(g: &CsrGraph) -> HamiltonResult {
    let n = g.num_vertices();
    if n == 0 {
        return HamiltonResult::None;
    }
    if n == 1 {
        return HamiltonResult::Found(vec![0]);
    }
    if !fibcube_graph::distance::is_connected(g) {
        return HamiltonResult::None;
    }
    let (path_ok, _) = bipartite_obstruction(g);
    if !path_ok {
        return HamiltonResult::None;
    }
    let mut budget = STEP_BUDGET;
    // Try starts in increasing degree order (endpoints are often the
    // constrained vertices).
    let mut starts: Vec<u32> = (0..n as u32).collect();
    starts.sort_unstable_by_key(|&u| g.degree(u));
    for start in starts {
        let mut visited = vec![false; n];
        let mut path = Vec::with_capacity(n);
        visited[start as usize] = true;
        path.push(start);
        if extend(g, &mut path, &mut visited, false, &mut budget) {
            return HamiltonResult::Found(path);
        }
        if budget == 0 {
            return HamiltonResult::Unknown;
        }
    }
    HamiltonResult::None
}

/// Exact Hamiltonian cycle search.
pub fn hamiltonian_cycle(g: &CsrGraph) -> HamiltonResult {
    let n = g.num_vertices();
    if n < 3 {
        return HamiltonResult::None;
    }
    if !fibcube_graph::distance::is_connected(g) {
        return HamiltonResult::None;
    }
    let (_, cycle_ok) = bipartite_obstruction(g);
    if !cycle_ok {
        return HamiltonResult::None;
    }
    let mut budget = STEP_BUDGET;
    // Cycles may start anywhere: fix vertex 0.
    let mut visited = vec![false; n];
    let mut path = vec![0u32];
    visited[0] = true;
    if extend(g, &mut path, &mut visited, true, &mut budget) {
        return HamiltonResult::Found(path);
    }
    if budget == 0 {
        HamiltonResult::Unknown
    } else {
        HamiltonResult::None
    }
}

fn extend(
    g: &CsrGraph,
    path: &mut Vec<u32>,
    visited: &mut Vec<bool>,
    cycle: bool,
    budget: &mut u64,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let n = g.num_vertices();
    if path.len() == n {
        return !cycle || g.has_edge(*path.last().unwrap(), path[0]);
    }
    let cur = *path.last().unwrap();
    // Warnsdorff: try neighbors with fewest unvisited continuations first.
    let mut nexts: Vec<(usize, u32)> = g
        .neighbors(cur)
        .iter()
        .copied()
        .filter(|&v| !visited[v as usize])
        .map(|v| {
            let onward = g
                .neighbors(v)
                .iter()
                .filter(|&&w| !visited[w as usize])
                .count();
            (onward, v)
        })
        .collect();
    nexts.sort_unstable();
    for (_, v) in nexts {
        // Degree-1 cut: if some unvisited vertex (other than a future
        // endpoint) would be stranded with zero unvisited neighbors, prune.
        visited[v as usize] = true;
        path.push(v);
        if extend(g, path, visited, cycle, budget) {
            return true;
        }
        path.pop();
        visited[v as usize] = false;
        if *budget == 0 {
            return false;
        }
    }
    false
}

/// Verifies a Hamiltonian path/cycle witness.
pub fn verify_hamiltonian(g: &CsrGraph, order: &[u32], cycle: bool) -> bool {
    let n = g.num_vertices();
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &v in order {
        if v as usize >= n || seen[v as usize] {
            return false;
        }
        seen[v as usize] = true;
    }
    for pair in order.windows(2) {
        if !g.has_edge(pair[0], pair[1]) {
            return false;
        }
    }
    !cycle || n >= 3 && g.has_edge(order[n - 1], order[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FibonacciNet, Topology};

    #[test]
    fn fibonacci_cubes_have_hamiltonian_paths() {
        // Liu–Hsu–Chung: Q_d(1^k) always has a Hamiltonian path.
        for (d, k) in [
            (2, 2),
            (3, 2),
            (4, 2),
            (5, 2),
            (6, 2),
            (7, 2),
            (4, 3),
            (5, 3),
            (6, 3),
        ] {
            let net = FibonacciNet::new(d, k);
            match hamiltonian_path(net.graph()) {
                HamiltonResult::Found(p) => {
                    assert!(verify_hamiltonian(net.graph(), &p, false), "d={d} k={k}")
                }
                other => panic!("d={d} k={k}: expected path, got {other:?}"),
            }
        }
    }

    #[test]
    fn gamma_cycle_existence_follows_balance() {
        // Γ_d has a Hamiltonian cycle iff its bipartition is balanced;
        // the parity obstruction decides the small cases.
        for d in 3..=7usize {
            let net = FibonacciNet::classical(d);
            let (_, balanced) = bipartite_obstruction(net.graph());
            let res = hamiltonian_cycle(net.graph());
            match res {
                HamiltonResult::Found(c) => {
                    assert!(balanced, "d={d}: cycle without balance?!");
                    assert!(verify_hamiltonian(net.graph(), &c, true), "d={d}");
                }
                HamiltonResult::None => {
                    assert!(!balanced, "d={d}: balanced but claimed non-Hamiltonian");
                }
                HamiltonResult::Unknown => panic!("budget must suffice at d={d}"),
            }
        }
    }

    #[test]
    fn small_classics() {
        let c6 = fibcube_graph::generators::cycle(6);
        assert!(hamiltonian_path(&c6).is_found());
        assert!(hamiltonian_cycle(&c6).is_found());
        let p5 = fibcube_graph::generators::path(5);
        assert!(hamiltonian_path(&p5).is_found());
        assert_eq!(hamiltonian_cycle(&p5), HamiltonResult::None);
        let star = fibcube_graph::generators::star(5);
        assert_eq!(hamiltonian_path(&star), HamiltonResult::None);
    }

    #[test]
    fn verify_rejects_bad_witnesses() {
        let c4 = fibcube_graph::generators::cycle(4);
        assert!(verify_hamiltonian(&c4, &[0, 1, 2, 3], true));
        assert!(!verify_hamiltonian(&c4, &[0, 2, 1, 3], true));
        assert!(!verify_hamiltonian(&c4, &[0, 1, 2], true));
        assert!(!verify_hamiltonian(&c4, &[0, 1, 1, 3], true));
    }

    #[test]
    fn balance_obstruction_values() {
        // Γ_4: 8 vertices, weights 0..2 ⇒ sides by parity of weight:
        // even-weight {0000,0101,1001,1010,…}: count 5? compute directly.
        let net = FibonacciNet::classical(4);
        let (path_ok, cycle_ok) = bipartite_obstruction(net.graph());
        let labels = net.labels();
        let odd = labels.iter().filter(|w| w.weight() % 2 == 1).count();
        let even = labels.len() - odd;
        assert_eq!(path_ok, odd.abs_diff(even) <= 1);
        assert_eq!(cycle_ok, odd.abs_diff(even) == 0);
    }
}
