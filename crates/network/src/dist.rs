//! Shared all-pairs distance tables, healthy and degraded.
//!
//! Three corners of the crate need the same BFS ground truth: the static
//! figure-of-merit table ([`metrics`](mod@crate::metrics)), the static
//! survivability analysis ([`fault_set_trial`](crate::fault::fault_set_trial)),
//! and the live fault-masking router
//! ([`FaultMaskingRouter`](crate::router::FaultMaskingRouter)). Each used
//! to run its own BFS sweeps (the router even lazily, behind a `RefCell`).
//! [`DistanceTable`] is the one shared form: a flat `n × n` matrix built
//! once per `(graph, fault set)` and threaded through wherever distances
//! are consulted.

use fibcube_graph::bfs::{bfs_into, BfsScratch, INFINITY};
use fibcube_graph::csr::CsrGraph;
use fibcube_graph::parallel::par_map;

use crate::experiment::ExperimentError;
use crate::fault::FaultMasks;

/// Flat all-pairs hop-distance matrix over a graph (optionally degraded
/// by a fault set). Rows are indexed by destination; `INFINITY` marks
/// unreachable (or dead) pairs. Undirected graphs make the matrix
/// symmetric, so "row toward `dst`" and "row from `src`" coincide.
#[derive(Clone, Debug)]
pub struct DistanceTable {
    n: usize,
    /// `dist[dst * n + src]`, row-major by destination.
    dist: Vec<u32>,
}

impl DistanceTable {
    /// All-pairs distances of the intact graph — one BFS per source,
    /// parallel across sources on the workspace thread pool.
    ///
    /// Refuses with [`ExperimentError::TableTooLarge`] when the `4n²`-byte
    /// matrix would exceed
    /// [`TABLE_BYTE_BUDGET`](crate::router::TABLE_BYTE_BUDGET); use
    /// [`DistanceSample`] for estimates on larger networks.
    pub fn healthy(g: &CsrGraph) -> Result<DistanceTable, ExperimentError> {
        let n = g.num_vertices();
        crate::router::check_table_budget(n)?;
        let rows = par_map(n, |s| {
            let mut row = vec![INFINITY; n];
            let mut scratch = BfsScratch::new(n);
            bfs_into(g, s as u32, &mut row, &mut scratch);
            row
        });
        let mut dist = Vec::with_capacity(n * n);
        for row in rows {
            dist.extend_from_slice(&row);
        }
        Ok(DistanceTable { n, dist })
    }

    /// All-pairs distances of the graph degraded by `masks`: BFS over
    /// surviving links only, so dead nodes (and nodes the faults cut off)
    /// read [`INFINITY`] everywhere, including toward themselves when
    /// dead.
    ///
    /// Runs serially: its callers (the fault-masking router inside sweep
    /// workers) are already fanned out across the thread pool, so nesting
    /// another fan-out here would oversubscribe it.
    pub fn degraded(g: &CsrGraph, masks: &FaultMasks) -> DistanceTable {
        let n = g.num_vertices();
        let mut dist = vec![INFINITY; n * n];
        let mut queue: Vec<u32> = Vec::with_capacity(n);
        for dst in 0..n as u32 {
            let row = &mut dist[dst as usize * n..][..n];
            if !masks.node_alive(dst) {
                continue;
            }
            row[dst as usize] = 0;
            queue.clear();
            queue.push(dst);
            let mut head = 0usize;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                let next = row[u as usize] + 1;
                let base = g.edge_range(u).start;
                for (slot, &v) in g.neighbors(u).iter().enumerate() {
                    if masks.edge_alive(base + slot) && row[v as usize] == INFINITY {
                        row[v as usize] = next;
                        queue.push(v);
                    }
                }
            }
        }
        DistanceTable { n, dist }
    }

    /// Number of nodes the table covers.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Hop distance between `u` and `v` ([`INFINITY`] when disconnected).
    #[inline]
    pub fn distance(&self, u: u32, v: u32) -> u32 {
        self.dist[v as usize * self.n + u as usize]
    }

    /// The full distance row toward `dst` — `row[src]` is the distance
    /// from `src`. This is the hot-path view the fault-masking router
    /// indexes per hop.
    #[inline]
    pub fn to_dst(&self, dst: u32) -> &[u32] {
        &self.dist[dst as usize * self.n..][..self.n]
    }

    /// `true` when `u` and `v` are connected in the table's graph.
    #[inline]
    pub fn reachable(&self, u: u32, v: u32) -> bool {
        self.distance(u, v) != INFINITY
    }

    /// Largest finite distance — the diameter reported per component
    /// (matching [`fibcube_graph::distance::diameter`]). `None` for the
    /// empty graph.
    pub fn diameter(&self) -> Option<u32> {
        if self.n == 0 {
            return None;
        }
        self.dist.iter().copied().filter(|&d| d != INFINITY).max()
    }

    /// Mean distance over connected ordered pairs (`u ≠ v`), the expected
    /// hop count of uniform random traffic (matching
    /// [`fibcube_graph::distance::average_distance`]).
    pub fn average_distance(&self) -> f64 {
        let mut sum = 0u64;
        let mut pairs = 0u64;
        for &d in &self.dist {
            if d != 0 && d != INFINITY {
                sum += d as u64;
                pairs += 1;
            }
        }
        if pairs == 0 {
            0.0
        } else {
            sum as f64 / pairs as f64
        }
    }
}

/// Sampled distance statistics for networks too large for an all-pairs
/// [`DistanceTable`]: exact BFS from a uniform random sample of `sources`
/// nodes, `O(s · (n + m))` time and `O(n)` transient space.
///
/// Each sampled source contributes its exact mean distance to every other
/// reachable node; the estimator averages those per-source means, which is
/// unbiased for the population average distance on a vertex-transitive-ish
/// graph and comes with a normal-approximation confidence half-width
/// ([`DistanceSample::average_ci95`]). The largest distance seen is the
/// exact eccentricity of some sampled source, hence a certified *lower
/// bound* on the diameter — dense-table consumers that need the exact
/// diameter must stay below the byte budget and use
/// [`DistanceTable::healthy`].
#[derive(Clone, Debug)]
pub struct DistanceSample {
    /// Number of distinct BFS sources actually sampled (`min(requested, n)`).
    pub sources: usize,
    /// Estimated mean distance over connected ordered pairs (`u ≠ v`).
    pub average_distance: f64,
    /// Half-width of the 95% confidence interval on
    /// [`average_distance`](DistanceSample::average_distance), from the
    /// spread of per-source means (0 when every source was sampled — on a
    /// connected graph the estimate is then exact).
    pub average_ci95: f64,
    /// Max distance observed = exact eccentricity of a sampled source —
    /// a lower bound on (and frequently equal to) the diameter.
    pub diameter_lower_bound: u32,
}

impl DistanceSample {
    /// Estimates distance statistics of `g` from `sources` seeded random
    /// BFS sources (clamped to `n`; sampling every node makes the
    /// average exact and the CI zero).
    pub fn estimate(g: &CsrGraph, sources: usize, seed: u64) -> DistanceSample {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let n = g.num_vertices();
        if n == 0 {
            return DistanceSample {
                sources: 0,
                average_distance: 0.0,
                average_ci95: 0.0,
                diameter_lower_bound: 0,
            };
        }
        let s = sources.clamp(1, n);
        // Distinct sources via partial Fisher–Yates over the id range.
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..s {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
        }
        ids.truncate(s);

        let rows = par_map(s, |i| {
            let mut row = vec![INFINITY; n];
            let mut scratch = BfsScratch::new(n);
            bfs_into(g, ids[i], &mut row, &mut scratch);
            let mut sum = 0u64;
            let mut pairs = 0u64;
            let mut ecc = 0u32;
            for &d in &row {
                if d != 0 && d != INFINITY {
                    sum += d as u64;
                    pairs += 1;
                    ecc = ecc.max(d);
                }
            }
            let mean = if pairs == 0 {
                0.0
            } else {
                sum as f64 / pairs as f64
            };
            (mean, ecc)
        });

        let means: Vec<f64> = rows.iter().map(|&(m, _)| m).collect();
        let diameter_lower_bound = rows.iter().map(|&(_, e)| e).max().unwrap_or(0);
        let avg = means.iter().sum::<f64>() / s as f64;
        let average_ci95 = if s >= n || s < 2 {
            0.0
        } else {
            let var = means.iter().map(|m| (m - avg) * (m - avg)).sum::<f64>() / (s - 1) as f64;
            1.96 * (var / s as f64).sqrt()
        };
        DistanceSample {
            sources: s,
            average_distance: avg,
            average_ci95,
            diameter_lower_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSet;
    use crate::topology::{FibonacciNet, Hypercube, Ring, Topology};
    use fibcube_graph::bfs::bfs_distances;

    #[test]
    fn healthy_table_matches_per_source_bfs() {
        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(9),
        ] {
            let g = topo.graph();
            let table = DistanceTable::healthy(g).unwrap();
            assert_eq!(table.nodes(), topo.len());
            for dst in 0..topo.len() as u32 {
                let bfs = bfs_distances(g, dst);
                assert_eq!(table.to_dst(dst), &bfs[..], "{} dst {dst}", topo.name());
                for src in 0..topo.len() as u32 {
                    assert_eq!(table.distance(src, dst), bfs[src as usize]);
                }
            }
        }
    }

    #[test]
    fn healthy_table_reproduces_graph_invariants() {
        for topo in [
            &FibonacciNet::classical(8) as &dyn Topology,
            &Hypercube::new(5),
            &Ring::new(12),
        ] {
            let g = topo.graph();
            let table = DistanceTable::healthy(g).unwrap();
            assert_eq!(table.diameter(), fibcube_graph::distance::diameter(g));
            let avg = fibcube_graph::distance::average_distance(g);
            assert!((table.average_distance() - avg).abs() < 1e-12);
        }
    }

    #[test]
    fn degraded_table_matches_bfs_on_the_healthy_subgraph() {
        let net = FibonacciNet::classical(7);
        let g = net.graph();
        let set = FaultSet::new([2u32, 9, 17], [(0u32, 1u32)]);
        let table = DistanceTable::degraded(g, &set.masks(g));
        let (healthy, survivors) = set.healthy_subgraph(g);
        let mut new_id = vec![u32::MAX; g.num_vertices()];
        for (i, &v) in survivors.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        for &dst in &survivors {
            let bfs = bfs_distances(&healthy, new_id[dst as usize]);
            for v in 0..g.num_vertices() as u32 {
                let expected = if set.node_alive(v) {
                    bfs[new_id[v as usize] as usize]
                } else {
                    INFINITY
                };
                assert_eq!(table.distance(v, dst), expected, "{v} → {dst}");
            }
        }
        // Dead destinations are unreachable from everywhere, themselves
        // included.
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(table.distance(v, 2), INFINITY);
            assert!(!table.reachable(v, 9));
        }
    }

    #[test]
    fn empty_masks_make_degraded_equal_healthy() {
        let q = Hypercube::new(4);
        let g = q.graph();
        let healthy = DistanceTable::healthy(g).unwrap();
        let degraded = DistanceTable::degraded(g, &FaultSet::empty().masks(g));
        for u in 0..16u32 {
            assert_eq!(healthy.to_dst(u), degraded.to_dst(u));
        }
    }

    #[test]
    fn full_sample_is_exact_on_connected_graphs() {
        for topo in [
            &FibonacciNet::classical(8) as &dyn Topology,
            &Hypercube::new(5),
            &Ring::new(12),
        ] {
            let g = topo.graph();
            let exact = DistanceTable::healthy(g).unwrap();
            let sample = DistanceSample::estimate(g, g.num_vertices(), 7);
            assert_eq!(sample.sources, topo.len(), "{}", topo.name());
            assert!(
                (sample.average_distance - exact.average_distance()).abs() < 1e-9,
                "{}: {} vs {}",
                topo.name(),
                sample.average_distance,
                exact.average_distance()
            );
            assert_eq!(sample.average_ci95, 0.0);
            assert_eq!(sample.diameter_lower_bound, exact.diameter().unwrap());
        }
    }

    #[test]
    fn partial_sample_estimates_with_honest_bounds() {
        let net = FibonacciNet::classical(10); // 144 nodes
        let g = net.graph();
        let exact = DistanceTable::healthy(g).unwrap();
        let sample = DistanceSample::estimate(g, 24, 2026);
        assert_eq!(sample.sources, 24);
        assert!(sample.average_ci95 > 0.0, "partial samples carry a CI");
        assert!(
            sample.diameter_lower_bound <= exact.diameter().unwrap(),
            "lower bound must never exceed the diameter"
        );
        assert!(
            (sample.average_distance - exact.average_distance()).abs() < 0.5,
            "estimate {} too far from exact {}",
            sample.average_distance,
            exact.average_distance()
        );
        // Oversized requests clamp to n instead of repeating sources.
        let clamped = DistanceSample::estimate(g, 10_000, 1);
        assert_eq!(clamped.sources, 144);
    }

    #[test]
    fn sample_of_empty_graph() {
        let s = DistanceSample::estimate(&CsrGraph::empty(0), 8, 0);
        assert_eq!(s.sources, 0);
        assert_eq!(s.average_distance, 0.0);
        assert_eq!(s.diameter_lower_bound, 0);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let empty = DistanceTable::healthy(&CsrGraph::empty(0)).unwrap();
        assert_eq!(empty.diameter(), None);
        assert_eq!(empty.average_distance(), 0.0);
        let single = DistanceTable::healthy(&CsrGraph::empty(1)).unwrap();
        assert_eq!(single.diameter(), Some(0));
        assert_eq!(single.average_distance(), 0.0);
    }
}
