//! Shared all-pairs distance tables, healthy and degraded.
//!
//! Three corners of the crate need the same BFS ground truth: the static
//! figure-of-merit table ([`metrics`](mod@crate::metrics)), the static
//! survivability analysis ([`fault_set_trial`](crate::fault::fault_set_trial)),
//! and the live fault-masking router
//! ([`FaultMaskingRouter`](crate::router::FaultMaskingRouter)). Each used
//! to run its own BFS sweeps (the router even lazily, behind a `RefCell`).
//! [`DistanceTable`] is the one shared form: a flat `n × n` matrix built
//! once per `(graph, fault set)` and threaded through wherever distances
//! are consulted.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fibcube_graph::bfs::{bfs_into, BfsScratch, INFINITY};
use fibcube_graph::csr::CsrGraph;
use fibcube_graph::parallel::par_map;

use crate::experiment::ExperimentError;
use crate::fault::{ChurnEvent, ChurnTarget, FaultMasks};

/// Flat all-pairs hop-distance matrix over a graph (optionally degraded
/// by a fault set). Rows are indexed by destination; `INFINITY` marks
/// unreachable (or dead) pairs. Undirected graphs make the matrix
/// symmetric, so "row toward `dst`" and "row from `src`" coincide.
///
/// # Incremental repair
///
/// Under churn the table is *patched*, not rebuilt: the
/// [`fail_link`](DistanceTable::fail_link) /
/// [`recover_link`](DistanceTable::recover_link) /
/// [`fail_node`](DistanceTable::fail_node) /
/// [`recover_node`](DistanceTable::recover_node) methods apply one
/// fault event in time proportional to the *affected frontier* (the
/// Ramalingam–Reps orphan region plus its boundary) instead of the
/// `O(n·m)` of a from-scratch [`degraded`](DistanceTable::degraded)
/// rebuild.
///
/// **Invariant:** when a patch method returns, every row equals the
/// corresponding row of `DistanceTable::degraded(g, masks)` built from
/// scratch under the *post-event* masks. The proptest suite replays
/// random event sequences and asserts exactly this after every event.
///
/// Each applied event advances the table's [`epoch`](DistanceTable::epoch)
/// by one and stamps the rows it modified with the new epoch
/// ([`row_epoch`](DistanceTable::row_epoch)), so consumers holding
/// per-row derived state invalidate precisely the rows that changed.
#[derive(Clone, Debug)]
pub struct DistanceTable {
    n: usize,
    /// `dist[dst * n + src]`, row-major by destination.
    dist: Vec<u32>,
    /// Patch epoch: 0 as built, +1 per applied churn event.
    epoch: u64,
    /// `row_epoch[dst]` = epoch at which the row toward `dst` last
    /// changed (0 = untouched since construction).
    row_epoch: Vec<u64>,
}

impl DistanceTable {
    /// All-pairs distances of the intact graph — one BFS per source,
    /// parallel across sources on the workspace thread pool.
    ///
    /// Refuses with [`ExperimentError::TableTooLarge`] when the `4n²`-byte
    /// matrix would exceed
    /// [`TABLE_BYTE_BUDGET`](crate::router::TABLE_BYTE_BUDGET); use
    /// [`DistanceSample`] for estimates on larger networks.
    pub fn healthy(g: &CsrGraph) -> Result<DistanceTable, ExperimentError> {
        let n = g.num_vertices();
        crate::router::check_table_budget(n)?;
        let rows = par_map(n, |s| {
            let mut row = vec![INFINITY; n];
            let mut scratch = BfsScratch::new(n);
            bfs_into(g, s as u32, &mut row, &mut scratch);
            row
        });
        let mut dist = Vec::with_capacity(n * n);
        for row in rows {
            dist.extend_from_slice(&row);
        }
        Ok(DistanceTable {
            n,
            dist,
            epoch: 0,
            row_epoch: vec![0; n],
        })
    }

    /// All-pairs distances of the graph degraded by `masks`: BFS over
    /// surviving links only, so dead nodes (and nodes the faults cut off)
    /// read [`INFINITY`] everywhere, including toward themselves when
    /// dead.
    ///
    /// Runs serially: its callers (the fault-masking router inside sweep
    /// workers) are already fanned out across the thread pool, so nesting
    /// another fan-out here would oversubscribe it.
    pub fn degraded(g: &CsrGraph, masks: &FaultMasks) -> DistanceTable {
        let n = g.num_vertices();
        let mut dist = vec![INFINITY; n * n];
        let mut queue: Vec<u32> = Vec::with_capacity(n);
        for dst in 0..n as u32 {
            let row = &mut dist[dst as usize * n..][..n];
            if !masks.node_alive(dst) {
                continue;
            }
            masked_bfs_row(g, masks, row, dst, &mut queue);
        }
        DistanceTable {
            n,
            dist,
            epoch: 0,
            row_epoch: vec![0; n],
        }
    }

    /// Number of nodes the table covers.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Hop distance between `u` and `v` ([`INFINITY`] when disconnected).
    #[inline]
    pub fn distance(&self, u: u32, v: u32) -> u32 {
        self.dist[v as usize * self.n + u as usize]
    }

    /// The full distance row toward `dst` — `row[src]` is the distance
    /// from `src`. This is the hot-path view the fault-masking router
    /// indexes per hop.
    #[inline]
    pub fn to_dst(&self, dst: u32) -> &[u32] {
        &self.dist[dst as usize * self.n..][..self.n]
    }

    /// `true` when `u` and `v` are connected in the table's graph.
    #[inline]
    pub fn reachable(&self, u: u32, v: u32) -> bool {
        self.distance(u, v) != INFINITY
    }

    /// Largest finite distance — the diameter reported per component
    /// (matching [`fibcube_graph::distance::diameter`]). `None` for the
    /// empty graph.
    pub fn diameter(&self) -> Option<u32> {
        if self.n == 0 {
            return None;
        }
        self.dist.iter().copied().filter(|&d| d != INFINITY).max()
    }

    /// Mean distance over connected ordered pairs (`u ≠ v`), the expected
    /// hop count of uniform random traffic (matching
    /// [`fibcube_graph::distance::average_distance`]).
    pub fn average_distance(&self) -> f64 {
        let mut sum = 0u64;
        let mut pairs = 0u64;
        for &d in &self.dist {
            if d != 0 && d != INFINITY {
                sum += d as u64;
                pairs += 1;
            }
        }
        if pairs == 0 {
            0.0
        } else {
            sum as f64 / pairs as f64
        }
    }

    /// Current patch epoch: 0 as built, incremented once per applied
    /// churn event whether or not any row changed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epoch at which the row toward `dst` was last modified by a patch
    /// (0 = untouched since construction). A consumer caching state
    /// derived from that row invalidates when this advances past its
    /// snapshot.
    pub fn row_epoch(&self, dst: u32) -> u64 {
        self.row_epoch[dst as usize]
    }

    /// Applies one churn event incrementally. `masks` must already
    /// reflect the *post-event* liveness (the caller flips its masks
    /// first, then patches the table). See the type-level
    /// [incremental-repair invariant](DistanceTable#incremental-repair).
    pub fn apply_event(&mut self, g: &CsrGraph, masks: &FaultMasks, event: &ChurnEvent) {
        match (event.target, event.failed) {
            (ChurnTarget::Node(x), true) => self.fail_node(g, masks, x),
            (ChurnTarget::Node(x), false) => self.recover_node(g, masks, x),
            (ChurnTarget::Link(u, v), true) => self.fail_link(g, masks, u, v),
            (ChurnTarget::Link(u, v), false) => self.recover_link(g, masks, u, v),
        }
    }

    /// Patches the table for the failure of link `u–v` (`masks` already
    /// post-event). Per row this is `O(1)` unless the link was on a
    /// shortest path to that destination; affected rows repair by
    /// orphan propagation plus a boundary re-relax limited to the
    /// region that lost its distances.
    pub fn fail_link(&mut self, g: &CsrGraph, masks: &FaultMasks, u: u32, v: u32) {
        self.patch_rows(|row, scratch| row_fail_link(g, masks, row, u, v, scratch));
    }

    /// Patches the table for the recovery of link `u–v` (`masks` already
    /// post-event): a decrease-only relaxation seeded at whichever
    /// endpoint the new link improves — `O(1)` per row when it improves
    /// neither.
    pub fn recover_link(&mut self, g: &CsrGraph, masks: &FaultMasks, u: u32, v: u32) {
        // A recovered link whose endpoint is still down stays dead in
        // the composite mask; the event then changes no distances.
        let alive = g
            .slot_of(u, v)
            .is_some_and(|slot| masks.edge_alive(g.edge_range(u).start + slot));
        if !alive {
            self.epoch += 1;
            return;
        }
        self.patch_rows(|row, scratch| {
            scratch.heap.clear();
            seed_link(row, u, v, &mut scratch.heap);
            relax_decrease(g, masks, row, &mut scratch.heap)
        });
    }

    /// Patches the table for the failure of node `x` (`masks` already
    /// post-event): `x`'s own row goes all-[`INFINITY`]; every other row
    /// orphan-propagates from `x` exactly as if all its incident links
    /// died at once.
    pub fn fail_node(&mut self, g: &CsrGraph, masks: &FaultMasks, x: u32) {
        self.patch_rows_indexed(|dst, row, scratch| {
            if dst == x {
                let had_finite = row.iter().any(|&d| d != INFINITY);
                row.fill(INFINITY);
                had_finite
            } else {
                row_fail_node(g, masks, row, x, scratch)
            }
        });
    }

    /// Patches the table for the recovery of node `x` (`masks` already
    /// post-event): `x`'s own row is rebuilt with one masked BFS; every
    /// other live row runs a decrease-only relaxation seeded through
    /// `x`'s surviving links.
    pub fn recover_node(&mut self, g: &CsrGraph, masks: &FaultMasks, x: u32) {
        self.patch_rows_indexed(|dst, row, scratch| {
            if dst == x {
                row.fill(INFINITY);
                if masks.node_alive(x) {
                    scratch.queue.clear();
                    masked_bfs_row(g, masks, row, x, &mut scratch.queue);
                }
                true
            } else if !masks.node_alive(dst) {
                false
            } else {
                scratch.heap.clear();
                seed_node(g, masks, row, x, &mut scratch.heap);
                relax_decrease(g, masks, row, &mut scratch.heap)
            }
        });
    }

    fn patch_rows(&mut self, mut repair: impl FnMut(&mut [u32], &mut PatchScratch) -> bool) {
        self.patch_rows_indexed(|_, row, scratch| repair(row, scratch));
    }

    fn patch_rows_indexed(
        &mut self,
        mut repair: impl FnMut(u32, &mut [u32], &mut PatchScratch) -> bool,
    ) {
        self.epoch += 1;
        let epoch = self.epoch;
        let n = self.n;
        let mut scratch = PatchScratch::new(n);
        for dst in 0..n {
            let row = &mut self.dist[dst * n..][..n];
            if repair(dst as u32, row, &mut scratch) {
                self.row_epoch[dst] = epoch;
            }
        }
    }
}

/// Masked BFS from `root` into `row` (which must be all-[`INFINITY`]),
/// reusing `queue` as scratch. The single-row unit both
/// [`DistanceTable::degraded`] and the node-recovery patch build on.
fn masked_bfs_row(
    g: &CsrGraph,
    masks: &FaultMasks,
    row: &mut [u32],
    root: u32,
    queue: &mut Vec<u32>,
) {
    row[root as usize] = 0;
    queue.clear();
    queue.push(root);
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let next = row[u as usize] + 1;
        let base = g.edge_range(u).start;
        for (slot, &v) in g.neighbors(u).iter().enumerate() {
            if masks.edge_alive(base + slot) && row[v as usize] == INFINITY {
                row[v as usize] = next;
                queue.push(v);
            }
        }
    }
}

/// Reusable per-patch scratch: generation-stamped orphan marks (no
/// per-row clearing), the shared priority queue, and the orphan list.
struct PatchScratch {
    mark: Vec<u64>,
    generation: u64,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    orphans: Vec<u32>,
    queue: Vec<u32>,
}

impl PatchScratch {
    fn new(n: usize) -> PatchScratch {
        PatchScratch {
            mark: vec![0; n],
            generation: 0,
            heap: BinaryHeap::new(),
            orphans: Vec::new(),
            queue: Vec::new(),
        }
    }

    fn begin_row(&mut self) {
        self.generation += 1;
        self.heap.clear();
        self.orphans.clear();
    }

    fn is_orphan(&self, x: u32) -> bool {
        self.mark[x as usize] == self.generation
    }

    fn confirm(&mut self, x: u32) {
        self.mark[x as usize] = self.generation;
        self.orphans.push(x);
    }
}

/// Link `u–v` failed: repairs one destination row. Returns `true` when
/// the row changed.
fn row_fail_link(
    g: &CsrGraph,
    masks: &FaultMasks,
    row: &mut [u32],
    u: u32,
    v: u32,
    scratch: &mut PatchScratch,
) -> bool {
    let (du, dv) = (row[u as usize], row[v as usize]);
    if du == INFINITY || dv == INFINITY {
        // An unreachable endpoint means the link was on no shortest
        // path toward this destination.
        return false;
    }
    // Only the deeper endpoint can have used the link as its parent
    // edge; equal depths mean the link was on no shortest path.
    let b = if dv == du + 1 {
        v
    } else if du == dv + 1 {
        u
    } else {
        return false;
    };
    if has_tight_parent(g, masks, row, b, None) {
        return false;
    }
    scratch.begin_row();
    scratch.confirm(b);
    repair_after_loss(g, masks, row, scratch);
    true
}

/// Node `x` failed: repairs one destination row (`dst ≠ x`). Returns
/// `true` when the row changed.
fn row_fail_node(
    g: &CsrGraph,
    masks: &FaultMasks,
    row: &mut [u32],
    x: u32,
    scratch: &mut PatchScratch,
) -> bool {
    if row[x as usize] == INFINITY {
        // x was already unreachable toward this destination, so no
        // shortest path ran through it.
        return false;
    }
    scratch.begin_row();
    scratch.confirm(x);
    repair_after_loss(g, masks, row, scratch);
    true
}

/// `true` when `x` still has an alive neighbor one hop closer to the
/// destination that is not itself in the current orphan set (pass
/// `scratch` during propagation, `None` for the initial check).
fn has_tight_parent(
    g: &CsrGraph,
    masks: &FaultMasks,
    row: &[u32],
    x: u32,
    scratch: Option<&PatchScratch>,
) -> bool {
    let d = row[x as usize];
    let base = g.edge_range(x).start;
    g.neighbors(x).iter().enumerate().any(|(slot, &w)| {
        masks.edge_alive(base + slot)
            && scratch.is_none_or(|s| !s.is_orphan(w))
            && row[w as usize] != INFINITY
            && row[w as usize] + 1 == d
    })
}

/// Ramalingam–Reps deletion repair: starting from the confirmed orphans
/// already in `scratch`, finds every node whose old distance is no
/// longer supported (ascending old-distance order makes parent status
/// final before children are judged), invalidates the orphan region,
/// and re-relaxes it from its intact boundary.
fn repair_after_loss(g: &CsrGraph, masks: &FaultMasks, row: &mut [u32], s: &mut PatchScratch) {
    // Phase 1: orphan propagation. Children of an orphan are judged by
    // whether any non-orphan tight parent survives; over-enqueueing is
    // harmless (candidates with a surviving parent are rejected), which
    // lets node failures enqueue through their already-masked edges.
    for i in 0..s.orphans.len() {
        let x = s.orphans[i];
        enqueue_children(g, row, x, s);
    }
    while let Some(Reverse((_, x))) = s.heap.pop() {
        if s.is_orphan(x) {
            continue;
        }
        if !has_tight_parent(g, masks, row, x, Some(s)) {
            s.confirm(x);
            enqueue_children(g, row, x, s);
        }
    }
    // Phase 2: the orphan region loses its old distances.
    for i in 0..s.orphans.len() {
        row[s.orphans[i] as usize] = INFINITY;
    }
    // Phase 3: seed every orphan from its intact (non-orphan) boundary
    // and re-relax, decrease-only, within the orphan region.
    for i in 0..s.orphans.len() {
        let x = s.orphans[i];
        if !masks.node_alive(x) {
            continue;
        }
        let base = g.edge_range(x).start;
        let mut best = INFINITY;
        for (slot, &w) in g.neighbors(x).iter().enumerate() {
            if masks.edge_alive(base + slot) && !s.is_orphan(w) && row[w as usize] != INFINITY {
                best = best.min(row[w as usize] + 1);
            }
        }
        if best != INFINITY {
            s.heap.push(Reverse((best, x)));
        }
    }
    while let Some(Reverse((d, x))) = s.heap.pop() {
        if row[x as usize] <= d {
            continue;
        }
        row[x as usize] = d;
        let base = g.edge_range(x).start;
        for (slot, &y) in g.neighbors(x).iter().enumerate() {
            if masks.edge_alive(base + slot) && s.is_orphan(y) && row[y as usize] > d + 1 {
                s.heap.push(Reverse((d + 1, y)));
            }
        }
    }
}

/// Enqueues `x`'s potential tree children (old distance exactly one
/// deeper) as orphan candidates. Deliberately ignores edge masks: a
/// candidate reached through a dead edge never had `x` as parent and is
/// rejected by the tight-parent check, while mask-filtering here would
/// miss the children of a freshly dead node (its incident edges are
/// already masked).
fn enqueue_children(g: &CsrGraph, row: &[u32], x: u32, s: &mut PatchScratch) {
    let d = row[x as usize];
    for &y in g.neighbors(x) {
        if row[y as usize] != INFINITY && row[y as usize] == d + 1 && !s.is_orphan(y) {
            s.heap.push(Reverse((row[y as usize], y)));
        }
    }
}

/// Seeds a decrease-only relaxation with the improvement a recovered
/// link `u–v` offers (at most one endpoint can improve).
fn seed_link(row: &[u32], u: u32, v: u32, heap: &mut BinaryHeap<Reverse<(u32, u32)>>) {
    let (du, dv) = (row[u as usize], row[v as usize]);
    if du != INFINITY && (dv == INFINITY || du + 1 < dv) {
        heap.push(Reverse((du + 1, v)));
    } else if dv != INFINITY && (du == INFINITY || dv + 1 < du) {
        heap.push(Reverse((dv + 1, u)));
    }
}

/// Seeds a decrease-only relaxation with the best distance a recovered
/// node `x` obtains through its surviving links.
fn seed_node(
    g: &CsrGraph,
    masks: &FaultMasks,
    row: &[u32],
    x: u32,
    heap: &mut BinaryHeap<Reverse<(u32, u32)>>,
) {
    let base = g.edge_range(x).start;
    let mut best = INFINITY;
    for (slot, &w) in g.neighbors(x).iter().enumerate() {
        if masks.edge_alive(base + slot) && row[w as usize] != INFINITY {
            best = best.min(row[w as usize] + 1);
        }
    }
    if best < row[x as usize] {
        heap.push(Reverse((best, x)));
    }
}

/// Decrease-only Dijkstra over alive edges from the seeded frontier.
/// Returns `true` when any distance improved. Safe anywhere: distances
/// only ever move down, so already-correct rows are fixpoints.
fn relax_decrease(
    g: &CsrGraph,
    masks: &FaultMasks,
    row: &mut [u32],
    heap: &mut BinaryHeap<Reverse<(u32, u32)>>,
) -> bool {
    let mut modified = false;
    while let Some(Reverse((d, x))) = heap.pop() {
        if row[x as usize] <= d {
            continue;
        }
        row[x as usize] = d;
        modified = true;
        let base = g.edge_range(x).start;
        for (slot, &y) in g.neighbors(x).iter().enumerate() {
            if masks.edge_alive(base + slot) && row[y as usize] > d + 1 {
                heap.push(Reverse((d + 1, y)));
            }
        }
    }
    modified
}

/// Sampled distance statistics for networks too large for an all-pairs
/// [`DistanceTable`]: exact BFS from a uniform random sample of `sources`
/// nodes, `O(s · (n + m))` time and `O(n)` transient space.
///
/// Each sampled source contributes its exact mean distance to every other
/// reachable node; the estimator averages those per-source means, which is
/// unbiased for the population average distance on a vertex-transitive-ish
/// graph and comes with a normal-approximation confidence half-width
/// ([`DistanceSample::average_ci95`]). The largest distance seen is the
/// exact eccentricity of some sampled source, hence a certified *lower
/// bound* on the diameter — dense-table consumers that need the exact
/// diameter must stay below the byte budget and use
/// [`DistanceTable::healthy`].
#[derive(Clone, Debug)]
pub struct DistanceSample {
    /// Number of distinct BFS sources actually sampled (`min(requested, n)`).
    pub sources: usize,
    /// Estimated mean distance over connected ordered pairs (`u ≠ v`).
    pub average_distance: f64,
    /// Half-width of the 95% confidence interval on
    /// [`average_distance`](DistanceSample::average_distance), from the
    /// spread of per-source means (0 when every source was sampled — on a
    /// connected graph the estimate is then exact).
    pub average_ci95: f64,
    /// Max distance observed = exact eccentricity of a sampled source —
    /// a lower bound on (and frequently equal to) the diameter.
    pub diameter_lower_bound: u32,
}

impl DistanceSample {
    /// Estimates distance statistics of `g` from `sources` seeded random
    /// BFS sources (clamped to `n`; sampling every node makes the
    /// average exact and the CI zero).
    pub fn estimate(g: &CsrGraph, sources: usize, seed: u64) -> DistanceSample {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let n = g.num_vertices();
        if n == 0 {
            return DistanceSample {
                sources: 0,
                average_distance: 0.0,
                average_ci95: 0.0,
                diameter_lower_bound: 0,
            };
        }
        let s = sources.clamp(1, n);
        // Distinct sources via partial Fisher–Yates over the id range.
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..s {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
        }
        ids.truncate(s);

        let rows = par_map(s, |i| {
            let mut row = vec![INFINITY; n];
            let mut scratch = BfsScratch::new(n);
            bfs_into(g, ids[i], &mut row, &mut scratch);
            let mut sum = 0u64;
            let mut pairs = 0u64;
            let mut ecc = 0u32;
            for &d in &row {
                if d != 0 && d != INFINITY {
                    sum += d as u64;
                    pairs += 1;
                    ecc = ecc.max(d);
                }
            }
            let mean = if pairs == 0 {
                0.0
            } else {
                sum as f64 / pairs as f64
            };
            (mean, ecc)
        });

        let means: Vec<f64> = rows.iter().map(|&(m, _)| m).collect();
        let diameter_lower_bound = rows.iter().map(|&(_, e)| e).max().unwrap_or(0);
        let avg = means.iter().sum::<f64>() / s as f64;
        let average_ci95 = if s >= n || s < 2 {
            0.0
        } else {
            let var = means.iter().map(|m| (m - avg) * (m - avg)).sum::<f64>() / (s - 1) as f64;
            1.96 * (var / s as f64).sqrt()
        };
        DistanceSample {
            sources: s,
            average_distance: avg,
            average_ci95,
            diameter_lower_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSet;
    use crate::topology::{FibonacciNet, Hypercube, Ring, Topology};
    use fibcube_graph::bfs::bfs_distances;

    #[test]
    fn healthy_table_matches_per_source_bfs() {
        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(9),
        ] {
            let g = topo.graph();
            let table = DistanceTable::healthy(g).unwrap();
            assert_eq!(table.nodes(), topo.len());
            for dst in 0..topo.len() as u32 {
                let bfs = bfs_distances(g, dst);
                assert_eq!(table.to_dst(dst), &bfs[..], "{} dst {dst}", topo.name());
                for src in 0..topo.len() as u32 {
                    assert_eq!(table.distance(src, dst), bfs[src as usize]);
                }
            }
        }
    }

    #[test]
    fn healthy_table_reproduces_graph_invariants() {
        for topo in [
            &FibonacciNet::classical(8) as &dyn Topology,
            &Hypercube::new(5),
            &Ring::new(12),
        ] {
            let g = topo.graph();
            let table = DistanceTable::healthy(g).unwrap();
            assert_eq!(table.diameter(), fibcube_graph::distance::diameter(g));
            let avg = fibcube_graph::distance::average_distance(g);
            assert!((table.average_distance() - avg).abs() < 1e-12);
        }
    }

    #[test]
    fn degraded_table_matches_bfs_on_the_healthy_subgraph() {
        let net = FibonacciNet::classical(7);
        let g = net.graph();
        let set = FaultSet::new([2u32, 9, 17], [(0u32, 1u32)]);
        let table = DistanceTable::degraded(g, &set.masks(g));
        let (healthy, survivors) = set.healthy_subgraph(g);
        let mut new_id = vec![u32::MAX; g.num_vertices()];
        for (i, &v) in survivors.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        for &dst in &survivors {
            let bfs = bfs_distances(&healthy, new_id[dst as usize]);
            for v in 0..g.num_vertices() as u32 {
                let expected = if set.node_alive(v) {
                    bfs[new_id[v as usize] as usize]
                } else {
                    INFINITY
                };
                assert_eq!(table.distance(v, dst), expected, "{v} → {dst}");
            }
        }
        // Dead destinations are unreachable from everywhere, themselves
        // included.
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(table.distance(v, 2), INFINITY);
            assert!(!table.reachable(v, 9));
        }
    }

    #[test]
    fn empty_masks_make_degraded_equal_healthy() {
        let q = Hypercube::new(4);
        let g = q.graph();
        let healthy = DistanceTable::healthy(g).unwrap();
        let degraded = DistanceTable::degraded(g, &FaultSet::empty().masks(g));
        for u in 0..16u32 {
            assert_eq!(healthy.to_dst(u), degraded.to_dst(u));
        }
    }

    #[test]
    fn incremental_patches_match_from_scratch_rebuilds() {
        use crate::fault::{ChurnEvent, ChurnTarget};

        for topo in [
            &FibonacciNet::classical(7) as &dyn Topology,
            &Hypercube::new(4),
            &Ring::new(10),
        ] {
            let g = topo.graph();
            // A scripted sequence exercising all four patch kinds,
            // including recovery of a previously failed target.
            let e = |target, failed| ChurnEvent {
                cycle: 0,
                target,
                failed,
            };
            let (u0, v0) = g.edges().next().unwrap();
            let events = [
                e(ChurnTarget::Link(u0, v0), true),
                e(ChurnTarget::Node(1), true),
                e(ChurnTarget::Link(u0, v0), false),
                e(ChurnTarget::Node(2), true),
                e(ChurnTarget::Node(1), false),
                e(ChurnTarget::Node(2), false),
            ];
            let mut table = DistanceTable::healthy(g).unwrap();
            let mut down_nodes: Vec<u32> = Vec::new();
            let mut down_links: Vec<(u32, u32)> = Vec::new();
            for (i, ev) in events.iter().enumerate() {
                match (ev.target, ev.failed) {
                    (ChurnTarget::Node(x), true) => down_nodes.push(x),
                    (ChurnTarget::Node(x), false) => down_nodes.retain(|&y| y != x),
                    (ChurnTarget::Link(u, v), true) => down_links.push((u, v)),
                    (ChurnTarget::Link(u, v), false) => down_links.retain(|&l| l != (u, v)),
                }
                let masks =
                    FaultSet::new(down_nodes.iter().copied(), down_links.iter().copied()).masks(g);
                table.apply_event(g, &masks, ev);
                assert_eq!(table.epoch(), i as u64 + 1);
                let scratch = DistanceTable::degraded(g, &masks);
                for dst in 0..g.num_vertices() as u32 {
                    assert_eq!(
                        table.to_dst(dst),
                        scratch.to_dst(dst),
                        "{} event {i} ({ev:?}) dst {dst}",
                        topo.name()
                    );
                }
            }
            // The full sequence is a no-op net of faults: back to healthy,
            // and only genuinely modified rows carry a nonzero epoch...
            let healthy = DistanceTable::healthy(g).unwrap();
            for dst in 0..g.num_vertices() as u32 {
                assert_eq!(table.to_dst(dst), healthy.to_dst(dst));
            }
            // ...while untouched constructions stay at epoch 0.
            assert_eq!(healthy.epoch(), 0);
            assert_eq!(healthy.row_epoch(0), 0);
        }
    }

    #[test]
    fn patch_epochs_stamp_only_modified_rows() {
        use crate::fault::{ChurnEvent, ChurnTarget};

        // Ring_8: failing link 0–1 only affects rows whose shortest
        // paths crossed it; recovery restores them.
        let r = Ring::new(8);
        let g = r.graph();
        let mut table = DistanceTable::healthy(g).unwrap();
        let masks = FaultSet::new([], [(0u32, 1u32)]).masks(g);
        table.apply_event(
            g,
            &masks,
            &ChurnEvent {
                cycle: 5,
                target: ChurnTarget::Link(0, 1),
                failed: true,
            },
        );
        assert_eq!(table.epoch(), 1);
        // On an even ring every row has some pair routed over 0–1, except
        // none... verify against scratch and check stamps are consistent.
        let scratch = DistanceTable::degraded(g, &masks);
        let healthy = DistanceTable::healthy(g).unwrap();
        for dst in 0..8u32 {
            assert_eq!(table.to_dst(dst), scratch.to_dst(dst), "dst {dst}");
            let changed = scratch.to_dst(dst) != healthy.to_dst(dst);
            assert_eq!(
                table.row_epoch(dst) == 1,
                changed,
                "row {dst}: epoch {} vs changed {changed}",
                table.row_epoch(dst)
            );
        }
    }

    #[test]
    fn full_sample_is_exact_on_connected_graphs() {
        for topo in [
            &FibonacciNet::classical(8) as &dyn Topology,
            &Hypercube::new(5),
            &Ring::new(12),
        ] {
            let g = topo.graph();
            let exact = DistanceTable::healthy(g).unwrap();
            let sample = DistanceSample::estimate(g, g.num_vertices(), 7);
            assert_eq!(sample.sources, topo.len(), "{}", topo.name());
            assert!(
                (sample.average_distance - exact.average_distance()).abs() < 1e-9,
                "{}: {} vs {}",
                topo.name(),
                sample.average_distance,
                exact.average_distance()
            );
            assert_eq!(sample.average_ci95, 0.0);
            assert_eq!(sample.diameter_lower_bound, exact.diameter().unwrap());
        }
    }

    #[test]
    fn partial_sample_estimates_with_honest_bounds() {
        let net = FibonacciNet::classical(10); // 144 nodes
        let g = net.graph();
        let exact = DistanceTable::healthy(g).unwrap();
        let sample = DistanceSample::estimate(g, 24, 2026);
        assert_eq!(sample.sources, 24);
        assert!(sample.average_ci95 > 0.0, "partial samples carry a CI");
        assert!(
            sample.diameter_lower_bound <= exact.diameter().unwrap(),
            "lower bound must never exceed the diameter"
        );
        assert!(
            (sample.average_distance - exact.average_distance()).abs() < 0.5,
            "estimate {} too far from exact {}",
            sample.average_distance,
            exact.average_distance()
        );
        // Oversized requests clamp to n instead of repeating sources.
        let clamped = DistanceSample::estimate(g, 10_000, 1);
        assert_eq!(clamped.sources, 144);
    }

    #[test]
    fn sample_of_empty_graph() {
        let s = DistanceSample::estimate(&CsrGraph::empty(0), 8, 0);
        assert_eq!(s.sources, 0);
        assert_eq!(s.average_distance, 0.0);
        assert_eq!(s.diameter_lower_bound, 0);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let empty = DistanceTable::healthy(&CsrGraph::empty(0)).unwrap();
        assert_eq!(empty.diameter(), None);
        assert_eq!(empty.average_distance(), 0.0);
        let single = DistanceTable::healthy(&CsrGraph::empty(1)).unwrap();
        assert_eq!(single.diameter(), Some(0));
        assert_eq!(single.average_distance(), 0.0);
    }
}
