//! # fibcube-network
//!
//! The interconnection-network reading of "Generalized Fibonacci Cubes"
//! (the ICPP'93 Hsu–Liu–Chung lineage, which the 2012 Discrete Mathematics
//! paper cites as its own motivation [10, 11, 15]): `Q_d(1^k)` as a
//! processor network with Zeckendorf addressing, plus the machinery to
//! evaluate it against the classic baselines:
//!
//! * [`experiment`] — **start here**: the [`Experiment`] builder is the
//!   one composable entry point —
//!   `Experiment::on(&topo).router(..).traffic(..).observe(..).run()`
//!   returns a structured [`Report`];
//! * [`topology`] — `Q_d(1^k)`, hypercube, ring, mesh, each with its
//!   distributed shortest-path rule (canonical-path routing on the
//!   Fibonacci cubes, justified by Proposition 3.1's argument);
//! * [`router`] — routing *policies* split out of the topologies: e-cube,
//!   precomputed canonical-path, and load-aware adaptive minimal routing,
//!   named declaratively by [`RouterSpec`];
//! * [`engine`] — the unified simulation engine: one composable,
//!   arena-backed active-set core parameterized by compile-time policy
//!   traits ([`engine::policy`] — switching × faults × replication ×
//!   observer) behind every `simulate*` entry point, the original
//!   full-scan engines as reference oracles, and **one cycle stepper**
//!   both drivers execute: the serial entry points run it on one lane,
//!   the `simulate_parallel*` family shards it across a scoped thread
//!   pool with a propose/commit outbox protocol — bit-identical to the
//!   serial engine at any thread count for every policy combination
//!   (store-and-forward, wormhole, churn, request/reply, collectives,
//!   forked observers), plus the dynamic-fault engines:
//!   [`simulate_churn`] applies a seeded mid-run fail/recover event
//!   timeline at cycle boundaries, and [`simulate_request_reply`]
//!   drives closed-loop clients with timeout-and-retry delivery;
//! * [`simulator`] — source-compatibility facade re-exporting the
//!   engine's entry points under their historical paths;
//! * [`arena`] — the engine's storage core: the struct-of-arrays
//!   [`PacketSlab`] and the fixed-stride ring-buffer [`LinkQueues`];
//! * [`implicit`] — million-node scale: [`ImplicitRouter`] computes
//!   canonical-path and e-cube hops straight from Zeckendorf address
//!   arithmetic (`O(d)` time, `O(d)` total state — no `O(n²)` table,
//!   no per-node flip rows) and [`ImplicitFibonacciNet`] materialises
//!   `Q_d(1^k)` lazily from rank↔word codecs, streaming its CSR graph;
//! * [`dist`] — the shared [`DistanceTable`] (healthy or degraded by a
//!   fault set) behind metrics, survivability analysis, and the
//!   fault-masking router, plus the sampled [`DistanceSample`]
//!   estimator for networks past the dense-table byte budget;
//! * [`observer`] — pluggable [`SimObserver`] hooks compiled into the
//!   engine (zero-cost when absent), with [`LatencyHistogram`],
//!   [`LinkHeatmap`], and the SLO-grade [`SloTracker`] (windowed
//!   delivered fraction, windowed tail latency, time-to-recover after
//!   each fault event) shipped;
//! * [`report`] — the [`Report`] type and the dependency-free
//!   [`JsonValue`] document model behind `to_json()`;
//! * [`switching`] — the switching model as a first-class spec
//!   ([`SwitchingSpec`]): store-and-forward, or flit-level wormhole
//!   switching with virtual channels and credit-based backpressure,
//!   deadlock-free by construction against the topologies' order-based
//!   channel classes;
//! * [`sweep`] — injection-rate ladders producing saturation-throughput
//!   and latency-vs-load curves, parallel across (rate, seed) runs, plus
//!   the [`fault_load_sweep`] rate × fault-count resilience grid, the
//!   [`switching_sweep`] wormhole-vs-store-and-forward comparison, and
//!   the [`churn_sweep`] recovery-time-vs-MTTR grid under dynamic
//!   fault churn;
//! * [`traffic`] — declarative, seeded workload specs ([`TrafficSpec`]:
//!   uniform, hot-spot, complement permutation, all-to-all, open-loop
//!   Bernoulli, mixes — all CLI/JSON-parseable);
//! * [`broadcast`] — one-to-all broadcast schedules in the all-port and
//!   one-port models (typed [`BroadcastError`] on disconnected networks);
//! * [`collective`] — collectives as *live* workloads: a
//!   [`CollectiveSpec`] (broadcast / multicast / all-to-all personalized)
//!   compiles to a [`CopyPlan`] the engine executes by packet replication
//!   at intermediate nodes, healthy or faulted, reporting
//!   completion-time/round statistics ([`CollectiveOutcome`]);
//! * [`metrics`](mod@metrics) — the static figure-of-merit table (degree, diameter,
//!   average distance, cost);
//! * [`hamilton`] — Hamiltonian paths/cycles ("mostly Hamiltonian");
//! * [`embedding`] — hosting paths/rings/hypercubes in Fibonacci cubes
//!   with measured dilation (`Q_k ↪ Γ_{2k−1}` isometrically);
//! * [`fault`] — failure scenarios as first-class specs ([`FaultSpec`] /
//!   [`FaultSet`]): live fault-aware simulation through
//!   [`Experiment::faults`](Experiment::faults) (dead packets become
//!   typed drops, survivors detour via the
//!   [`FaultMaskingRouter`]), dynamic fault churn as a precomputed
//!   seeded event timeline ([`ChurnTimeline`]) with incremental route
//!   repair, plus the static survivability/dilation analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod broadcast;
pub mod collective;
pub mod dist;
pub mod embedding;
pub mod engine;
pub mod experiment;
pub mod fault;
pub mod hamilton;
pub mod implicit;
pub mod metrics;
pub mod observer;
pub mod report;
pub mod router;
pub mod simulator;
pub mod sweep;
pub mod switching;
pub mod topology;
pub mod traffic;

pub use arena::{LinkQueues, PacketSlab};
pub use broadcast::{
    broadcast_all_port, broadcast_one_port, verify_schedule, BroadcastError, BroadcastSchedule,
};
pub use collective::{CollectiveOutcome, CollectiveSpec, CopyPlan, Port};
pub use dist::{DistanceSample, DistanceTable};
pub use embedding::{embed_hypercube, embed_path, embed_ring, Embedding};
pub use engine::{
    simulate_parallel, simulate_parallel_churn, simulate_parallel_churn_observed,
    simulate_parallel_collective, simulate_parallel_observed, simulate_parallel_request_reply,
    simulate_parallel_wormhole,
};
pub use experiment::{Experiment, ExperimentError};
pub use fault::{
    fault_set_trial, fault_sweep, fault_trial, ChurnEvent, ChurnTarget, ChurnTimeline, FaultError,
    FaultMasks, FaultSet, FaultSpec, FaultSweepRow, FaultTrial,
};
pub use hamilton::{hamiltonian_cycle, hamiltonian_path, HamiltonResult};
pub use implicit::{ImplicitFibonacciNet, ImplicitRouter};
pub use metrics::{metrics, metrics_sampled, metrics_with, TopologyMetrics};
pub use observer::{
    DeliveryTracker, LatencyHistogram, LinkHeatmap, NoopObserver, SimObserver, SloRecovery,
    SloTracker, SloWindow, SLO_DELIVERED_TARGET,
};
pub use report::{JsonValue, Report};
pub use router::{
    AdaptiveMinimal, CanonicalRouter, EcubeRouter, FaultMaskingRouter, LinkLoad, NextHopRouter,
    NextHopTable, NoLoad, Router, RouterSpec, TABLE_BYTE_BUDGET,
};
pub use simulator::{
    simulate, simulate_churn, simulate_collective, simulate_faulted, simulate_faulted_reference,
    simulate_observed, simulate_reference, simulate_request_reply, simulate_with,
    simulate_wormhole, simulate_wormhole_faulted, DropReason, LogHistogram, RequestReplyLoad,
    SimStats, DENSE_HISTOGRAM_NODE_LIMIT,
};
pub use sweep::{
    churn_sweep, collective_sweep, fault_load_sweep, injection_sweep, injection_sweep_with,
    rate_ladder, saturation_point, switching_sweep, ChurnGrid, ChurnPoint, CollectiveGrid,
    CollectivePoint, FaultLoadGrid, FaultLoadPoint, LoadPoint, SweepConfig, SweepCurve,
    SwitchingGrid, SwitchingPoint,
};
pub use switching::{SwitchingSpec, VcOccupancy, PACKET_LENGTH_UNITS};
pub use topology::{FibonacciNet, Hypercube, Mesh, Ring, RouteError, Topology};
pub use traffic::{Packet, TrafficSpec};
