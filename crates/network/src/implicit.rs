//! Implicit (table-free) routing and lazy topologies for million-node
//! networks.
//!
//! Every dense structure the small-scale path leans on — the per-node
//! label vector, the `node × position` flip table of
//! [`CanonicalRouter`](crate::router::CanonicalRouter), the `O(n²)`
//! [`NextHopTable`] — is redundant on
//! `Q_d(1^k)`: the Zeckendorf addressing scheme makes *node ids
//! arithmetic*. This module exploits that to route and build at Γ_30
//! scale (2.2M nodes) with `O(d)` routing state.
//!
//! # The address-arithmetic derivation
//!
//! Node `i` of `Q_d(1^k)` is the `i`-th `1^k`-free word in lexicographic
//! order. The counting-based unranking behind
//! [`kzeckendorf_encode`](fibcube_words::zeckendorf::kzeckendorf_encode)
//! yields a *linear* rank formula: with `W(j)` = number of `1^k`-free
//! words of length `j` (for `k = 2`, `W(j) = F_{j+2}` — Fibonacci
//! numbers),
//!
//! ```text
//! rank(b₁…b_d) = Σ_{i : b_i = 1} W(d − i)
//! ```
//!
//! because placing a `1` at position `i` skips exactly the `W(d − i)`
//! words that put a `0` there. Three consequences, each `O(d)` time and
//! `O(1)` space beyond the `d + 1` cached weights
//! ([`RankCodec`]):
//!
//! 1. **Unrank** (`id → address bits`): greedy scan over the weights.
//! 2. **Rank** (`address bits → id`): sum the weights of the set bits.
//! 3. **Neighbor ids without decoding**: flipping bit `j` (u64 position,
//!    = suffix length) moves the rank by exactly `±W(j)` — so a node's
//!    neighbor ids are `i ± W(j)` over the valid flips, and routing
//!    never searches a label list.
//!
//! Canonical-path routing (Proposition 3.1 of the ICPP-93 line) then
//! reads: encode `cur` and `dst`, take the leftmost `1 → 0` correction
//! if any (`c & !t`), else the leftmost `0 → 1` (`t & !c`), and return
//! `cur ∓ W(j)` for the flipped position `j`. Every intermediate stays
//! `1^k`-free (the proposition's argument), so the arithmetic never
//! leaves the id range.
//!
//! [`ImplicitRouter`] packages rules 1–3 behind the [`Router`] trait
//! (names itself `"canonical"`/`"e-cube"`, so reports are
//! indistinguishable from the dense routers it replaces), and
//! [`ImplicitFibonacciNet`] is the matching [`Topology`]: no label
//! vector, a CSR link graph *streamed* two-pass from the codec (exactly
//! equal to the automaton-built graph of
//! [`FibonacciNet`](crate::topology::FibonacciNet), but with no
//! per-node allocations and no hashing), built lazily on first use.
//!
//! # Dense vs implicit
//!
//! | structure | dense path | implicit path |
//! |---|---|---|
//! | node labels | `Vec<Word>`, 16 B/node | unranked on demand, 0 B |
//! | canonical router | flip table, `4·n·d` B | `8(d+1)` B total |
//! | next-hop precompute | `4n²` B table | refused over budget, `O(d)`/hop |
//! | graph build | automaton + `Vec<Vec>` staging | two-pass streamed CSR |
//!
//! The CSR graph itself (≈ `4(n + 2m)` bytes) is still materialised —
//! the store-and-forward engine needs real per-link queues — so the
//! engine's memory is `O(n + m)`, with *routing state* at `O(d)`.

use std::sync::OnceLock;

use fibcube_graph::csr::CsrGraph;
use fibcube_words::word::Word;
use fibcube_words::zeckendorf::RankCodec;

use crate::router::{
    AdaptiveMinimal, EcubeRouter, HammingAddressed, LinkLoad, NextHopRouter, NextHopTable, Router,
    RouterSpec,
};
use crate::topology::Topology;

/// Table-free routing from Zeckendorf address arithmetic: `O(d)` time
/// and `O(1)` space per lookup, `O(d)` total state. See the
/// [module docs](self) for the derivation.
///
/// The router intentionally reuses the dense policies' display names —
/// `"canonical"` / `"e-cube"` — because it computes *identical* hops;
/// swapping implementations must not change a
/// [`Report`](crate::report::Report).
#[derive(Clone, Debug)]
pub enum ImplicitRouter {
    /// Canonical-path routing on `Q_d(1^k)` node ranks.
    Canonical(RankCodec),
    /// Dimension-ordered routing on hypercube node ids (rank = address:
    /// the codec is the identity, so no weights are needed at all).
    Ecube,
}

impl ImplicitRouter {
    /// Canonical-path routing over the given rank codec.
    pub fn canonical(codec: RankCodec) -> ImplicitRouter {
        ImplicitRouter::Canonical(codec)
    }

    /// Canonical-path routing on `Q_d(1^k)` by dimensions.
    pub fn for_cube(d: usize, k: usize) -> ImplicitRouter {
        ImplicitRouter::Canonical(RankCodec::new(k, d))
    }

    /// E-cube routing on hypercube ids.
    pub fn ecube() -> ImplicitRouter {
        ImplicitRouter::Ecube
    }

    /// Heap bytes of routing state — the whole memory cost of the
    /// policy, independent of node count (`8(d+1)` canonical, 0 e-cube).
    pub fn state_bytes(&self) -> usize {
        match self {
            ImplicitRouter::Canonical(codec) => codec.state_bytes(),
            ImplicitRouter::Ecube => 0,
        }
    }

    /// The canonical-path hop on ranks, shared with
    /// [`ImplicitFibonacciNet::next_hop`].
    #[inline]
    fn canonical_hop(codec: &RankCodec, cur: u32, dst: u32) -> Option<u32> {
        if cur == dst {
            return None;
        }
        let c = codec
            .encode(cur as u64)
            .expect("current node id within the network");
        let t = codec
            .encode(dst as u64)
            .expect("destination node id within the network");
        // Leftmost 1→0 correction first, else leftmost 0→1; leftmost
        // position = highest u64 bit (b₁ lives at bit d−1).
        let down = c & !t;
        let j = if down != 0 {
            (63 - down.leading_zeros()) as usize
        } else {
            (63 - (t & !c).leading_zeros()) as usize
        };
        // Prop 3.1: the flip stays 1^k-free, so the rank moves by ±W(j).
        Some(if down != 0 {
            cur - codec.weight(j) as u32
        } else {
            cur + codec.weight(j) as u32
        })
    }
}

impl Router for ImplicitRouter {
    fn name(&self) -> String {
        match self {
            ImplicitRouter::Canonical(_) => "canonical".into(),
            ImplicitRouter::Ecube => "e-cube".into(),
        }
    }

    #[inline]
    fn next_hop(&self, cur: u32, dst: u32, _load: &dyn LinkLoad) -> Option<u32> {
        match self {
            ImplicitRouter::Canonical(codec) => ImplicitRouter::canonical_hop(codec, cur, dst),
            ImplicitRouter::Ecube => EcubeRouter::hop(cur, dst),
        }
    }

    fn precompute(&self, graph: &CsrGraph) -> Option<NextHopTable> {
        // Small networks may still tabulate (the table beats O(d)
        // arithmetic per hop); over the byte budget the build refuses
        // and the engine transparently stays on implicit per-hop routing.
        NextHopTable::build(graph, |cur, dst| {
            self.next_hop(cur, dst, &crate::router::NoLoad)
        })
        .ok()
    }
}

/// `Q_d(1^k)` with implicit Zeckendorf addressing: node labels are
/// unranked on demand instead of stored, the canonical router carries
/// `O(d)` state, and the CSR link graph is streamed two-pass from the
/// codec on first use. Produces bit-identical graphs, routes, and
/// simulation reports to [`FibonacciNet`](crate::topology::FibonacciNet)
/// — at a memory/build cost that scales to millions of nodes.
#[derive(Clone, Debug)]
pub struct ImplicitFibonacciNet {
    d: usize,
    k: usize,
    n: usize,
    codec: RankCodec,
    graph: OnceLock<CsrGraph>,
}

impl ImplicitFibonacciNet {
    /// Builds `Q_d(1^k)` implicitly; `k = 2` is the classical `Γ_d`.
    /// Construction is `O(d)` — the link graph is not materialised until
    /// first [`graph()`](Topology::graph) use.
    ///
    /// # Panics
    ///
    /// Panics when `k < 2` or the node count overflows `u32` ids (for
    /// `k = 2` that is `d > 45`).
    pub fn new(d: usize, k: usize) -> ImplicitFibonacciNet {
        let codec = RankCodec::new(k, d);
        let total = codec.total();
        assert!(
            total < u32::MAX as u64,
            "Q_{d}(1^{k}) has {total} nodes, too many for u32 ids"
        );
        ImplicitFibonacciNet {
            d,
            k,
            n: total as usize,
            codec,
            graph: OnceLock::new(),
        }
    }

    /// The classical Fibonacci cube `Γ_d`, implicitly.
    pub fn classical(d: usize) -> ImplicitFibonacciNet {
        ImplicitFibonacciNet::new(d, 2)
    }

    /// String length `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Forbidden-run order `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The rank codec addressing this network.
    pub fn codec(&self) -> &RankCodec {
        &self.codec
    }

    /// Address of node `i`, unranked on demand (`O(d)`).
    pub fn label(&self, i: u32) -> Word {
        self.codec
            .encode_word(i as u64)
            .expect("node id within the network")
    }

    /// Node id of an address (`O(d)`), or `None` when `w` is not a valid
    /// `1^k`-free word of length `d`.
    pub fn node_of(&self, w: &Word) -> Option<u32> {
        if w.len() != self.d {
            return None;
        }
        self.codec.decode(w.bits()).map(|r| r as u32)
    }

    /// `true` once the link graph has been materialised.
    pub fn graph_built(&self) -> bool {
        self.graph.get().is_some()
    }

    /// Heap bytes of the routing state (the codec weights) — the
    /// `≤ 64 bytes/node` budget of the scale benchmarks measures this,
    /// not the `O(n + m)` link graph the store-and-forward engine
    /// inherently needs.
    pub fn routing_state_bytes(&self) -> usize {
        self.codec.state_bytes()
    }

    /// Streams the CSR graph from the codec: one degree-counting pass,
    /// one fill pass, no per-node allocation, no hashing, no automaton.
    /// Neighbor ids come from the `±W(j)` rank arithmetic; emitting
    /// 1→0 flips from the highest position down and then 0→1 flips from
    /// the lowest up yields each adjacency list already sorted.
    fn build_graph(&self) -> CsrGraph {
        let n = self.n;
        let d = self.d;
        let codec = &self.codec;
        let mut offsets = vec![0u32; n + 1];
        for r in 0..n {
            let bits = codec.encode(r as u64).expect("rank in range");
            let mut deg = bits.count_ones();
            for j in 0..d {
                if bits & (1 << j) == 0 && codec.is_free(bits | (1 << j)) {
                    deg += 1;
                }
            }
            offsets[r + 1] = offsets[r]
                .checked_add(deg)
                .expect("directed edge count fits u32 offsets");
        }
        let mut targets = vec![0u32; offsets[n] as usize];
        for r in 0..n {
            let bits = codec.encode(r as u64).expect("rank in range");
            let mut idx = offsets[r] as usize;
            // 1→0 flips: higher positions shed bigger weights, so the
            // resulting ranks ascend as the position descends.
            let mut down = bits;
            while down != 0 {
                let j = 63 - down.leading_zeros();
                targets[idx] = r as u32 - codec.weight(j as usize) as u32;
                idx += 1;
                down ^= 1 << j;
            }
            // 0→1 flips: ranks ascend with the position.
            for j in 0..d {
                if bits & (1 << j) == 0 && codec.is_free(bits | (1 << j)) {
                    targets[idx] = r as u32 + codec.weight(j) as u32;
                    idx += 1;
                }
            }
        }
        CsrGraph::from_parts(offsets, targets)
    }
}

impl Topology for ImplicitFibonacciNet {
    fn name(&self) -> String {
        // Same display name as the dense FibonacciNet: it is the same
        // topology, and reports must not depend on the representation.
        if self.k == 2 {
            format!("Γ_{}", self.d)
        } else {
            format!("Q_{}(1^{})", self.d, self.k)
        }
    }

    fn len(&self) -> usize {
        self.n
    }

    fn graph(&self) -> &CsrGraph {
        self.graph.get_or_init(|| self.build_graph())
    }

    fn next_hop(&self, cur: u32, dst: u32) -> Option<u32> {
        ImplicitRouter::canonical_hop(&self.codec, cur, dst)
    }

    fn diameter_bound(&self) -> usize {
        // Isometric in Q_d, so the diameter is at most d.
        self.d
    }

    fn router(&self) -> Box<dyn Router + Send + Sync + '_> {
        Box::new(ImplicitRouter::canonical(self.codec.clone()))
    }

    fn resolve_router(&self, spec: RouterSpec) -> Option<Box<dyn Router + Send + Sync + '_>> {
        match spec {
            RouterSpec::Preferred | RouterSpec::Canonical => {
                Some(Box::new(ImplicitRouter::canonical(self.codec.clone())))
            }
            RouterSpec::Builtin => Some(Box::new(NextHopRouter::new(self))),
            RouterSpec::Adaptive => Some(Box::new(AdaptiveMinimal::new(self))),
            RouterSpec::Ecube => None,
        }
    }
}

impl HammingAddressed for ImplicitFibonacciNet {
    fn address(&self, v: u32) -> u64 {
        self.codec
            .encode(v as u64)
            .expect("node id within the network")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{CanonicalRouter, NoLoad};
    use crate::topology::{FibonacciNet, Hypercube};

    #[test]
    fn streamed_graph_equals_automaton_graph() {
        for (d, k) in [(0usize, 2usize), (1, 2), (7, 2), (10, 2), (6, 3), (5, 4)] {
            let implicit = ImplicitFibonacciNet::new(d, k);
            let dense = FibonacciNet::new(d, k);
            assert_eq!(implicit.len(), dense.len(), "d={d} k={k}");
            assert!(!implicit.graph_built());
            assert_eq!(implicit.graph(), dense.graph(), "d={d} k={k}");
            assert!(implicit.graph_built());
            assert_eq!(implicit.name(), dense.name());
        }
    }

    #[test]
    fn labels_round_trip_without_storage() {
        let implicit = ImplicitFibonacciNet::classical(9);
        let dense = FibonacciNet::classical(9);
        for i in 0..implicit.len() as u32 {
            assert_eq!(implicit.label(i), dense.label(i));
            assert_eq!(implicit.node_of(&dense.label(i)), Some(i));
        }
        // Wrong length and invalid words miss.
        assert_eq!(implicit.node_of(&Word::ones(3)), None);
        assert_eq!(implicit.node_of(&Word::ones(9)), None);
    }

    #[test]
    fn implicit_canonical_matches_dense_canonical() {
        for (d, k) in [(8usize, 2usize), (6, 3)] {
            let dense = FibonacciNet::new(d, k);
            let implicit = ImplicitRouter::for_cube(d, k);
            let table_router = CanonicalRouter::for_net(&dense);
            for cur in 0..dense.len() as u32 {
                for dst in 0..dense.len() as u32 {
                    assert_eq!(
                        implicit.next_hop(cur, dst, &NoLoad),
                        table_router.next_hop(cur, dst, &NoLoad),
                        "d={d} k={k} {cur}→{dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn implicit_ecube_matches_dense_ecube() {
        let implicit = ImplicitRouter::ecube();
        for cur in 0..64u32 {
            for dst in 0..64u32 {
                assert_eq!(
                    implicit.next_hop(cur, dst, &NoLoad),
                    EcubeRouter.next_hop(cur, dst, &NoLoad)
                );
            }
        }
        assert_eq!(implicit.state_bytes(), 0);
        assert_eq!(implicit.name(), "e-cube");
    }

    #[test]
    fn routing_state_is_constant_in_n() {
        let small = ImplicitFibonacciNet::classical(8);
        let large = ImplicitFibonacciNet::classical(24);
        assert_eq!(small.routing_state_bytes(), 9 * 8);
        assert_eq!(large.routing_state_bytes(), 25 * 8);
        assert!(large.routing_state_bytes() < 64 * large.len());
        // Resolution yields the implicit router under its policy name.
        let r = RouterSpec::Preferred.resolve(&small).unwrap();
        assert_eq!(r.name(), "canonical");
        assert!(RouterSpec::Ecube.resolve(&small).is_err());
    }

    #[test]
    fn small_networks_still_tabulate_large_ones_refuse() {
        let small = ImplicitFibonacciNet::classical(10);
        let router = ImplicitRouter::canonical(small.codec().clone());
        let table = router
            .precompute(small.graph())
            .expect("144 nodes tabulate fine");
        for cur in 0..small.len() as u32 {
            for dst in 0..small.len() as u32 {
                assert_eq!(
                    table.next_hop(small.graph(), cur, dst),
                    router.next_hop(cur, dst, &NoLoad)
                );
            }
        }
        // Γ_24 (75 025 nodes) would need a 22.5 GB table: precompute
        // must degrade to per-hop implicit routing, not allocate.
        let large = ImplicitFibonacciNet::classical(24);
        assert!(router_over_budget_refuses(&large));
    }

    fn router_over_budget_refuses(net: &ImplicitFibonacciNet) -> bool {
        let router = ImplicitRouter::canonical(net.codec().clone());
        router.precompute(net.graph()).is_none()
    }

    #[test]
    fn adaptive_runs_on_implicit_addressing() {
        let net = ImplicitFibonacciNet::classical(7);
        let dense = FibonacciNet::classical(7);
        for v in 0..net.len() as u32 {
            assert_eq!(net.address(v), dense.label(v).bits());
        }
        let r = RouterSpec::Adaptive.resolve(&net).unwrap();
        assert_eq!(r.name(), "adaptive");
    }

    #[test]
    fn hypercube_identity_addressing_is_a_special_case() {
        // Sanity: the e-cube arm needs no codec because Q_d ids are
        // already the addresses.
        let q = Hypercube::new(6);
        let implicit = ImplicitRouter::ecube();
        for cur in 0..q.len() as u32 {
            assert_eq!(implicit.next_hop(cur, cur, &NoLoad), None);
        }
    }
}
