//! Injection-rate sweeps: the saturation-throughput and latency-vs-load
//! experiments the 1993-era evaluations report per topology.
//!
//! A sweep runs an *injection-rate ladder*: for each offered rate
//! (packets per node per cycle) it simulates open-loop Bernoulli traffic
//! under a fixed router across several seeds, in parallel on the
//! workspace's scoped-thread pool ([`fibcube_graph::parallel`]), and
//! averages the resulting throughput/latency into one [`LoadPoint`] per
//! rate. The resulting curve exposes the two numbers the comparisons care
//! about: where latency departs from the zero-load value, and the
//! saturation throughput where accepted traffic stops tracking offered
//! traffic.

use fibcube_graph::parallel::par_map;

use crate::router::Router;
use crate::simulator::simulate_with;
use crate::topology::Topology;
use crate::traffic::bernoulli;

/// Aggregated simulation outcome at one offered rate.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered injection rate (packets per node per cycle).
    pub rate: f64,
    /// Mean packets offered per run.
    pub offered: f64,
    /// Mean packets delivered per run.
    pub delivered: f64,
    /// `delivered / offered` — 1.0 until the network saturates.
    pub delivered_fraction: f64,
    /// Accepted rate: delivered packets per node per *injection* cycle
    /// (directly comparable to `rate`).
    pub accepted_rate: f64,
    /// Mean end-to-end latency of delivered packets.
    pub mean_latency: f64,
    /// Mean 99th-percentile latency across seeds.
    pub p99_latency: f64,
}

/// A full latency-vs-load / throughput-vs-load curve for one
/// (topology, router) pair.
#[derive(Clone, Debug)]
pub struct SweepCurve {
    /// Topology name (`"Γ_16"`, `"Q_11"`, …).
    pub topology: String,
    /// Router policy name.
    pub router: String,
    /// Node count (for normalising across topologies).
    pub nodes: usize,
    /// One point per offered rate, in ladder order.
    pub points: Vec<LoadPoint>,
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Number of cycles during which traffic is injected.
    pub inject_cycles: u64,
    /// Extra cycles granted after injection stops, for queues to drain.
    pub drain_cycles: u64,
    /// Seeds; each rung of the ladder runs once per seed.
    pub seeds: Vec<u64>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            inject_cycles: 400,
            drain_cycles: 4_000,
            seeds: vec![1, 2, 3],
        }
    }
}

/// Runs the injection-rate ladder `rates` (packets/node/cycle) under
/// `router`, parallel across all (rate, seed) runs.
pub fn injection_sweep<T, R>(
    topo: &T,
    router: &R,
    rates: &[f64],
    config: &SweepConfig,
) -> SweepCurve
where
    T: Topology + Sync + ?Sized,
    R: Router + Sync + ?Sized,
{
    let n = topo.len();
    let seeds = &config.seeds;
    assert!(!seeds.is_empty(), "sweep needs at least one seed");
    let jobs = rates.len() * seeds.len();
    let runs = par_map(jobs, |j| {
        let rate = rates[j / seeds.len()];
        // Decorrelate the traffic streams of different ladder rungs.
        let seed = seeds[j % seeds.len()] ^ ((j / seeds.len()) as u64) << 32;
        let pkts = bernoulli(n, rate, config.inject_cycles, seed);
        simulate_with(
            topo,
            router,
            &pkts,
            config.inject_cycles + config.drain_cycles,
        )
    });

    let points = rates
        .iter()
        .enumerate()
        .map(|(ri, &rate)| {
            let chunk = &runs[ri * seeds.len()..(ri + 1) * seeds.len()];
            let m = chunk.len() as f64;
            let offered = chunk.iter().map(|s| s.offered as f64).sum::<f64>() / m;
            let delivered = chunk.iter().map(|s| s.delivered as f64).sum::<f64>() / m;
            let mean_latency = chunk.iter().map(|s| s.mean_latency).sum::<f64>() / m;
            let p99_latency = chunk.iter().map(|s| s.p99_latency as f64).sum::<f64>() / m;
            LoadPoint {
                rate,
                offered,
                delivered,
                delivered_fraction: if offered > 0.0 {
                    delivered / offered
                } else {
                    1.0
                },
                accepted_rate: delivered / (n as f64 * config.inject_cycles as f64),
                mean_latency,
                p99_latency,
            }
        })
        .collect();

    SweepCurve {
        topology: topo.name(),
        router: router.name(),
        nodes: n,
        points,
    }
}

/// A geometric-ish default ladder from light load up to `max_rate`.
pub fn rate_ladder(max_rate: f64, rungs: usize) -> Vec<f64> {
    assert!(rungs >= 2, "a ladder needs at least two rungs");
    (1..=rungs)
        .map(|i| max_rate * i as f64 / rungs as f64)
        .collect()
}

/// The saturation point of a curve: the last rung whose delivered
/// fraction stays at least `threshold` (conventionally 0.95). Returns
/// `None` when even the lightest rung saturates.
pub fn saturation_point(curve: &SweepCurve, threshold: f64) -> Option<&LoadPoint> {
    curve
        .points
        .iter()
        .rev()
        .find(|p| p.delivered_fraction >= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{CanonicalRouter, EcubeRouter};
    use crate::topology::{FibonacciNet, Hypercube};

    fn quick_config() -> SweepConfig {
        SweepConfig {
            inject_cycles: 120,
            drain_cycles: 2_000,
            seeds: vec![7, 8],
        }
    }

    #[test]
    fn light_load_delivers_everything_at_distance_latency() {
        let q = Hypercube::new(5);
        let curve = injection_sweep(&q, &EcubeRouter, &[0.01], &quick_config());
        assert_eq!(curve.topology, "Q_5");
        assert_eq!(curve.router, "e-cube");
        let p = &curve.points[0];
        assert!(p.delivered_fraction > 0.999, "light load must not saturate");
        let avg = fibcube_graph::distance::average_distance(q.graph());
        assert!(
            p.mean_latency >= avg * 0.5,
            "latency {} ≪ avg distance {avg}",
            p.mean_latency
        );
        assert!(
            p.mean_latency <= avg * 2.0 + 2.0,
            "light load ≈ zero-load latency"
        );
    }

    #[test]
    fn latency_is_monotone_ish_in_load_and_saturation_detected() {
        let net = FibonacciNet::classical(8);
        let router = CanonicalRouter::for_net(&net);
        let rates = rate_ladder(0.6, 4);
        let mut config = quick_config();
        // Short drain so the saturated rungs visibly drop packets.
        config.drain_cycles = 200;
        let curve = injection_sweep(&net, &router, &rates, &config);
        assert_eq!(curve.points.len(), 4);
        let first = &curve.points[0];
        let last = &curve.points[curve.points.len() - 1];
        assert!(
            last.mean_latency >= first.mean_latency,
            "latency must not fall as load rises: {} vs {}",
            last.mean_latency,
            first.mean_latency
        );
        // Γ_8 (55 nodes, max degree 8) cannot accept 0.6 pkt/node/cycle of
        // uniform traffic: the top rung must saturate.
        assert!(last.delivered_fraction < 0.95, "top rung should saturate");
        let sat = saturation_point(&curve, 0.95);
        if let Some(p) = sat {
            assert!(p.rate < last.rate);
        }
    }

    #[test]
    fn ladder_shape() {
        let l = rate_ladder(0.8, 4);
        assert_eq!(l, vec![0.2, 0.4, 0.6000000000000001, 0.8]);
    }
}
