//! Injection-rate sweeps: the saturation-throughput and latency-vs-load
//! experiments the 1993-era evaluations report per topology.
//!
//! A sweep runs an *injection-rate ladder*: for each offered rate
//! (packets per node per cycle) it runs one [`Experiment`] with
//! open-loop Bernoulli traffic ([`TrafficSpec::Bernoulli`]) under a fixed
//! [`RouterSpec`] across several seeds, in parallel on the workspace's
//! scoped-thread pool ([`fibcube_graph::parallel`]), and averages the
//! resulting throughput/latency into one [`LoadPoint`] per rate. The
//! resulting curve exposes the two numbers the comparisons care about:
//! where latency departs from the zero-load value, and the saturation
//! throughput where accepted traffic stops tracking offered traffic.
//!
//! [`fault_load_sweep`] extends the ladder into a grid: every rate is
//! additionally run under increasing node-fault counts
//! ([`FaultSpec::Nodes`]), exposing how delivered throughput degrades as
//! the network loses processors — the fault-resilience comparison the
//! 1993 line makes between `Γ_n` and the hypercube.
//!
//! [`collective_sweep`] runs the same fault grid under a *collective*
//! workload ([`CollectiveSpec`]): per fault count it measures broadcast
//! completion time and target coverage, the live counterpart of the
//! static round-count tables.
//!
//! [`switching_sweep`] crosses the injection ladder with a set of
//! [`SwitchingSpec`]s — store-and-forward against one or more wormhole
//! configurations — exposing where flit-level serialization and
//! credit-based backpressure move the latency knee relative to the
//! packet-atomic engine.
//!
//! [`churn_sweep`] leaves the static-fault world entirely: it runs the
//! dynamic-churn engine ([`simulate_churn`]) across a ladder of
//! mean-time-to-repair values with an [`SloTracker`] attached, producing
//! the recovery-time-vs-MTTR grid — how long after each fail event the
//! network takes to meet its delivered-fraction target again, and what
//! the churn costs in typed drops and tail latency.

use fibcube_graph::parallel::par_map;

use crate::collective::{CollectiveOutcome, CollectiveSpec};
use crate::dist::DistanceTable;
use crate::engine::simulate_premasked;
use crate::experiment::{fault_seed, run_cells, Experiment, ExperimentError};
use crate::fault::{ChurnTimeline, FaultSpec};
use crate::observer::{NoopObserver, SloRecovery, SloTracker, SloWindow};
use crate::report::JsonValue;
use crate::router::{FaultMaskingRouter, Router, RouterSpec};
use crate::simulator::{simulate_churn, simulate_with, SimStats};
use crate::switching::SwitchingSpec;
use crate::topology::Topology;
use crate::traffic::TrafficSpec;

/// Aggregated simulation outcome at one offered rate.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered injection rate (packets per node per cycle).
    pub rate: f64,
    /// Mean packets offered per run.
    pub offered: f64,
    /// Mean packets delivered per run.
    pub delivered: f64,
    /// `delivered / offered` — 1.0 until the network saturates.
    pub delivered_fraction: f64,
    /// Accepted rate: delivered packets per node per *injection* cycle
    /// (directly comparable to `rate`).
    pub accepted_rate: f64,
    /// Mean end-to-end latency of delivered packets.
    pub mean_latency: f64,
    /// Mean 99th-percentile latency across seeds.
    pub p99_latency: f64,
}

impl LoadPoint {
    /// The point as a JSON object (for `BENCH_sim.json`-style artifacts).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj([
            ("rate", JsonValue::Num(self.rate)),
            ("offered", JsonValue::Num(self.offered)),
            ("delivered", JsonValue::Num(self.delivered)),
            (
                "delivered_fraction",
                JsonValue::Num(self.delivered_fraction),
            ),
            ("accepted_rate", JsonValue::Num(self.accepted_rate)),
            ("mean_latency", JsonValue::Num(self.mean_latency)),
            ("p99_latency", JsonValue::Num(self.p99_latency)),
        ])
    }
}

/// A full latency-vs-load / throughput-vs-load curve for one
/// (topology, router) pair.
#[derive(Clone, Debug)]
pub struct SweepCurve {
    /// Topology name (`"Γ_16"`, `"Q_11"`, …).
    pub topology: String,
    /// Router policy name.
    pub router: String,
    /// Node count (for normalising across topologies).
    pub nodes: usize,
    /// One point per offered rate, in ladder order.
    pub points: Vec<LoadPoint>,
}

impl SweepCurve {
    /// The curve as a JSON object, points included.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj([
            ("topology", JsonValue::Str(self.topology.clone())),
            ("router", JsonValue::Str(self.router.clone())),
            ("nodes", JsonValue::Int(self.nodes as u64)),
            (
                "points",
                JsonValue::Arr(self.points.iter().map(LoadPoint::to_json_value).collect()),
            ),
        ])
    }
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Number of cycles during which traffic is injected.
    pub inject_cycles: u64,
    /// Extra cycles granted after injection stops, for queues to drain.
    pub drain_cycles: u64,
    /// Seeds; each rung of the ladder runs once per seed.
    pub seeds: Vec<u64>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            inject_cycles: 400,
            drain_cycles: 4_000,
            seeds: vec![1, 2, 3],
        }
    }
}

/// Decorrelates the traffic streams of different ladder rungs.
fn rung_seed(base: u64, rung: usize) -> u64 {
    base ^ ((rung as u64) << 32)
}

/// Averages the per-(rate, seed) runs into one [`LoadPoint`] per rate.
fn aggregate(rates: &[f64], runs: &[SimStats], n: usize, config: &SweepConfig) -> Vec<LoadPoint> {
    let seeds = config.seeds.len();
    rates
        .iter()
        .enumerate()
        .map(|(ri, &rate)| {
            let chunk = &runs[ri * seeds..(ri + 1) * seeds];
            let m = chunk.len() as f64;
            let offered = chunk.iter().map(|s| s.offered as f64).sum::<f64>() / m;
            let delivered = chunk.iter().map(|s| s.delivered as f64).sum::<f64>() / m;
            let mean_latency = chunk.iter().map(|s| s.mean_latency).sum::<f64>() / m;
            let p99_latency = chunk.iter().map(|s| s.p99_latency as f64).sum::<f64>() / m;
            LoadPoint {
                rate,
                offered,
                delivered,
                delivered_fraction: if offered > 0.0 {
                    delivered / offered
                } else {
                    1.0
                },
                accepted_rate: delivered / (n as f64 * config.inject_cycles as f64),
                mean_latency,
                p99_latency,
            }
        })
        .collect()
}

/// Runs the injection-rate ladder `rates` (packets/node/cycle) under the
/// declarative `router` policy, one [`Experiment`] per (rate, seed) run,
/// parallel across runs. The capability check happens once up front, so
/// an unsupported policy fails fast with a typed error instead of
/// panicking mid-sweep.
///
/// Each parallel job resolves its own router instance: sharing one
/// would serialize construction order into the sweep's cell fan-out,
/// and a rebuild (`O(n·d)` for the canonical flip table, the most
/// expensive case) is microseconds against the milliseconds each
/// simulation run costs. Callers holding a concrete `Router + Sync` can
/// share one instance across all runs via [`injection_sweep_with`].
pub fn injection_sweep<T>(
    topo: &T,
    router: RouterSpec,
    rates: &[f64],
    config: &SweepConfig,
) -> Result<SweepCurve, ExperimentError>
where
    T: Topology + Sync + ?Sized,
{
    assert!(!config.seeds.is_empty(), "sweep needs at least one seed");
    let router_name = router.resolve(topo)?.name();
    for &rate in rates {
        TrafficSpec::Bernoulli {
            rate,
            cycles: config.inject_cycles,
        }
        .validate(topo.len())?;
    }
    let seeds = &config.seeds;
    // The (rate, seed) cells fan out through the shared experiment batch
    // runner — same machinery as `Experiment::run_batch`, reports in cell
    // order regardless of thread scheduling.
    let reports = run_cells(rates.len() * seeds.len(), |j| {
        let rung = j / seeds.len();
        Experiment::on(topo)
            .router(router)
            .traffic(TrafficSpec::Bernoulli {
                rate: rates[rung],
                cycles: config.inject_cycles,
            })
            .seed(rung_seed(seeds[j % seeds.len()], rung))
            .cycles(config.inject_cycles + config.drain_cycles)
    })?;
    let runs: Vec<SimStats> = reports.into_iter().map(|r| r.stats).collect();
    Ok(SweepCurve {
        topology: topo.name(),
        router: router_name,
        nodes: topo.len(),
        points: aggregate(rates, &runs, topo.len(), config),
    })
}

/// Like [`injection_sweep`], but under an explicit [`Router`] value —
/// the escape hatch for policies that exist outside [`RouterSpec`]
/// (custom experiments, research routers).
pub fn injection_sweep_with<T, R>(
    topo: &T,
    router: &R,
    rates: &[f64],
    config: &SweepConfig,
) -> SweepCurve
where
    T: Topology + Sync + ?Sized,
    R: Router + Sync + ?Sized,
{
    let n = topo.len();
    let seeds = &config.seeds;
    assert!(!seeds.is_empty(), "sweep needs at least one seed");
    let runs = par_map(rates.len() * seeds.len(), |j| {
        let rung = j / seeds.len();
        let pkts = TrafficSpec::Bernoulli {
            rate: rates[rung],
            cycles: config.inject_cycles,
        }
        .generate(n, rung_seed(seeds[j % seeds.len()], rung));
        simulate_with(
            topo,
            router,
            &pkts,
            config.inject_cycles + config.drain_cycles,
        )
    });
    SweepCurve {
        topology: topo.name(),
        router: router.name(),
        nodes: n,
        points: aggregate(rates, &runs, n, config),
    }
}

/// One cell of a [`fault_load_sweep`] grid: the aggregated outcome at
/// one (offered rate, node-fault count) combination.
#[derive(Clone, Debug)]
pub struct FaultLoadPoint {
    /// Offered injection rate (packets per node per cycle, counting every
    /// provisioned node — dead ones still attempt injection and drop).
    pub rate: f64,
    /// Node faults injected per run.
    pub faults: usize,
    /// Mean packets offered per run.
    pub offered: f64,
    /// Mean packets delivered per run.
    pub delivered: f64,
    /// `delivered / offered` — the delivered-throughput degradation
    /// measure — or `None` when the runs offered nothing (the ratio is
    /// undefined, matching the `Option` convention of
    /// [`FaultTrial`](crate::fault::FaultTrial)).
    pub delivered_fraction: Option<f64>,
    /// Mean packets dropped per run with a dead source or destination.
    pub dropped_dead_endpoint: f64,
    /// Mean packets dropped per run whose surviving endpoints the faults
    /// disconnect.
    pub dropped_unreachable: f64,
    /// Accepted rate: delivered packets per provisioned node per
    /// injection cycle (directly comparable to `rate`).
    pub accepted_rate: f64,
    /// Mean end-to-end latency of delivered packets.
    pub mean_latency: f64,
    /// Mean 99th-percentile latency across seeds.
    pub p99_latency: f64,
}

impl FaultLoadPoint {
    /// The cell as a JSON object (for `BENCH_sim.json`-style artifacts).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj([
            ("rate", JsonValue::Num(self.rate)),
            ("faults", JsonValue::Int(self.faults as u64)),
            ("offered", JsonValue::Num(self.offered)),
            ("delivered", JsonValue::Num(self.delivered)),
            (
                "delivered_fraction",
                match self.delivered_fraction {
                    Some(f) => JsonValue::Num(f),
                    None => JsonValue::Null,
                },
            ),
            (
                "dropped_dead_endpoint",
                JsonValue::Num(self.dropped_dead_endpoint),
            ),
            (
                "dropped_unreachable",
                JsonValue::Num(self.dropped_unreachable),
            ),
            ("accepted_rate", JsonValue::Num(self.accepted_rate)),
            ("mean_latency", JsonValue::Num(self.mean_latency)),
            ("p99_latency", JsonValue::Num(self.p99_latency)),
        ])
    }
}

/// A full injection-rate × fault-count grid for one (topology, router)
/// pair, produced by [`fault_load_sweep`]. Points are stored rate-major:
/// all fault counts of the first rate, then the second rate, …
#[derive(Clone, Debug)]
pub struct FaultLoadGrid {
    /// Topology name (`"Γ_16"`, `"Q_11"`, …).
    pub topology: String,
    /// Router policy name.
    pub router: String,
    /// Node count (for normalising across topologies).
    pub nodes: usize,
    /// The injection-rate ladder swept.
    pub rates: Vec<f64>,
    /// The node-fault counts swept.
    pub fault_counts: Vec<usize>,
    /// One cell per (rate, fault count), rate-major.
    pub points: Vec<FaultLoadPoint>,
}

impl FaultLoadGrid {
    /// The cell at `(rate index, fault index)`.
    pub fn point(&self, rate_idx: usize, fault_idx: usize) -> &FaultLoadPoint {
        &self.points[rate_idx * self.fault_counts.len() + fault_idx]
    }

    /// The grid as a JSON object, cells included.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj([
            ("topology", JsonValue::Str(self.topology.clone())),
            ("router", JsonValue::Str(self.router.clone())),
            ("nodes", JsonValue::Int(self.nodes as u64)),
            (
                "rates",
                JsonValue::Arr(self.rates.iter().map(|&r| JsonValue::Num(r)).collect()),
            ),
            (
                "fault_counts",
                JsonValue::Arr(
                    self.fault_counts
                        .iter()
                        .map(|&k| JsonValue::Int(k as u64))
                        .collect(),
                ),
            ),
            (
                "points",
                JsonValue::Arr(
                    self.points
                        .iter()
                        .map(FaultLoadPoint::to_json_value)
                        .collect(),
                ),
            ),
        ])
    }
}

/// Runs the injection-rate ladder `rates` against every node-fault count
/// in `fault_counts` — the fault-resilience grid behind the paper's
/// graceful-degradation claims. Fault placement derives from the
/// (fault count, seed) column alone: each column draws its
/// [`FaultSpec::Nodes`] set once, builds one
/// [`FaultMaskingRouter`] — including the `O(n·m)` degraded
/// [`DistanceTable`] — and replays every rate of the ladder through it,
/// so the table cost is paid per column rather than per
/// (rate, fault count, seed) run. Traffic streams stay decorrelated per
/// cell exactly as before; the columns fan out in parallel like
/// [`injection_sweep`]. Configuration problems (unsupported router,
/// degenerate traffic, fault counts the topology cannot express) fail
/// fast with a typed error before anything runs.
pub fn fault_load_sweep<T>(
    topo: &T,
    router: RouterSpec,
    rates: &[f64],
    fault_counts: &[usize],
    config: &SweepConfig,
) -> Result<FaultLoadGrid, ExperimentError>
where
    T: Topology + Sync + ?Sized,
{
    assert!(!config.seeds.is_empty(), "sweep needs at least one seed");
    let router_name = router.resolve(topo)?.name();
    for &rate in rates {
        TrafficSpec::Bernoulli {
            rate,
            cycles: config.inject_cycles,
        }
        .validate(topo.len())?;
    }
    let g = topo.graph();
    let n = topo.len();
    let seeds = &config.seeds;
    // One fault draw per (fault count, seed) column, sampled up front so
    // the parallel section below is infallible — `sample` revalidates
    // each count, keeping the fail-fast contract.
    let mut fault_sets = Vec::with_capacity(fault_counts.len() * seeds.len());
    for (fi, &count) in fault_counts.iter().enumerate() {
        for &seed in seeds.iter() {
            fault_sets.push(FaultSpec::Nodes { count }.sample(g, fault_seed(rung_seed(seed, fi)))?);
        }
    }
    let cap = config.inject_cycles + config.drain_cycles;
    // (fault count, seed) columns fan out across the workspace pool; the
    // rate ladder replays serially inside each column against its cached
    // masked router. Empty columns (zero faults) run the healthy engine
    // directly, mirroring `simulate_faulted`'s empty-set delegation.
    let runs: Vec<Vec<SimStats>> = par_map(fault_sets.len(), |j| {
        let fi = j / seeds.len();
        let faults = &fault_sets[j];
        let router = router
            .resolve(topo)
            .expect("router capability was checked above");
        let traffic = |ri: usize| {
            let cell = ri * fault_counts.len() + fi;
            TrafficSpec::Bernoulli {
                rate: rates[ri],
                cycles: config.inject_cycles,
            }
            .generate(n, rung_seed(seeds[j % seeds.len()], cell))
        };
        if faults.is_empty() {
            return (0..rates.len())
                .map(|ri| simulate_with(topo, &*router, &traffic(ri), cap))
                .collect();
        }
        let masks = faults.masks(g);
        let dist = DistanceTable::degraded(g, &masks);
        let masked = FaultMaskingRouter::with_table(g, &*router, faults, masks, dist);
        (0..rates.len())
            .map(|ri| simulate_premasked(topo, &masked, &traffic(ri), cap, &mut NoopObserver))
            .collect()
    });
    let m = seeds.len() as f64;
    let mut points = Vec::with_capacity(rates.len() * fault_counts.len());
    for (ri, &rate) in rates.iter().enumerate() {
        for (fi, &faults) in fault_counts.iter().enumerate() {
            let chunk: Vec<&SimStats> = (0..seeds.len())
                .map(|sj| &runs[fi * seeds.len() + sj][ri])
                .collect();
            let offered = chunk.iter().map(|s| s.offered as f64).sum::<f64>() / m;
            let delivered = chunk.iter().map(|s| s.delivered as f64).sum::<f64>() / m;
            points.push(FaultLoadPoint {
                rate,
                faults,
                offered,
                delivered,
                delivered_fraction: (offered > 0.0).then(|| delivered / offered),
                dropped_dead_endpoint: chunk
                    .iter()
                    .map(|s| s.dropped_dead_endpoint as f64)
                    .sum::<f64>()
                    / m,
                dropped_unreachable: chunk
                    .iter()
                    .map(|s| s.dropped_unreachable as f64)
                    .sum::<f64>()
                    / m,
                accepted_rate: delivered / (n as f64 * config.inject_cycles as f64),
                mean_latency: chunk.iter().map(|s| s.mean_latency).sum::<f64>() / m,
                p99_latency: chunk.iter().map(|s| s.p99_latency as f64).sum::<f64>() / m,
            });
        }
    }
    Ok(FaultLoadGrid {
        topology: topo.name(),
        router: router_name,
        nodes: topo.len(),
        rates: rates.to_vec(),
        fault_counts: fault_counts.to_vec(),
        points,
    })
}

/// One cell of a [`collective_sweep`] grid: the aggregated outcome of a
/// collective at one node-fault count.
#[derive(Clone, Debug)]
pub struct CollectivePoint {
    /// Node faults injected per run.
    pub faults: usize,
    /// Intended recipients per run (constant across seeds for broadcast;
    /// multicast draws may hit dead nodes, so this is the intended count
    /// regardless of liveness).
    pub targets: f64,
    /// Mean intended recipients actually reached per run.
    pub reached: f64,
    /// `reached / targets`, or `None` when the collective had no targets.
    pub reached_fraction: Option<f64>,
    /// Mean completion time (cycles until the last copy was delivered).
    pub completion_cycles: f64,
    /// Mean static schedule rounds across seeds (`None` when the spec has
    /// no static oracle — multicast and `alltoallp`). For a healthy
    /// one-port broadcast this equals `completion_cycles` exactly.
    pub schedule_rounds: Option<f64>,
    /// Mean copies dropped per run with a dead endpoint.
    pub dropped_dead_endpoint: f64,
    /// Mean copies dropped per run because the faults disconnect them.
    pub dropped_unreachable: f64,
}

impl CollectivePoint {
    /// The cell as a JSON object (for `BENCH_sim.json`-style artifacts).
    pub fn to_json_value(&self) -> JsonValue {
        let opt = |x: Option<f64>| match x {
            Some(v) => JsonValue::Num(v),
            None => JsonValue::Null,
        };
        JsonValue::obj([
            ("faults", JsonValue::Int(self.faults as u64)),
            ("targets", JsonValue::Num(self.targets)),
            ("reached", JsonValue::Num(self.reached)),
            ("reached_fraction", opt(self.reached_fraction)),
            ("completion_cycles", JsonValue::Num(self.completion_cycles)),
            ("schedule_rounds", opt(self.schedule_rounds)),
            (
                "dropped_dead_endpoint",
                JsonValue::Num(self.dropped_dead_endpoint),
            ),
            (
                "dropped_unreachable",
                JsonValue::Num(self.dropped_unreachable),
            ),
        ])
    }
}

/// A collective's degradation curve over a node-fault grid for one
/// topology, produced by [`collective_sweep`].
#[derive(Clone, Debug)]
pub struct CollectiveGrid {
    /// Topology name (`"Γ_16"`, `"Q_11"`, …).
    pub topology: String,
    /// The [`CollectiveSpec`] swept, in canonical text form.
    pub spec: String,
    /// Node count.
    pub nodes: usize,
    /// The node-fault counts swept.
    pub fault_counts: Vec<usize>,
    /// One cell per fault count, in `fault_counts` order.
    pub points: Vec<CollectivePoint>,
}

impl CollectiveGrid {
    /// The grid as a JSON object, cells included.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj([
            ("topology", JsonValue::Str(self.topology.clone())),
            ("spec", JsonValue::Str(self.spec.clone())),
            ("nodes", JsonValue::Int(self.nodes as u64)),
            (
                "fault_counts",
                JsonValue::Arr(
                    self.fault_counts
                        .iter()
                        .map(|&k| JsonValue::Int(k as u64))
                        .collect(),
                ),
            ),
            (
                "points",
                JsonValue::Arr(
                    self.points
                        .iter()
                        .map(CollectivePoint::to_json_value)
                        .collect(),
                ),
            ),
        ])
    }
}

/// Runs `spec` against every node-fault count in `fault_counts`, one
/// [`Experiment`] per (fault count, seed) cell in parallel on the
/// workspace pool — the collective-resilience grid behind the
/// `collectives` section of `BENCH_sim.json`: how broadcast completion
/// and coverage degrade as processors die. Fault placement and multicast
/// destinations both derive from the per-cell seed. Configuration
/// problems fail fast with a typed error before anything runs.
pub fn collective_sweep<T>(
    topo: &T,
    spec: &CollectiveSpec,
    fault_counts: &[usize],
    config: &SweepConfig,
) -> Result<CollectiveGrid, ExperimentError>
where
    T: Topology + Sync + ?Sized,
{
    assert!(!config.seeds.is_empty(), "sweep needs at least one seed");
    spec.validate(topo.len())?;
    for &k in fault_counts {
        FaultSpec::Nodes { count: k }.validate(topo.graph())?;
    }
    let seeds = &config.seeds;
    let reports = run_cells(fault_counts.len() * seeds.len(), |j| {
        let fi = j / seeds.len();
        Experiment::on(topo)
            .collective(spec.clone())
            .faults(FaultSpec::Nodes {
                count: fault_counts[fi],
            })
            .seed(rung_seed(seeds[j % seeds.len()], fi))
            .cycles(config.inject_cycles + config.drain_cycles)
    })?;
    let m = seeds.len() as f64;
    // A collective experiment without an outcome would be an internal
    // invariant violation; surface it as a typed error rather than a
    // mid-aggregation panic.
    let outcomes: Vec<&CollectiveOutcome> = reports
        .iter()
        .map(|r| {
            r.collective
                .as_ref()
                .ok_or_else(|| ExperimentError::MissingCollectiveOutcome {
                    topology: r.topology.clone(),
                })
        })
        .collect::<Result<_, _>>()?;
    let points = fault_counts
        .iter()
        .enumerate()
        .map(|(fi, &faults)| {
            let start = fi * seeds.len();
            let chunk = &reports[start..start + seeds.len()];
            let outs = &outcomes[start..start + seeds.len()];
            let targets = outs.iter().map(|o| o.targets as f64).sum::<f64>() / m;
            let reached = outs.iter().map(|o| o.reached as f64).sum::<f64>() / m;
            let rounds: Vec<f64> = outs
                .iter()
                .filter_map(|o| o.schedule_rounds.map(|x| x as f64))
                .collect();
            CollectivePoint {
                faults,
                targets,
                reached,
                reached_fraction: (targets > 0.0).then(|| reached / targets),
                completion_cycles: outs.iter().map(|o| o.completion_cycles as f64).sum::<f64>() / m,
                schedule_rounds: (rounds.len() == chunk.len())
                    .then(|| rounds.iter().sum::<f64>() / m),
                dropped_dead_endpoint: chunk
                    .iter()
                    .map(|r| r.stats.dropped_dead_endpoint as f64)
                    .sum::<f64>()
                    / m,
                dropped_unreachable: chunk
                    .iter()
                    .map(|r| r.stats.dropped_unreachable as f64)
                    .sum::<f64>()
                    / m,
            }
        })
        .collect();
    Ok(CollectiveGrid {
        topology: topo.name(),
        spec: spec.to_string(),
        nodes: topo.len(),
        fault_counts: fault_counts.to_vec(),
        points,
    })
}

/// One cell of a [`switching_sweep`] grid: the aggregated outcome at one
/// (offered rate, switching model) combination.
#[derive(Clone, Debug)]
pub struct SwitchingPoint {
    /// Offered injection rate (packets per node per cycle).
    pub rate: f64,
    /// The [`SwitchingSpec`] this cell ran under, in canonical text form.
    pub switching: String,
    /// Mean packets offered per run.
    pub offered: f64,
    /// Mean packets delivered per run.
    pub delivered: f64,
    /// `delivered / offered` — 1.0 until the network saturates.
    pub delivered_fraction: f64,
    /// Accepted rate: delivered packets per node per injection cycle
    /// (directly comparable to `rate`).
    pub accepted_rate: f64,
    /// Mean end-to-end latency of delivered packets. Under wormhole this
    /// counts head injection to tail arrival, so multi-flit packets pay
    /// their serialization latency here.
    pub mean_latency: f64,
    /// Mean 99th-percentile latency across seeds.
    pub p99_latency: f64,
    /// Mean cycles until the network drained (or the cap struck).
    pub makespan: f64,
}

impl SwitchingPoint {
    /// The cell as a JSON object (for `BENCH_sim.json`-style artifacts).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj([
            ("rate", JsonValue::Num(self.rate)),
            ("switching", JsonValue::Str(self.switching.clone())),
            ("offered", JsonValue::Num(self.offered)),
            ("delivered", JsonValue::Num(self.delivered)),
            (
                "delivered_fraction",
                JsonValue::Num(self.delivered_fraction),
            ),
            ("accepted_rate", JsonValue::Num(self.accepted_rate)),
            ("mean_latency", JsonValue::Num(self.mean_latency)),
            ("p99_latency", JsonValue::Num(self.p99_latency)),
            ("makespan", JsonValue::Num(self.makespan)),
        ])
    }
}

/// An injection-rate × switching-model grid for one (topology, router)
/// pair, produced by [`switching_sweep`]. Points are stored rate-major:
/// every switching model of the first rate, then the second rate, …
#[derive(Clone, Debug)]
pub struct SwitchingGrid {
    /// Topology name (`"Γ_16"`, `"Q_11"`, …).
    pub topology: String,
    /// Router policy name.
    pub router: String,
    /// Node count (for normalising across topologies).
    pub nodes: usize,
    /// The injection-rate ladder swept.
    pub rates: Vec<f64>,
    /// The switching models swept, in canonical text form and sweep order.
    pub switching: Vec<String>,
    /// One cell per (rate, switching model), rate-major.
    pub points: Vec<SwitchingPoint>,
}

impl SwitchingGrid {
    /// The cell at `(rate index, switching-model index)`.
    pub fn point(&self, rate_idx: usize, spec_idx: usize) -> &SwitchingPoint {
        &self.points[rate_idx * self.switching.len() + spec_idx]
    }

    /// The grid as a JSON object, cells included.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj([
            ("topology", JsonValue::Str(self.topology.clone())),
            ("router", JsonValue::Str(self.router.clone())),
            ("nodes", JsonValue::Int(self.nodes as u64)),
            (
                "rates",
                JsonValue::Arr(self.rates.iter().map(|&r| JsonValue::Num(r)).collect()),
            ),
            (
                "switching",
                JsonValue::Arr(
                    self.switching
                        .iter()
                        .map(|s| JsonValue::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "points",
                JsonValue::Arr(
                    self.points
                        .iter()
                        .map(SwitchingPoint::to_json_value)
                        .collect(),
                ),
            ),
        ])
    }
}

/// Runs the injection-rate ladder `rates` under every switching model in
/// `specs` — the wormhole-vs-store-and-forward comparison behind the
/// `switching` section of `BENCH_sim.json`. One [`Experiment`] per
/// (rate, switching model, seed) run with open-loop Bernoulli traffic,
/// parallel across runs like [`injection_sweep`]. Wormhole cells run the
/// flit-level engine ([`simulate_wormhole`](crate::simulator::simulate_wormhole))
/// with virtual channels and credit backpressure, so the grid exposes
/// both the serialization cost at light load and the earlier saturation
/// knee under finite flit buffering. Configuration problems (unsupported
/// router, degenerate traffic or switching specs) fail fast with a typed
/// error before anything runs.
pub fn switching_sweep<T>(
    topo: &T,
    router: RouterSpec,
    rates: &[f64],
    specs: &[SwitchingSpec],
    config: &SweepConfig,
) -> Result<SwitchingGrid, ExperimentError>
where
    T: Topology + Sync + ?Sized,
{
    assert!(!config.seeds.is_empty(), "sweep needs at least one seed");
    let router_name = router.resolve(topo)?.name();
    for &rate in rates {
        TrafficSpec::Bernoulli {
            rate,
            cycles: config.inject_cycles,
        }
        .validate(topo.len())?;
    }
    for spec in specs {
        spec.validate()?;
    }
    let seeds = &config.seeds;
    let per_rate = specs.len() * seeds.len();
    // (rate, switching, seed) cells through the shared batch runner.
    let reports = run_cells(rates.len() * per_rate, |j| {
        let ri = j / per_rate;
        let si = (j % per_rate) / seeds.len();
        let cell = ri * specs.len() + si;
        Experiment::on(topo)
            .router(router)
            .traffic(TrafficSpec::Bernoulli {
                rate: rates[ri],
                cycles: config.inject_cycles,
            })
            .switching(specs[si].clone())
            .seed(rung_seed(seeds[j % seeds.len()], cell))
            .cycles(config.inject_cycles + config.drain_cycles)
    })?;
    let runs: Vec<SimStats> = reports.into_iter().map(|r| r.stats).collect();
    let m = seeds.len() as f64;
    let mut points = Vec::with_capacity(rates.len() * specs.len());
    for (ri, &rate) in rates.iter().enumerate() {
        for (si, spec) in specs.iter().enumerate() {
            let start = ri * per_rate + si * seeds.len();
            let chunk = &runs[start..start + seeds.len()];
            let offered = chunk.iter().map(|s| s.offered as f64).sum::<f64>() / m;
            let delivered = chunk.iter().map(|s| s.delivered as f64).sum::<f64>() / m;
            points.push(SwitchingPoint {
                rate,
                switching: spec.to_string(),
                offered,
                delivered,
                delivered_fraction: if offered > 0.0 {
                    delivered / offered
                } else {
                    1.0
                },
                accepted_rate: delivered / (topo.len() as f64 * config.inject_cycles as f64),
                mean_latency: chunk.iter().map(|s| s.mean_latency).sum::<f64>() / m,
                p99_latency: chunk.iter().map(|s| s.p99_latency as f64).sum::<f64>() / m,
                makespan: chunk.iter().map(|s| s.makespan as f64).sum::<f64>() / m,
            });
        }
    }
    Ok(SwitchingGrid {
        topology: topo.name(),
        router: router_name,
        nodes: topo.len(),
        rates: rates.to_vec(),
        switching: specs.iter().map(|s| s.to_string()).collect(),
        points,
    })
}

/// One cell of a [`churn_sweep`] grid: the aggregated outcome at one
/// mean-time-to-repair value. Fractions follow the `Option` convention
/// of [`FaultLoadPoint`]: `None` means the denominator was zero (no
/// traffic offered, no fail events, nothing recovered), serialised as
/// JSON `null` rather than a misleading number.
#[derive(Clone, Debug)]
pub struct ChurnPoint {
    /// Mean time to repair swept at this cell (cycles;
    /// `f64::INFINITY` = failures never heal, serialised as `null`).
    pub mttr: f64,
    /// Mean churn events committed per run (fail + recover).
    pub events: f64,
    /// Mean fail events committed per run.
    pub fail_events: f64,
    /// Mean packets offered per run.
    pub offered: f64,
    /// Mean packets delivered per run.
    pub delivered: f64,
    /// `delivered / offered`, or `None` when nothing was offered.
    pub delivered_fraction: Option<f64>,
    /// Mean packets dropped per run on a link that died under them.
    pub dropped_link_died: f64,
    /// Mean packets dropped per run on a node that died holding them.
    pub dropped_node_died: f64,
    /// Mean packets dropped per run with a dead source or destination
    /// at injection.
    pub dropped_dead_endpoint: f64,
    /// Mean packets dropped per run whose endpoints the current fault
    /// state disconnects.
    pub dropped_unreachable: f64,
    /// Mean end-to-end latency of delivered packets.
    pub mean_latency: f64,
    /// Mean 99th-percentile latency across seeds.
    pub p99_latency: f64,
    /// Mean (across seeds) of the worst per-window p99.9 latency the
    /// run's [`SloTracker`] recorded — the tail during the churn, not
    /// the whole-run tail.
    pub worst_window_p999: f64,
    /// Fraction of fail events after which service met
    /// [`SLO_DELIVERED_TARGET`](crate::observer::SLO_DELIVERED_TARGET)
    /// again before the run ended, or `None` with no fail events.
    pub recovered_fraction: Option<f64>,
    /// Mean cycles from a fail event to the close of the first
    /// SLO-meeting window, over the recovered fail events — `None` when
    /// none recovered.
    pub mean_time_to_recover: Option<f64>,
}

impl ChurnPoint {
    /// The cell as a JSON object (for `BENCH_sim.json`-style artifacts).
    pub fn to_json_value(&self) -> JsonValue {
        let opt = |x: Option<f64>| match x {
            Some(v) => JsonValue::Num(v),
            None => JsonValue::Null,
        };
        JsonValue::obj([
            ("mttr", JsonValue::Num(self.mttr)),
            ("events", JsonValue::Num(self.events)),
            ("fail_events", JsonValue::Num(self.fail_events)),
            ("offered", JsonValue::Num(self.offered)),
            ("delivered", JsonValue::Num(self.delivered)),
            ("delivered_fraction", opt(self.delivered_fraction)),
            ("dropped_link_died", JsonValue::Num(self.dropped_link_died)),
            ("dropped_node_died", JsonValue::Num(self.dropped_node_died)),
            (
                "dropped_dead_endpoint",
                JsonValue::Num(self.dropped_dead_endpoint),
            ),
            (
                "dropped_unreachable",
                JsonValue::Num(self.dropped_unreachable),
            ),
            ("mean_latency", JsonValue::Num(self.mean_latency)),
            ("p99_latency", JsonValue::Num(self.p99_latency)),
            ("worst_window_p999", JsonValue::Num(self.worst_window_p999)),
            ("recovered_fraction", opt(self.recovered_fraction)),
            ("mean_time_to_recover", opt(self.mean_time_to_recover)),
        ])
    }
}

/// A recovery-vs-MTTR grid for one (topology, router) pair under
/// dynamic fault churn, produced by [`churn_sweep`].
#[derive(Clone, Debug)]
pub struct ChurnGrid {
    /// Topology name (`"Γ_16"`, `"Q_11"`, …).
    pub topology: String,
    /// Router policy name (the inner policy; churn wraps it in the
    /// fault-masking adapter at run time).
    pub router: String,
    /// Node count.
    pub nodes: usize,
    /// Offered injection rate (packets per node per cycle).
    pub rate: f64,
    /// Per-cycle node-failure intensity of the churn process.
    pub node_rate: f64,
    /// Per-cycle link-failure intensity of the churn process.
    pub link_rate: f64,
    /// Cycles per [`SloTracker`] aggregation window (the granularity of
    /// the recovery-time figures).
    pub slo_window: u64,
    /// The mean-time-to-repair ladder swept.
    pub mttrs: Vec<f64>,
    /// One cell per MTTR value, in `mttrs` order.
    pub points: Vec<ChurnPoint>,
}

impl ChurnGrid {
    /// The grid as a JSON object, cells included.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::obj([
            ("topology", JsonValue::Str(self.topology.clone())),
            ("router", JsonValue::Str(self.router.clone())),
            ("nodes", JsonValue::Int(self.nodes as u64)),
            ("rate", JsonValue::Num(self.rate)),
            ("node_rate", JsonValue::Num(self.node_rate)),
            ("link_rate", JsonValue::Num(self.link_rate)),
            ("slo_window", JsonValue::Int(self.slo_window)),
            (
                "mttrs",
                JsonValue::Arr(self.mttrs.iter().map(|&x| JsonValue::Num(x)).collect()),
            ),
            (
                "points",
                JsonValue::Arr(self.points.iter().map(ChurnPoint::to_json_value).collect()),
            ),
        ])
    }
}

/// Per-run churn outcome carried from the parallel cells to the
/// aggregation pass.
struct ChurnRun {
    stats: SimStats,
    events: u64,
    fail_events: u64,
    recovered: u64,
    recover_cycles: u64,
    worst_window_p999: u64,
}

/// Runs the dynamic-churn engine across a ladder of mean-time-to-repair
/// values — the recovery-vs-MTTR grid behind the `churn` section of
/// `BENCH_sim.json`. Each (MTTR, seed) cell generates a seeded
/// [`ChurnTimeline`] at the given per-cycle node/link failure
/// intensities, drives open-loop Bernoulli traffic at `rate` through
/// [`simulate_churn`] with an [`SloTracker`] attached, and reports
/// SLO-grade aggregates: per-fail-event time-to-recover, the fraction
/// of fail events service recovered from, windowed worst-case tail
/// latency, and the typed drop taxonomy (packets lost on dying
/// links/nodes vs. rejected at injection). Cells fan out in parallel on
/// the workspace pool; configuration problems (unsupported router,
/// degenerate traffic or churn parameters) fail fast with a typed error
/// before anything runs.
pub fn churn_sweep<T>(
    topo: &T,
    router: RouterSpec,
    rate: f64,
    node_rate: f64,
    link_rate: f64,
    mttrs: &[f64],
    config: &SweepConfig,
) -> Result<ChurnGrid, ExperimentError>
where
    T: Topology + Sync + ?Sized,
{
    assert!(!config.seeds.is_empty(), "sweep needs at least one seed");
    let router_name = router.resolve(topo)?.name();
    TrafficSpec::Bernoulli {
        rate,
        cycles: config.inject_cycles,
    }
    .validate(topo.len())?;
    let g = topo.graph();
    for &mttr in mttrs {
        FaultSpec::Churn {
            node_rate,
            link_rate,
            mttr,
        }
        .validate(g)?;
    }
    let n = topo.len();
    let seeds = &config.seeds;
    let cap = config.inject_cycles + config.drain_cycles;
    // Recovery times are measured at window granularity; an eighth of
    // the injection phase keeps several windows inside it without
    // starving each of traffic.
    let slo_window = (config.inject_cycles / 8).max(1);
    let runs: Vec<ChurnRun> = par_map(mttrs.len() * seeds.len(), |j| {
        let mi = j / seeds.len();
        let seed = rung_seed(seeds[j % seeds.len()], mi);
        let router = router
            .resolve(topo)
            .expect("router capability was checked above");
        let timeline =
            ChurnTimeline::generate(g, node_rate, link_rate, mttrs[mi], fault_seed(seed), cap);
        let pkts = TrafficSpec::Bernoulli {
            rate,
            cycles: config.inject_cycles,
        }
        .generate(n, seed);
        let mut slo = SloTracker::new(slo_window);
        let stats = simulate_churn(topo, &*router, &timeline, &pkts, cap, &mut slo);
        let fails: Vec<SloRecovery> = slo.recoveries().into_iter().filter(|r| r.failed).collect();
        ChurnRun {
            stats,
            events: slo.fault_events().len() as u64,
            fail_events: fails.len() as u64,
            recovered: fails.iter().filter(|r| r.time_to_recover.is_some()).count() as u64,
            recover_cycles: fails.iter().filter_map(|r| r.time_to_recover).sum(),
            worst_window_p999: slo.windows().iter().map(SloWindow::p999).max().unwrap_or(0),
        }
    });
    let m = seeds.len() as f64;
    let points = mttrs
        .iter()
        .enumerate()
        .map(|(mi, &mttr)| {
            let chunk = &runs[mi * seeds.len()..(mi + 1) * seeds.len()];
            let offered = chunk.iter().map(|r| r.stats.offered as f64).sum::<f64>() / m;
            let delivered = chunk.iter().map(|r| r.stats.delivered as f64).sum::<f64>() / m;
            let fail_events: u64 = chunk.iter().map(|r| r.fail_events).sum();
            let recovered: u64 = chunk.iter().map(|r| r.recovered).sum();
            let recover_cycles: u64 = chunk.iter().map(|r| r.recover_cycles).sum();
            let mean_drop = |f: fn(&SimStats) -> usize| {
                chunk.iter().map(|r| f(&r.stats) as f64).sum::<f64>() / m
            };
            ChurnPoint {
                mttr,
                events: chunk.iter().map(|r| r.events as f64).sum::<f64>() / m,
                fail_events: fail_events as f64 / m,
                offered,
                delivered,
                delivered_fraction: (offered > 0.0).then(|| delivered / offered),
                dropped_link_died: mean_drop(|s| s.dropped_link_died),
                dropped_node_died: mean_drop(|s| s.dropped_node_died),
                dropped_dead_endpoint: mean_drop(|s| s.dropped_dead_endpoint),
                dropped_unreachable: mean_drop(|s| s.dropped_unreachable),
                mean_latency: chunk.iter().map(|r| r.stats.mean_latency).sum::<f64>() / m,
                p99_latency: chunk
                    .iter()
                    .map(|r| r.stats.p99_latency as f64)
                    .sum::<f64>()
                    / m,
                worst_window_p999: chunk
                    .iter()
                    .map(|r| r.worst_window_p999 as f64)
                    .sum::<f64>()
                    / m,
                recovered_fraction: (fail_events > 0)
                    .then(|| recovered as f64 / fail_events as f64),
                mean_time_to_recover: (recovered > 0)
                    .then(|| recover_cycles as f64 / recovered as f64),
            }
        })
        .collect();
    Ok(ChurnGrid {
        topology: topo.name(),
        router: router_name,
        nodes: n,
        rate,
        node_rate,
        link_rate,
        slo_window,
        mttrs: mttrs.to_vec(),
        points,
    })
}

/// A geometric-ish default ladder from light load up to `max_rate`:
/// `rungs` evenly spaced rates ending at `max_rate`. Degenerate requests
/// are handled gracefully — 0 rungs is an empty ladder, 1 rung is just
/// `max_rate` (no division by `rungs − 1` anywhere).
pub fn rate_ladder(max_rate: f64, rungs: usize) -> Vec<f64> {
    (1..=rungs)
        .map(|i| max_rate * i as f64 / rungs as f64)
        .collect()
}

/// The saturation point of a curve: the last rung whose delivered
/// fraction stays at least `threshold` (conventionally 0.95). Returns
/// `None` when even the lightest rung saturates — and on an empty curve,
/// which has no rungs at all.
pub fn saturation_point(curve: &SweepCurve, threshold: f64) -> Option<&LoadPoint> {
    curve
        .points
        .iter()
        .rev()
        .find(|p| p.delivered_fraction >= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::CanonicalRouter;
    use crate::topology::{FibonacciNet, Hypercube, Ring};

    fn quick_config() -> SweepConfig {
        SweepConfig {
            inject_cycles: 120,
            drain_cycles: 2_000,
            seeds: vec![7, 8],
        }
    }

    #[test]
    fn light_load_delivers_everything_at_distance_latency() {
        let q = Hypercube::new(5);
        let curve = injection_sweep(&q, RouterSpec::Ecube, &[0.01], &quick_config()).unwrap();
        assert_eq!(curve.topology, "Q_5");
        assert_eq!(curve.router, "e-cube");
        let p = &curve.points[0];
        assert!(p.delivered_fraction > 0.999, "light load must not saturate");
        let avg = fibcube_graph::distance::average_distance(q.graph());
        assert!(
            p.mean_latency >= avg * 0.5,
            "latency {} ≪ avg distance {avg}",
            p.mean_latency
        );
        assert!(
            p.mean_latency <= avg * 2.0 + 2.0,
            "light load ≈ zero-load latency"
        );
    }

    #[test]
    fn latency_is_monotone_ish_in_load_and_saturation_detected() {
        let net = FibonacciNet::classical(8);
        let rates = rate_ladder(0.6, 4);
        let mut config = quick_config();
        // Short drain so the saturated rungs visibly drop packets.
        config.drain_cycles = 200;
        let curve = injection_sweep(&net, RouterSpec::Canonical, &rates, &config).unwrap();
        assert_eq!(curve.points.len(), 4);
        let first = &curve.points[0];
        let last = &curve.points[curve.points.len() - 1];
        assert!(
            last.mean_latency >= first.mean_latency,
            "latency must not fall as load rises: {} vs {}",
            last.mean_latency,
            first.mean_latency
        );
        // Γ_8 (55 nodes, max degree 8) cannot accept 0.6 pkt/node/cycle of
        // uniform traffic: the top rung must saturate.
        assert!(last.delivered_fraction < 0.95, "top rung should saturate");
        let sat = saturation_point(&curve, 0.95);
        if let Some(p) = sat {
            assert!(p.rate < last.rate);
        }
    }

    #[test]
    fn spec_sweep_matches_explicit_router_sweep() {
        // The declarative path must produce the same curve as handing the
        // resolved router in directly (same seeds ⇒ same runs).
        let net = FibonacciNet::classical(7);
        let rates = [0.02, 0.1];
        let config = quick_config();
        let via_spec = injection_sweep(&net, RouterSpec::Canonical, &rates, &config).unwrap();
        let router = CanonicalRouter::for_net(&net);
        let via_router = injection_sweep_with(&net, &router, &rates, &config);
        assert_eq!(via_spec.router, via_router.router);
        for (a, b) in via_spec.points.iter().zip(&via_router.points) {
            assert_eq!(a.delivered, b.delivered);
            assert_eq!(a.mean_latency, b.mean_latency);
            assert_eq!(a.p99_latency, b.p99_latency);
        }
    }

    #[test]
    fn unsupported_router_fails_the_sweep_up_front() {
        let ring = Ring::new(9);
        let err = injection_sweep(&ring, RouterSpec::Canonical, &[0.1], &quick_config())
            .expect_err("no canonical routing on a ring");
        assert!(err.to_string().contains("Ring_9"), "{err}");
        let err = injection_sweep(&ring, RouterSpec::Builtin, &[1.5], &quick_config())
            .expect_err("rate 1.5 is not a probability");
        assert!(err.to_string().contains("1.5"), "{err}");
    }

    #[test]
    fn ladder_shape() {
        let l = rate_ladder(0.8, 4);
        assert_eq!(l, vec![0.2, 0.4, 0.6000000000000001, 0.8]);
    }

    #[test]
    fn ladder_degenerate_rung_counts() {
        // Satellite hardening: 0 and 1 rungs must not panic or divide
        // degenerately.
        assert!(rate_ladder(0.5, 0).is_empty());
        assert_eq!(rate_ladder(0.5, 1), vec![0.5]);
    }

    #[test]
    fn saturation_point_of_empty_curve_is_none() {
        let empty = SweepCurve {
            topology: "Q_3".into(),
            router: "e-cube".into(),
            nodes: 8,
            points: Vec::new(),
        };
        assert!(saturation_point(&empty, 0.95).is_none());
        // And an empty ladder sweeps to an empty curve without running.
        let q = Hypercube::new(3);
        let curve = injection_sweep(&q, RouterSpec::Ecube, &[], &quick_config()).unwrap();
        assert!(curve.points.is_empty());
        assert!(saturation_point(&curve, 0.95).is_none());
    }

    #[test]
    fn fault_load_sweep_shows_graceful_degradation() {
        let net = FibonacciNet::classical(7); // 34 nodes
        let grid = fault_load_sweep(
            &net,
            RouterSpec::Adaptive,
            &[0.05],
            &[0, 8],
            &quick_config(),
        )
        .unwrap();
        assert_eq!(grid.points.len(), 2);
        assert_eq!(grid.router, "adaptive");
        let healthy = grid.point(0, 0);
        let degraded = grid.point(0, 1);
        assert_eq!(healthy.faults, 0);
        assert_eq!(degraded.faults, 8);
        // The healthy column never drops; the degraded one must (8 of 34
        // nodes dead ⇒ ~40% of uniform pairs touch a dead endpoint).
        assert_eq!(healthy.dropped_dead_endpoint, 0.0);
        let healthy_frac = healthy.delivered_fraction.expect("packets were offered");
        let degraded_frac = degraded.delivered_fraction.expect("packets were offered");
        assert!(healthy_frac > 0.999, "light load delivers");
        assert!(degraded.dropped_dead_endpoint > 0.0);
        assert!(
            degraded_frac < healthy_frac,
            "faults must degrade delivered throughput: {degraded_frac} vs {healthy_frac}"
        );
        let json = grid.to_json_value().to_string();
        assert!(json.contains("\"fault_counts\": [0, 8]"), "{json}");
        assert!(json.contains("\"delivered_fraction\""), "{json}");
        // A rate-0 cell offers nothing: the fraction is undefined, not a
        // misleading 1.0 (serialised as null).
        let idle =
            fault_load_sweep(&net, RouterSpec::Adaptive, &[0.0], &[0], &quick_config()).unwrap();
        assert_eq!(idle.point(0, 0).delivered_fraction, None);
        assert!(idle
            .to_json_value()
            .to_string()
            .contains("\"delivered_fraction\": null"));
    }

    #[test]
    fn fault_load_sweep_rejects_bad_grids_up_front() {
        let net = FibonacciNet::classical(6); // 21 nodes
        let err = fault_load_sweep(&net, RouterSpec::Ecube, &[0.1], &[0], &quick_config())
            .expect_err("no e-cube on a Fibonacci net");
        assert!(matches!(err, ExperimentError::UnsupportedRouter { .. }));
        let err = fault_load_sweep(&net, RouterSpec::Adaptive, &[0.1], &[21], &quick_config())
            .expect_err("failing every node is rejected");
        assert!(
            err.to_string().contains("at least one must survive"),
            "{err}"
        );
        // An empty grid runs nothing and returns no points.
        let grid = fault_load_sweep(&net, RouterSpec::Adaptive, &[], &[], &quick_config()).unwrap();
        assert!(grid.points.is_empty());
    }

    #[test]
    fn fault_load_grid_cells_are_stable_under_ladder_extension() {
        // Satellite regression for the cached-table restructure: a
        // column's fault draw depends only on (fault count, seed), and a
        // cell's traffic only on its own (rate, fault) indices — so
        // extending the rate ladder must not perturb existing cells.
        let net = FibonacciNet::classical(7); // 34 nodes
        let short = fault_load_sweep(
            &net,
            RouterSpec::Adaptive,
            &[0.05],
            &[0, 6],
            &quick_config(),
        )
        .unwrap();
        let long = fault_load_sweep(
            &net,
            RouterSpec::Adaptive,
            &[0.05, 0.2],
            &[0, 6],
            &quick_config(),
        )
        .unwrap();
        for fi in 0..2 {
            let a = short.point(0, fi);
            let b = long.point(0, fi);
            assert_eq!(a.offered, b.offered, "fault column {fi}");
            assert_eq!(a.delivered, b.delivered, "fault column {fi}");
            assert_eq!(a.dropped_dead_endpoint, b.dropped_dead_endpoint);
            assert_eq!(a.mean_latency, b.mean_latency);
            assert_eq!(a.p99_latency, b.p99_latency);
        }
    }

    #[test]
    fn churn_sweep_reports_recovery_grid() {
        let net = FibonacciNet::classical(8); // 55 nodes
        let grid = churn_sweep(
            &net,
            RouterSpec::Canonical,
            0.05,
            0.005,
            0.005,
            &[50.0, f64::INFINITY],
            &quick_config(),
        )
        .unwrap();
        assert_eq!(grid.topology, "Γ_8");
        assert_eq!(grid.router, "canonical");
        assert_eq!(grid.mttrs.len(), 2);
        assert_eq!(grid.points.len(), 2);
        assert_eq!(grid.slo_window, 15); // inject_cycles 120 / 8
        let healing = &grid.points[0];
        let permanent = &grid.points[1];
        // ~0.005/cycle over 2120 cycles: both cells must see failures.
        assert!(healing.fail_events > 0.0, "{}", healing.fail_events);
        assert!(permanent.fail_events > 0.0, "{}", permanent.fail_events);
        // Finite MTTR commits recover events on top of the fails;
        // mttr = ∞ never heals, so every committed event is a fail.
        assert!(
            healing.events > healing.fail_events,
            "{} vs {}",
            healing.events,
            healing.fail_events
        );
        assert_eq!(permanent.events, permanent.fail_events);
        assert!(permanent.mttr.is_infinite());
        // Traffic flowed and the SLO machinery produced figures.
        let frac = healing.delivered_fraction.expect("packets were offered");
        assert!(frac > 0.0 && frac <= 1.0, "{frac}");
        assert!(
            healing.recovered_fraction.is_some(),
            "fail events exist, so the fraction is defined"
        );
        if let Some(ttr) = healing.mean_time_to_recover {
            assert!(ttr > 0.0, "recovery takes at least one window: {ttr}");
        }
        let json = grid.to_json_value().to_string();
        assert!(json.contains("\"mttrs\""), "{json}");
        assert!(json.contains("\"mean_time_to_recover\""), "{json}");
        assert!(json.contains("\"worst_window_p999\""), "{json}");
        // Infinite MTTR serialises as null, keeping the artifact valid
        // JSON.
        assert!(json.contains("\"mttrs\": [50, null]"), "{json}");
    }

    #[test]
    fn churn_sweep_with_zero_rates_matches_the_quiet_network() {
        // node_rate = link_rate = 0 generates an empty timeline: no
        // events, nothing to recover from, full delivery at light load.
        let q = Hypercube::new(4);
        let grid = churn_sweep(
            &q,
            RouterSpec::Ecube,
            0.02,
            0.0,
            0.0,
            &[100.0],
            &quick_config(),
        )
        .unwrap();
        let p = &grid.points[0];
        assert_eq!(p.events, 0.0);
        assert_eq!(p.fail_events, 0.0);
        assert_eq!(p.recovered_fraction, None);
        assert_eq!(p.mean_time_to_recover, None);
        assert_eq!(p.dropped_link_died, 0.0);
        assert_eq!(p.dropped_node_died, 0.0);
        let frac = p.delivered_fraction.expect("packets were offered");
        assert!(frac > 0.999, "quiet light load delivers everything: {frac}");
        assert!(grid
            .to_json_value()
            .to_string()
            .contains("\"recovered_fraction\": null"));
    }

    #[test]
    fn churn_sweep_rejects_bad_grids_up_front() {
        let net = FibonacciNet::classical(6);
        let err = churn_sweep(
            &net,
            RouterSpec::Canonical,
            0.05,
            0.001,
            0.0,
            &[0.0],
            &quick_config(),
        )
        .expect_err("zero MTTR is degenerate");
        assert!(err.to_string().contains("mttr"), "{err}");
        let err = churn_sweep(
            &net,
            RouterSpec::Ecube,
            0.05,
            0.001,
            0.0,
            &[50.0],
            &quick_config(),
        )
        .expect_err("no e-cube on a Fibonacci net");
        assert!(matches!(err, ExperimentError::UnsupportedRouter { .. }));
        // An empty MTTR ladder runs nothing.
        let grid = churn_sweep(
            &net,
            RouterSpec::Canonical,
            0.05,
            0.001,
            0.001,
            &[],
            &quick_config(),
        )
        .unwrap();
        assert!(grid.points.is_empty());
    }

    #[test]
    fn collective_sweep_degrades_coverage_not_correctness() {
        use crate::collective::{CollectiveSpec, Port};
        let net = FibonacciNet::classical(8); // 55 nodes
        let spec = CollectiveSpec::Broadcast {
            source: 0,
            port: Port::One,
        };
        let grid = collective_sweep(&net, &spec, &[0, 10], &quick_config()).unwrap();
        assert_eq!(grid.topology, "Γ_8");
        assert_eq!(grid.spec, "broadcast(source=0,port=one)");
        assert_eq!(grid.points.len(), 2);
        let healthy = &grid.points[0];
        let degraded = &grid.points[1];
        // Healthy column: full coverage, completion == the static rounds
        // oracle (averaged over seeds, but every seed matches exactly).
        assert_eq!(healthy.faults, 0);
        assert_eq!(healthy.reached_fraction, Some(1.0));
        assert_eq!(healthy.dropped_dead_endpoint, 0.0);
        assert_eq!(
            Some(healthy.completion_cycles),
            healthy.schedule_rounds,
            "healthy one-port completion equals the static oracle"
        );
        // Degraded column: 10 of 55 nodes dead ⇒ coverage must drop, and
        // every missing target is a typed drop.
        assert_eq!(degraded.faults, 10);
        let frac = degraded.reached_fraction.expect("targets exist");
        assert!(frac < 1.0, "10 dead nodes must cost coverage: {frac}");
        assert!(degraded.dropped_dead_endpoint > 0.0);
        assert_eq!(
            degraded.reached + degraded.dropped_dead_endpoint + degraded.dropped_unreachable,
            degraded.targets,
            "copy conservation survives aggregation"
        );
        let json = grid.to_json_value().to_string();
        assert!(
            json.contains("\"spec\": \"broadcast(source=0,port=one)\""),
            "{json}"
        );
        assert!(json.contains("\"completion_cycles\""), "{json}");
        assert!(json.contains("\"reached_fraction\""), "{json}");
    }

    #[test]
    fn collective_sweep_rejects_bad_grids_up_front() {
        use crate::collective::{CollectiveSpec, Port};
        let net = FibonacciNet::classical(6); // 21 nodes
        let bad_spec = CollectiveSpec::Broadcast {
            source: 21,
            port: Port::One,
        };
        let err = collective_sweep(&net, &bad_spec, &[0], &quick_config())
            .expect_err("source outside the network");
        assert!(matches!(err, ExperimentError::InvalidCollective { .. }));
        let spec = CollectiveSpec::Broadcast {
            source: 0,
            port: Port::All,
        };
        let err = collective_sweep(&net, &spec, &[21], &quick_config())
            .expect_err("failing every node is rejected");
        assert!(
            err.to_string().contains("at least one must survive"),
            "{err}"
        );
        // An empty grid runs nothing.
        let grid = collective_sweep(&net, &spec, &[], &quick_config()).unwrap();
        assert!(grid.points.is_empty());
    }

    #[test]
    fn switching_sweep_compares_wormhole_to_store_and_forward() {
        let net = FibonacciNet::classical(8); // 55 nodes
        let specs = [
            SwitchingSpec::StoreAndForward,
            SwitchingSpec::Wormhole {
                flit_size: 8,
                vcs: 2,
                buf_flits: 4,
            },
        ];
        let grid = switching_sweep(
            &net,
            RouterSpec::Canonical,
            &[0.02, 0.08],
            &specs,
            &quick_config(),
        )
        .unwrap();
        assert_eq!(grid.points.len(), 4);
        assert_eq!(
            grid.switching,
            vec![
                "store_and_forward".to_string(),
                "wormhole(flit_size=8,vcs=2,buf_flits=4)".to_string()
            ]
        );
        let saf = grid.point(0, 0);
        let worm = grid.point(0, 1);
        assert_eq!(saf.switching, "store_and_forward");
        // Light load: both models deliver everything …
        assert!(saf.delivered_fraction > 0.999, "{}", saf.delivered_fraction);
        assert!(
            worm.delivered_fraction > 0.999,
            "{}",
            worm.delivered_fraction
        );
        // … but a 4-flit worm pays serialization latency the
        // packet-atomic engine never sees.
        assert!(
            worm.mean_latency > saf.mean_latency,
            "wormhole {} vs SAF {}",
            worm.mean_latency,
            saf.mean_latency
        );
        let json = grid.to_json_value().to_string();
        assert!(json.contains("\"switching\""), "{json}");
        assert!(json.contains("wormhole(flit_size=8"), "{json}");
        assert!(json.contains("\"makespan\""), "{json}");
    }

    #[test]
    fn switching_sweep_rejects_bad_specs_up_front() {
        let q = Hypercube::new(4);
        let bad = SwitchingSpec::Wormhole {
            flit_size: 0,
            vcs: 1,
            buf_flits: 1,
        };
        let err = switching_sweep(&q, RouterSpec::Ecube, &[0.05], &[bad], &quick_config())
            .expect_err("zero flit size is degenerate");
        assert!(matches!(err, ExperimentError::InvalidSwitching { .. }));
        assert!(err.to_string().contains("switching"), "{err}");
        // An empty grid runs nothing and returns no points.
        let grid = switching_sweep(&q, RouterSpec::Ecube, &[], &[], &quick_config()).unwrap();
        assert!(grid.points.is_empty());
    }

    #[test]
    fn curve_serialises_to_json() {
        let q = Hypercube::new(3);
        let curve = injection_sweep(&q, RouterSpec::Ecube, &[0.05], &quick_config()).unwrap();
        let json = curve.to_json_value().to_string();
        assert!(json.contains("\"topology\": \"Q_3\""), "{json}");
        assert!(json.contains("\"rate\": 0.05"), "{json}");
    }
}
