//! Static topology metrics — the comparison table of the 1993-era
//! interconnection papers: order, size, degree, diameter, average distance,
//! and the degree×diameter "cost".
//!
//! Up to [`EXACT_METRICS_LIMIT`] nodes the distance figures come from one
//! exact all-pairs [`DistanceTable`]; past it
//! [`metrics`] switches to the sampled
//! [`DistanceSample`] estimator so the row
//! stays computable at Γ_30 scale — [`TopologyMetrics::exact_distances`]
//! and the confidence half-width record which mode produced the numbers.
//! Callers that already hold a table use [`metrics_with`] and pay no BFS
//! at all.

use crate::dist::{DistanceSample, DistanceTable};
use crate::experiment::ExperimentError;
use crate::topology::Topology;

/// Largest node count for which [`metrics`] computes exact all-pairs
/// distances (64 MiB of table); larger networks are sampled.
pub const EXACT_METRICS_LIMIT: usize = 4096;

/// BFS sources [`metrics`] samples beyond [`EXACT_METRICS_LIMIT`].
pub const DEFAULT_METRIC_SOURCES: usize = 64;

const METRIC_SAMPLE_SEED: u64 = 0x5EED_D15C;

/// Static figures of merit for one topology.
#[derive(Clone, Debug)]
pub struct TopologyMetrics {
    /// Topology display name.
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of links.
    pub links: usize,
    /// Minimum node degree.
    pub min_degree: usize,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Diameter — exact when [`exact_distances`](Self::exact_distances),
    /// otherwise a certified lower bound (max sampled eccentricity).
    pub diameter: u32,
    /// Mean pairwise hop distance (estimated when sampled).
    pub average_distance: f64,
    /// The classic cost measure `max_degree × diameter`.
    pub cost: usize,
    /// `true` when the distance figures come from an exact all-pairs
    /// table; `false` when sampled.
    pub exact_distances: bool,
    /// BFS sources behind the distance figures (= `nodes` when exact).
    pub distance_sources: usize,
    /// Half-width of the 95% confidence interval on
    /// [`average_distance`](Self::average_distance); 0 when exact.
    pub average_distance_ci95: f64,
}

fn degree_row(t: &dyn Topology) -> (usize, usize) {
    let g = t.graph();
    let mut min_d = usize::MAX;
    let mut max_d = 0usize;
    for u in 0..g.num_vertices() as u32 {
        let d = g.degree(u);
        min_d = min_d.min(d);
        max_d = max_d.max(d);
    }
    if g.num_vertices() == 0 {
        min_d = 0;
    }
    (min_d, max_d)
}

/// Computes the full metric row for a topology: exact all-pairs distances
/// up to [`EXACT_METRICS_LIMIT`] nodes, sampled
/// ([`DEFAULT_METRIC_SOURCES`] seeded BFS sources) beyond — so the call
/// is safe at million-node scale. The exact path allocates an `O(n²)`
/// [`DistanceTable`]; a budget overrun surfaces as
/// [`ExperimentError::TableTooLarge`] instead of a panic (it cannot
/// happen while [`EXACT_METRICS_LIMIT`] stays within the table budget,
/// but the contract is typed rather than asserted).
pub fn metrics(t: &dyn Topology) -> Result<TopologyMetrics, ExperimentError> {
    if t.len() <= EXACT_METRICS_LIMIT {
        let table = DistanceTable::healthy(t.graph())?;
        metrics_with(t, &table)
    } else {
        Ok(metrics_sampled(
            t,
            DEFAULT_METRIC_SOURCES,
            METRIC_SAMPLE_SEED,
        ))
    }
}

/// The metric row against a caller-supplied (cached) distance table —
/// repeated calls on the same topology reuse one all-pairs sweep instead
/// of rebuilding it per call. A table covering a different node count
/// than the topology is a typed
/// [`ExperimentError::TableMismatch`], not a panic.
pub fn metrics_with(
    t: &dyn Topology,
    table: &DistanceTable,
) -> Result<TopologyMetrics, ExperimentError> {
    let g = t.graph();
    let n = g.num_vertices();
    if table.nodes() != n {
        return Err(ExperimentError::TableMismatch {
            table_nodes: table.nodes(),
            topology_nodes: n,
        });
    }
    let (min_degree, max_degree) = degree_row(t);
    let diameter = table.diameter().unwrap_or(0);
    Ok(TopologyMetrics {
        name: t.name(),
        nodes: n,
        links: g.num_edges(),
        min_degree,
        max_degree,
        diameter,
        average_distance: table.average_distance(),
        cost: max_degree * diameter as usize,
        exact_distances: true,
        distance_sources: n,
        average_distance_ci95: 0.0,
    })
}

/// The metric row with sampled distance figures: `sources` seeded BFS
/// sweeps instead of `n` — `O(s · (n + m))` time, `O(n)` space. The
/// diameter field is the sampled lower bound.
pub fn metrics_sampled(t: &dyn Topology, sources: usize, seed: u64) -> TopologyMetrics {
    let g = t.graph();
    let n = g.num_vertices();
    let (min_degree, max_degree) = degree_row(t);
    let sample = DistanceSample::estimate(g, sources, seed);
    TopologyMetrics {
        name: t.name(),
        nodes: n,
        links: g.num_edges(),
        min_degree,
        max_degree,
        diameter: sample.diameter_lower_bound,
        average_distance: sample.average_distance,
        cost: max_degree * sample.diameter_lower_bound as usize,
        exact_distances: sample.sources >= n,
        distance_sources: sample.sources,
        average_distance_ci95: sample.average_ci95,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FibonacciNet, Hypercube, Mesh, Ring};

    #[test]
    fn hypercube_metrics() {
        let m = metrics(&Hypercube::new(4)).unwrap();
        assert_eq!(m.nodes, 16);
        assert_eq!(m.links, 32);
        assert_eq!(m.min_degree, 4);
        assert_eq!(m.max_degree, 4);
        assert_eq!(m.diameter, 4);
        assert_eq!(m.cost, 16);
    }

    #[test]
    fn fibonacci_cube_beats_hypercube_on_degree() {
        // Hsu's selling point: Γ_d has max degree d but *fewer* links per
        // node on average, and diameter d, with order between 2^{d/2} and
        // 2^d — a sparser near-hypercube.
        let gamma = metrics(&FibonacciNet::classical(8)).unwrap();
        let q = metrics(&Hypercube::new(6)).unwrap(); // comparable order: 64 vs 55
        assert_eq!(gamma.nodes, 55);
        assert_eq!(q.nodes, 64);
        assert!(gamma.min_degree < q.min_degree, "sparser at the bottom");
        assert_eq!(gamma.diameter, 8);
        // Links per node favour the Fibonacci cube.
        let gamma_lpn = gamma.links as f64 / gamma.nodes as f64;
        let q_lpn = q.links as f64 / q.nodes as f64;
        assert!(gamma_lpn < q_lpn, "{gamma_lpn} vs {q_lpn}");
    }

    #[test]
    fn ring_and_mesh_metrics() {
        let r = metrics(&Ring::new(10)).unwrap();
        assert_eq!(r.diameter, 5);
        assert_eq!(r.max_degree, 2);
        assert_eq!(r.cost, 10);
        let m = metrics(&Mesh::new(4, 4)).unwrap();
        assert_eq!(m.diameter, 6);
        assert_eq!(m.max_degree, 4);
    }

    #[test]
    fn exact_mode_is_flagged() {
        let m = metrics(&Hypercube::new(4)).unwrap();
        assert!(m.exact_distances);
        assert_eq!(m.distance_sources, 16);
        assert_eq!(m.average_distance_ci95, 0.0);
    }

    #[test]
    fn metrics_with_reuses_a_cached_table() {
        let net = FibonacciNet::classical(8);
        let table = crate::dist::DistanceTable::healthy(net.graph()).unwrap();
        let direct = metrics(&net).unwrap();
        let reused = metrics_with(&net, &table).unwrap();
        assert_eq!(reused.diameter, direct.diameter);
        assert_eq!(reused.average_distance, direct.average_distance);
        assert_eq!(reused.cost, direct.cost);
        assert!(reused.exact_distances);
    }

    #[test]
    fn metrics_with_rejects_mismatched_table() {
        let table = crate::dist::DistanceTable::healthy(Ring::new(5).graph()).unwrap();
        let err = metrics_with(&Hypercube::new(4), &table)
            .expect_err("a 5-node table cannot describe a 16-node cube");
        assert!(
            matches!(
                err,
                crate::experiment::ExperimentError::TableMismatch {
                    table_nodes: 5,
                    topology_nodes: 16,
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("5"), "{err}");
    }

    #[test]
    fn sampled_metrics_agree_with_exact_on_every_shipped_topology() {
        for topo in [
            &FibonacciNet::classical(10) as &dyn Topology,
            &FibonacciNet::new(8, 3),
            &Hypercube::new(7),
            &Ring::new(33),
            &Mesh::new(8, 8),
        ] {
            let exact = metrics(topo).unwrap();
            assert!(exact.exact_distances, "{}", topo.name());
            let sampled = metrics_sampled(topo, 24, 99);
            assert!(!sampled.exact_distances || sampled.distance_sources >= topo.len());
            assert_eq!(sampled.nodes, exact.nodes);
            assert_eq!(sampled.links, exact.links);
            assert_eq!(sampled.max_degree, exact.max_degree);
            assert!(
                sampled.diameter <= exact.diameter,
                "{}: lower bound {} exceeds diameter {}",
                topo.name(),
                sampled.diameter,
                exact.diameter
            );
            assert!(
                sampled.diameter * 2 >= exact.diameter,
                "{}: lower bound {} implausibly loose vs {}",
                topo.name(),
                sampled.diameter,
                exact.diameter
            );
            let rel =
                (sampled.average_distance - exact.average_distance).abs() / exact.average_distance;
            assert!(
                rel < 0.15,
                "{}: sampled {} vs exact {} (rel {rel})",
                topo.name(),
                sampled.average_distance,
                exact.average_distance
            );
        }
    }

    #[test]
    fn average_distance_ordering() {
        // On comparable orders: Q (densest) < Γ < Mesh < Ring.
        let q = metrics(&Hypercube::new(5)).unwrap().average_distance; // 32 nodes
        let g = metrics(&FibonacciNet::classical(7))
            .unwrap()
            .average_distance; // 34
        let m = metrics(&Mesh::new(6, 6)).unwrap().average_distance; // 36
        let r = metrics(&Ring::new(33)).unwrap().average_distance; // 33
        assert!(q < g, "hypercube {q} < fibonacci {g}");
        assert!(g < m, "fibonacci {g} < mesh {m}");
        assert!(m < r, "mesh {m} < ring {r}");
    }
}
