//! Static topology metrics — the comparison table of the 1993-era
//! interconnection papers: order, size, degree, diameter, average distance,
//! and the degree×diameter "cost".

use crate::topology::Topology;

/// Static figures of merit for one topology.
#[derive(Clone, Debug)]
pub struct TopologyMetrics {
    /// Topology display name.
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of links.
    pub links: usize,
    /// Minimum node degree.
    pub min_degree: usize,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Diameter.
    pub diameter: u32,
    /// Mean pairwise hop distance.
    pub average_distance: f64,
    /// The classic cost measure `max_degree × diameter`.
    pub cost: usize,
}

/// Computes the full metric row for a topology. The two distance
/// figures (diameter, average distance) come from one shared
/// [`DistanceTable`](crate::dist::DistanceTable) — previously each ran
/// its own full all-pairs BFS sweep.
pub fn metrics(t: &dyn Topology) -> TopologyMetrics {
    let g = t.graph();
    let n = g.num_vertices();
    let degrees: Vec<usize> = (0..n as u32).map(|u| g.degree(u)).collect();
    let table = crate::dist::DistanceTable::healthy(g);
    let diameter = table.diameter().unwrap_or(0);
    TopologyMetrics {
        name: t.name(),
        nodes: n,
        links: g.num_edges(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        diameter,
        average_distance: table.average_distance(),
        cost: degrees.iter().copied().max().unwrap_or(0) * diameter as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FibonacciNet, Hypercube, Mesh, Ring};

    #[test]
    fn hypercube_metrics() {
        let m = metrics(&Hypercube::new(4));
        assert_eq!(m.nodes, 16);
        assert_eq!(m.links, 32);
        assert_eq!(m.min_degree, 4);
        assert_eq!(m.max_degree, 4);
        assert_eq!(m.diameter, 4);
        assert_eq!(m.cost, 16);
    }

    #[test]
    fn fibonacci_cube_beats_hypercube_on_degree() {
        // Hsu's selling point: Γ_d has max degree d but *fewer* links per
        // node on average, and diameter d, with order between 2^{d/2} and
        // 2^d — a sparser near-hypercube.
        let gamma = metrics(&FibonacciNet::classical(8));
        let q = metrics(&Hypercube::new(6)); // comparable order: 64 vs 55
        assert_eq!(gamma.nodes, 55);
        assert_eq!(q.nodes, 64);
        assert!(gamma.min_degree < q.min_degree, "sparser at the bottom");
        assert_eq!(gamma.diameter, 8);
        // Links per node favour the Fibonacci cube.
        let gamma_lpn = gamma.links as f64 / gamma.nodes as f64;
        let q_lpn = q.links as f64 / q.nodes as f64;
        assert!(gamma_lpn < q_lpn, "{gamma_lpn} vs {q_lpn}");
    }

    #[test]
    fn ring_and_mesh_metrics() {
        let r = metrics(&Ring::new(10));
        assert_eq!(r.diameter, 5);
        assert_eq!(r.max_degree, 2);
        assert_eq!(r.cost, 10);
        let m = metrics(&Mesh::new(4, 4));
        assert_eq!(m.diameter, 6);
        assert_eq!(m.max_degree, 4);
    }

    #[test]
    fn average_distance_ordering() {
        // On comparable orders: Q (densest) < Γ < Mesh < Ring.
        let q = metrics(&Hypercube::new(5)).average_distance; // 32 nodes
        let g = metrics(&FibonacciNet::classical(7)).average_distance; // 34
        let m = metrics(&Mesh::new(6, 6)).average_distance; // 36
        let r = metrics(&Ring::new(33)).average_distance; // 33
        assert!(q < g, "hypercube {q} < fibonacci {g}");
        assert!(g < m, "fibonacci {g} < mesh {m}");
        assert!(m < r, "mesh {m} < ring {r}");
    }
}
