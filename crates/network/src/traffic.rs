//! Workload generators for the network simulator (seeded, reproducible).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One message to deliver.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Cycle at which the packet enters the source's injection queue.
    pub inject_time: u64,
}

/// Uniform random traffic: `count` packets, sources and destinations drawn
/// uniformly (src ≠ dst), injection times uniform in `0..window`.
pub fn uniform(n: usize, count: usize, window: u64, seed: u64) -> Vec<Packet> {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let src = rng.gen_range(0..n) as u32;
            let mut dst = rng.gen_range(0..n) as u32;
            while dst == src {
                dst = rng.gen_range(0..n) as u32;
            }
            let inject_time = if window == 0 {
                0
            } else {
                rng.gen_range(0..window)
            };
            Packet {
                src,
                dst,
                inject_time,
            }
        })
        .collect()
}

/// Hot-spot traffic: like [`uniform`], but a `hot_fraction` of packets aim
/// at a single hot node (node 0) — the classic contention stressor.
pub fn hot_spot(n: usize, count: usize, window: u64, hot_fraction: f64, seed: u64) -> Vec<Packet> {
    assert!((0.0..=1.0).contains(&hot_fraction));
    let mut packets = uniform(n, count, window, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    for p in packets.iter_mut() {
        if rng.gen_bool(hot_fraction) && p.src != 0 {
            p.dst = 0;
        }
    }
    packets
}

/// Complement permutation: node `i` sends to node `n − 1 − i` (the
/// rank-complement — on hypercubes with in-order ranks this is the classic
/// bit-complement pattern, the worst case for dimension-ordered routing).
pub fn complement_permutation(n: usize, window: u64) -> Vec<Packet> {
    (0..n)
        .filter(|&i| n - 1 - i != i)
        .map(|i| Packet {
            src: i as u32,
            dst: (n - 1 - i) as u32,
            inject_time: (i as u64) % window.max(1),
        })
        .collect()
}

/// Open-loop Bernoulli injection — the workload of saturation sweeps:
/// during each cycle in `0..cycles`, every node independently injects a
/// packet with probability `rate` (packets per node per cycle), addressed
/// to a uniform random other node. Offered load is `n · cycles · rate`
/// packets in expectation.
pub fn bernoulli(n: usize, rate: f64, cycles: u64, seed: u64) -> Vec<Packet> {
    assert!(n >= 2, "need at least two nodes");
    assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut packets = Vec::with_capacity((n as f64 * cycles as f64 * rate) as usize + 16);
    for src in 0..n as u32 {
        for t in 0..cycles {
            if rng.gen_bool(rate) {
                let mut dst = rng.gen_range(0..n) as u32;
                while dst == src {
                    dst = rng.gen_range(0..n) as u32;
                }
                packets.push(Packet {
                    src,
                    dst,
                    inject_time: t,
                });
            }
        }
    }
    packets
}

/// All-to-all: every ordered pair once (quadratic — small nets only).
pub fn all_to_all(n: usize) -> Vec<Packet> {
    let mut packets = Vec::with_capacity(n * (n - 1));
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s != d {
                packets.push(Packet {
                    src: s,
                    dst: d,
                    inject_time: 0,
                });
            }
        }
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_valid() {
        let a = uniform(10, 100, 50, 7);
        let b = uniform(10, 100, 50, 7);
        assert_eq!(a, b);
        assert_ne!(a, uniform(10, 100, 50, 8));
        for p in &a {
            assert_ne!(p.src, p.dst);
            assert!(p.src < 10 && p.dst < 10);
            assert!(p.inject_time < 50);
        }
    }

    #[test]
    fn hot_spot_skews_to_node_zero() {
        let packets = hot_spot(16, 1000, 100, 0.5, 3);
        let to_zero = packets.iter().filter(|p| p.dst == 0).count();
        assert!(to_zero > 300, "hot-spot should dominate: {to_zero}");
        assert!(packets.iter().all(|p| p.src != p.dst));
    }

    #[test]
    fn complement_covers_everyone_once() {
        let packets = complement_permutation(8, 1);
        assert_eq!(packets.len(), 8);
        for p in &packets {
            assert_eq!(p.dst, 7 - p.src);
        }
        // Odd n: the middle node maps to itself and is skipped.
        assert_eq!(complement_permutation(7, 1).len(), 6);
    }

    #[test]
    fn all_to_all_count() {
        assert_eq!(all_to_all(5).len(), 20);
    }

    #[test]
    fn bernoulli_tracks_offered_rate() {
        let n = 64;
        let cycles = 500;
        let rate = 0.05;
        let a = bernoulli(n, rate, cycles, 17);
        assert_eq!(a, bernoulli(n, rate, cycles, 17), "seeded ⇒ reproducible");
        let expected = n as f64 * cycles as f64 * rate;
        assert!(
            (a.len() as f64) > 0.8 * expected && (a.len() as f64) < 1.2 * expected,
            "offered {} vs expected {expected}",
            a.len()
        );
        for p in &a {
            assert_ne!(p.src, p.dst);
            assert!((p.src as usize) < n && (p.dst as usize) < n);
            assert!(p.inject_time < cycles);
        }
        assert!(bernoulli(10, 0.0, 100, 1).is_empty());
    }
}
