//! Workload generation for the network simulator (seeded, reproducible).
//!
//! The one type to know is [`TrafficSpec`]: a declarative, parseable
//! description of a workload (`uniform(count=2000,window=400)`,
//! `bernoulli(rate=0.05,cycles=400)`, …) that
//! [`Experiment`](crate::experiment::Experiment) turns into packets.
//! [`TrafficSpec::generate`] is deterministic in `(spec, n, seed)`, and
//! [`Display`](core::fmt::Display)/[`FromStr`]
//! round-trip, so scenarios can live on a CLI flag or in a JSON report
//! and reproduce exactly. (The pre-`Experiment` free functions —
//! `uniform`, `hot_spot`, `complement_permutation`, `bernoulli`,
//! `all_to_all` — were deprecated for one release and are now gone;
//! the corresponding [`TrafficSpec`] variant generates the identical
//! packet stream.)

use core::fmt;
use core::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::experiment::ExperimentError;

/// One message to deliver.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Cycle at which the packet enters the source's injection queue.
    pub inject_time: u64,
}

// ---------------------------------------------------------------------------
// Generator implementations
// ---------------------------------------------------------------------------

fn gen_uniform(n: usize, count: usize, window: u64, seed: u64) -> Vec<Packet> {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let src = rng.gen_range(0..n) as u32;
            let mut dst = rng.gen_range(0..n) as u32;
            while dst == src {
                dst = rng.gen_range(0..n) as u32;
            }
            let inject_time = if window == 0 {
                0
            } else {
                rng.gen_range(0..window)
            };
            Packet {
                src,
                dst,
                inject_time,
            }
        })
        .collect()
}

fn gen_hot_spot(n: usize, count: usize, window: u64, hot_fraction: f64, seed: u64) -> Vec<Packet> {
    assert!((0.0..=1.0).contains(&hot_fraction));
    let mut packets = gen_uniform(n, count, window, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    for p in packets.iter_mut() {
        if rng.gen_bool(hot_fraction) && p.src != 0 {
            p.dst = 0;
        }
    }
    packets
}

fn gen_complement(n: usize, window: u64) -> Vec<Packet> {
    (0..n)
        .filter(|&i| n - 1 - i != i)
        .map(|i| Packet {
            src: i as u32,
            dst: (n - 1 - i) as u32,
            inject_time: (i as u64) % window.max(1),
        })
        .collect()
}

fn gen_bernoulli(n: usize, rate: f64, cycles: u64, seed: u64) -> Vec<Packet> {
    assert!(n >= 2, "need at least two nodes");
    assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut packets = Vec::with_capacity((n as f64 * cycles as f64 * rate) as usize + 16);
    for src in 0..n as u32 {
        for t in 0..cycles {
            if rng.gen_bool(rate) {
                let mut dst = rng.gen_range(0..n) as u32;
                while dst == src {
                    dst = rng.gen_range(0..n) as u32;
                }
                packets.push(Packet {
                    src,
                    dst,
                    inject_time: t,
                });
            }
        }
    }
    packets
}

fn gen_all_to_all(n: usize) -> Vec<Packet> {
    let mut packets = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s != d {
                packets.push(Packet {
                    src: s,
                    dst: d,
                    inject_time: 0,
                });
            }
        }
    }
    packets
}

// ---------------------------------------------------------------------------
// TrafficSpec
// ---------------------------------------------------------------------------

/// A declarative workload description, the traffic half of an
/// [`Experiment`](crate::experiment::Experiment).
///
/// Canonical text forms (round-tripping through `Display`/`FromStr`):
///
/// | Variant | Text |
/// |---|---|
/// | `Uniform` | `uniform(count=2000,window=400)` |
/// | `HotSpot` | `hotspot(count=2000,window=400,hot=0.3)` |
/// | `Bernoulli` | `bernoulli(rate=0.05,cycles=400)` |
/// | `ComplementPermutation` | `complement(window=8)` |
/// | `AllToAll` | `alltoall` |
/// | `RequestReply` | `request_reply(clients=64,think=50,timeout=200,retries=3)` |
/// | `Mixed` | `mix(uniform(count=100,window=50)+alltoall)` |
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficSpec {
    /// `count` packets, sources and destinations uniform (src ≠ dst),
    /// injection times uniform in `0..window` (all at 0 when `window` is
    /// 0).
    Uniform {
        /// Number of packets.
        count: usize,
        /// Injection window in cycles.
        window: u64,
    },
    /// Like `Uniform`, but each packet is redirected to the hot node
    /// (node 0) with probability `hot_fraction` — the classic contention
    /// stressor.
    HotSpot {
        /// Number of packets.
        count: usize,
        /// Injection window in cycles.
        window: u64,
        /// Probability that a packet aims at node 0.
        hot_fraction: f64,
    },
    /// Open-loop Bernoulli injection: during each cycle in `0..cycles`
    /// every node independently injects with probability `rate`
    /// (packets per node per cycle) toward a uniform random other node —
    /// the workload of saturation sweeps.
    Bernoulli {
        /// Injection probability per node per cycle.
        rate: f64,
        /// Number of injection cycles.
        cycles: u64,
    },
    /// Node `i` sends to node `n − 1 − i` (rank complement — on
    /// hypercubes with in-order ranks, the classic bit-complement
    /// adversary for dimension-ordered routing).
    ComplementPermutation {
        /// Injection window in cycles (staggers the permutation).
        window: u64,
    },
    /// Every ordered pair once, all at cycle 0 (quadratic — small nets).
    AllToAll,
    /// Closed-loop request–reply clients with timeout-and-retry
    /// delivery: `clients` sessions each run think → request → reply
    /// transactions, re-sending after `timeout` cycles of silence with
    /// seeded exponential backoff until the `retries` budget is spent
    /// (then the transaction drops as `retries_exhausted`). Closed-loop
    /// sources react to the network, so this variant has no finite
    /// packet list — [`generate`](TrafficSpec::generate) panics and
    /// [`Experiment`](crate::experiment::Experiment) dispatches it to
    /// [`simulate_request_reply`](crate::simulate_request_reply).
    RequestReply {
        /// Number of concurrent client sessions.
        clients: usize,
        /// Mean think time between transactions (cycles, exponential).
        think: f64,
        /// Cycles of silence before a transaction attempt is retried.
        timeout: u64,
        /// Retry budget per transaction (0 = fail on first timeout).
        retries: u32,
    },
    /// Superposition of component workloads; component `i` draws from a
    /// decorrelated seed, and the packet streams concatenate.
    Mixed(Vec<TrafficSpec>),
}

impl TrafficSpec {
    /// Checks the spec against a network of `n` nodes, returning a typed
    /// error instead of the panic [`generate`](TrafficSpec::generate)
    /// would raise.
    pub fn validate(&self, n: usize) -> Result<(), ExperimentError> {
        let invalid = |reason: String| {
            Err(ExperimentError::InvalidTraffic {
                spec: self.to_string(),
                reason,
            })
        };
        match self {
            TrafficSpec::Uniform { .. } | TrafficSpec::Bernoulli { .. } if n < 2 => {
                invalid(format!("needs at least 2 nodes, topology has {n}"))
            }
            TrafficSpec::HotSpot { hot_fraction, .. } => {
                if n < 2 {
                    invalid(format!("needs at least 2 nodes, topology has {n}"))
                } else if !(0.0..=1.0).contains(hot_fraction) {
                    invalid(format!("hot fraction {hot_fraction} is not a probability"))
                } else {
                    Ok(())
                }
            }
            TrafficSpec::Bernoulli { rate, .. } if !(0.0..=1.0).contains(rate) => {
                invalid(format!("rate {rate} is not a probability"))
            }
            TrafficSpec::RequestReply {
                clients,
                think,
                timeout,
                ..
            } => {
                if n < 2 {
                    invalid(format!("needs at least 2 nodes, topology has {n}"))
                } else if *clients == 0 {
                    invalid("needs at least one client session".to_string())
                } else if !think.is_finite() || *think < 0.0 {
                    invalid(format!("think time {think} must be finite and ≥ 0"))
                } else if *timeout == 0 {
                    invalid("timeout must be at least 1 cycle".to_string())
                } else {
                    Ok(())
                }
            }
            TrafficSpec::Mixed(parts) => {
                if parts.is_empty() {
                    return invalid("mix needs at least one component".to_string());
                }
                if parts
                    .iter()
                    .any(|p| matches!(p, TrafficSpec::RequestReply { .. }))
                {
                    return invalid(
                        "request_reply is closed-loop and cannot be a mix component".to_string(),
                    );
                }
                parts.iter().try_for_each(|p| p.validate(n))
            }
            _ => Ok(()),
        }
    }

    /// Generates the packet stream for a network of `n` nodes.
    /// Deterministic in `(self, n, seed)`; patterned variants
    /// (`ComplementPermutation`, `AllToAll`) ignore the seed.
    ///
    /// # Panics
    ///
    /// On specs that [`validate`](TrafficSpec::validate) would reject,
    /// and on [`RequestReply`](TrafficSpec::RequestReply), whose
    /// closed-loop sources react to the network and therefore have no
    /// precomputable packet list (the experiment layer dispatches it to
    /// [`simulate_request_reply`](crate::simulate_request_reply)).
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Packet> {
        match *self {
            TrafficSpec::Uniform { count, window } => gen_uniform(n, count, window, seed),
            TrafficSpec::HotSpot {
                count,
                window,
                hot_fraction,
            } => gen_hot_spot(n, count, window, hot_fraction, seed),
            TrafficSpec::Bernoulli { rate, cycles } => gen_bernoulli(n, rate, cycles, seed),
            TrafficSpec::ComplementPermutation { window } => gen_complement(n, window),
            TrafficSpec::AllToAll => gen_all_to_all(n),
            TrafficSpec::RequestReply { .. } => {
                panic!("request_reply is closed-loop: no packet list exists before the run")
            }
            TrafficSpec::Mixed(ref parts) => {
                assert!(!parts.is_empty(), "mix needs at least one component");
                let mut packets = Vec::new();
                for (i, part) in parts.iter().enumerate() {
                    // Golden-ratio stride decorrelates component streams.
                    let part_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    packets.extend(part.generate(n, part_seed));
                }
                packets
            }
        }
    }
}

impl fmt::Display for TrafficSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficSpec::Uniform { count, window } => {
                write!(f, "uniform(count={count},window={window})")
            }
            TrafficSpec::HotSpot {
                count,
                window,
                hot_fraction,
            } => write!(
                f,
                "hotspot(count={count},window={window},hot={hot_fraction})"
            ),
            TrafficSpec::Bernoulli { rate, cycles } => {
                write!(f, "bernoulli(rate={rate},cycles={cycles})")
            }
            TrafficSpec::ComplementPermutation { window } => {
                write!(f, "complement(window={window})")
            }
            TrafficSpec::AllToAll => write!(f, "alltoall"),
            TrafficSpec::RequestReply {
                clients,
                think,
                timeout,
                retries,
            } => write!(
                f,
                "request_reply(clients={clients},think={think},timeout={timeout},retries={retries})"
            ),
            TrafficSpec::Mixed(parts) => {
                write!(f, "mix(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn parse_err(input: &str, reason: impl Into<String>) -> ExperimentError {
    ExperimentError::ParseSpec {
        what: "traffic",
        input: input.to_string(),
        reason: reason.into(),
    }
}

/// Splits `name(body)` into `(name, Some(body))`, or `(s, None)` for a
/// bare name. The closing parenthesis must be the final character.
/// Shared with the [`FaultSpec`](crate::fault::FaultSpec) parser.
pub(crate) fn split_call(s: &str) -> Result<(&str, Option<&str>), String> {
    match s.find('(') {
        None => Ok((s, None)),
        Some(open) => {
            if !s.ends_with(')') {
                return Err("missing closing `)`".to_string());
            }
            Ok((&s[..open], Some(&s[open + 1..s.len() - 1])))
        }
    }
}

/// Parses `key=value` pairs separated by commas, checking that exactly
/// the expected keys appear (in any order).
pub(crate) fn parse_kv<'a>(body: &'a str, keys: &[&str]) -> Result<Vec<&'a str>, String> {
    let (required, _) = parse_kv_opt(body, keys, &[])?;
    Ok(required)
}

/// Like [`parse_kv`], but with a second set of keys that may be omitted:
/// returns the required values in `required` order and the optional
/// values (`None` when absent) in `optional` order. Shared with the
/// [`CollectiveSpec`](crate::collective::CollectiveSpec) parser, whose
/// `port` key defaults when left out.
pub(crate) fn parse_kv_opt<'a>(
    body: &'a str,
    required: &[&str],
    optional: &[&str],
) -> Result<(Vec<&'a str>, Vec<Option<&'a str>>), String> {
    let mut req: Vec<Option<&str>> = vec![None; required.len()];
    let mut opt: Vec<Option<&str>> = vec![None; optional.len()];
    for part in body.split(',') {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("expected `key=value`, got `{part}`"))?;
        let (k, v) = (k.trim(), v.trim());
        let slot = if let Some(i) = required.iter().position(|&want| want == k) {
            &mut req[i]
        } else if let Some(i) = optional.iter().position(|&want| want == k) {
            &mut opt[i]
        } else {
            let known: Vec<&str> = required.iter().chain(optional).copied().collect();
            return Err(format!("unknown key `{k}` (expected {})", known.join(", ")));
        };
        if slot.replace(v).is_some() {
            return Err(format!("duplicate key `{k}`"));
        }
    }
    let req = req
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.ok_or_else(|| format!("missing key `{}`", required[i])))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((req, opt))
}

pub(crate) fn num<T: FromStr>(value: &str, key: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("`{key}` has invalid value `{value}`"))
}

/// Splits the body of `mix(...)` on `+` at parenthesis depth 0.
pub(crate) fn split_mix(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            '+' if depth == 0 => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

impl FromStr for TrafficSpec {
    type Err = ExperimentError;

    fn from_str(s: &str) -> Result<TrafficSpec, ExperimentError> {
        let s = s.trim();
        let (name, body) = split_call(s).map_err(|e| parse_err(s, e))?;
        let body_or = |kind: &str| {
            body.ok_or_else(|| {
                parse_err(s, format!("`{kind}` needs arguments, e.g. `{kind}(...)`"))
            })
        };
        match name {
            "uniform" => {
                let v = parse_kv(body_or("uniform")?, &["count", "window"])
                    .map_err(|e| parse_err(s, e))?;
                Ok(TrafficSpec::Uniform {
                    count: num(v[0], "count").map_err(|e| parse_err(s, e))?,
                    window: num(v[1], "window").map_err(|e| parse_err(s, e))?,
                })
            }
            "hotspot" => {
                let v = parse_kv(body_or("hotspot")?, &["count", "window", "hot"])
                    .map_err(|e| parse_err(s, e))?;
                Ok(TrafficSpec::HotSpot {
                    count: num(v[0], "count").map_err(|e| parse_err(s, e))?,
                    window: num(v[1], "window").map_err(|e| parse_err(s, e))?,
                    hot_fraction: num(v[2], "hot").map_err(|e| parse_err(s, e))?,
                })
            }
            "bernoulli" => {
                let v = parse_kv(body_or("bernoulli")?, &["rate", "cycles"])
                    .map_err(|e| parse_err(s, e))?;
                Ok(TrafficSpec::Bernoulli {
                    rate: num(v[0], "rate").map_err(|e| parse_err(s, e))?,
                    cycles: num(v[1], "cycles").map_err(|e| parse_err(s, e))?,
                })
            }
            "complement" => {
                let v =
                    parse_kv(body_or("complement")?, &["window"]).map_err(|e| parse_err(s, e))?;
                Ok(TrafficSpec::ComplementPermutation {
                    window: num(v[0], "window").map_err(|e| parse_err(s, e))?,
                })
            }
            "alltoall" => match body {
                None | Some("") => Ok(TrafficSpec::AllToAll),
                Some(extra) => Err(parse_err(
                    s,
                    format!("`alltoall` takes no arguments: `{extra}`"),
                )),
            },
            "request_reply" => {
                let v = parse_kv(
                    body_or("request_reply")?,
                    &["clients", "think", "timeout", "retries"],
                )
                .map_err(|e| parse_err(s, e))?;
                Ok(TrafficSpec::RequestReply {
                    clients: num(v[0], "clients").map_err(|e| parse_err(s, e))?,
                    think: num(v[1], "think").map_err(|e| parse_err(s, e))?,
                    timeout: num(v[2], "timeout").map_err(|e| parse_err(s, e))?,
                    retries: num(v[3], "retries").map_err(|e| parse_err(s, e))?,
                })
            }
            "mix" => {
                let body = body_or("mix")?;
                if body.trim().is_empty() {
                    return Err(parse_err(s, "mix needs at least one component"));
                }
                let parts = split_mix(body)
                    .into_iter()
                    .map(TrafficSpec::from_str)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(TrafficSpec::Mixed(parts))
            }
            other => Err(parse_err(
                s,
                format!(
                    "unknown generator `{other}` (expected uniform, hotspot, bernoulli, \
                     complement, alltoall, request_reply, mix)"
                ),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_spec(count: usize, window: u64) -> TrafficSpec {
        TrafficSpec::Uniform { count, window }
    }

    #[test]
    fn uniform_is_deterministic_and_valid() {
        let spec = uniform_spec(100, 50);
        let a = spec.generate(10, 7);
        assert_eq!(a, spec.generate(10, 7));
        assert_ne!(a, spec.generate(10, 8));
        for p in &a {
            assert_ne!(p.src, p.dst);
            assert!(p.src < 10 && p.dst < 10);
            assert!(p.inject_time < 50);
        }
    }

    #[test]
    fn hot_spot_skew_matches_hot_fraction() {
        // With hot = 0.4 over n = 64 nodes, the expected fraction of
        // packets addressed to node 0 is hot · P(src ≠ 0) plus the
        // uniform background ≈ 0.4 · 63/64 + 0.6/63 ≈ 0.403. Fixed seed
        // ⇒ deterministic, so a ±0.04 band is a real check, not a flake.
        let n = 64;
        let count = 5000;
        let hot = 0.4;
        let packets = TrafficSpec::HotSpot {
            count,
            window: 100,
            hot_fraction: hot,
        }
        .generate(n, 3);
        let to_zero = packets.iter().filter(|p| p.dst == 0).count() as f64 / count as f64;
        let expected = hot * (n as f64 - 1.0) / n as f64 + (1.0 - hot) / (n as f64 - 1.0);
        assert!(
            (to_zero - expected).abs() < 0.04,
            "hot-spot skew {to_zero:.4} vs expected {expected:.4}"
        );
        // And hot = 0 must stay uniform.
        let cold = TrafficSpec::HotSpot {
            count,
            window: 100,
            hot_fraction: 0.0,
        }
        .generate(n, 3);
        let cold_zero = cold.iter().filter(|p| p.dst == 0).count() as f64 / count as f64;
        assert!(
            cold_zero < 0.05,
            "no skew without a hot fraction: {cold_zero}"
        );
    }

    #[test]
    fn no_generator_emits_self_addressed_packets() {
        let specs = [
            uniform_spec(500, 40),
            TrafficSpec::HotSpot {
                count: 500,
                window: 40,
                hot_fraction: 0.5,
            },
            TrafficSpec::Bernoulli {
                rate: 0.2,
                cycles: 50,
            },
            TrafficSpec::ComplementPermutation { window: 10 },
            TrafficSpec::AllToAll,
            TrafficSpec::Mixed(vec![uniform_spec(100, 10), TrafficSpec::AllToAll]),
        ];
        for n in [2usize, 9, 32] {
            for spec in &specs {
                for p in spec.generate(n, 11) {
                    assert_ne!(p.src, p.dst, "{spec} on n={n} self-addressed {p:?}");
                    assert!((p.src as usize) < n && (p.dst as usize) < n, "{spec}");
                }
            }
        }
    }

    #[test]
    fn bernoulli_count_within_binomial_bounds() {
        // n·cycles Bernoulli(rate) trials: the packet count must sit
        // within 6σ of the mean for the fixed seed (σ = √(μ(1−rate))).
        let n = 64;
        let cycles = 500;
        let rate = 0.05;
        let spec = TrafficSpec::Bernoulli { rate, cycles };
        let a = spec.generate(n, 17);
        assert_eq!(a, spec.generate(n, 17), "seeded ⇒ reproducible");
        let mean = n as f64 * cycles as f64 * rate;
        let sigma = (mean * (1.0 - rate)).sqrt();
        assert!(
            ((a.len() as f64) - mean).abs() < 6.0 * sigma,
            "offered {} outside {mean} ± 6·{sigma:.1}",
            a.len()
        );
        for p in &a {
            assert!(p.inject_time < cycles);
        }
        assert!(TrafficSpec::Bernoulli {
            rate: 0.0,
            cycles: 100
        }
        .generate(10, 1)
        .is_empty());
    }

    #[test]
    fn complement_covers_everyone_once() {
        let spec = TrafficSpec::ComplementPermutation { window: 1 };
        let packets = spec.generate(8, 0);
        assert_eq!(packets.len(), 8);
        for p in &packets {
            assert_eq!(p.dst, 7 - p.src);
        }
        // Odd n: the middle node maps to itself and is skipped.
        assert_eq!(spec.generate(7, 0).len(), 6);
    }

    #[test]
    fn all_to_all_count() {
        assert_eq!(TrafficSpec::AllToAll.generate(5, 0).len(), 20);
    }

    #[test]
    fn mixed_concatenates_decorrelated_components() {
        let mix = TrafficSpec::Mixed(vec![uniform_spec(50, 10), uniform_spec(50, 10)]);
        let packets = mix.generate(16, 9);
        assert_eq!(packets.len(), 100);
        // Different component seeds ⇒ the two halves differ.
        assert_ne!(packets[..50], packets[50..]);
        assert_eq!(packets[..50], uniform_spec(50, 10).generate(16, 9)[..]);
    }

    #[test]
    fn display_from_str_round_trips() {
        let specs = [
            uniform_spec(2000, 400),
            TrafficSpec::HotSpot {
                count: 100,
                window: 50,
                hot_fraction: 0.3,
            },
            TrafficSpec::Bernoulli {
                rate: 0.05,
                cycles: 400,
            },
            TrafficSpec::ComplementPermutation { window: 8 },
            TrafficSpec::AllToAll,
            TrafficSpec::RequestReply {
                clients: 64,
                think: 50.0,
                timeout: 200,
                retries: 3,
            },
            TrafficSpec::Mixed(vec![
                uniform_spec(10, 5),
                TrafficSpec::AllToAll,
                TrafficSpec::Mixed(vec![TrafficSpec::Bernoulli {
                    rate: 0.5,
                    cycles: 2,
                }]),
            ]),
        ];
        for spec in specs {
            let text = spec.to_string();
            let parsed: TrafficSpec = text.parse().unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(parsed, spec, "round-trip of `{text}`");
        }
    }

    #[test]
    fn from_str_accepts_whitespace_and_key_order() {
        let spec: TrafficSpec = " uniform(window=400, count=2000) ".parse().unwrap();
        assert_eq!(spec, uniform_spec(2000, 400));
    }

    #[test]
    fn from_str_rejects_malformed_specs() {
        for bad in [
            "unknown(x=1)",
            "uniform",
            "uniform(count=10)",
            "uniform(count=10,window=5,extra=1)",
            "uniform(count=ten,window=5)",
            "uniform(count=10,count=10)",
            "uniform(count=10,window=5",
            "hotspot(count=10,window=5)",
            "alltoall(3)",
            "request_reply",
            "request_reply(clients=2)",
            "request_reply(clients=2,think=1,timeout=0x,retries=1)",
            "mix()",
            "",
        ] {
            let err = bad.parse::<TrafficSpec>().expect_err(bad);
            assert!(err.to_string().contains("traffic"), "{bad}: {err}");
        }
    }

    #[test]
    fn validate_catches_degenerate_configs() {
        assert!(uniform_spec(10, 5).validate(1).is_err());
        assert!(uniform_spec(10, 5).validate(2).is_ok());
        assert!(TrafficSpec::Bernoulli {
            rate: 1.5,
            cycles: 10
        }
        .validate(8)
        .is_err());
        assert!(TrafficSpec::HotSpot {
            count: 10,
            window: 5,
            hot_fraction: -0.1
        }
        .validate(8)
        .is_err());
        assert!(TrafficSpec::Mixed(vec![]).validate(8).is_err());
        assert!(TrafficSpec::Mixed(vec![TrafficSpec::Bernoulli {
            rate: 2.0,
            cycles: 1
        }])
        .validate(8)
        .is_err());
        assert!(TrafficSpec::AllToAll.validate(1).is_ok());
    }

    #[test]
    fn request_reply_validation_and_closed_loop_gating() {
        let good = TrafficSpec::RequestReply {
            clients: 8,
            think: 20.0,
            timeout: 100,
            retries: 2,
        };
        assert!(good.validate(4).is_ok());
        assert!(good.validate(1).is_err(), "needs two nodes");
        for bad in [
            TrafficSpec::RequestReply {
                clients: 0,
                think: 20.0,
                timeout: 100,
                retries: 2,
            },
            TrafficSpec::RequestReply {
                clients: 8,
                think: -1.0,
                timeout: 100,
                retries: 2,
            },
            TrafficSpec::RequestReply {
                clients: 8,
                think: f64::INFINITY,
                timeout: 100,
                retries: 2,
            },
            TrafficSpec::RequestReply {
                clients: 8,
                think: 20.0,
                timeout: 0,
                retries: 2,
            },
        ] {
            assert!(bad.validate(8).is_err(), "{bad}");
        }
        // Closed-loop sources cannot superpose with open-loop streams.
        assert!(TrafficSpec::Mixed(vec![uniform_spec(10, 5), good])
            .validate(8)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "closed-loop")]
    fn request_reply_generate_panics() {
        TrafficSpec::RequestReply {
            clients: 8,
            think: 20.0,
            timeout: 100,
            retries: 2,
        }
        .generate(8, 1);
    }
}
