//! Interconnection-network topologies.
//!
//! The ICPP-1993 lineage (Hsu; Hsu–Liu; Liu–Hsu–Chung) studies `Q_d(1^k)`
//! — which it calls the *generalized Fibonacci cube of order k* — as an
//! interconnection network: nodes are addressed by (k-)Zeckendorf codes, so
//! a machine with `N` processors uses the first `N` codes, and links follow
//! the induced hypercube adjacency. We implement that network plus the
//! classic baselines it is compared against (binary hypercube, ring, mesh).

use core::fmt;

use fibcube_graph::csr::CsrGraph;
use fibcube_words::automaton::FactorAutomaton;
use fibcube_words::word::Word;

use crate::router::{
    AdaptiveMinimal, CanonicalRouter, EcubeRouter, NextHopRouter, Router, RouterSpec,
};

/// A route failed to converge: the distributed rule did not reach `dst`
/// within the topology's diameter bound (i.e. the router is broken —
/// cycling or non-progressive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteError {
    /// Requested source node.
    pub src: u32,
    /// Requested destination node.
    pub dst: u32,
    /// Number of hops taken before giving up (the diameter bound).
    pub steps: usize,
    /// Name of the topology whose router misbehaved.
    pub topology: String,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "route {} → {} on {} did not converge within the diameter bound of {} hops",
            self.src, self.dst, self.topology, self.steps
        )
    }
}

impl std::error::Error for RouteError {}

/// A static interconnection topology: a node set with materialised links
/// and a (distributed) routing rule.
///
/// `Send + Sync` is a supertrait: topologies are immutable once built
/// (interior caches like the implicit network's lazy CSR use
/// thread-safe cells), and the parallel engine
/// ([`simulate_parallel`](crate::simulate_parallel)) shares them across
/// its shard workers.
pub trait Topology: Send + Sync {
    /// Human-readable name (`"Γ_8"`, `"Q_6"`, `"Ring_64"`, …).
    fn name(&self) -> String;

    /// Number of nodes.
    fn len(&self) -> usize;

    /// `true` when the network has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying undirected link graph.
    fn graph(&self) -> &CsrGraph;

    /// One routing step: the neighbor to forward to on the way from `cur`
    /// to `dst`, or `None` when `cur == dst`.
    ///
    /// Implementations must be *progressive*: the returned hop strictly
    /// decreases the distance to `dst`, so routes are shortest paths and
    /// livelock-free.
    fn next_hop(&self, cur: u32, dst: u32) -> Option<u32>;

    /// An upper bound on the network diameter, used as the convergence
    /// budget for [`route`](Topology::route). The default is the (always
    /// safe) node count; concrete topologies override with their exact
    /// diameter so a cycling router is caught after `diameter` hops
    /// instead of `n`.
    fn diameter_bound(&self) -> usize {
        self.len()
    }

    /// Rank of the directed channel `u → v` in a total order compatible
    /// with this topology's deterministic routing rule: along any route the
    /// preferred router produces, consecutive channel classes must be
    /// strictly increasing (or, for topologies with wraparound links such
    /// as [`Ring`], decrease at most once — the classic dateline). The
    /// wormhole engine
    /// ([`simulate_wormhole`](crate::simulator::simulate_wormhole)) keys
    /// virtual-channel selection to this order, which is what makes
    /// flit-level blocking deadlock-free by construction — see the
    /// [`switching`](crate::switching) module docs for the
    /// channel-dependency-graph argument.
    ///
    /// The default returns `0` for every channel (no ordering
    /// information): wormhole simulation still runs, but escapes
    /// class-order blocking only through VC-level clamping, so
    /// deadlock freedom is best-effort rather than structural.
    fn channel_class(&self, u: u32, v: u32) -> u32 {
        let _ = (u, v);
        0
    }

    /// The topology's preferred split-out [`Router`] — the policy
    /// [`simulate`](crate::simulator::simulate) drives packets with.
    /// Defaults to wrapping [`next_hop`](Topology::next_hop); hypercube
    /// and Fibonacci networks override with their `O(1)`-per-hop routers.
    fn router(&self) -> Box<dyn Router + Send + Sync + '_> {
        Box::new(NextHopRouter::new(self))
    }

    /// The routing policies this topology can run: builds the router for
    /// `spec`, or `None` when the policy does not apply here (e.g.
    /// e-cube off the hypercube). This is the capability hook behind
    /// [`RouterSpec::resolve`], which turns the `None` into a typed
    /// [`ExperimentError`](crate::experiment::ExperimentError).
    ///
    /// The default supports [`RouterSpec::Preferred`] (via
    /// [`router`](Topology::router)) and [`RouterSpec::Builtin`];
    /// topologies with specialised policies override.
    fn resolve_router(&self, spec: RouterSpec) -> Option<Box<dyn Router + Send + Sync + '_>> {
        match spec {
            RouterSpec::Preferred => Some(self.router()),
            RouterSpec::Builtin => Some(Box::new(NextHopRouter::new(self))),
            RouterSpec::Ecube | RouterSpec::Canonical | RouterSpec::Adaptive => None,
        }
    }

    /// Full route from `src` to `dst` (inclusive of both endpoints), or
    /// [`RouteError`] when the rule fails to converge within
    /// [`diameter_bound`](Topology::diameter_bound) hops.
    fn route(&self, src: u32, dst: u32) -> Result<Vec<u32>, RouteError> {
        let bound = self.diameter_bound();
        let mut path = Vec::with_capacity(bound.min(64) + 1);
        path.push(src);
        let mut cur = src;
        // A progressive router terminates within the diameter: `bound`
        // hops plus the final `None` probe at the destination.
        for _ in 0..=bound {
            match self.next_hop(cur, dst) {
                Some(next) => {
                    cur = next;
                    path.push(cur);
                }
                None => return Ok(path),
            }
        }
        Err(RouteError {
            src,
            dst,
            steps: bound,
            topology: self.name(),
        })
    }
}

/// The binary hypercube `Q_d` with e-cube (dimension-ordered) routing —
/// the classic deadlock-free scheme.
#[derive(Clone, Debug)]
pub struct Hypercube {
    d: usize,
    graph: CsrGraph,
}

impl Hypercube {
    /// Builds `Q_d`.
    pub fn new(d: usize) -> Hypercube {
        Hypercube {
            d,
            graph: fibcube_graph::generators::hypercube(d),
        }
    }

    /// The dimension `d`.
    pub fn d(&self) -> usize {
        self.d
    }
}

impl Topology for Hypercube {
    fn name(&self) -> String {
        format!("Q_{}", self.d)
    }

    fn len(&self) -> usize {
        1 << self.d
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn next_hop(&self, cur: u32, dst: u32) -> Option<u32> {
        // e-cube: correct the lowest differing dimension first.
        EcubeRouter::hop(cur, dst)
    }

    fn diameter_bound(&self) -> usize {
        self.d
    }

    fn channel_class(&self, u: u32, v: u32) -> u32 {
        // e-cube corrects ascending bit positions, so the flipped
        // dimension itself is a strictly increasing class along any route.
        (u ^ v).trailing_zeros()
    }

    fn router(&self) -> Box<dyn Router + Send + Sync + '_> {
        Box::new(EcubeRouter)
    }

    fn resolve_router(&self, spec: RouterSpec) -> Option<Box<dyn Router + Send + Sync + '_>> {
        match spec {
            RouterSpec::Preferred | RouterSpec::Ecube => Some(Box::new(EcubeRouter)),
            RouterSpec::Builtin => Some(Box::new(NextHopRouter::new(self))),
            RouterSpec::Adaptive => Some(Box::new(AdaptiveMinimal::new(self))),
            RouterSpec::Canonical => None,
        }
    }
}

/// The generalized Fibonacci cube `Q_d(1^k)` as a network: node `i` is the
/// `i`-th `1^k`-free word in lexicographic order (= its k-Zeckendorf code).
///
/// Routing is *canonical-path* routing: flip the leftmost `1 → 0`
/// correction first, else the leftmost `0 → 1`. The Proposition 3.1
/// argument shows every intermediate address stays `1^k`-free, so the rule
/// is a distributed shortest-path router (it needs only `cur` and `dst`).
#[derive(Clone, Debug)]
pub struct FibonacciNet {
    d: usize,
    k: usize,
    labels: Vec<Word>,
    graph: CsrGraph,
}

impl FibonacciNet {
    /// Builds `Q_d(1^k)`; `k = 2` is the classical Fibonacci cube `Γ_d`.
    pub fn new(d: usize, k: usize) -> FibonacciNet {
        assert!(k >= 2, "order must be ≥ 2");
        let labels = FactorAutomaton::new(Word::ones(k)).free_words(d);
        let graph = fibcube_core::induced_hypercube_subgraph(d, &labels);
        FibonacciNet {
            d,
            k,
            labels,
            graph,
        }
    }

    /// The classical Fibonacci cube `Γ_d`.
    pub fn classical(d: usize) -> FibonacciNet {
        FibonacciNet::new(d, 2)
    }

    /// String length `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Forbidden-run order `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Node addresses (sorted Zeckendorf indicator words).
    pub fn labels(&self) -> &[Word] {
        &self.labels
    }

    /// Address of node `i`.
    pub fn label(&self, i: u32) -> Word {
        self.labels[i as usize]
    }

    /// Node id of an address.
    pub fn node_of(&self, w: &Word) -> Option<u32> {
        self.labels.binary_search(w).ok().map(|i| i as u32)
    }
}

impl Topology for FibonacciNet {
    fn name(&self) -> String {
        if self.k == 2 {
            format!("Γ_{}", self.d)
        } else {
            format!("Q_{}(1^{})", self.d, self.k)
        }
    }

    fn len(&self) -> usize {
        self.labels.len()
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn next_hop(&self, cur: u32, dst: u32) -> Option<u32> {
        if cur == dst {
            return None;
        }
        let c = self.labels[cur as usize];
        let t = self.labels[dst as usize];
        // Canonical-path rule: leftmost 1→0 correction first …
        for i in 1..=self.d {
            if c.at(i) == 1 && t.at(i) == 0 {
                let next = c.flip(i);
                return Some(self.node_of(&next).expect("1→0 flips stay 1^k-free"));
            }
        }
        // … then leftmost 0→1 (Prop 3.1's argument keeps these 1^k-free).
        for i in 1..=self.d {
            if c.at(i) == 0 && t.at(i) == 1 {
                let next = c.flip(i);
                return Some(
                    self.node_of(&next)
                        .expect("canonical 0→1 flips stay 1^k-free (Prop 3.1)"),
                );
            }
        }
        unreachable!("cur ≠ dst must differ somewhere")
    }

    fn diameter_bound(&self) -> usize {
        // Q_d(1^k) is isometric in Q_d, so its diameter is at most d.
        self.d
    }

    fn channel_class(&self, u: u32, v: u32) -> u32 {
        // Canonical-path routing clears 1-bits at ascending positions
        // first, then sets 0-bits at ascending positions (clearing never
        // creates new corrections, so the phases don't interleave). Giving
        // every clearing channel a class below every setting channel, each
        // phase ascending by position, makes classes strictly increasing
        // along every canonical route.
        let cu = self.labels[u as usize];
        let cv = self.labels[v as usize];
        for i in 1..=self.d {
            if cu.at(i) != cv.at(i) {
                return if cu.at(i) == 1 {
                    (i - 1) as u32
                } else {
                    (self.d + i - 1) as u32
                };
            }
        }
        unreachable!("channel endpoints must differ in one position")
    }

    fn router(&self) -> Box<dyn Router + Send + Sync + '_> {
        // Built on demand: one O(n·d·log n) table pass per simulation run
        // (comparable to the engine's own SlotTable build), so the many
        // non-routing analyses don't pay for it at construction.
        Box::new(CanonicalRouter::for_net(self))
    }

    fn resolve_router(&self, spec: RouterSpec) -> Option<Box<dyn Router + Send + Sync + '_>> {
        match spec {
            RouterSpec::Preferred | RouterSpec::Canonical => {
                Some(Box::new(CanonicalRouter::for_net(self)))
            }
            RouterSpec::Builtin => Some(Box::new(NextHopRouter::new(self))),
            RouterSpec::Adaptive => Some(Box::new(AdaptiveMinimal::new(self))),
            RouterSpec::Ecube => None,
        }
    }
}

/// A bidirectional ring with clockwise/counter-clockwise shortest routing.
#[derive(Clone, Debug)]
pub struct Ring {
    n: usize,
    graph: CsrGraph,
}

impl Ring {
    /// Builds the `n`-cycle.
    ///
    /// # Panics
    ///
    /// When `n < 3`: a 0/1/2-"cycle" is not a cycle graph (the generator
    /// would emit self-loops or parallel edges as a malformed CSR that
    /// only failed later, deep inside the engine).
    pub fn new(n: usize) -> Ring {
        assert!(n >= 3, "Ring::new: a cycle needs at least 3 nodes, got {n}");
        Ring {
            n,
            graph: fibcube_graph::generators::cycle(n),
        }
    }
}

impl Topology for Ring {
    fn name(&self) -> String {
        format!("Ring_{}", self.n)
    }

    fn len(&self) -> usize {
        self.n
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn next_hop(&self, cur: u32, dst: u32) -> Option<u32> {
        if cur == dst {
            return None;
        }
        let n = self.n as u32;
        let forward = (dst + n - cur) % n;
        let backward = n - forward;
        // Even rings have an antipodal tie (forward == backward); always
        // resolving it clockwise systematically overloads that direction
        // under symmetric traffic, so the tie alternates by the parity of
        // the deciding node instead. The rule stays a pure function of
        // (cur, dst) — deterministic, tabulable, engine-order-independent.
        let clockwise = if forward != backward {
            forward < backward
        } else {
            cur.is_multiple_of(2)
        };
        Some(if clockwise {
            (cur + 1) % n
        } else {
            (cur + n - 1) % n
        })
    }

    fn diameter_bound(&self) -> usize {
        self.n / 2
    }

    fn channel_class(&self, u: u32, v: u32) -> u32 {
        // Clockwise channels rank by source node; counter-clockwise ones
        // continue the order with descending sources. Either direction is
        // ascending except across its wrap link (the dateline), so any
        // minimal route — which keeps one direction and wraps at most once
        // — sees at most one class decrease: two VC levels suffice.
        let n = self.n as u32;
        if v == (u + 1) % n {
            u
        } else {
            n + (n - 1 - u)
        }
    }
}

/// A `w × h` mesh with X-then-Y dimension-ordered routing.
#[derive(Clone, Debug)]
pub struct Mesh {
    w: usize,
    h: usize,
    graph: CsrGraph,
}

impl Mesh {
    /// Builds the `w × h` grid.
    ///
    /// # Panics
    ///
    /// When `w == 0` or `h == 0`: a zero-width/height grid has no nodes
    /// and used to yield a malformed CSR graph that only failed later,
    /// deep inside the engine.
    pub fn new(w: usize, h: usize) -> Mesh {
        assert!(
            w >= 1 && h >= 1,
            "Mesh::new: grid dimensions must be positive, got {w}x{h}"
        );
        Mesh {
            w,
            h,
            graph: fibcube_graph::generators::grid(w, h),
        }
    }
}

impl Topology for Mesh {
    fn name(&self) -> String {
        format!("Mesh_{}x{}", self.w, self.h)
    }

    fn len(&self) -> usize {
        self.w * self.h
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn next_hop(&self, cur: u32, dst: u32) -> Option<u32> {
        if cur == dst {
            return None;
        }
        let w = self.w as u32;
        let (cx, cy) = (cur % w, cur / w);
        let (dx, dy) = (dst % w, dst / w);
        // X first, then Y.
        if cx < dx {
            Some(cur + 1)
        } else if cx > dx {
            Some(cur - 1)
        } else if cy < dy {
            Some(cur + w)
        } else {
            Some(cur - w)
        }
    }

    fn diameter_bound(&self) -> usize {
        self.w + self.h - 2
    }

    fn channel_class(&self, u: u32, v: u32) -> u32 {
        // X-then-Y routing moves monotonically in one x direction, then
        // one y direction. Ordering the channels +x (by column), then −x
        // (by descending column), then +y (by row), then −y (by descending
        // row) keeps classes strictly increasing along every such route:
        // within a leg the coordinate is monotone, and every y class
        // (≥ 2(w−1)) exceeds every x class (≤ 2w−3).
        let (w, h) = (self.w as u32, self.h as u32);
        let (cx, cy) = (u % w, u / w);
        let (vx, vy) = (v % w, v / w);
        if vy == cy {
            if vx == cx + 1 {
                cx
            } else {
                (w - 1) + (w - 1 - cx)
            }
        } else if vy == cy + 1 {
            2 * (w - 1) + cy
        } else {
            2 * (w - 1) + (h - 1) + (h - 1 - cy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fibcube_graph::bfs::distance_matrix;

    fn routes_are_shortest(t: &dyn Topology) {
        let dist = distance_matrix(t.graph());
        let n = t.len();
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                let route = t.route(s, d).expect("progressive routers converge");
                assert_eq!(
                    route.len() as u32 - 1,
                    dist[s as usize][d as usize],
                    "{}: route {s}→{d} not shortest",
                    t.name()
                );
                // Route edges must exist.
                for hop in route.windows(2) {
                    assert!(t.graph().has_edge(hop[0], hop[1]), "{}", t.name());
                }
            }
        }
    }

    #[test]
    fn hypercube_routing_shortest() {
        routes_are_shortest(&Hypercube::new(4));
    }

    #[test]
    fn fibonacci_routing_shortest() {
        routes_are_shortest(&FibonacciNet::classical(7));
        routes_are_shortest(&FibonacciNet::new(6, 3));
    }

    #[test]
    fn ring_and_mesh_routing_shortest() {
        routes_are_shortest(&Ring::new(9));
        routes_are_shortest(&Ring::new(10));
        routes_are_shortest(&Mesh::new(4, 3));
    }

    #[test]
    fn fibonacci_orders_are_kbonacci() {
        // |Q_d(1^k)| follows the k-bonacci counting sequence.
        for k in 2..=4usize {
            for d in 0..=12usize {
                let net = FibonacciNet::new(d, k);
                assert_eq!(
                    net.len() as u128,
                    fibcube_words::zeckendorf::count_k_free(k, d),
                    "k={k} d={d}"
                );
            }
        }
    }

    #[test]
    fn canonical_route_stays_in_network() {
        // The key Prop 3.1 property: intermediate addresses avoid 1^k.
        let net = FibonacciNet::classical(9);
        let ones = Word::ones(2);
        for s in (0..net.len() as u32).step_by(7) {
            for d in (0..net.len() as u32).step_by(5) {
                for &node in &net.route(s, d).expect("canonical routing converges") {
                    assert!(!fibcube_words::is_factor(&ones, &net.label(node)));
                }
            }
        }
    }

    #[test]
    fn broken_router_yields_route_error_within_diameter_bound() {
        /// A deliberately cycling "router" over a 4-cycle: every hop moves
        /// clockwise and never admits arrival.
        struct Carousel {
            graph: CsrGraph,
        }
        impl Topology for Carousel {
            fn name(&self) -> String {
                "Carousel_4".into()
            }
            fn len(&self) -> usize {
                4
            }
            fn graph(&self) -> &CsrGraph {
                &self.graph
            }
            fn next_hop(&self, cur: u32, _dst: u32) -> Option<u32> {
                Some((cur + 1) % 4)
            }
            fn diameter_bound(&self) -> usize {
                2
            }
        }
        let t = Carousel {
            graph: fibcube_graph::generators::cycle(4),
        };
        let err = t.route(0, 2).expect_err("cycling router must be caught");
        assert_eq!(err.steps, 2, "budget is the diameter bound, not n");
        assert_eq!(err.topology, "Carousel_4");
        assert!(err.to_string().contains("did not converge"));
    }

    #[test]
    fn hypercube_ecube_is_monotone_in_dimensions() {
        let q = Hypercube::new(5);
        let route = q.route(0b00000, 0b10101).unwrap();
        // e-cube fixes ascending bit positions: 0 → 1 → 5 → 21.
        assert_eq!(route, vec![0b00000, 0b00001, 0b00101, 0b10101]);
    }

    #[test]
    #[should_panic(expected = "a cycle needs at least 3 nodes")]
    fn ring_rejects_degenerate_cycles() {
        let _ = Ring::new(2);
    }

    #[test]
    #[should_panic(expected = "grid dimensions must be positive")]
    fn mesh_rejects_zero_width() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "grid dimensions must be positive")]
    fn mesh_rejects_zero_height() {
        let _ = Mesh::new(3, 0);
    }

    #[test]
    fn smallest_accepted_shapes_build_clean_graphs() {
        let r = Ring::new(3);
        assert_eq!(r.graph().num_edges(), 3);
        let m = Mesh::new(1, 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.graph().num_edges(), 0);
        routes_are_shortest(&Ring::new(3));
        routes_are_shortest(&Mesh::new(1, 5));
    }

    #[test]
    fn ring_antipodal_tie_alternates_by_source_parity() {
        // On an even ring the antipodal pair is equidistant both ways;
        // the tie must alternate with the deciding node's parity instead
        // of always going clockwise.
        let r = Ring::new(8);
        assert_eq!(r.next_hop(0, 4), Some(1), "even node goes clockwise");
        assert_eq!(r.next_hop(1, 5), Some(0), "odd node goes counter-clockwise");
        assert_eq!(r.next_hop(2, 6), Some(3));
        assert_eq!(r.next_hop(3, 7), Some(2));
        // Non-tied pairs still take the strictly shorter way.
        assert_eq!(r.next_hop(0, 3), Some(1));
        assert_eq!(r.next_hop(0, 5), Some(7));
        // Odd rings have no tie at all.
        let odd = Ring::new(9);
        for s in 0..9u32 {
            for d in 0..9u32 {
                if s != d {
                    let fwd = (d + 9 - s) % 9;
                    let expected = if fwd < 9 - fwd {
                        (s + 1) % 9
                    } else {
                        (s + 8) % 9
                    };
                    assert_eq!(odd.next_hop(s, d), Some(expected));
                }
            }
        }
    }

    /// Channel classes along every preferred route must decrease at most
    /// `wraps` times — 0 for the order-based topologies, 1 for the ring's
    /// dateline. This is the premise of the wormhole deadlock argument.
    fn classes_increase_along_routes(t: &dyn Topology, wraps: usize) {
        let n = t.len() as u32;
        for s in 0..n {
            for d in 0..n {
                let route = t.route(s, d).expect("progressive routers converge");
                let mut decreases = 0;
                let mut last = None;
                for hop in route.windows(2) {
                    let c = t.channel_class(hop[0], hop[1]);
                    if let Some(prev) = last {
                        if c <= prev {
                            decreases += 1;
                        }
                    }
                    last = Some(c);
                }
                assert!(
                    decreases <= wraps,
                    "{}: route {s}→{d} has {decreases} class decreases",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn channel_classes_are_route_monotone() {
        classes_increase_along_routes(&Hypercube::new(4), 0);
        classes_increase_along_routes(&FibonacciNet::classical(7), 0);
        classes_increase_along_routes(&FibonacciNet::new(6, 3), 0);
        classes_increase_along_routes(&Mesh::new(4, 3), 0);
        classes_increase_along_routes(&Mesh::new(1, 5), 0);
        classes_increase_along_routes(&Ring::new(9), 1);
        classes_increase_along_routes(&Ring::new(10), 1);
    }

    #[test]
    fn channel_classes_distinguish_directions() {
        // Opposite directions of one physical link get distinct classes on
        // every override (the default is the constant 0).
        let r = Ring::new(6);
        assert_ne!(r.channel_class(2, 3), r.channel_class(3, 2));
        let m = Mesh::new(3, 3);
        assert_ne!(m.channel_class(0, 1), m.channel_class(1, 0));
        assert_ne!(m.channel_class(0, 3), m.channel_class(3, 0));
        let q = Hypercube::new(3);
        assert_eq!(q.channel_class(0, 4), 2, "dimension index is the class");
        let g = FibonacciNet::classical(5);
        // Setting a position classes d−1 above clearing it.
        let (u, v) = (0u32, 1u32);
        let set = g.channel_class(u, v);
        let clear = g.channel_class(v, u);
        assert_eq!(set, clear + 5);
    }

    #[test]
    fn names() {
        assert_eq!(Hypercube::new(3).name(), "Q_3");
        assert_eq!(FibonacciNet::classical(5).name(), "Γ_5");
        assert_eq!(FibonacciNet::new(5, 3).name(), "Q_5(1^3)");
        assert_eq!(Ring::new(8).name(), "Ring_8");
        assert_eq!(Mesh::new(2, 3).name(), "Mesh_2x3");
    }
}
