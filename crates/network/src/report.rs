//! Structured experiment results: the [`Report`] returned by
//! [`Experiment::run`](crate::experiment::Experiment::run) and the
//! hand-rolled [`JsonValue`] tree it serialises to.
//!
//! The build environment has no registry access, so there is no `serde`;
//! instead the crate ships a deliberately small JSON document model —
//! enough to echo an experiment's configuration, its [`SimStats`], and
//! whatever sections the attached observers contribute, and to write
//! artifacts like `BENCH_sim.json` without string splicing at call sites.

use core::fmt;

use crate::collective::CollectiveOutcome;
use crate::simulator::SimStats;

/// A JSON document node. Numbers are split into unsigned integers and
/// floats so counters print exactly (`42`, not `42.0`).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all counters in this crate are unsigned).
    Int(u64),
    /// A float; non-finite values serialise as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for object nodes from `(&str, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, JsonValue); N]) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialises with two-space indentation and a trailing newline —
    /// the format the benchmark artifacts are written in.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest round-tripping decimal.
                    let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                    items[i].write(out, ind)
                })
            }
            JsonValue::Obj(pairs) => {
                write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                    write_escaped(out, &pairs[i].0);
                    out.push_str(": ");
                    pairs[i].1.write(out, ind);
                })
            }
        }
    }
}

/// Shared array/object writer: compact when `indent` is `None`, one
/// element per line otherwise.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        match inner {
            Some(d) => {
                out.push('\n');
                out.push_str(&"  ".repeat(d));
            }
            None => {
                if i > 0 {
                    out.push(' ');
                }
            }
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    /// Compact (single-line) JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

/// The [`SimStats`] block of a report as a JSON object (histogram
/// included — it is the raw data behind the latency percentiles).
pub fn stats_to_json(stats: &SimStats) -> JsonValue {
    JsonValue::obj([
        ("offered", JsonValue::Int(stats.offered as u64)),
        ("delivered", JsonValue::Int(stats.delivered as u64)),
        (
            "dropped_dead_endpoint",
            JsonValue::Int(stats.dropped_dead_endpoint as u64),
        ),
        (
            "dropped_unreachable",
            JsonValue::Int(stats.dropped_unreachable as u64),
        ),
        (
            "dropped_link_died",
            JsonValue::Int(stats.dropped_link_died as u64),
        ),
        (
            "dropped_node_died",
            JsonValue::Int(stats.dropped_node_died as u64),
        ),
        (
            "dropped_retries_exhausted",
            JsonValue::Int(stats.dropped_retries_exhausted as u64),
        ),
        ("makespan", JsonValue::Int(stats.makespan)),
        ("mean_latency", JsonValue::Num(stats.mean_latency)),
        ("p99_latency", JsonValue::Int(stats.p99_latency)),
        ("total_hops", JsonValue::Int(stats.total_hops)),
        ("throughput", JsonValue::Num(stats.throughput)),
        (
            "latency_histogram",
            JsonValue::Arr(
                stats
                    .latency_histogram
                    .iter()
                    .map(|&c| JsonValue::Int(c))
                    .collect(),
            ),
        ),
        (
            // Sparse `[bucket, count]` pairs of the streaming log₂
            // histogram — the only latency distribution present past
            // `DENSE_HISTOGRAM_NODE_LIMIT`, where the dense vector above
            // is empty.
            "latency_log2_buckets",
            JsonValue::Arr(
                stats
                    .latency_buckets
                    .buckets()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| {
                        JsonValue::Arr(vec![JsonValue::Int(i as u64), JsonValue::Int(c)])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The structured result of one [`Experiment`](crate::experiment::Experiment)
/// run: the configuration echo (so a report is self-describing), the
/// engine's [`SimStats`], and one JSON section per attached observer.
#[derive(Clone, Debug)]
pub struct Report {
    /// Topology name (`"Γ_16"`, `"Q_11"`, …).
    pub topology: String,
    /// Node count.
    pub nodes: usize,
    /// The requested [`RouterSpec`](crate::router::RouterSpec), as text.
    pub router_spec: String,
    /// The policy that actually ran (`"e-cube"`, `"canonical"`, …;
    /// `"fault-masked(adaptive)"` etc. on degraded runs).
    pub router: String,
    /// The workload spec in its canonical parseable form — a
    /// [`TrafficSpec`](crate::traffic::TrafficSpec), or the
    /// [`CollectiveSpec`](crate::collective::CollectiveSpec) when the
    /// experiment ran a collective.
    pub traffic: String,
    /// The [`SwitchingSpec`](crate::switching::SwitchingSpec) in its
    /// canonical parseable form (`"store_and_forward"` or
    /// `"wormhole(flit_size=…,vcs=…,buf_flits=…)"`). Collective
    /// experiments echo the spec but execute by packet replication
    /// regardless of it.
    pub switching: String,
    /// The [`FaultSpec`](crate::fault::FaultSpec) in its canonical
    /// parseable form, or `"none"` for a healthy run.
    pub faults: String,
    /// Node failures actually materialised from the fault spec.
    pub failed_nodes: usize,
    /// Link failures actually materialised from the fault spec.
    pub failed_links: usize,
    /// Traffic seed.
    pub seed: u64,
    /// Cycle cap (`u64::MAX` means "run until drained").
    pub max_cycles: u64,
    /// Aggregate simulation statistics.
    pub stats: SimStats,
    /// Completion-time/round statistics of the collective workload, when
    /// the experiment ran one (`None` for point-to-point traffic).
    pub collective: Option<CollectiveOutcome>,
    /// Named JSON sections contributed by the observers, in attachment
    /// order.
    pub sections: Vec<(String, JsonValue)>,
}

impl Report {
    /// The full report as a JSON tree.
    pub fn to_json_value(&self) -> JsonValue {
        let cap = if self.max_cycles == u64::MAX {
            JsonValue::Null
        } else {
            JsonValue::Int(self.max_cycles)
        };
        JsonValue::obj([
            ("topology", JsonValue::Str(self.topology.clone())),
            ("nodes", JsonValue::Int(self.nodes as u64)),
            ("router_spec", JsonValue::Str(self.router_spec.clone())),
            ("router", JsonValue::Str(self.router.clone())),
            ("traffic", JsonValue::Str(self.traffic.clone())),
            ("switching", JsonValue::Str(self.switching.clone())),
            ("faults", JsonValue::Str(self.faults.clone())),
            ("failed_nodes", JsonValue::Int(self.failed_nodes as u64)),
            ("failed_links", JsonValue::Int(self.failed_links as u64)),
            ("seed", JsonValue::Int(self.seed)),
            ("max_cycles", cap),
            ("stats", stats_to_json(&self.stats)),
            (
                "collective",
                match &self.collective {
                    Some(c) => c.to_json_value(),
                    None => JsonValue::Null,
                },
            ),
            ("observers", JsonValue::Obj(self.sections.clone())),
        ])
    }

    /// The full report as pretty-printed JSON (the `BENCH_sim.json`
    /// format).
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }
}

impl fmt::Display for Report {
    /// A one-paragraph human summary (the JSON form carries the detail).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} · {} · {}: delivered {}/{} in {} cycles, mean latency {:.2}, p99 {}, throughput {:.3}",
            self.topology,
            self.router,
            self.traffic,
            self.stats.delivered,
            self.stats.offered,
            self.stats.makespan,
            self.stats.mean_latency,
            self.stats.p99_latency,
            self.stats.throughput
        )?;
        if self.stats.dropped() > 0 {
            write!(
                f,
                ", dropped {} (dead endpoint {}, unreachable {}, link died {}, node died {}, \
                 retries exhausted {}) under faults {}",
                self.stats.dropped(),
                self.stats.dropped_dead_endpoint,
                self.stats.dropped_unreachable,
                self.stats.dropped_link_died,
                self.stats.dropped_node_died,
                self.stats.dropped_retries_exhausted,
                self.faults
            )?;
        }
        if let Some(c) = &self.collective {
            write!(
                f,
                ", collective reached {}/{} targets in {} cycles",
                c.reached, c.targets, c.completion_cycles
            )?;
            if let Some(r) = c.schedule_rounds {
                write!(f, " (static schedule: {r} rounds)")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_json_escapes_and_formats() {
        let v = JsonValue::obj([
            ("name", JsonValue::Str("Γ_8 \"quoted\"\n".into())),
            ("count", JsonValue::Int(42)),
            ("rate", JsonValue::Num(0.25)),
            ("bad", JsonValue::Num(f64::NAN)),
            ("flag", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "arr",
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
            ("empty", JsonValue::Arr(vec![])),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"name\": \"Γ_8 \\\"quoted\\\"\\n\", \"count\": 42, \"rate\": 0.25, \
             \"bad\": null, \"flag\": true, \"none\": null, \"arr\": [1, 2], \"empty\": []}"
        );
    }

    #[test]
    fn pretty_json_indents_and_terminates() {
        let v = JsonValue::obj([("a", JsonValue::Arr(vec![JsonValue::Int(1)]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn stats_json_carries_the_histogram() {
        let mut buckets = crate::simulator::LogHistogram::new();
        buckets.record(1);
        buckets.record(3);
        let stats = SimStats {
            offered: 3,
            delivered: 2,
            dropped_dead_endpoint: 1,
            dropped_unreachable: 0,
            dropped_link_died: 0,
            dropped_node_died: 0,
            dropped_retries_exhausted: 0,
            makespan: 7,
            mean_latency: 3.5,
            latency_histogram: vec![0, 1, 0, 1],
            latency_buckets: buckets,
            p99_latency: 3,
            total_hops: 7,
            throughput: 2.0 / 7.0,
        };
        let json = stats_to_json(&stats).to_string();
        assert!(
            json.contains("\"latency_histogram\": [0, 1, 0, 1]"),
            "{json}"
        );
        assert!(
            json.contains("\"latency_log2_buckets\": [[1, 1], [2, 1]]"),
            "{json}"
        );
        assert!(json.contains("\"delivered\": 2"), "{json}");
        assert!(json.contains("\"dropped_dead_endpoint\": 1"), "{json}");
        assert!(json.contains("\"dropped_unreachable\": 0"), "{json}");
    }
}
