//! Delivery statistics shared by every engine variant: the public
//! [`SimStats`] record, the streaming [`LogHistogram`], and the
//! crate-internal `StatsAcc` accumulator. Everything the accumulator
//! records is integer-valued (counts, latency sums, hop counts,
//! max-makespan), so per-shard accumulators merge **exactly** — the
//! property the sharded parallel engine's bit-identical guarantee rests
//! on. The derived floats (mean, throughput) are computed once, in
//! `StatsAcc::finish`, from the merged integers.

/// Why a packet was dropped instead of delivered — the typed accounting
/// behind the `dropped_*` fields of [`SimStats`] and the
/// [`on_drop`](crate::observer::SimObserver::on_drop) observer hook.
/// Drops only happen on degraded runs
/// ([`simulate_faulted`](crate::simulate_faulted) or churned runs);
/// the healthy engine never drops. The first two reasons are
/// injection-time verdicts; the `LinkDied`/`NodeDied` reasons hit
/// packets already in flight when a churn event removes the link or
/// node holding them, and `RetriesExhausted` is the closed-loop
/// session giving up on a request after its retry budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The packet's source or destination node failed.
    DeadEndpoint,
    /// Both endpoints survive, but the faults disconnect them.
    Unreachable,
    /// The packet was queued on a link that failed mid-run.
    LinkDied,
    /// The packet was queued on (or addressed to) a node that failed
    /// mid-run.
    NodeDied,
    /// A closed-loop request exhausted its retry budget without a reply
    /// ([`TrafficSpec::RequestReply`](crate::traffic::TrafficSpec)).
    RetriesExhausted,
}

/// Aggregate results of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimStats {
    /// Packets handed to the simulator.
    pub offered: usize,
    /// Packets delivered before the cycle cap.
    pub delivered: usize,
    /// Packets dropped at injection because their source or destination
    /// node failed (degraded runs only).
    pub dropped_dead_endpoint: usize,
    /// Packets dropped at injection because the faults disconnect their
    /// (surviving) endpoints (degraded runs only).
    pub dropped_unreachable: usize,
    /// Packets caught in flight on a link a churn event failed.
    pub dropped_link_died: usize,
    /// Packets caught in flight on (or addressed to) a node a churn
    /// event failed.
    pub dropped_node_died: usize,
    /// Closed-loop requests abandoned after their retry budget
    /// ([`DropReason::RetriesExhausted`]).
    pub dropped_retries_exhausted: usize,
    /// Cycle at which the last packet was delivered (0 when none).
    pub makespan: u64,
    /// Mean end-to-end latency (inject → arrival) of delivered packets.
    pub mean_latency: f64,
    /// Exact latency histogram: `hist[l]` = packets delivered with
    /// latency `l`. Kept only up to [`DENSE_HISTOGRAM_NODE_LIMIT`] nodes
    /// — empty (not truncated) beyond it, where the streaming
    /// [`latency_buckets`](SimStats::latency_buckets) carry the
    /// distribution in constant space.
    pub latency_histogram: Vec<u64>,
    /// Streaming log₂-bucketed latency histogram — always populated, the
    /// scale-safe view of the latency distribution.
    pub latency_buckets: LogHistogram,
    /// 99th-percentile latency. Exact below
    /// [`DENSE_HISTOGRAM_NODE_LIMIT`] nodes; the log-bucket upper bound
    /// beyond.
    pub p99_latency: u64,
    /// Total packet-hops transmitted (link utilisation numerator).
    pub total_hops: u64,
    /// Delivered packets per cycle (throughput).
    pub throughput: f64,
}

impl SimStats {
    /// Total typed drops. Packet conservation reads
    /// `offered == delivered + dropped() + still-in-flight`, where the
    /// in-flight remainder is nonzero only when the cycle cap truncated
    /// the run.
    pub fn dropped(&self) -> usize {
        self.dropped_dead_endpoint
            + self.dropped_unreachable
            + self.dropped_link_died
            + self.dropped_node_died
            + self.dropped_retries_exhausted
    }
}

/// Node count past which the engines stop keeping the dense per-latency
/// histogram (which grows with the observed max latency) and rely on the
/// constant-space [`LogHistogram`] instead. 64 Ki nodes keeps every
/// shipped small/medium topology byte-identical to the seed while the
/// million-node scale runs stay `O(1)` in histogram memory.
pub const DENSE_HISTOGRAM_NODE_LIMIT: usize = 65_536;

/// Streaming log₂-bucketed latency histogram: 64 fixed buckets, `O(1)`
/// record, 512 bytes total — the memory-lean companion to the exact
/// [`SimStats::latency_histogram`]. Bucket `i` counts deliveries with
/// latency in `[2^i − 1, 2^{i+1} − 2]` (bucket 0 is exactly latency 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 64],
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram { buckets: [0; 64] }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one delivery at `lat` cycles.
    #[inline]
    pub fn record(&mut self, lat: u64) {
        // lat + 1 ∈ [2^i, 2^{i+1}) ⇒ bucket i; lat = u64::MAX saturates
        // into the top bucket rather than wrapping.
        let i = 63 - lat.saturating_add(1).leading_zeros() as usize;
        self.buckets[i] += 1;
    }

    /// Adds every count of `other` into `self` — the exact bucketwise
    /// sum, so sharded accumulators merge without loss.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// The 64 bucket counts.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Inclusive latency range `[lo, hi]` covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        assert!(i < 64);
        let lo = (1u64 << i) - 1;
        let hi = if i == 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 2
        };
        (lo, hi)
    }

    /// Total recorded deliveries.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 for the
    /// empty histogram) — the scale-mode stand-in for an exact
    /// percentile, never below the true value.
    pub fn percentile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let threshold = (total as f64 * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= threshold {
                return LogHistogram::bucket_range(i).1;
            }
        }
        LogHistogram::bucket_range(63).1
    }
}

/// Accumulates delivery statistics shared by all engines. Everything in
/// here is an exact integer, so two accumulators over disjoint packet
/// sets merge ([`StatsAcc::merge`]) into precisely the accumulator one
/// serial run would have produced.
#[derive(Default)]
pub(crate) struct StatsAcc {
    pub(crate) delivered: usize,
    pub(crate) dropped_dead_endpoint: usize,
    pub(crate) dropped_unreachable: usize,
    pub(crate) dropped_link_died: usize,
    pub(crate) dropped_node_died: usize,
    pub(crate) dropped_retries_exhausted: usize,
    pub(crate) total_latency: u64,
    pub(crate) hist: Vec<u64>,
    pub(crate) buckets: LogHistogram,
    /// Keep the dense per-latency vector? Off past
    /// [`DENSE_HISTOGRAM_NODE_LIMIT`] nodes.
    pub(crate) dense: bool,
    pub(crate) total_hops: u64,
    pub(crate) makespan: u64,
}

impl StatsAcc {
    /// Accumulator sized for an `n`-node network: the dense histogram is
    /// kept only below [`DENSE_HISTOGRAM_NODE_LIMIT`].
    pub(crate) fn for_network(n: usize) -> StatsAcc {
        StatsAcc {
            dense: n <= DENSE_HISTOGRAM_NODE_LIMIT,
            ..StatsAcc::default()
        }
    }

    /// Counts one typed drop under its matching statistic.
    pub(crate) fn drop_packet(&mut self, reason: DropReason) {
        match reason {
            DropReason::DeadEndpoint => self.dropped_dead_endpoint += 1,
            DropReason::Unreachable => self.dropped_unreachable += 1,
            DropReason::LinkDied => self.dropped_link_died += 1,
            DropReason::NodeDied => self.dropped_node_died += 1,
            DropReason::RetriesExhausted => self.dropped_retries_exhausted += 1,
        }
    }

    pub(crate) fn deliver(&mut self, now: u64, inject_time: u64) {
        self.delivered += 1;
        let lat = now - inject_time;
        self.total_latency += lat;
        if self.dense {
            bump(&mut self.hist, lat);
        }
        self.buckets.record(lat);
        self.makespan = self.makespan.max(now);
    }

    /// Records a whole cycle's deliveries at once: `lats` are the
    /// end-to-end latencies of every packet delivered at cycle `now`.
    /// The count/sum/bucket updates run as separate chunked passes over
    /// the slice (each a simple reduction the compiler can vectorize)
    /// instead of one interleaved per-packet update — the parallel
    /// engine's commit phase batches its latency accounting through
    /// here. Equivalent to calling [`StatsAcc::deliver`] once per entry.
    pub(crate) fn deliver_batch(&mut self, now: u64, lats: &[u64]) {
        if lats.is_empty() {
            return;
        }
        self.delivered += lats.len();
        self.total_latency += lats.iter().sum::<u64>();
        if self.dense {
            for &lat in lats {
                bump(&mut self.hist, lat);
            }
        }
        for &lat in lats {
            self.buckets.record(lat);
        }
        self.makespan = self.makespan.max(now);
    }

    /// A self-addressed packet: delivered at latency 0 without touching
    /// the makespan (it never occupied a link — seed semantics).
    pub(crate) fn deliver_instant(&mut self) {
        self.delivered += 1;
        if self.dense {
            bump(&mut self.hist, 0);
        }
        self.buckets.record(0);
    }

    /// Folds `other` into `self`: the exact integer merge of two
    /// accumulators over disjoint packet sets. Counts and sums add, the
    /// histograms add bucketwise, the makespan takes the max — so
    /// merging per-shard accumulators in any order reproduces the serial
    /// accumulator bit for bit.
    pub(crate) fn merge(&mut self, other: StatsAcc) {
        self.delivered += other.delivered;
        self.dropped_dead_endpoint += other.dropped_dead_endpoint;
        self.dropped_unreachable += other.dropped_unreachable;
        self.dropped_link_died += other.dropped_link_died;
        self.dropped_node_died += other.dropped_node_died;
        self.dropped_retries_exhausted += other.dropped_retries_exhausted;
        self.total_latency += other.total_latency;
        if self.hist.len() < other.hist.len() {
            self.hist.resize(other.hist.len(), 0);
        }
        for (lat, c) in other.hist.into_iter().enumerate() {
            self.hist[lat] += c;
        }
        self.buckets.merge(&other.buckets);
        self.total_hops += other.total_hops;
        self.makespan = self.makespan.max(other.makespan);
    }

    pub(crate) fn finish(self, offered: usize) -> SimStats {
        let mean_latency = if self.delivered > 0 {
            self.total_latency as f64 / self.delivered as f64
        } else {
            0.0
        };
        let p99 = if self.dense {
            percentile(&self.hist, 0.99)
        } else {
            self.buckets.percentile_upper_bound(0.99)
        };
        let throughput = if self.makespan > 0 {
            self.delivered as f64 / self.makespan as f64
        } else {
            self.delivered as f64
        };
        SimStats {
            offered,
            delivered: self.delivered,
            dropped_dead_endpoint: self.dropped_dead_endpoint,
            dropped_unreachable: self.dropped_unreachable,
            dropped_link_died: self.dropped_link_died,
            dropped_node_died: self.dropped_node_died,
            dropped_retries_exhausted: self.dropped_retries_exhausted,
            makespan: self.makespan,
            mean_latency,
            latency_histogram: self.hist,
            latency_buckets: self.buckets,
            p99_latency: p99,
            total_hops: self.total_hops,
            throughput,
        }
    }
}

pub(crate) fn bump(hist: &mut Vec<u64>, lat: u64) {
    let lat = lat as usize;
    if hist.len() <= lat {
        hist.resize(lat + 1, 0);
    }
    hist[lat] += 1;
}

pub(crate) fn percentile(hist: &[u64], q: f64) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil() as u64;
    let mut acc = 0u64;
    for (lat, &c) in hist.iter().enumerate() {
        acc += c;
        if acc >= target {
            return lat as u64;
        }
    }
    hist.len() as u64 - 1
}
