//! The store-and-forward lane: the per-lane arena state ([`Core`]) and
//! the [`ReplicationPolicy`] workloads (unicast, collective) that
//! specialize the unified stepper ([`super::stepper`]) into every
//! packet-switched engine variant. The historical `simulate_*` entry
//! points are [`Solo`] (one-lane) monomorphizations of [`run_core`];
//! the sharded entry points build one [`SafLane`] per node shard and
//! drive the **same** stage methods under the pooled protocol.

use fibcube_graph::csr::CsrGraph;

use crate::arena::{LinkQueues, PacketSlab, NO_COPY};
use crate::collective::CopyPlan;
use crate::observer::SimObserver;
use crate::router::{LinkLoad, NextHopTable, Router};
use crate::topology::Topology;
use crate::traffic::Packet;

use super::parallel::run_pool;
use super::policy::{FaultPolicy, ReplicationPolicy};
use super::stats::{DropReason, SimStats, StatsAcc};
use super::stepper::{lane_bounds, run_lane, LaneWorkload, Solo};

/// Occupancy view of one node's output links, handed to adaptive routers:
/// a window into the [`LinkQueues`] occupancy column.
pub(crate) struct NodeLoad<'a> {
    pub(crate) loads: &'a [u32],
    pub(crate) base: usize,
}

impl LinkLoad for NodeLoad<'_> {
    fn load(&self, slot: usize) -> usize {
        self.loads[self.base + slot] as usize
    }
}

/// How the engine resolves each hop: a dense precomputed table (one load
/// per hop) or per-hop policy calls (live link-load view plus a slot
/// search in the node's neighbor list — a couple of compares in one
/// already-hot cache line, which beats any big-table lookup here).
/// `Copy`, so every lane of a sharded run borrows the same plan.
pub(crate) enum Routing<'t, R: ?Sized> {
    Table(&'t NextHopTable),
    PerHop(&'t R),
}

impl<R: ?Sized> Clone for Routing<'_, R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R: ?Sized> Copy for Routing<'_, R> {}

/// The owned result of [`routing_for`]: holds the tabulated next-hop
/// table (when one is built) so the per-lane [`Routing`] views can all
/// borrow it.
pub(crate) enum RoutingPlan<'t, R: ?Sized> {
    Table(NextHopTable),
    PerHop(&'t R),
}

impl<'t, R: ?Sized> RoutingPlan<'t, R> {
    pub(crate) fn as_ref(&self) -> Routing<'_, R> {
        match self {
            RoutingPlan::Table(t) => Routing::Table(t),
            RoutingPlan::PerHop(r) => Routing::PerHop(r),
        }
    }
}

/// Picks the routing path for one run: tabulate when the expected number
/// of route lookups (≈ `packets × diameter/2`, a proxy for packets ×
/// average distance) amortises the `O(n²)` table build *and* the policy
/// can be tabulated at all. See [`NextHopTable`] for the trade-off.
/// Sharded runs call this **once** (with the global packet count) so
/// every lane takes the same path the serial engine would.
pub(crate) fn routing_for<'t, T, R>(
    topology: &T,
    router: &'t R,
    packets: usize,
) -> RoutingPlan<'t, R>
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
{
    let g = topology.graph();
    let n = g.num_vertices() as u64;
    let lookups = (packets as u64).saturating_mul((topology.diameter_bound() as u64 / 2).max(1));
    if lookups >= n.saturating_mul(n) {
        if let Some(table) = router.precompute(g) {
            return RoutingPlan::Table(table);
        }
    }
    RoutingPlan::PerHop(router)
}

/// Resolves the output edge for one hop — [`Core::route_and_enqueue`]'s
/// routing half, shared with the wormhole engine (which reserves buffers
/// instead of enqueuing packets). `loads` is the caller's link-load
/// column indexed from global edge `edge_lo` (0 for a whole-network
/// view); the returned edge id is global.
#[inline]
pub(crate) fn route_edge<R: Router + ?Sized>(
    g: &CsrGraph,
    routing: Routing<'_, R>,
    loads: &[u32],
    edge_lo: usize,
    node: u32,
    dst: u32,
) -> usize {
    match routing {
        Routing::Table(table) => table
            .next_edge(node, dst)
            .expect("routing a packet not yet at dst"),
        Routing::PerHop(router) => {
            let base = g.edge_range(node).start;
            let hop = {
                let load = NodeLoad {
                    loads,
                    base: base - edge_lo,
                };
                router
                    .next_hop(node, dst, &load)
                    .expect("routing a packet not yet at dst")
            };
            base + g
                .slot_of(node, hop)
                .expect("next_hop must return a neighbor")
        }
    }
}

/// One cross-lane effect of the store-and-forward stepper: a packet
/// crossing a link, committed at the far end at the `cycle + 1`
/// boundary. Two fields are workload-overloaded so the message stays
/// one cache-line-quarter wide: the request/reply workload carries its
/// transaction id in `inject`, its attempt number in `hops`, and its
/// session tag in `tag` (unused and zero everywhere else).
#[derive(Clone, Copy, Debug)]
pub struct SafMsg {
    /// Arrival node (the popped link's target).
    pub(crate) node: u32,
    /// Final destination (unicast) / tree child (collective).
    pub(crate) dst: u32,
    /// Injection cycle — or the transaction id (request/reply).
    pub(crate) inject: u64,
    /// Cumulative hop count — or the attempt number (request/reply).
    pub(crate) hops: u32,
    /// Session id | reply bit (request/reply); zero otherwise.
    pub(crate) tag: u32,
}

/// One lane's mutable arena state: the packet slab, this lane's window
/// of the link-FIFO arena, the per-node occupancy counters and
/// occupied-slot bitmasks, the active worklist, the statistics
/// accumulator, and the lane's observer (the caller's `&mut O` in a
/// serial run, a fork in a sharded one). A serial engine is exactly one
/// `Core` spanning `[0, n)`; a sharded engine is `k` of them over
/// contiguous node shards. The fields are crate-internal; the struct is
/// public so the [`ReplicationPolicy`] stage signatures can name it.
pub struct Core<'g, O: SimObserver> {
    pub(crate) g: &'g CsrGraph,
    /// This lane owns nodes `[lo, hi)` and their output edges
    /// `[edge_lo, ..)` — all node/edge-indexed columns below are local
    /// to that window.
    pub(crate) lo: u32,
    pub(crate) hi: u32,
    pub(crate) edge_lo: usize,
    pub(crate) slab: PacketSlab,
    pub(crate) queues: LinkQueues,
    /// Queued packets per owned node (drives the active worklist).
    pub(crate) occupancy: Vec<u32>,
    /// Per-node bitmask of output slots holding packets, so the forward
    /// phase pops exactly the occupied queues (a `trailing_zeros` word
    /// walk) instead of probing every out-edge of every active node.
    /// Empty (disabled — the forward phase falls back to the plain edge
    /// scan) in the off-design case of degrees above 64.
    pub(crate) slot_mask: Vec<u64>,
    pub(crate) on_list: Vec<bool>,
    pub(crate) active: Vec<u32>,
    pub(crate) next_active: Vec<u32>,
    pub(crate) observer: O,
    pub(crate) acc: StatsAcc,
    /// Packets currently queued on this lane — the lane's share of the
    /// global in-flight count the stepper's drain check sums.
    pub(crate) queued: u64,
    /// Latencies delivered this cycle, batch-accounted at `end_cycle`
    /// through [`StatsAcc::deliver_batch`].
    pub(crate) lat_scratch: Vec<u64>,
}

impl<'g, O: SimObserver> Core<'g, O> {
    pub(crate) fn new(g: &'g CsrGraph, n: usize, lo: u32, hi: u32, observer: O) -> Core<'g, O> {
        let local = (hi - lo) as usize;
        let (edge_lo, edge_hi) = if hi > lo {
            (g.edge_range(lo).start, g.edge_range(hi - 1).end)
        } else {
            (0, 0)
        };
        let masked_scan = g.max_degree() <= 64;
        Core {
            g,
            lo,
            hi,
            edge_lo,
            slab: PacketSlab::new(),
            queues: LinkQueues::new(edge_hi - edge_lo),
            occupancy: vec![0u32; local],
            slot_mask: vec![0; if masked_scan { local } else { 0 }],
            on_list: vec![false; local],
            active: Vec::new(),
            next_active: Vec::new(),
            observer,
            acc: StatsAcc::for_network(n),
            queued: 0,
            lat_scratch: Vec::new(),
        }
    }

    /// Does this lane own node `v`?
    #[inline]
    pub(crate) fn owns(&self, v: u32) -> bool {
        self.lo <= v && v < self.hi
    }

    /// Adds owned node `u` to the current cycle's worklist if absent.
    #[inline]
    pub(crate) fn worklist_add(&mut self, u: u32) {
        let li = (u - self.lo) as usize;
        if !self.on_list[li] {
            self.on_list[li] = true;
            self.active.push(u);
        }
    }

    /// Routes packet `id` at owned node `node`, enqueues it on the
    /// chosen output link, and fixes the occupancy/bitmask/worklist
    /// bookkeeping — the one mutation path shared by the injection and
    /// arrival-commit stages.
    #[inline]
    pub(crate) fn route_and_enqueue<R: Router + ?Sized>(
        &mut self,
        routing: Routing<'_, R>,
        node: u32,
        id: u32,
        dst: u32,
    ) {
        let base = self.g.edge_range(node).start;
        let e = route_edge(
            self.g,
            routing,
            self.queues.loads(),
            self.edge_lo,
            node,
            dst,
        );
        self.enqueue(node, base, e, id);
    }

    /// Enqueues packet `id` directly on the directed edge `e` out of
    /// owned node `node` — the collective path, where the next-copy
    /// table already names the edge and no routing policy is consulted.
    #[inline]
    pub(crate) fn enqueue_on_edge(&mut self, node: u32, e: usize, id: u32) {
        let base = self.g.edge_range(node).start;
        self.enqueue(node, base, e, id);
    }

    #[inline]
    fn enqueue(&mut self, node: u32, base: usize, e: usize, id: u32) {
        self.queues.push(e - self.edge_lo, id);
        let li = (node - self.lo) as usize;
        if let Some(mask) = self.slot_mask.get_mut(li) {
            *mask |= 1u64 << (e - base);
        }
        self.occupancy[li] += 1;
        self.queued += 1;
        self.worklist_add(node);
    }

    /// Records one delivery at owned node `node`: the observer event
    /// now, the latency batched for `end_cycle`'s
    /// [`StatsAcc::deliver_batch`].
    #[inline]
    pub(crate) fn deliver(&mut self, now: u64, node: u32, latency: u64) {
        self.observer.on_deliver(now, node, latency);
        self.lat_scratch.push(latency);
    }

    /// Batch-accounts the cycle's delivered latencies.
    #[inline]
    pub(crate) fn flush_latencies(&mut self, now: u64) {
        if !self.lat_scratch.is_empty() {
            let lats = std::mem::take(&mut self.lat_scratch);
            self.acc.deliver_batch(now, &lats);
            self.lat_scratch = lats;
            self.lat_scratch.clear();
        }
    }

    /// Drains the FIFO of directed edge `e` out of owned node `node` as
    /// typed drops (or silent losses for the closed loop), fixing the
    /// occupancy and slot-mask bookkeeping — the churn engine's
    /// event-commit stage.
    pub(crate) fn flush_directed_edge(
        &mut self,
        node: u32,
        e: usize,
        cycle: u64,
        reason: DropReason,
        silent: bool,
    ) {
        let li = (node - self.lo) as usize;
        while let Some(id) = self.queues.pop(e - self.edge_lo) {
            self.occupancy[li] -= 1;
            self.queued -= 1;
            let dst = self.slab.dst(id);
            if !silent {
                self.acc.drop_packet(reason);
                self.observer.on_drop(cycle, node, dst, reason);
            }
            self.slab.release(id);
        }
        let base = self.g.edge_range(node).start;
        if let Some(mask) = self.slot_mask.get_mut(li) {
            *mask &= !(1u64 << (e - base));
        }
    }
}

/// One store-and-forward lane: the arena state plus the workload's
/// policy hooks, wired into the unified stepper. Serial runs use one
/// lane over `[0, n)` under [`Solo`]; sharded runs use `k` of them
/// under the pooled protocol — the same monomorphized stage code
/// either way.
pub(crate) struct SafLane<'g, O: SimObserver, W> {
    pub(crate) core: Core<'g, O>,
    pub(crate) workload: W,
}

impl<O: SimObserver, W: ReplicationPolicy<O>> LaneWorkload for SafLane<'_, O, W> {
    type Msg = SafMsg;

    #[inline]
    fn queued(&self) -> u64 {
        self.core.queued
    }

    #[inline]
    fn next_pending(&mut self) -> Option<u64> {
        self.workload.next_pending()
    }

    fn begin(&mut self, cycle: u64) {
        self.workload.commit_events(cycle, &mut self.core);
        self.workload.inject(cycle, &mut self.core);
    }

    /// The forward scan: each directed link of an active owned node
    /// moves one packet, ascending node and edge order — so the
    /// concatenation of lane outboxes in lane order is exactly the
    /// serial engine's pop order. On masked-scan networks the occupied
    /// slots are visited by a `u64` `trailing_zeros` word walk.
    fn propose(&mut self, cycle: u64, out: &mut Vec<SafMsg>) {
        let core = &mut self.core;
        let w = &mut self.workload;
        core.active.sort_unstable();
        let masked = !core.slot_mask.is_empty();
        for i in 0..core.active.len() {
            let u = core.active[i];
            let li = (u - core.lo) as usize;
            core.on_list[li] = false;
            let base = core.g.edge_range(u).start;
            if masked {
                // Visit only the occupied slots, lowest slot first —
                // the same order the plain scan forwards in.
                let mut mask = core.slot_mask[li];
                let mut remaining = mask;
                while remaining != 0 {
                    let slot = remaining.trailing_zeros() as usize;
                    remaining &= remaining - 1;
                    let e = base + slot;
                    let id = core
                        .queues
                        .pop(e - core.edge_lo)
                        .expect("mask bit implies a queued packet");
                    if core.queues.load(e - core.edge_lo) == 0 {
                        mask &= !(1u64 << slot);
                    }
                    pop_step(core, w, cycle, u, li, e, id, out);
                }
                core.slot_mask[li] = mask;
            } else {
                for e in core.g.edge_range(u) {
                    if let Some(id) = core.queues.pop(e - core.edge_lo) {
                        pop_step(core, w, cycle, u, li, e, id, out);
                    }
                }
            }
            if core.occupancy[li] > 0 {
                core.on_list[li] = true;
                core.next_active.push(u);
            }
        }
        core.active.clear();
        std::mem::swap(&mut core.active, &mut core.next_active);
    }

    #[inline]
    fn commit(&mut self, now: u64, msg: &SafMsg) {
        self.workload.commit(now, msg, &mut self.core);
    }

    fn end_cycle(&mut self, now: u64) {
        self.workload.end_cycle(now, &mut self.core);
        self.core.flush_latencies(now);
    }

    #[inline]
    fn observe(&mut self, cycle: u64, in_flight: u64) {
        self.core.observer.on_cycle_end(cycle, in_flight as usize);
    }
}

/// One popped packet: the hop event, the outbox message (with the
/// workload's `depart` hook filling workload-specific fields), and the
/// pop-side bookkeeping. The packet's slab slot is released here — the
/// committing lane re-allocates on arrival, with the cumulative hop
/// count riding in the message.
#[allow(clippy::too_many_arguments)]
#[inline]
fn pop_step<O: SimObserver, W: ReplicationPolicy<O>>(
    core: &mut Core<'_, O>,
    w: &mut W,
    cycle: u64,
    u: u32,
    li: usize,
    e: usize,
    id: u32,
    out: &mut Vec<SafMsg>,
) {
    let v = core.g.target(e);
    core.observer.on_hop(cycle, u, v, e);
    let mut msg = SafMsg {
        node: v,
        dst: core.slab.dst(id),
        inject: core.slab.inject(id),
        hops: core.slab.hops(id) + 1,
        tag: 0,
    };
    w.depart(u, id, &core.slab, &mut msg);
    core.slab.release(id);
    core.occupancy[li] -= 1;
    core.queued -= 1;
    core.acc.total_hops += 1;
    out.push(msg);
}

/// Runs one whole-network lane of `workload` through the unified
/// stepper — the serial store-and-forward engine. Returns the finished
/// stats and the workload (which may carry run outputs, e.g. the
/// collective's reached-target tally).
pub(crate) fn run_core<T, O, W>(
    topology: &T,
    offered: usize,
    max_cycles: u64,
    observer: O,
    workload: W,
) -> (SimStats, W)
where
    T: Topology + ?Sized,
    O: SimObserver,
    W: ReplicationPolicy<O>,
{
    let n = topology.len();
    let mut lane = SafLane {
        core: Core::new(topology.graph(), n, 0, n as u32, observer),
        workload,
    };
    run_lane(&mut lane, &Solo::default(), 0, max_cycles);
    (lane.core.acc.finish(offered), lane.workload)
}

/// Runs `make_workload(lo, hi)`-built lanes of a store-and-forward
/// workload across `threads` lanes of the pooled stepper, forking the
/// observer per lane and merging accumulators and observer forks back
/// in ascending lane order. Returns the finished stats and the lane
/// workloads (lane order).
///
/// # Panics
///
/// Panics if `observer` does not support forking
/// ([`SimObserver::fork`] returns `None`); the experiment layer
/// pre-checks and reports a typed error instead.
pub(crate) fn run_core_pool<T, O, W, F>(
    topology: &T,
    offered: usize,
    max_cycles: u64,
    observer: &mut O,
    threads: usize,
    mut make_workload: F,
) -> (SimStats, Vec<W>)
where
    T: Topology + ?Sized,
    O: SimObserver + Send,
    W: ReplicationPolicy<O> + Send,
    F: FnMut(u32, u32) -> W,
{
    let n = topology.len();
    let g = topology.graph();
    let lanes: Vec<SafLane<'_, O, W>> = lane_bounds(n, threads)
        .into_iter()
        .map(|(lo, hi)| SafLane {
            core: Core::new(g, n, lo, hi, fork_observer(observer)),
            workload: make_workload(lo, hi),
        })
        .collect();
    let lanes = run_pool(lanes, max_cycles);
    let mut acc: Option<StatsAcc> = None;
    let mut workloads = Vec::with_capacity(lanes.len());
    for lane in lanes {
        observer.merge(lane.core.observer);
        match &mut acc {
            None => acc = Some(lane.core.acc),
            Some(a) => a.merge(lane.core.acc),
        }
        workloads.push(lane.workload);
    }
    (acc.expect("at least one lane").finish(offered), workloads)
}

/// Forks `observer` for one lane of a sharded run, with the engine's
/// documented panic on observers that opted out of sharding.
pub(crate) fn fork_observer<O: SimObserver>(observer: &O) -> O {
    observer.fork().expect(
        "this observer does not implement SimObserver::fork/merge; \
         it cannot attach to a sharded run (use threads = 1)",
    )
}

/// The unicast workload: time-sorted injection with admission control,
/// policy routing at every hop, delivery at the destination. A lane
/// injects only the packets sourced in its node range.
pub(crate) struct Unicast<'p, 't, 'f, R: Router + ?Sized, F: FaultPolicy> {
    inj: Vec<&'p Packet>,
    next_inject: usize,
    routing: Routing<'t, R>,
    admission: &'f F,
}

impl<'p, 't, 'f, R: Router + ?Sized, F: FaultPolicy> Unicast<'p, 't, 'f, R, F> {
    /// The lane-restricted injection list: `packets` with `src` in
    /// `[lo, hi)`, time-sorted (stable, so same-cycle packets keep
    /// their generation order — the serial order restricted to the
    /// lane).
    pub(crate) fn for_range(
        routing: Routing<'t, R>,
        packets: &'p [Packet],
        lo: u32,
        hi: u32,
        admission: &'f F,
    ) -> Unicast<'p, 't, 'f, R, F> {
        let mut inj: Vec<&Packet> = packets
            .iter()
            .filter(|p| lo <= p.src && p.src < hi)
            .collect();
        inj.sort_by_key(|p| p.inject_time);
        Unicast {
            inj,
            next_inject: 0,
            routing,
            admission,
        }
    }
}

impl<O, R, F> ReplicationPolicy<O> for Unicast<'_, '_, '_, R, F>
where
    O: SimObserver,
    R: Router + ?Sized,
    F: FaultPolicy,
{
    #[inline]
    fn next_pending(&mut self) -> Option<u64> {
        self.inj.get(self.next_inject).map(|p| p.inject_time)
    }

    fn inject(&mut self, cycle: u64, core: &mut Core<'_, O>) {
        while self.next_inject < self.inj.len() && self.inj[self.next_inject].inject_time <= cycle {
            let p = self.inj[self.next_inject];
            self.next_inject += 1;
            core.observer.on_inject(cycle, p.src, p.dst);
            if let Some(reason) = self.admission.verdict(p.src, p.dst) {
                core.acc.drop_packet(reason);
                core.observer.on_drop(cycle, p.src, p.dst, reason);
                continue;
            }
            if p.src == p.dst {
                // Degenerate: counts as instantly delivered.
                core.acc.deliver_instant();
                core.observer.on_deliver(cycle, p.dst, 0);
                continue;
            }
            let id = core.slab.alloc(p.dst, p.inject_time);
            core.route_and_enqueue(self.routing, p.src, id, p.dst);
        }
    }

    fn commit(&mut self, now: u64, msg: &SafMsg, core: &mut Core<'_, O>) {
        if !core.owns(msg.node) {
            return;
        }
        if msg.node == msg.dst {
            debug_assert!(
                msg.hops as u64 <= now - msg.inject,
                "hops can never exceed latency"
            );
            core.deliver(now, msg.node, now - msg.inject);
        } else {
            let id = core.slab.alloc(msg.dst, msg.inject);
            core.slab.set_hops(id, msg.hops);
            core.route_and_enqueue(self.routing, msg.node, id, msg.dst);
        }
    }
}

/// The one-port/all-port first-children slice of `u`'s plan edges: all
/// of them at once (all-port) or just the first (one-port — the rest
/// chain through the slab's next-copy column).
fn first_children(plan: &CopyPlan, u: u32) -> std::ops::Range<usize> {
    let range = plan.children_range(u);
    if plan.one_port() {
        range.start..range.end.min(range.start + 1)
    } else {
        range
    }
}

/// Spawns the copy of plan edge `idx` at its parent `u` (owned by the
/// calling lane): allocates the packet in the slab (chaining the next
/// sibling in one-port mode), reports the injection, and enqueues it on
/// the tree edge the plan resolved at compile time. Shared by the
/// cycle-0 source prelude, the replicate-on-delivery path, and the
/// one-port sibling chain.
#[inline]
fn spawn_copy<O: SimObserver>(
    plan: &CopyPlan,
    core: &mut Core<'_, O>,
    cycle: u64,
    u: u32,
    idx: usize,
) {
    let child = plan.child(idx);
    let id = core.slab.alloc(child, cycle);
    if plan.one_port() && idx + 1 < plan.children_range(u).end {
        core.slab.set_next_copy(id, (idx + 1) as u32);
    }
    core.observer.on_inject(cycle, u, child);
    core.enqueue_on_edge(u, plan.edge(idx), id);
}

/// The collective workload: packets are **replicated at intermediate
/// nodes** along a [`CopyPlan`] tree instead of routed end to end. Every
/// copy travels exactly one tree edge; a delivery informs the receiving
/// node, which spawns its own children (all at once, or chained one per
/// cycle in one-port mode). Sharded, every spawn happens at the lane
/// that owns the spawning node — the prelude at the source's lane, the
/// replication fan-out at the arrival-committing lane.
pub(crate) struct Replicate<'p> {
    plan: &'p CopyPlan,
    started: bool,
    /// One-port sibling spawns, deferred past the forward phase so a
    /// follow-up copy never departs in the cycle its predecessor did.
    chained: Vec<(u32, usize)>,
    pub(crate) reached_targets: usize,
}

impl<'p> Replicate<'p> {
    pub(crate) fn new(plan: &'p CopyPlan) -> Replicate<'p> {
        Replicate {
            plan,
            started: false,
            chained: Vec::new(),
            reached_targets: 0,
        }
    }
}

impl<O: SimObserver> ReplicationPolicy<O> for Replicate<'_> {
    #[inline]
    fn next_pending(&mut self) -> Option<u64> {
        // The whole tree starts at cycle 0; after that only in-flight
        // copies (the stepper's drain check) keep the run alive.
        if self.started {
            None
        } else {
            Some(0)
        }
    }

    fn inject(&mut self, _cycle: u64, core: &mut Core<'_, O>) {
        if self.started {
            return;
        }
        self.started = true;
        let src = self.plan.source();
        if !core.owns(src) {
            return;
        }
        // Cycle-0 prelude at the source's lane: type the recipients the
        // plan cannot cover, then let the source start its children.
        for &t in self.plan.dropped_dead() {
            core.observer.on_inject(0, src, t);
            core.acc.dropped_dead_endpoint += 1;
            core.observer.on_drop(0, src, t, DropReason::DeadEndpoint);
        }
        for &t in self.plan.dropped_unreachable() {
            core.observer.on_inject(0, src, t);
            core.acc.dropped_unreachable += 1;
            core.observer.on_drop(0, src, t, DropReason::Unreachable);
        }
        for idx in first_children(self.plan, src) {
            spawn_copy(self.plan, core, 0, src, idx);
        }
    }

    /// Captures the one-port next-copy chain at pop time.
    #[inline]
    fn depart(&mut self, u: u32, id: u32, slab: &PacketSlab, _msg: &mut SafMsg) {
        let next = slab.next_copy(id);
        if next != NO_COPY {
            self.chained.push((u, next as usize));
        }
    }

    /// Every copy ends exactly at its tree child — deliver it, then
    /// replicate there.
    fn commit(&mut self, now: u64, msg: &SafMsg, core: &mut Core<'_, O>) {
        if !core.owns(msg.node) {
            return;
        }
        debug_assert_eq!(msg.node, msg.dst, "copies travel exactly one tree edge");
        core.deliver(now, msg.node, now - msg.inject);
        if self.plan.is_target(msg.node) {
            self.reached_targets += 1;
        }
        for idx in first_children(self.plan, msg.node) {
            spawn_copy(self.plan, core, now, msg.node, idx);
        }
    }

    /// One-port siblings chained off copies that departed this cycle:
    /// enqueued now, so they depart next cycle — one port per node per
    /// cycle, exactly the telephone model.
    fn end_cycle(&mut self, now: u64, core: &mut Core<'_, O>) {
        for i in 0..self.chained.len() {
            let (u, idx) = self.chained[i];
            spawn_copy(self.plan, core, now, u, idx);
        }
        self.chained.clear();
    }
}
