//! The unified store-and-forward engine core: one cycle skeleton
//! (injection → forward scan → arrivals), one arena-backed link fabric,
//! and the [`ReplicationPolicy`] workloads that specialize it into the
//! unicast and collective engines. The historical `simulate_*` variants
//! are thin monomorphizations of [`run_core`] over the policy axes in
//! [`policy`](super::policy).

use fibcube_graph::csr::CsrGraph;

use crate::arena::{LinkQueues, PacketSlab, NO_COPY};
use crate::collective::CopyPlan;
use crate::observer::SimObserver;
use crate::router::{LinkLoad, NextHopTable, Router};
use crate::topology::Topology;
use crate::traffic::Packet;

use super::policy::{FaultPolicy, ReplicationPolicy};
use super::stats::{DropReason, SimStats, StatsAcc};

/// Occupancy view of one node's output links, handed to adaptive routers:
/// a window into the [`LinkQueues`] occupancy column.
pub(crate) struct NodeLoad<'a> {
    pub(crate) loads: &'a [u32],
    pub(crate) base: usize,
}

impl LinkLoad for NodeLoad<'_> {
    fn load(&self, slot: usize) -> usize {
        self.loads[self.base + slot] as usize
    }
}

/// How the engine resolves each hop: a dense precomputed table (one load
/// per hop) or per-hop policy calls (live link-load view plus a slot
/// search in the node's neighbor list — a couple of compares in one
/// already-hot cache line, which beats any big-table lookup here).
pub(crate) enum Routing<'t, R: ?Sized> {
    Table(NextHopTable),
    PerHop(&'t R),
}

/// Picks the routing path for one run: tabulate when the expected number
/// of route lookups (≈ `packets × diameter/2`, a proxy for packets ×
/// average distance) amortises the `O(n²)` table build *and* the policy
/// can be tabulated at all. See [`NextHopTable`] for the trade-off.
pub(crate) fn routing_for<'t, T, R>(topology: &T, router: &'t R, packets: usize) -> Routing<'t, R>
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
{
    let g = topology.graph();
    let n = g.num_vertices() as u64;
    let lookups = (packets as u64).saturating_mul((topology.diameter_bound() as u64 / 2).max(1));
    if lookups >= n.saturating_mul(n) {
        if let Some(table) = router.precompute(g) {
            return Routing::Table(table);
        }
    }
    Routing::PerHop(router)
}

/// Resolves the output edge for one hop — [`Fabric::route_and_enqueue`]'s
/// routing half, shared with the wormhole engine (which reserves buffers
/// instead of enqueuing packets) and the sharded parallel engine (which
/// views its link loads at a shard-local offset).
#[inline]
pub(crate) fn route_edge<R: Router + ?Sized>(
    g: &CsrGraph,
    routing: &Routing<'_, R>,
    loads: &[u32],
    node: u32,
    dst: u32,
) -> usize {
    match routing {
        Routing::Table(table) => table
            .next_edge(node, dst)
            .expect("routing a packet not yet at dst"),
        Routing::PerHop(router) => {
            let base = g.edge_range(node).start;
            let hop = {
                let load = NodeLoad { loads, base };
                router
                    .next_hop(node, dst, &load)
                    .expect("routing a packet not yet at dst")
            };
            base + g
                .slot_of(node, hop)
                .expect("next_hop must return a neighbor")
        }
    }
}

/// The engine's mutable link/node state: the ring-buffer FIFOs plus the
/// per-node occupancy counters and occupied-slot bitmasks that keep the
/// worklist and the forward scan cheap. Grouped so the routing helper
/// takes one handle.
pub(crate) struct Fabric {
    pub(crate) queues: LinkQueues,
    /// Queued packets per node (drives the active worklist).
    pub(crate) occupancy: Vec<u32>,
    /// Per-node bitmask of output slots holding packets, so the forward
    /// phase pops exactly the occupied queues instead of probing every
    /// out-edge of every active node. Empty (disabled — the forward
    /// phase falls back to the plain edge scan) in the off-design case
    /// of degrees above 64.
    pub(crate) slot_mask: Vec<u64>,
}

impl Fabric {
    pub(crate) fn new(g: &CsrGraph) -> Fabric {
        let n = g.num_vertices();
        let masked_scan = g.max_degree() <= 64;
        Fabric {
            queues: LinkQueues::new(g.num_directed_edges()),
            occupancy: vec![0u32; n],
            slot_mask: vec![0; if masked_scan { n } else { 0 }],
        }
    }

    /// Routes packet `id` at `node`, enqueues it on the chosen output
    /// link, and marks that link's slot in the node's non-empty bitmask —
    /// the one mutation path shared by the injection and arrival phases.
    #[inline]
    pub(crate) fn route_and_enqueue<R: Router + ?Sized>(
        &mut self,
        g: &CsrGraph,
        routing: &Routing<'_, R>,
        node: u32,
        id: u32,
        dst: u32,
    ) {
        let base = g.edge_range(node).start;
        let e = route_edge(g, routing, self.queues.loads(), node, dst);
        self.queues.push(e, id);
        if let Some(mask) = self.slot_mask.get_mut(node as usize) {
            *mask |= 1u64 << (e - base);
        }
        self.occupancy[node as usize] += 1;
    }

    /// Enqueues packet `id` directly on the directed edge `e` out of
    /// `node` — the collective path, where the next-copy table already
    /// names the edge and no routing policy is consulted.
    #[inline]
    pub(crate) fn enqueue_on_edge(&mut self, g: &CsrGraph, node: u32, e: usize, id: u32) {
        let base = g.edge_range(node).start;
        self.queues.push(e, id);
        if let Some(mask) = self.slot_mask.get_mut(node as usize) {
            *mask |= 1u64 << (e - base);
        }
        self.occupancy[node as usize] += 1;
    }
}

/// The mutable state one engine run threads through its
/// [`ReplicationPolicy`] hooks: the arena core (packet slab + link
/// fabric), the active-node worklist, the statistics accumulator, and
/// the attached observer. Constructed and driven only by
/// [`run_core`](crate::engine) — the fields are crate-internal; the
/// struct is public so the [`ReplicationPolicy`] hook signatures can
/// name it.
pub struct Core<'g, 'o, O: SimObserver> {
    pub(crate) g: &'g CsrGraph,
    pub(crate) slab: PacketSlab,
    pub(crate) fabric: Fabric,
    pub(crate) on_list: Vec<bool>,
    pub(crate) active: Vec<u32>,
    pub(crate) next_active: Vec<u32>,
    pub(crate) observer: &'o mut O,
    pub(crate) acc: StatsAcc,
    pub(crate) in_flight: usize,
}

impl<O: SimObserver> Core<'_, '_, O> {
    /// Adds `u` to the current cycle's worklist if absent.
    #[inline]
    pub(crate) fn worklist_add(&mut self, u: u32) {
        if !self.on_list[u as usize] {
            self.on_list[u as usize] = true;
            self.active.push(u);
        }
    }
}

/// The shared active-set engine skeleton behind every store-and-forward
/// variant: per cycle, the workload's `begin_cycle` (injection /
/// fast-forward / termination), the forward scan (each directed link of
/// an active node moves one packet, ascending node and edge order so
/// same-cycle FIFO tie-breaking matches the reference engine's full
/// scan), arrivals at the `cycle + 1` boundary through the workload's
/// `arrive`, then `end_cycle` and the observer's cycle event. Returns
/// the finished stats and the workload (which may carry run outputs,
/// e.g. the collective's reached-target tally).
pub(crate) fn run_core<T, O, W>(
    topology: &T,
    offered: usize,
    max_cycles: u64,
    observer: &mut O,
    mut workload: W,
) -> (SimStats, W)
where
    T: Topology + ?Sized,
    O: SimObserver,
    W: ReplicationPolicy<O>,
{
    let n = topology.len();
    let g = topology.graph();

    // The arena core: SoA packet slab + ring-buffer link FIFOs with
    // their per-node occupancy/bitmask bookkeeping.
    let fabric = Fabric::new(g);
    let masked_scan = !fabric.slot_mask.is_empty();
    let mut core = Core {
        g,
        slab: PacketSlab::new(),
        fabric,
        on_list: vec![false; n],
        active: Vec::new(),
        next_active: Vec::new(),
        observer,
        acc: StatsAcc::for_network(n),
        in_flight: 0,
    };
    let mut arrivals: Vec<(u32, u32)> = Vec::new();

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        if !workload.begin_cycle(&mut cycle, max_cycles, &mut core) {
            break;
        }

        // Each directed link of an active node forwards one packet.
        // Ascending node order makes same-cycle FIFO tie-breaking match
        // the reference engine's full scan exactly.
        core.active.sort_unstable();
        for i in 0..core.active.len() {
            let u = core.active[i];
            core.on_list[u as usize] = false;
            let base = core.g.edge_range(u).start;
            if masked_scan {
                // Visit only the occupied slots, lowest slot first — the
                // same order the plain scan forwards in.
                let mut mask = core.fabric.slot_mask[u as usize];
                let mut remaining = mask;
                while remaining != 0 {
                    let slot = remaining.trailing_zeros() as usize;
                    remaining &= remaining - 1;
                    let e = base + slot;
                    let id = core
                        .fabric
                        .queues
                        .pop(e)
                        .expect("mask bit implies a queued packet");
                    if core.fabric.queues.load(e) == 0 {
                        mask &= !(1u64 << slot);
                    }
                    let v = core.g.target(e);
                    core.observer.on_hop(cycle, u, v, e);
                    core.slab.record_hop(id);
                    workload.on_depart(u, id, &core.slab);
                    arrivals.push((v, id));
                    core.fabric.occupancy[u as usize] -= 1;
                    core.acc.total_hops += 1;
                }
                core.fabric.slot_mask[u as usize] = mask;
            } else {
                for e in core.g.edge_range(u) {
                    if let Some(id) = core.fabric.queues.pop(e) {
                        let v = core.g.target(e);
                        core.observer.on_hop(cycle, u, v, e);
                        core.slab.record_hop(id);
                        workload.on_depart(u, id, &core.slab);
                        arrivals.push((v, id));
                        core.fabric.occupancy[u as usize] -= 1;
                        core.acc.total_hops += 1;
                    }
                }
            }
            if core.fabric.occupancy[u as usize] > 0 {
                core.on_list[u as usize] = true;
                core.next_active.push(u);
            }
        }
        core.active.clear();
        std::mem::swap(&mut core.active, &mut core.next_active);

        // Process arrivals (at the cycle + 1 boundary).
        let now = cycle + 1;
        for (node, id) in arrivals.drain(..) {
            workload.arrive(now, node, id, &mut core);
        }
        workload.end_cycle(now, &mut core);
        core.observer.on_cycle_end(cycle, core.in_flight);
        cycle += 1;
    }

    (core.acc.finish(offered), workload)
}

/// The unicast workload: time-sorted injection with admission control,
/// policy routing at every hop, delivery at the destination.
pub(crate) struct Unicast<'p, 't, 'f, R: Router + ?Sized, F: FaultPolicy> {
    inj: Vec<&'p Packet>,
    next_inject: usize,
    routing: Routing<'t, R>,
    admission: &'f F,
}

impl<'p, 't, 'f, R: Router + ?Sized, F: FaultPolicy> Unicast<'p, 't, 'f, R, F> {
    pub(crate) fn new<T: Topology + ?Sized>(
        topology: &T,
        router: &'t R,
        packets: &'p [Packet],
        admission: &'f F,
    ) -> Unicast<'p, 't, 'f, R, F> {
        // Injection list sorted by time (stable, so same-cycle packets
        // keep their generation order).
        let mut inj: Vec<&Packet> = packets.iter().collect();
        inj.sort_by_key(|p| p.inject_time);
        Unicast {
            inj,
            next_inject: 0,
            routing: routing_for(topology, router, packets.len()),
            admission,
        }
    }
}

impl<O, R, F> ReplicationPolicy<O> for Unicast<'_, '_, '_, R, F>
where
    O: SimObserver,
    R: Router + ?Sized,
    F: FaultPolicy,
{
    fn begin_cycle(
        &mut self,
        cycle: &mut u64,
        max_cycles: u64,
        core: &mut Core<'_, '_, O>,
    ) -> bool {
        // Skip straight to the next injection when the network is empty.
        if core.in_flight == 0 {
            match self.inj.get(self.next_inject) {
                None => return false,
                Some(p) if p.inject_time > *cycle => {
                    if p.inject_time >= max_cycles {
                        return false;
                    }
                    *cycle = p.inject_time;
                }
                Some(_) => {}
            }
        }

        // Inject everything due this cycle.
        while self.next_inject < self.inj.len() && self.inj[self.next_inject].inject_time <= *cycle
        {
            let p = self.inj[self.next_inject];
            self.next_inject += 1;
            core.observer.on_inject(*cycle, p.src, p.dst);
            if let Some(reason) = self.admission.verdict(p.src, p.dst) {
                core.acc.drop_packet(reason);
                core.observer.on_drop(*cycle, p.src, p.dst, reason);
                continue;
            }
            if p.src == p.dst {
                // Degenerate: counts as instantly delivered.
                core.acc.deliver_instant();
                core.observer.on_deliver(*cycle, p.dst, 0);
                continue;
            }
            let id = core.slab.alloc(p.dst, p.inject_time);
            core.fabric
                .route_and_enqueue(core.g, &self.routing, p.src, id, p.dst);
            core.in_flight += 1;
            core.worklist_add(p.src);
        }
        true
    }

    #[inline]
    fn on_depart(&mut self, _u: u32, _id: u32, _slab: &PacketSlab) {}

    #[inline]
    fn arrive(&mut self, now: u64, node: u32, id: u32, core: &mut Core<'_, '_, O>) {
        let dst = core.slab.dst(id);
        if node == dst {
            core.in_flight -= 1;
            let inject_time = core.slab.inject(id);
            debug_assert!(
                core.slab.hops(id) as u64 <= now - inject_time,
                "hops can never exceed latency"
            );
            core.acc.deliver(now, inject_time);
            core.observer.on_deliver(now, node, now - inject_time);
            core.slab.release(id);
        } else {
            core.fabric
                .route_and_enqueue(core.g, &self.routing, node, id, dst);
            core.worklist_add(node);
        }
    }

    #[inline]
    fn end_cycle(&mut self, _now: u64, _core: &mut Core<'_, '_, O>) {}
}

/// The one-port/all-port first-children slice of `u`'s plan edges: all
/// of them at once (all-port) or just the first (one-port — the rest
/// chain through the slab's next-copy column).
fn first_children(plan: &CopyPlan, u: u32) -> std::ops::Range<usize> {
    let range = plan.children_range(u);
    if plan.one_port() {
        range.start..range.end.min(range.start + 1)
    } else {
        range
    }
}

/// Spawns the copy of plan edge `idx` at its parent `u`: allocates the
/// packet in the slab (chaining the next sibling in one-port mode),
/// reports the injection, and enqueues it on the tree edge the plan
/// resolved at compile time. Shared by the cycle-0 source prelude, the
/// replicate-on-delivery path, and the one-port sibling chain.
#[inline]
fn spawn_copy<O: SimObserver>(
    plan: &CopyPlan,
    core: &mut Core<'_, '_, O>,
    cycle: u64,
    u: u32,
    idx: usize,
) {
    let child = plan.child(idx);
    let id = core.slab.alloc(child, cycle);
    if plan.one_port() && idx + 1 < plan.children_range(u).end {
        core.slab.set_next_copy(id, (idx + 1) as u32);
    }
    core.observer.on_inject(cycle, u, child);
    core.fabric.enqueue_on_edge(core.g, u, plan.edge(idx), id);
    core.worklist_add(u);
    core.in_flight += 1;
}

/// The collective workload: packets are **replicated at intermediate
/// nodes** along a [`CopyPlan`] tree instead of routed end to end. Every
/// copy travels exactly one tree edge; a delivery informs the receiving
/// node, which spawns its own children (all at once, or chained one per
/// cycle in one-port mode).
pub(crate) struct Replicate<'p> {
    plan: &'p CopyPlan,
    started: bool,
    /// One-port sibling spawns, deferred past the forward phase so a
    /// follow-up copy never departs in the cycle its predecessor did.
    chained: Vec<(u32, usize)>,
    pub(crate) reached_targets: usize,
}

impl<'p> Replicate<'p> {
    pub(crate) fn new(plan: &'p CopyPlan) -> Replicate<'p> {
        Replicate {
            plan,
            started: false,
            chained: Vec::new(),
            reached_targets: 0,
        }
    }
}

impl<O: SimObserver> ReplicationPolicy<O> for Replicate<'_> {
    fn begin_cycle(
        &mut self,
        _cycle: &mut u64,
        _max_cycles: u64,
        core: &mut Core<'_, '_, O>,
    ) -> bool {
        if !self.started {
            self.started = true;
            // Cycle-0 prelude: type the recipients the plan cannot cover,
            // then let the source start its children.
            for &t in self.plan.dropped_dead() {
                core.observer.on_inject(0, self.plan.source(), t);
                core.acc.dropped_dead_endpoint += 1;
                core.observer
                    .on_drop(0, self.plan.source(), t, DropReason::DeadEndpoint);
            }
            for &t in self.plan.dropped_unreachable() {
                core.observer.on_inject(0, self.plan.source(), t);
                core.acc.dropped_unreachable += 1;
                core.observer
                    .on_drop(0, self.plan.source(), t, DropReason::Unreachable);
            }
            let src = self.plan.source();
            for idx in first_children(self.plan, src) {
                spawn_copy(self.plan, core, 0, src, idx);
            }
        }
        core.in_flight > 0
    }

    /// Captures the one-port next-copy chain at pop time.
    #[inline]
    fn on_depart(&mut self, u: u32, id: u32, slab: &PacketSlab) {
        let next = slab.next_copy(id);
        if next != NO_COPY {
            self.chained.push((u, next as usize));
        }
    }

    /// Every copy ends exactly at its tree child — deliver it, then
    /// replicate there.
    fn arrive(&mut self, now: u64, node: u32, id: u32, core: &mut Core<'_, '_, O>) {
        debug_assert_eq!(
            node,
            core.slab.dst(id),
            "copies travel exactly one tree edge"
        );
        core.in_flight -= 1;
        let inject_time = core.slab.inject(id);
        core.acc.deliver(now, inject_time);
        core.observer.on_deliver(now, node, now - inject_time);
        core.slab.release(id);
        if self.plan.is_target(node) {
            self.reached_targets += 1;
        }
        for idx in first_children(self.plan, node) {
            spawn_copy(self.plan, core, now, node, idx);
        }
    }

    /// One-port siblings chained off copies that departed this cycle:
    /// enqueued now, so they depart next cycle — one port per node per
    /// cycle, exactly the telephone model.
    fn end_cycle(&mut self, now: u64, core: &mut Core<'_, '_, O>) {
        for i in 0..self.chained.len() {
            let (u, idx) = self.chained[i];
            spawn_copy(self.plan, core, now, u, idx);
        }
        self.chained.clear();
    }
}
