//! The dynamic-fault (churn) store-and-forward workload: the same
//! unified stepper as the static engine ([`run_core`]), with a
//! [`ChurnTimeline`] of fail/recover events applied in the event-commit
//! stage and an optional closed-loop request/reply workload with
//! timeout-and-retry delivery.
//!
//! ## Event semantics
//!
//! Events commit **between cycles**: all events with `cycle <= c` are
//! applied at the top of cycle `c` (the [`ReplicationPolicy::
//! commit_events`] stage), after the previous cycle's arrivals and
//! before cycle `c`'s injections — so every admission verdict and
//! routing decision within one cycle sees one consistent fault epoch
//! (the stability contract of
//! [`ChurnAdmission`](super::policy::ChurnAdmission)). Applying an event
//! flips the [`FaultMaskingRouter`]'s masks and **incrementally patches**
//! its distance table ([`FaultMaskingRouter::apply_event`]); packets
//! queued on a dying link or node are flushed as typed drops
//! ([`DropReason::LinkDied`] / [`DropReason::NodeDied`]). Deliveries at
//! the `c + 1` arrival boundary precede deaths at cycle `c + 1`.
//!
//! ## Sharding
//!
//! Each lane owns a **replica** of the masked router, built from the
//! same timeline and patched by the same deterministic
//! [`FaultMaskingRouter::apply_event`] calls — so every lane's routing
//! and admission decisions agree without any shared lock (this replaced
//! the old worker-0 `RwLock`'d event application). Queue flushes and
//! drop accounting are gated on node ownership; the closed-loop session
//! machine is replicated the same way, with every RNG draw executing on
//! every lane and only the owning lane touching real packets.
//!
//! ## Equivalence gates
//!
//! - An **empty timeline** delegates to the healthy engine — the
//!   zero-churn run is packet-for-packet identical to
//!   [`simulate_observed`](crate::simulate_observed).
//! - A timeline whose failures all commit at cycle 0 and never recover
//!   is packet-for-packet identical to the static degraded engine
//!   ([`simulate_faulted`](crate::simulate_faulted)): both route per-hop
//!   through the same [`FaultMaskingRouter`] state, with the same
//!   injection admission and the same cycle skeleton.
//!
//! ## Closed-loop delivery
//!
//! [`simulate_request_reply`] replaces the open-loop packet list with
//! `clients` sessions. Each session thinks (seeded exponential holding
//! time), then issues a request to a fresh random destination; the
//! destination answers with a reply packet, and the transaction
//! completes when the reply returns. A reply that misses its deadline
//! triggers a retry with seeded exponential backoff (jittered delay,
//! doubling window, fresh destination — a failover probe); an exhausted
//! retry budget is a typed [`DropReason::RetriesExhausted`] drop.
//! `SimStats` counts **transactions**, not packets: `offered` is
//! transactions started, a delivery's latency spans first request to
//! final reply (retries included), and request/reply hops contribute to
//! `total_hops` and link contention like any other traffic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fibcube_graph::csr::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arena::PacketSlab;
use crate::fault::{ChurnEvent, ChurnTarget, ChurnTimeline, FaultSet};
use crate::observer::SimObserver;
use crate::router::{FaultMaskingRouter, Router};
use crate::topology::Topology;
use crate::traffic::Packet;

use super::core::{run_core, Core, Routing, SafMsg};
use super::policy::{ChurnAdmission, FaultPolicy, ReplicationPolicy};
use super::stats::{DropReason, SimStats};

/// Runs the store-and-forward engine under a churn timeline: faults
/// fail and recover mid-run, routes repair incrementally, and packets
/// caught on dying elements become typed drops. See the
/// module-level docs for the event semantics and equivalence gates.
///
/// An empty timeline delegates to the healthy engine.
pub fn simulate_churn<T, R, O>(
    topology: &T,
    router: &R,
    timeline: &ChurnTimeline,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    if timeline.is_empty() {
        return super::simulate_observed(topology, router, packets, max_cycles, observer);
    }
    let n = topology.len() as u32;
    let workload = ChurnUnicast::open(topology.graph(), router, timeline.events(), packets, 0, n);
    let (stats, _) = run_core(topology, packets.len(), max_cycles, observer, workload);
    stats
}

/// The closed-loop request/reply workload of [`simulate_request_reply`]:
/// `clients` sessions cycling think → request → reply with
/// timeout-and-retry delivery. Parsed from
/// [`TrafficSpec::RequestReply`](crate::traffic::TrafficSpec).
#[derive(Clone, Copy, Debug)]
pub struct RequestReplyLoad {
    /// Concurrent client sessions.
    pub clients: usize,
    /// Mean think time between transactions (cycles, exponential).
    pub think: f64,
    /// Base reply deadline (cycles); doubles per retry attempt.
    pub timeout: u64,
    /// Retry budget beyond the first attempt.
    pub retries: u32,
    /// Seed for session placement, destinations, think times, backoff.
    pub seed: u64,
}

/// Runs the closed-loop request/reply workload under a churn timeline
/// (which may be empty — retries then only cover congestion). Requires
/// at least 2 nodes and a finite `max_cycles` (the closed loop never
/// drains on its own); the experiment layer enforces both with typed
/// errors. See the module-level docs for the transaction accounting.
pub fn simulate_request_reply<T, R, O>(
    topology: &T,
    router: &R,
    timeline: &ChurnTimeline,
    load: &RequestReplyLoad,
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    assert!(
        topology.len() >= 2,
        "request/reply needs a peer to talk to (>= 2 nodes)"
    );
    let workload = ChurnUnicast::closed(
        topology.graph(),
        router,
        timeline.events(),
        load,
        topology.len() as u32,
    );
    let (mut stats, workload) = run_core(topology, 0, max_cycles, observer, workload);
    stats.offered = workload.offered();
    stats
}

/// Traffic side of the churn workload: the open-loop time-sorted packet
/// list (this lane's sources only), or the closed-loop session machine
/// (replicated on every lane).
enum Mode<'p> {
    Open {
        inj: Vec<&'p Packet>,
        next_inject: usize,
    },
    Closed(Sessions),
}

/// The churn workload: a [`ReplicationPolicy`] owning a lane-local
/// **replica** of the masked router, so fault events can flip its masks
/// and patch its distance table mid-run without any cross-lane lock —
/// every lane applies the same deterministic event stream, so the
/// replicas never diverge.
pub(crate) struct ChurnUnicast<'g, 'p, R: Router + ?Sized> {
    router: FaultMaskingRouter<'g, R>,
    events: &'p [ChurnEvent],
    next_event: usize,
    mode: Mode<'p>,
}

impl<'g, 'p, R: Router + ?Sized> ChurnUnicast<'g, 'p, R> {
    /// The open-loop churn workload for one lane: injects the packets
    /// sourced in `[lo, hi)`, time-sorted (stable — the serial order
    /// restricted to the lane).
    pub(crate) fn open(
        g: &'g CsrGraph,
        inner: &'g R,
        events: &'p [ChurnEvent],
        packets: &'p [Packet],
        lo: u32,
        hi: u32,
    ) -> ChurnUnicast<'g, 'p, R> {
        let mut inj: Vec<&Packet> = packets
            .iter()
            .filter(|p| lo <= p.src && p.src < hi)
            .collect();
        inj.sort_by_key(|p| p.inject_time);
        ChurnUnicast {
            router: FaultMaskingRouter::new(g, inner, &FaultSet::empty()),
            events,
            next_event: 0,
            mode: Mode::Open {
                inj,
                next_inject: 0,
            },
        }
    }

    /// The closed-loop churn workload for one lane: the full session
    /// machine, replicated identically on every lane (same seed, same
    /// draws); the lane bounds live in the [`Core`] it runs against.
    pub(crate) fn closed(
        g: &'g CsrGraph,
        inner: &'g R,
        events: &'p [ChurnEvent],
        load: &RequestReplyLoad,
        n: u32,
    ) -> ChurnUnicast<'g, 'p, R> {
        ChurnUnicast {
            router: FaultMaskingRouter::new(g, inner, &FaultSet::empty()),
            events,
            next_event: 0,
            mode: Mode::Closed(Sessions::new(load, n)),
        }
    }

    /// Transactions started — the closed loop's `offered` (0 for open).
    pub(crate) fn offered(&self) -> usize {
        match &self.mode {
            Mode::Open { .. } => 0,
            Mode::Closed(sessions) => sessions.offered,
        }
    }
}

impl<O, R> ReplicationPolicy<O> for ChurnUnicast<'_, '_, R>
where
    O: SimObserver,
    R: Router + ?Sized,
{
    fn next_pending(&mut self) -> Option<u64> {
        // Traffic actions only: pending fault events between here and
        // the next action commit late, at the jumped-to cycle — with no
        // packets anywhere they cannot change any statistic, only the
        // mask state future injections see.
        match &mut self.mode {
            Mode::Open { inj, next_inject } => inj.get(*next_inject).map(|p| p.inject_time),
            Mode::Closed(sessions) => sessions.next_action_cycle(),
        }
    }

    /// Applies every event due at or before `cycle`, in timeline order:
    /// router masks and distance rows on **every** lane's replica, then
    /// the queue flushes for failures at the lanes owning the affected
    /// queues. Flushes only ever find packets when `event.cycle` is the
    /// current cycle — the engine fast-forwards only over empty
    /// networks.
    fn commit_events(&mut self, cycle: u64, core: &mut Core<'_, O>) {
        while self.next_event < self.events.len() && self.events[self.next_event].cycle <= cycle {
            let ev = self.events[self.next_event];
            self.next_event += 1;
            self.router.apply_event(&ev);
            if ev.failed {
                // In the closed loop, stranded packets vanish silently:
                // the session's timeout observes the loss and the
                // transaction-level accounting stays conserved.
                let silent = matches!(self.mode, Mode::Closed(_));
                match ev.target {
                    ChurnTarget::Link(u, v) => {
                        // u < v, so the u→v directed edge flushes first —
                        // ascending directed-edge order.
                        for (a, b) in [(u, v), (v, u)] {
                            if !core.owns(a) {
                                continue;
                            }
                            let g = core.g;
                            if let Some(slot) = g.slot_of(a, b) {
                                let e = g.edge_range(a).start + slot;
                                core.flush_directed_edge(
                                    a,
                                    e,
                                    ev.cycle,
                                    DropReason::LinkDied,
                                    silent,
                                );
                            }
                        }
                    }
                    ChurnTarget::Node(x) => {
                        let g = core.g;
                        if core.owns(x) {
                            for e in g.edge_range(x) {
                                core.flush_directed_edge(
                                    x,
                                    e,
                                    ev.cycle,
                                    DropReason::NodeDied,
                                    silent,
                                );
                            }
                        }
                        for &y in g.neighbors(x) {
                            if !core.owns(y) {
                                continue;
                            }
                            if let Some(back) = g.slot_of(y, x) {
                                let e = g.edge_range(y).start + back;
                                core.flush_directed_edge(
                                    y,
                                    e,
                                    ev.cycle,
                                    DropReason::NodeDied,
                                    silent,
                                );
                            }
                        }
                    }
                }
            }
            // Every lane's observer fork sees the (global) fault event;
            // the merge hook deduplicates.
            core.observer.on_fault_event(ev.cycle, ev.failed);
        }
    }

    fn inject(&mut self, cycle: u64, core: &mut Core<'_, O>) {
        let ChurnUnicast { router, mode, .. } = self;
        match mode {
            Mode::Open { inj, next_inject } => {
                while *next_inject < inj.len() && inj[*next_inject].inject_time <= cycle {
                    let p = inj[*next_inject];
                    *next_inject += 1;
                    core.observer.on_inject(cycle, p.src, p.dst);
                    if let Some(reason) = ChurnAdmission::new(router).verdict(p.src, p.dst) {
                        core.acc.drop_packet(reason);
                        core.observer.on_drop(cycle, p.src, p.dst, reason);
                        continue;
                    }
                    if p.src == p.dst {
                        core.acc.deliver_instant();
                        core.observer.on_deliver(cycle, p.dst, 0);
                        continue;
                    }
                    let id = core.slab.alloc(p.dst, p.inject_time);
                    core.route_and_enqueue(Routing::PerHop(&*router), p.src, id, p.dst);
                }
            }
            Mode::Closed(sessions) => sessions.process_due(cycle, router, core),
        }
    }

    /// The closed loop tags each departing packet with its transaction
    /// identity (session, txn, attempt, direction) so the committing
    /// lane can reconstruct the [`Meta`] sidecar without shared state.
    #[inline]
    fn depart(&mut self, _u: u32, id: u32, _slab: &PacketSlab, msg: &mut SafMsg) {
        if let Mode::Closed(sessions) = &self.mode {
            let m = sessions.meta[id as usize];
            msg.inject = m.txn;
            msg.hops = m.attempt;
            msg.tag = m.session | if m.reply { REPLY_BIT } else { 0 };
        }
    }

    fn commit(&mut self, now: u64, msg: &SafMsg, core: &mut Core<'_, O>) {
        let ChurnUnicast { router, mode, .. } = self;
        match mode {
            Mode::Open { .. } => {
                if !core.owns(msg.node) {
                    return;
                }
                if msg.node == msg.dst {
                    core.deliver(now, msg.node, now - msg.inject);
                } else if !router.node_alive(msg.dst) {
                    // The destination died while the packet was in flight.
                    core.acc.drop_packet(DropReason::NodeDied);
                    core.observer
                        .on_drop(now, msg.node, msg.dst, DropReason::NodeDied);
                } else if !router.reachable(msg.node, msg.dst) {
                    // Churn partitioned the network under the packet.
                    core.acc.drop_packet(DropReason::Unreachable);
                    core.observer
                        .on_drop(now, msg.node, msg.dst, DropReason::Unreachable);
                } else {
                    let id = core.slab.alloc(msg.dst, msg.inject);
                    core.slab.set_hops(id, msg.hops);
                    core.route_and_enqueue(Routing::PerHop(&*router), msg.node, id, msg.dst);
                }
            }
            Mode::Closed(sessions) => sessions.commit(now, msg, router, core),
        }
    }
}

/// What a session is waiting for (exactly one pending action each).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    /// Thinking; start the next transaction when due.
    Start,
    /// Waiting for a reply; fire the timeout when due.
    Timeout,
    /// Backing off; inject the retry attempt when due.
    Retry,
}

#[derive(Clone, Copy, Debug)]
struct Session {
    src: u32,
    dst: u32,
    /// Current transaction number (0 before the first).
    txn: u64,
    /// Attempt within the current transaction (0 = first request).
    attempt: u32,
    /// Inject cycle of the transaction's *first* request — the latency
    /// baseline a successful reply is measured against.
    t0: u64,
    pending: Action,
    /// Sequence stamp of the live heap entry; older entries are stale.
    pending_seq: u64,
}

/// Per-packet transaction tag, indexed by slab id (ids recycle; the
/// entry is overwritten at alloc time). Lane-local: only the lane that
/// holds the packet writes or reads its entry, and the identity rides
/// across lane hops in the [`SafMsg`]'s overloaded fields.
#[derive(Clone, Copy, Debug, Default)]
struct Meta {
    session: u32,
    txn: u64,
    attempt: u32,
    reply: bool,
}

/// Reply-direction flag packed into [`SafMsg::tag`]'s top bit, above
/// the session id.
const REPLY_BIT: u32 = 1 << 31;

/// The closed-loop session machine. All scheduling goes through one
/// min-heap of `(cycle, seq, session)` entries; a session transition
/// bumps its `pending_seq`, implicitly cancelling any earlier entry
/// (e.g. the timeout of a reply that did arrive).
///
/// Sharded, the whole machine is **replicated on every lane**: every
/// heap transition and every RNG draw executes identically everywhere
/// (so the replicas never diverge), while real packet effects —
/// allocations, routing, drop/delivery accounting, observer events —
/// are gated on the lane owning the acting node.
struct Sessions {
    rng: StdRng,
    n: u32,
    think: f64,
    timeout: u64,
    retries: u32,
    sessions: Vec<Session>,
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    seq: u64,
    meta: Vec<Meta>,
    /// Transactions started — the run's `offered`.
    offered: usize,
}

/// 53 random bits → uniform in (0, 1], so `ln` stays finite.
fn exp_draw(rng: &mut StdRng, mean: f64) -> u64 {
    if mean.is_nan() || mean <= 0.0 {
        return 0;
    }
    let u = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    (-u.ln() * mean).ceil() as u64
}

impl Sessions {
    fn new(load: &RequestReplyLoad, n: u32) -> Sessions {
        let mut s = Sessions {
            rng: StdRng::seed_from_u64(load.seed),
            n,
            think: load.think,
            timeout: load.timeout.max(1),
            retries: load.retries,
            sessions: Vec::with_capacity(load.clients),
            heap: BinaryHeap::new(),
            seq: 0,
            meta: Vec::new(),
            offered: 0,
        };
        for i in 0..load.clients {
            let src = s.rng.gen_range(0..n);
            s.sessions.push(Session {
                src,
                dst: src,
                txn: 0,
                attempt: 0,
                t0: 0,
                pending: Action::Start,
                pending_seq: 0,
            });
            // Stagger the first transactions with think-time draws.
            let start = exp_draw(&mut s.rng, s.think);
            s.schedule(i as u32, start, Action::Start);
        }
        s
    }

    fn schedule(&mut self, session: u32, cycle: u64, action: Action) {
        self.seq += 1;
        let s = &mut self.sessions[session as usize];
        s.pending = action;
        s.pending_seq = self.seq;
        self.heap.push(Reverse((cycle, self.seq, session)));
    }

    /// Earliest live scheduled action, discarding stale heap entries.
    fn next_action_cycle(&mut self) -> Option<u64> {
        while let Some(&Reverse((cycle, seq, session))) = self.heap.peek() {
            if self.sessions[session as usize].pending_seq == seq {
                return Some(cycle);
            }
            self.heap.pop();
        }
        None
    }

    /// The attempt's reply deadline window: the base timeout doubling
    /// per retry (shift capped — the window saturates, never wraps).
    fn window(&self, attempt: u32) -> u64 {
        self.timeout.saturating_mul(1u64 << attempt.min(16))
    }

    fn sample_dst(&mut self, src: u32) -> u32 {
        loop {
            let d = self.rng.gen_range(0..self.n);
            if d != src {
                return d;
            }
        }
    }

    /// Injects the current attempt's request, if admission permits. A
    /// rejected attempt (dead or disconnected endpoints) is simply a
    /// lost request: the pending timeout observes it. The verdict is
    /// evaluated on every lane (replicated router — same answer); the
    /// packet itself exists only at the lane owning the client.
    fn try_inject_request<O: SimObserver, R: Router + ?Sized>(
        &mut self,
        session: u32,
        cycle: u64,
        router: &FaultMaskingRouter<'_, R>,
        core: &mut Core<'_, O>,
    ) {
        let s = self.sessions[session as usize];
        if ChurnAdmission::new(router).verdict(s.src, s.dst).is_some() {
            return;
        }
        if !core.owns(s.src) {
            return;
        }
        let id = core.slab.alloc(s.dst, cycle);
        set_meta(
            &mut self.meta,
            id,
            Meta {
                session,
                txn: s.txn,
                attempt: s.attempt,
                reply: false,
            },
        );
        core.route_and_enqueue(Routing::PerHop(router), s.src, id, s.dst);
    }

    /// Fires every session action due at `cycle`: transaction starts,
    /// reply timeouts (retry or give up), and backoff-delayed retries.
    /// Heap order `(cycle, seq)` makes the firing order deterministic,
    /// and every lane fires every action (the RNG must advance in
    /// lockstep); only the owning lane touches packets and statistics.
    fn process_due<O: SimObserver, R: Router + ?Sized>(
        &mut self,
        cycle: u64,
        router: &FaultMaskingRouter<'_, R>,
        core: &mut Core<'_, O>,
    ) {
        loop {
            let Some(&Reverse((due, seq, session))) = self.heap.peek() else {
                return;
            };
            if due > cycle {
                return;
            }
            self.heap.pop();
            if self.sessions[session as usize].pending_seq != seq {
                continue; // cancelled by a reply or a state change
            }
            let action = self.sessions[session as usize].pending;
            match action {
                Action::Start => {
                    let (src, dst) = {
                        let src = self.sessions[session as usize].src;
                        (src, self.sample_dst(src))
                    };
                    {
                        let s = &mut self.sessions[session as usize];
                        s.txn += 1;
                        s.attempt = 0;
                        s.t0 = cycle;
                        s.dst = dst;
                    }
                    self.offered += 1;
                    if core.owns(src) {
                        core.observer.on_inject(cycle, src, dst);
                    }
                    self.try_inject_request(session, cycle, router, core);
                    let deadline = cycle + self.window(0);
                    self.schedule(session, deadline, Action::Timeout);
                }
                Action::Timeout => {
                    let (src, dst, attempt) = {
                        let s = &self.sessions[session as usize];
                        (s.src, s.dst, s.attempt)
                    };
                    if attempt >= self.retries {
                        // Budget exhausted: the transaction is a typed
                        // drop, and the session thinks before retrying
                        // with a fresh transaction.
                        if core.owns(src) {
                            core.acc.drop_packet(DropReason::RetriesExhausted);
                            core.observer
                                .on_drop(cycle, src, dst, DropReason::RetriesExhausted);
                        }
                        let start = cycle + 1 + exp_draw(&mut self.rng, self.think);
                        self.schedule(session, start, Action::Start);
                    } else {
                        // Seeded exponential backoff: a uniform jitter
                        // inside the attempt's (doubling) window.
                        self.sessions[session as usize].attempt = attempt + 1;
                        let window = self.window(attempt);
                        let delay = self.rng.gen_range(0..window.max(1));
                        self.schedule(session, cycle + delay, Action::Retry);
                    }
                }
                Action::Retry => {
                    let src = self.sessions[session as usize].src;
                    let dst = self.sample_dst(src);
                    self.sessions[session as usize].dst = dst;
                    self.try_inject_request(session, cycle, router, core);
                    let attempt = self.sessions[session as usize].attempt;
                    let deadline = cycle + self.window(attempt);
                    self.schedule(session, deadline, Action::Timeout);
                }
            }
        }
    }

    /// One packet committing at `msg.node`: route it onward, complete
    /// the request→reply turn at its destination, or finish the
    /// transaction at the client. Stale packets (their session moved
    /// on) vanish silently; mid-flight losses are covered by the
    /// session timeout. Session-state transitions (including their RNG
    /// draws) run on **every** lane; packet and statistic effects only
    /// at the owner.
    fn commit<O: SimObserver, R: Router + ?Sized>(
        &mut self,
        now: u64,
        msg: &SafMsg,
        router: &FaultMaskingRouter<'_, R>,
        core: &mut Core<'_, O>,
    ) {
        let m = Meta {
            session: msg.tag & !REPLY_BIT,
            txn: msg.inject,
            attempt: msg.hops,
            reply: msg.tag & REPLY_BIT != 0,
        };
        if msg.node != msg.dst {
            // Mid-route: owner-only, no session transition. A packet
            // whose destination died or was partitioned away vanishes
            // silently (the pop already discounted it).
            if !core.owns(msg.node) {
                return;
            }
            if router.node_alive(msg.dst) && router.reachable(msg.node, msg.dst) {
                let id = core.slab.alloc(msg.dst, now);
                set_meta(&mut self.meta, id, m);
                core.route_and_enqueue(Routing::PerHop(router), msg.node, id, msg.dst);
            }
            return;
        }
        let s = self.sessions[m.session as usize];
        let current = s.txn == m.txn && s.attempt == m.attempt && s.pending == Action::Timeout;
        if !current {
            return; // the session retried or gave up: stale packet
        }
        if !m.reply {
            // Request reached the server: turn it around as a reply, if
            // the client is still there to receive it.
            if msg.node != s.src
                && router.node_alive(s.src)
                && router.reachable(msg.node, s.src)
                && core.owns(msg.node)
            {
                let rid = core.slab.alloc(s.src, now);
                set_meta(&mut self.meta, rid, Meta { reply: true, ..m });
                core.route_and_enqueue(Routing::PerHop(router), msg.node, rid, s.src);
            }
        } else {
            // Reply reached the client: the transaction completes, with
            // latency measured from the transaction's first request.
            if core.owns(msg.node) {
                core.deliver(now, msg.node, now - s.t0);
            }
            let start = now + exp_draw(&mut self.rng, self.think);
            self.schedule(m.session, start, Action::Start);
        }
    }
}

fn set_meta(meta: &mut Vec<Meta>, id: u32, m: Meta) {
    let i = id as usize;
    if meta.len() <= i {
        meta.resize(i + 1, Meta::default());
    }
    meta[i] = m;
}
