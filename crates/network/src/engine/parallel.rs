//! The sharded parallel store-and-forward engine: one simulation run
//! spread across a scoped thread pool, **bit-identical to the serial
//! engine at any thread count**.
//!
//! Nodes are partitioned into `threads` contiguous shards. Each shard
//! exclusively owns its nodes' output FIFOs (a shard-local
//! [`LinkQueues`] arena over the contiguous CSR edge range), its own
//! packet slab, worklist, and statistics accumulator — so the hot
//! propose phase touches no shared mutable state at all. Cycles run as
//! a double-buffered **propose/commit** protocol with two barriers:
//!
//! 1. **Propose** — every shard injects its due packets and runs the
//!    forward scan over its own active nodes (ascending node/edge
//!    order, same as serial), appending each popped packet to its
//!    shard-public outbox instead of enqueuing it directly.
//! 2. **Commit** — after a barrier, every shard scans *all* outboxes in
//!    shard order and consumes exactly the arrivals addressed to its
//!    own nodes: deliveries are batch-accounted, the rest are routed
//!    and re-enqueued locally. A second barrier publishes the
//!    post-commit queue counts and next-injection times that drive the
//!    next cycle's shared idle-skip/termination decision.
//!
//! Determinism: every piece of state is node-owned, and every order the
//! engine depends on is preserved relative to the serial engine —
//! injection order is the globally time-sorted list restricted to each
//! shard, the concatenation of outboxes in shard order is exactly the
//! serial forward scan's ascending `(node, edge)` pop order, and a
//! node's arrivals are committed by a single shard in that same order.
//! Since the accumulator is all integers ([`StatsAcc::merge`]), merging
//! the shard accumulators in node order reproduces the serial
//! [`SimStats`] bit for bit, at any thread count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, RwLock};

use fibcube_graph::csr::CsrGraph;

use crate::arena::{LinkQueues, PacketSlab};
use crate::fault::{ChurnEvent, ChurnTarget, ChurnTimeline, FaultSet};
use crate::observer::NoopObserver;
use crate::router::{FaultMaskingRouter, Router};
use crate::topology::Topology;
use crate::traffic::Packet;

use super::churn::simulate_churn;
use super::core::{routing_for, NodeLoad, Routing};
use super::policy::{AdmitAll, ChurnAdmission, FaultPolicy, MaskedAdmission};
use super::stats::{DropReason, SimStats, StatsAcc};

/// Runs the store-and-forward simulation sharded across `threads` OS
/// threads, returning **exactly** the [`SimStats`] the serial engine
/// produces — bit-identical at any thread count, including both latency
/// histograms. `threads` is clamped to `[1, nodes]`; `threads <= 1`
/// runs the serial engine directly. An empty `faults` set is the
/// healthy network; a non-empty one applies the same
/// [`FaultMaskingRouter`] detours and typed injection drops as
/// [`simulate_faulted`](crate::simulate_faulted).
///
/// Observers are not supported: the parallel engine is the throughput
/// path, equivalent to the serial engine with a
/// [`NoopObserver`] attached. Workers block on barriers between phases
/// (no spinning), so oversubscribing the host's cores is safe — the run
/// is slower, never wrong.
pub fn simulate_parallel<T, R>(
    topology: &T,
    router: &R,
    faults: &FaultSet,
    packets: &[Packet],
    max_cycles: u64,
    threads: usize,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + Sync + ?Sized,
{
    let n = topology.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return super::simulate_faulted(
            topology,
            router,
            faults,
            packets,
            max_cycles,
            &mut NoopObserver,
        );
    }
    if faults.is_empty() {
        run_sharded(topology, router, &AdmitAll, packets, max_cycles, threads)
    } else {
        let masked = FaultMaskingRouter::new(topology.graph(), router, faults);
        let admission = MaskedAdmission::new(&masked);
        run_sharded(topology, &masked, &admission, packets, max_cycles, threads)
    }
}

/// [`simulate_churn`] sharded across `threads` OS threads — the same
/// propose/commit protocol as [`simulate_parallel`], with one masked
/// router shared under an [`RwLock`] and a fault-event phase spliced in
/// at the top of event cycles. Bit-identical to the serial churn engine
/// at any thread count.
///
/// Every worker advances an identical cursor over the (shared, sorted)
/// timeline, so all make the same "events due" decision; on an event
/// cycle, worker 0 applies the events to the router under the write
/// lock (incremental mask/distance repair) while every worker flushes
/// the dying queues *it owns* as typed drops, and an extra barrier
/// orders the writes before any routing read. The router is then only
/// read (per-cycle read guard spanning propose + commit) until the next
/// event cycle — verdicts stay stable within a cycle, exactly the
/// serial engine's epoch semantics.
pub fn simulate_parallel_churn<T, R>(
    topology: &T,
    router: &R,
    timeline: &ChurnTimeline,
    packets: &[Packet],
    max_cycles: u64,
    threads: usize,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + Sync + ?Sized,
{
    let n = topology.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return simulate_churn(
            topology,
            router,
            timeline,
            packets,
            max_cycles,
            &mut NoopObserver,
        );
    }
    if timeline.is_empty() {
        // Zero churn is the healthy network: take the lock-free path.
        return simulate_parallel(
            topology,
            router,
            &FaultSet::empty(),
            packets,
            max_cycles,
            threads,
        );
    }
    let g = topology.graph();
    let masked = RwLock::new(FaultMaskingRouter::new(g, router, &FaultSet::empty()));
    let masked_scan = g.max_degree() <= 64;

    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let bounds: Vec<usize> = (0..=threads).map(|s| s * n / threads).collect();
    let mut shard_inj: Vec<Vec<&Packet>> = (0..threads).map(|_| Vec::new()).collect();
    for p in &inj {
        let s = bounds.partition_point(|&b| b <= p.src as usize) - 1;
        shard_inj[s].push(p);
    }

    let slots: Vec<ShardSlot> = shard_inj
        .iter()
        .map(|inj_s| ShardSlot {
            queued: AtomicU64::new(0),
            next_time: AtomicU64::new(inj_s.first().map_or(u64::MAX, |p| p.inject_time)),
        })
        .collect();
    let outboxes: Vec<RwLock<Vec<Arrival>>> =
        (0..threads).map(|_| RwLock::new(Vec::new())).collect();
    let barrier = Barrier::new(threads);
    let events = timeline.events();

    let mut accs: Vec<StatsAcc> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (s, inj_s) in shard_inj.into_iter().enumerate() {
            let (slots, outboxes, barrier, masked) = (&slots, &outboxes, &barrier, &masked);
            let bounds = &bounds;
            handles.push(scope.spawn(move || {
                let mut shard = Shard::new(g, bounds[s], bounds[s + 1], masked_scan, inj_s, n);
                shard.run_churn(g, masked, events, slots, outboxes, barrier, max_cycles, s);
                shard.acc
            }));
        }
        for h in handles {
            accs.push(h.join().expect("shard worker panicked"));
        }
    });

    let mut acc = StatsAcc::for_network(n);
    for a in accs {
        acc.merge(a);
    }
    acc.finish(packets.len())
}

/// One packet crossing a shard boundary (or any link — arrivals always
/// go through the outbox): everything the committing shard needs, so
/// the proposing shard can release its slab entry at pop time.
struct Arrival {
    node: u32,
    dst: u32,
    inject: u64,
}

/// A shard's published state, read by every worker at the top of each
/// cycle to replicate the serial engine's idle-skip and termination
/// decisions. Plain stores/loads with `Relaxed` ordering — the phase
/// barriers already order them.
struct ShardSlot {
    /// Packets currently queued in this shard's FIFOs.
    queued: AtomicU64,
    /// Inject time of this shard's next pending packet (`u64::MAX` when
    /// drained).
    next_time: AtomicU64,
}

/// The per-worker state: a contiguous node range with exclusively owned
/// FIFO/slab/worklist/stats arenas, indexed locally (`node - lo`,
/// `edge - edge_lo`).
struct Shard<'p> {
    lo: usize,
    hi: usize,
    edge_lo: usize,
    queues: LinkQueues,
    occupancy: Vec<u32>,
    slot_mask: Vec<u64>,
    on_list: Vec<bool>,
    active: Vec<u32>,
    next_active: Vec<u32>,
    slab: PacketSlab,
    inj: Vec<&'p Packet>,
    next_inject: usize,
    acc: StatsAcc,
    queued: u64,
    /// Commit-phase delivery latencies, batch-folded into the
    /// accumulator once per cycle ([`StatsAcc::deliver_batch`]).
    lat_scratch: Vec<u64>,
}

impl<'p> Shard<'p> {
    fn new(
        g: &CsrGraph,
        lo: usize,
        hi: usize,
        masked_scan: bool,
        inj: Vec<&'p Packet>,
        n: usize,
    ) -> Shard<'p> {
        debug_assert!(lo < hi, "shards are non-empty (threads <= nodes)");
        let edge_lo = g.edge_range(lo as u32).start;
        let edge_hi = g.edge_range(hi as u32 - 1).end;
        let local = hi - lo;
        Shard {
            lo,
            hi,
            edge_lo,
            queues: LinkQueues::new(edge_hi - edge_lo),
            occupancy: vec![0; local],
            slot_mask: vec![0; if masked_scan { local } else { 0 }],
            on_list: vec![false; local],
            active: Vec::new(),
            next_active: Vec::new(),
            slab: PacketSlab::new(),
            inj,
            next_inject: 0,
            acc: StatsAcc::for_network(n),
            queued: 0,
            lat_scratch: Vec::new(),
        }
    }

    /// Routes and enqueues one packet at `node` (which this shard owns):
    /// the shard-local mirror of `Fabric::route_and_enqueue`, with the
    /// adaptive-router load view windowed at the shard's edge offset.
    #[inline]
    fn route_and_enqueue<R: Router + ?Sized>(
        &mut self,
        g: &CsrGraph,
        routing: &Routing<'_, R>,
        node: u32,
        dst: u32,
        inject: u64,
    ) {
        let id = self.slab.alloc(dst, inject);
        let base = g.edge_range(node).start;
        let e = match routing {
            Routing::Table(table) => table
                .next_edge(node, dst)
                .expect("routing a packet not yet at dst"),
            Routing::PerHop(router) => {
                let hop = {
                    let load = NodeLoad {
                        loads: self.queues.loads(),
                        base: base - self.edge_lo,
                    };
                    router
                        .next_hop(node, dst, &load)
                        .expect("routing a packet not yet at dst")
                };
                base + g
                    .slot_of(node, hop)
                    .expect("next_hop must return a neighbor")
            }
        };
        self.queues.push(e - self.edge_lo, id);
        let li = node as usize - self.lo;
        if let Some(mask) = self.slot_mask.get_mut(li) {
            *mask |= 1u64 << (e - base);
        }
        self.occupancy[li] += 1;
        self.queued += 1;
        if !self.on_list[li] {
            self.on_list[li] = true;
            self.active.push(node);
        }
    }

    /// Injects every packet due at `cycle` — same admission, typed-drop,
    /// and self-addressed handling as the serial engine, restricted to
    /// this shard's sources in the global time-sorted order.
    fn inject<R: Router + ?Sized, F: FaultPolicy>(
        &mut self,
        g: &CsrGraph,
        routing: &Routing<'_, R>,
        admission: &F,
        cycle: u64,
    ) {
        while self.next_inject < self.inj.len() && self.inj[self.next_inject].inject_time <= cycle {
            let p = self.inj[self.next_inject];
            self.next_inject += 1;
            if let Some(reason) = admission.verdict(p.src, p.dst) {
                self.acc.drop_packet(reason);
                continue;
            }
            if p.src == p.dst {
                self.acc.deliver_instant();
                continue;
            }
            self.route_and_enqueue(g, routing, p.src, p.dst, p.inject_time);
        }
    }

    /// The forward scan over this shard's active nodes, ascending node
    /// and edge order — each pop appends to the outbox (releasing the
    /// local slab entry; the arrival record carries the packet) instead
    /// of enqueuing directly.
    fn forward(&mut self, g: &CsrGraph, outbox: &mut Vec<Arrival>) {
        self.active.sort_unstable();
        for i in 0..self.active.len() {
            let u = self.active[i];
            let li = u as usize - self.lo;
            self.on_list[li] = false;
            let base = g.edge_range(u).start;
            if !self.slot_mask.is_empty() {
                let mut mask = self.slot_mask[li];
                let mut remaining = mask;
                while remaining != 0 {
                    let slot = remaining.trailing_zeros() as usize;
                    remaining &= remaining - 1;
                    let e = base + slot - self.edge_lo;
                    let id = self
                        .queues
                        .pop(e)
                        .expect("mask bit implies a queued packet");
                    if self.queues.load(e) == 0 {
                        mask &= !(1u64 << slot);
                    }
                    outbox.push(Arrival {
                        node: g.target(base + slot),
                        dst: self.slab.dst(id),
                        inject: self.slab.inject(id),
                    });
                    self.slab.release(id);
                    self.occupancy[li] -= 1;
                    self.queued -= 1;
                    self.acc.total_hops += 1;
                }
                self.slot_mask[li] = mask;
            } else {
                for ge in g.edge_range(u) {
                    if let Some(id) = self.queues.pop(ge - self.edge_lo) {
                        outbox.push(Arrival {
                            node: g.target(ge),
                            dst: self.slab.dst(id),
                            inject: self.slab.inject(id),
                        });
                        self.slab.release(id);
                        self.occupancy[li] -= 1;
                        self.queued -= 1;
                        self.acc.total_hops += 1;
                    }
                }
            }
            if self.occupancy[li] > 0 {
                self.on_list[li] = true;
                self.next_active.push(u);
            }
        }
        self.active.clear();
        std::mem::swap(&mut self.active, &mut self.next_active);
    }

    /// The worker loop: lockstep cycles of propose / barrier / commit /
    /// barrier. Every worker reads the same published slot values at the
    /// top of each cycle, so all make identical skip/stop decisions and
    /// the barriers never starve.
    #[allow(clippy::too_many_arguments)]
    fn run<R: Router + ?Sized, F: FaultPolicy>(
        &mut self,
        g: &CsrGraph,
        routing: &Routing<'_, R>,
        admission: &F,
        slots: &[ShardSlot],
        outboxes: &[RwLock<Vec<Arrival>>],
        barrier: &Barrier,
        max_cycles: u64,
        me: usize,
    ) {
        let mut cycle: u64 = 0;
        while cycle < max_cycles {
            // Shared top-of-cycle decision, replicating the serial
            // engine's idle fast-forward: when nothing is queued
            // anywhere, jump to the earliest pending injection or stop.
            let total_queued: u64 = slots.iter().map(|s| s.queued.load(Ordering::Relaxed)).sum();
            if total_queued == 0 {
                let t = slots
                    .iter()
                    .map(|s| s.next_time.load(Ordering::Relaxed))
                    .min()
                    .unwrap_or(u64::MAX);
                if t == u64::MAX {
                    break;
                }
                if t > cycle {
                    if t >= max_cycles {
                        break;
                    }
                    cycle = t;
                }
            }

            // Propose: inject + forward into this shard's outbox.
            {
                let mut outbox = outboxes[me].write().expect("outbox lock");
                outbox.clear();
                self.inject(g, routing, admission, cycle);
                self.forward(g, &mut outbox);
            }
            barrier.wait();

            // Commit: consume arrivals addressed to this shard, in
            // global (node, edge) pop order = shard order × outbox
            // order. Deliveries batch into the accumulator.
            let now = cycle + 1;
            for ob in outboxes {
                let ob = ob.read().expect("outbox lock");
                for a in ob.iter() {
                    if (a.node as usize) < self.lo || (a.node as usize) >= self.hi {
                        continue;
                    }
                    if a.node == a.dst {
                        self.lat_scratch.push(now - a.inject);
                    } else {
                        self.route_and_enqueue(g, routing, a.node, a.dst, a.inject);
                    }
                }
            }
            self.acc.deliver_batch(now, &self.lat_scratch);
            self.lat_scratch.clear();

            // Publish post-commit state for the next shared decision.
            slots[me].queued.store(self.queued, Ordering::Relaxed);
            slots[me].next_time.store(
                self.inj
                    .get(self.next_inject)
                    .map_or(u64::MAX, |p| p.inject_time),
                Ordering::Relaxed,
            );
            barrier.wait();
            cycle += 1;
        }
    }

    /// The churned worker loop: [`Shard::run`]'s propose/commit cycle
    /// with an event phase at the top of event cycles and the serial
    /// churn engine's arrival-time death/partition drops in commit.
    #[allow(clippy::too_many_arguments)]
    fn run_churn<R: Router + ?Sized>(
        &mut self,
        g: &CsrGraph,
        router: &RwLock<FaultMaskingRouter<'_, R>>,
        events: &[ChurnEvent],
        slots: &[ShardSlot],
        outboxes: &[RwLock<Vec<Arrival>>],
        barrier: &Barrier,
        max_cycles: u64,
        me: usize,
    ) {
        let mut next_event = 0usize;
        let mut cycle: u64 = 0;
        while cycle < max_cycles {
            let total_queued: u64 = slots.iter().map(|s| s.queued.load(Ordering::Relaxed)).sum();
            if total_queued == 0 {
                let t = slots
                    .iter()
                    .map(|s| s.next_time.load(Ordering::Relaxed))
                    .min()
                    .unwrap_or(u64::MAX);
                if t == u64::MAX {
                    break;
                }
                if t > cycle {
                    if t >= max_cycles {
                        break;
                    }
                    cycle = t;
                }
            }

            // Event phase: every worker advances the same cursor over
            // the shared timeline, so all agree on "events due" and the
            // extra barrier below never starves. Worker 0 owns the
            // router mutation; each worker flushes its own dying queues
            // concurrently (local state only).
            let due_start = next_event;
            while next_event < events.len() && events[next_event].cycle <= cycle {
                next_event += 1;
            }
            if due_start != next_event {
                let due = &events[due_start..next_event];
                if me == 0 {
                    let mut r = router.write().expect("router lock");
                    for ev in due {
                        r.apply_event(ev);
                    }
                }
                for ev in due {
                    if ev.failed {
                        self.flush_event(g, ev);
                    }
                }
                barrier.wait();
            }

            // The rest of the cycle reads one consistent router epoch.
            {
                let r = router.read().expect("router lock");
                let routing = Routing::PerHop(&*r);
                {
                    let mut outbox = outboxes[me].write().expect("outbox lock");
                    outbox.clear();
                    self.inject(g, &routing, &ChurnAdmission::new(&r), cycle);
                    self.forward(g, &mut outbox);
                }
                barrier.wait();

                let now = cycle + 1;
                for ob in outboxes {
                    let ob = ob.read().expect("outbox lock");
                    for a in ob.iter() {
                        if (a.node as usize) < self.lo || (a.node as usize) >= self.hi {
                            continue;
                        }
                        if a.node == a.dst {
                            self.lat_scratch.push(now - a.inject);
                        } else if !r.node_alive(a.dst) {
                            self.acc.drop_packet(DropReason::NodeDied);
                        } else if !r.reachable(a.node, a.dst) {
                            self.acc.drop_packet(DropReason::Unreachable);
                        } else {
                            self.route_and_enqueue(g, &routing, a.node, a.dst, a.inject);
                        }
                    }
                }
                self.acc.deliver_batch(now, &self.lat_scratch);
                self.lat_scratch.clear();
            }

            slots[me].queued.store(self.queued, Ordering::Relaxed);
            slots[me].next_time.store(
                self.inj
                    .get(self.next_inject)
                    .map_or(u64::MAX, |p| p.inject_time),
                Ordering::Relaxed,
            );
            barrier.wait();
            cycle += 1;
        }
    }

    /// Flushes the queues this shard owns that a failure event kills,
    /// as typed drops — the shard-local half of the serial engine's
    /// flush (counts merge exactly; the flushed set is partitioned by
    /// queue ownership).
    fn flush_event(&mut self, g: &CsrGraph, ev: &ChurnEvent) {
        match ev.target {
            ChurnTarget::Link(u, v) => {
                for (a, b) in [(u, v), (v, u)] {
                    if (a as usize) >= self.lo && (a as usize) < self.hi {
                        if let Some(slot) = g.slot_of(a, b) {
                            let e = g.edge_range(a).start + slot;
                            self.flush_edge_local(g, a, e, DropReason::LinkDied);
                        }
                    }
                }
            }
            ChurnTarget::Node(x) => {
                if (x as usize) >= self.lo && (x as usize) < self.hi {
                    for e in g.edge_range(x) {
                        self.flush_edge_local(g, x, e, DropReason::NodeDied);
                    }
                }
                for &y in g.neighbors(x) {
                    if (y as usize) >= self.lo && (y as usize) < self.hi {
                        if let Some(back) = g.slot_of(y, x) {
                            let e = g.edge_range(y).start + back;
                            self.flush_edge_local(g, y, e, DropReason::NodeDied);
                        }
                    }
                }
            }
        }
    }

    /// Drains the local FIFO of global directed edge `e` out of `node`
    /// as typed drops, fixing the shard's occupancy/mask bookkeeping.
    fn flush_edge_local(&mut self, g: &CsrGraph, node: u32, e: usize, reason: DropReason) {
        let le = e - self.edge_lo;
        let li = node as usize - self.lo;
        while let Some(id) = self.queues.pop(le) {
            self.slab.release(id);
            self.occupancy[li] -= 1;
            self.queued -= 1;
            self.acc.drop_packet(reason);
        }
        let base = g.edge_range(node).start;
        if let Some(mask) = self.slot_mask.get_mut(li) {
            *mask &= !(1u64 << (e - base));
        }
    }
}

fn run_sharded<T, R, F>(
    topology: &T,
    router: &R,
    admission: &F,
    packets: &[Packet],
    max_cycles: u64,
    threads: usize,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + Sync + ?Sized,
    F: FaultPolicy + Sync,
{
    let n = topology.len();
    let g = topology.graph();
    let routing = routing_for(topology, router, packets.len());
    let masked_scan = g.max_degree() <= 64;

    // Global time-sorted injection order (stable), split per shard —
    // each shard's list keeps the global relative order.
    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let bounds: Vec<usize> = (0..=threads).map(|s| s * n / threads).collect();
    let mut shard_inj: Vec<Vec<&Packet>> = (0..threads).map(|_| Vec::new()).collect();
    for p in &inj {
        let s = bounds.partition_point(|&b| b <= p.src as usize) - 1;
        shard_inj[s].push(p);
    }

    let slots: Vec<ShardSlot> = shard_inj
        .iter()
        .map(|inj_s| ShardSlot {
            queued: AtomicU64::new(0),
            next_time: AtomicU64::new(inj_s.first().map_or(u64::MAX, |p| p.inject_time)),
        })
        .collect();
    let outboxes: Vec<RwLock<Vec<Arrival>>> =
        (0..threads).map(|_| RwLock::new(Vec::new())).collect();
    let barrier = Barrier::new(threads);

    let mut accs: Vec<StatsAcc> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (s, inj_s) in shard_inj.into_iter().enumerate() {
            let (slots, outboxes, barrier) = (&slots, &outboxes, &barrier);
            let (routing, bounds) = (&routing, &bounds);
            handles.push(scope.spawn(move || {
                let mut shard = Shard::new(g, bounds[s], bounds[s + 1], masked_scan, inj_s, n);
                shard.run(
                    g, routing, admission, slots, outboxes, barrier, max_cycles, s,
                );
                shard.acc
            }));
        }
        for h in handles {
            accs.push(h.join().expect("shard worker panicked"));
        }
    });

    // Merge in shard (node) order — exact integer folds, so the result
    // equals the serial accumulator bit for bit.
    let mut acc = StatsAcc::for_network(n);
    for a in accs {
        acc.merge(a);
    }
    acc.finish(packets.len())
}
