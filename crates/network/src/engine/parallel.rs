//! The pooled driver of the unified stepper: `k` lanes on a scoped
//! thread pool, exchanging outbox messages under a barrier protocol.
//!
//! This module contains **no cycle logic**: the per-cycle stages live on
//! the workloads ([`LaneWorkload`]), and the one stepper driving them,
//! [`run_lane`](super::stepper::run_lane), is the same function the
//! serial entry points run under the no-sync
//! [`Solo`](super::stepper::Solo) protocol. Here the protocol is
//! [`Pooled`]: per-lane `RwLock`'d outboxes and published atomic
//! counters, with two [`Barrier`] waits per cycle — one after
//! **propose** (every outbox is filled, so commit may read them all in
//! ascending lane order, exactly the serial scan order) and one inside
//! **exchange** (every lane has published its queued/next-pending pair;
//! the wait fences this cycle's commit reads from the next cycle's
//! propose writes). Every control-flow decision derives from the
//! exchanged global pair or from deterministically replicated state, so
//! all lanes hit the same barriers the same number of times, and
//! blocking waits make oversubscription safe — slower, never wrong.
//! Lane `s` owns the node shard `[s·n/k, (s+1)·n/k)`, stages touch only
//! lane-local arena state, and cross-lane effects travel as typed
//! outbox messages committed in lane order, so merged statistics and
//! observer output are **bit-identical at any thread count** — the
//! property the proptests and `sweep --check-threads` pin down for
//! every policy combination.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, RwLock};

use crate::collective::CopyPlan;
use crate::fault::{ChurnTimeline, FaultSet};
use crate::observer::{NoopObserver, SimObserver};
use crate::router::{FaultMaskingRouter, Router};
use crate::topology::Topology;
use crate::traffic::Packet;

use super::churn::{simulate_churn, simulate_request_reply, ChurnUnicast, RequestReplyLoad};
use super::core::{routing_for, run_core_pool, Replicate, Unicast};
use super::policy::{AdmitAll, MaskedAdmission};
use super::stats::SimStats;
use super::stepper::{run_lane, LaneWorkload, Protocol};

/// Sentinel for "no pending traffic" in the published atomic.
const NO_PENDING: u64 = u64::MAX;

/// One lane's published counters: its queued packet count and the cycle
/// of its next pending traffic action (`NO_PENDING` if none).
struct ShardSlot {
    queued: AtomicU64,
    next: AtomicU64,
}

/// The pooled lane protocol — see the module docs for the barrier
/// schedule and the determinism argument.
struct Pooled<'a, M> {
    outboxes: &'a [RwLock<Vec<M>>],
    slots: &'a [ShardSlot],
    barrier: &'a Barrier,
}

impl<M> Protocol<M> for Pooled<'_, M> {
    fn exchange(&self, me: usize, queued: u64, next: Option<u64>) -> (u64, Option<u64>) {
        let slot = &self.slots[me];
        slot.queued.store(queued, Ordering::Relaxed);
        slot.next
            .store(next.unwrap_or(NO_PENDING), Ordering::Relaxed);
        self.barrier.wait();
        let mut sum = 0u64;
        let mut min = NO_PENDING;
        for s in self.slots {
            sum += s.queued.load(Ordering::Relaxed);
            min = min.min(s.next.load(Ordering::Relaxed));
        }
        (sum, (min != NO_PENDING).then_some(min))
    }

    fn propose(&self, me: usize, fill: impl FnOnce(&mut Vec<M>)) {
        let mut out = self.outboxes[me].write().unwrap();
        out.clear();
        fill(&mut out);
        drop(out);
        self.barrier.wait();
    }

    fn commit(&self, _me: usize, mut visit: impl FnMut(&M)) {
        for outbox in self.outboxes {
            for msg in outbox.read().unwrap().iter() {
                visit(msg);
            }
        }
    }
}

/// Runs the given lanes to completion on a scoped thread pool (one OS
/// thread per lane) and hands them back for the caller's ordered merge.
pub(crate) fn run_pool<W>(mut lanes: Vec<W>, max_cycles: u64) -> Vec<W>
where
    W: LaneWorkload + Send,
    W::Msg: Send + Sync,
{
    let k = lanes.len();
    let outboxes: Vec<RwLock<Vec<W::Msg>>> = (0..k).map(|_| RwLock::new(Vec::new())).collect();
    let slots: Vec<ShardSlot> = (0..k)
        .map(|_| ShardSlot {
            queued: AtomicU64::new(0),
            next: AtomicU64::new(NO_PENDING),
        })
        .collect();
    let barrier = Barrier::new(k);
    std::thread::scope(|scope| {
        for (me, lane) in lanes.iter_mut().enumerate() {
            let proto = Pooled {
                outboxes: &outboxes,
                slots: &slots,
                barrier: &barrier,
            };
            scope.spawn(move || run_lane(lane, &proto, me, max_cycles));
        }
    });
    lanes
}

/// Runs the store-and-forward simulation sharded across `threads` OS
/// threads (clamped to `[1, nodes]`; `<= 1` runs the serial engine),
/// returning **exactly** the serial [`SimStats`], histograms included.
/// A non-empty `faults` set applies the same [`FaultMaskingRouter`]
/// detours and typed drops as
/// [`simulate_faulted`](crate::simulate_faulted).
pub fn simulate_parallel<T, R>(
    topology: &T,
    router: &R,
    faults: &FaultSet,
    packets: &[Packet],
    max_cycles: u64,
    threads: usize,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + Sync + ?Sized,
{
    let o = &mut NoopObserver;
    simulate_parallel_observed(topology, router, faults, packets, max_cycles, threads, o)
}

/// [`simulate_parallel`] with an observer attached: each lane runs a
/// [`SimObserver::fork`] of `observer`, and the forks merge back in
/// ascending lane order — the merged output equals the serial run's.
///
/// # Panics
///
/// Panics if `threads > 1` and [`SimObserver::fork`] returns `None`;
/// the experiment layer pre-checks and reports a typed error instead.
pub fn simulate_parallel_observed<T, R, O>(
    topology: &T,
    router: &R,
    faults: &FaultSet,
    packets: &[Packet],
    max_cycles: u64,
    threads: usize,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + Sync + ?Sized,
    O: SimObserver + Send,
{
    let n = topology.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return super::simulate_faulted(topology, router, faults, packets, max_cycles, observer);
    }
    let admit = AdmitAll;
    if faults.is_empty() {
        let plan = routing_for(topology, router, packets.len());
        let make = |lo, hi| Unicast::for_range(plan.as_ref(), packets, lo, hi, &admit);
        run_core_pool(topology, packets.len(), max_cycles, observer, threads, make).0
    } else {
        let masked = FaultMaskingRouter::new(topology.graph(), router, faults);
        let admission = MaskedAdmission::new(&masked);
        let plan = routing_for(topology, &masked, packets.len());
        let make = |lo, hi| Unicast::for_range(plan.as_ref(), packets, lo, hi, &admission);
        run_core_pool(topology, packets.len(), max_cycles, observer, threads, make).0
    }
}

/// [`simulate_churn`] sharded across `threads` OS threads. Each lane
/// owns a **replica** of the masked router and applies the same event
/// stream in its event-commit stage — no shared lock anywhere, and
/// bit-identical to the serial churn engine at any thread count.
pub fn simulate_parallel_churn<T, R>(
    topology: &T,
    router: &R,
    timeline: &ChurnTimeline,
    packets: &[Packet],
    max_cycles: u64,
    threads: usize,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + Sync + ?Sized,
{
    let o = &mut NoopObserver;
    simulate_parallel_churn_observed(topology, router, timeline, packets, max_cycles, threads, o)
}

/// [`simulate_parallel_churn`] with a forked observer — see
/// [`simulate_parallel_observed`] for the fork/merge contract.
pub fn simulate_parallel_churn_observed<T, R, O>(
    topology: &T,
    router: &R,
    timeline: &ChurnTimeline,
    packets: &[Packet],
    max_cycles: u64,
    threads: usize,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + Sync + ?Sized,
    O: SimObserver + Send,
{
    let n = topology.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return simulate_churn(topology, router, timeline, packets, max_cycles, observer);
    }
    if timeline.is_empty() {
        // Zero churn is the healthy network: skip the replica builds.
        let empty = FaultSet::empty();
        return simulate_parallel_observed(
            topology, router, &empty, packets, max_cycles, threads, observer,
        );
    }
    let g = topology.graph();
    let make = |lo, hi| ChurnUnicast::open(g, router, timeline.events(), packets, lo, hi);
    run_core_pool(topology, packets.len(), max_cycles, observer, threads, make).0
}

/// [`simulate_request_reply`] sharded across `threads` OS threads: the
/// session machine is replicated on every lane (identical RNG streams),
/// with packet effects gated on node ownership. `stats.offered` comes
/// from lane 0's replica, exactly the serial machine's tally.
pub fn simulate_parallel_request_reply<T, R, O>(
    topology: &T,
    router: &R,
    timeline: &ChurnTimeline,
    load: &RequestReplyLoad,
    max_cycles: u64,
    threads: usize,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + Sync + ?Sized,
    O: SimObserver + Send,
{
    let n = topology.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return simulate_request_reply(topology, router, timeline, load, max_cycles, observer);
    }
    assert!(n >= 2, "request/reply needs a peer to talk to (>= 2 nodes)");
    let g = topology.graph();
    let (mut stats, lanes) = run_core_pool(topology, 0, max_cycles, observer, threads, |_, _| {
        ChurnUnicast::closed(g, router, timeline.events(), load, n as u32)
    });
    stats.offered = lanes[0].offered();
    stats
}

/// [`simulate_collective`](crate::simulate_collective) sharded across
/// `threads` OS threads: copies spawn at the lane owning the spawning
/// node and the reached-target tally sums over lanes.
pub fn simulate_parallel_collective<T, O>(
    topology: &T,
    plan: &CopyPlan,
    max_cycles: u64,
    threads: usize,
    observer: &mut O,
) -> (SimStats, usize)
where
    T: Topology + ?Sized,
    O: SimObserver + Send,
{
    let n = topology.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return super::simulate_collective(topology, plan, max_cycles, observer);
    }
    let make = |_, _| Replicate::new(plan);
    let (stats, lanes) = run_core_pool(
        topology,
        plan.offered(),
        max_cycles,
        observer,
        threads,
        make,
    );
    (stats, lanes.iter().map(|w| w.reached_targets).sum())
}
