//! The compile-time policy axes of the unified engine core.
//!
//! One engine, three orthogonal policies (plus the [`SimObserver`]
//! event axis):
//!
//! - [`SwitchingPolicy`] — how packets occupy links: whole-packet
//!   store-and-forward ([`StoreAndForward`]) or flit-level wormhole with
//!   virtual channels ([`FlitWormhole`]).
//! - [`FaultPolicy`] — injection admission: admit everything
//!   ([`AdmitAll`]) or drop packets whose endpoints are dead or
//!   disconnected, with typed reasons ([`MaskedAdmission`]).
//! - [`ReplicationPolicy`] — what happens to a packet at the far end of
//!   a hop: unicast routing toward a destination, or tree replication at
//!   intermediate nodes (the collective path).
//!
//! Every policy is a zero-sized or reference-carrying struct resolved at
//! compile time, so each combination monomorphizes to the same
//! specialized loop the pre-unification engine variants compiled to —
//! the "zero-cost gate" the equivalence tests pin down.

use crate::arena::PacketSlab;
use crate::observer::SimObserver;
use crate::router::{FaultMaskingRouter, Router};
use crate::topology::Topology;
use crate::traffic::Packet;

use super::core::{routing_for, run_core, Core, SafMsg, Unicast};
use super::stats::{DropReason, SimStats};
use super::wormhole::wormhole_engine;

/// Injection-time admission policy: decides per packet whether the
/// engine routes it or drops it with a typed reason.
///
/// # Invariants
///
/// - `verdict` must be **pure and stable between fault-epoch
///   boundaries**: the same `(src, dst)` pair always gets the same
///   answer while the fault state is unchanged (the parallel engine
///   calls it from several threads and the serial/parallel equivalence
///   depends on it). Policies over static fault sets ([`AdmitAll`],
///   [`MaskedAdmission`]) are stable for the whole run; under churn the
///   engine applies fault events only at cycle boundaries, between the
///   arrival phase and the next injection phase, so every verdict
///   within one cycle sees one consistent epoch ([`ChurnAdmission`]).
/// - A `Some(reason)` verdict means the packet never enters the network:
///   it is counted under the matching typed-drop statistic at its inject
///   cycle and no link state changes.
/// - Healthy runs use [`AdmitAll`], which monomorphizes the drop branch
///   away entirely — attaching a fault policy must cost nothing when
///   there are no faults.
pub trait FaultPolicy {
    /// `Some(reason)` to drop the packet at injection, `None` to route.
    fn verdict(&self, src: u32, dst: u32) -> Option<DropReason>;
}

/// Admits everything — monomorphizes the drop branch away entirely.
pub struct AdmitAll;

impl FaultPolicy for AdmitAll {
    #[inline]
    fn verdict(&self, _src: u32, _dst: u32) -> Option<DropReason> {
        None
    }
}

/// Admission against a [`FaultMaskingRouter`]'s masks and healthy-BFS
/// reachability: dead endpoints drop as
/// [`DropReason::DeadEndpoint`], surviving-but-disconnected pairs as
/// [`DropReason::Unreachable`].
pub struct MaskedAdmission<'a, 'b, R: Router + ?Sized> {
    masked: &'a FaultMaskingRouter<'b, R>,
}

impl<'a, 'b, R: Router + ?Sized> MaskedAdmission<'a, 'b, R> {
    /// Admission checked against `masked`'s node liveness and
    /// reachability — the same masked router the degraded run routes
    /// through, so admitted packets are guaranteed routable.
    pub fn new(masked: &'a FaultMaskingRouter<'b, R>) -> MaskedAdmission<'a, 'b, R> {
        MaskedAdmission { masked }
    }
}

impl<R: Router + ?Sized> FaultPolicy for MaskedAdmission<'_, '_, R> {
    fn verdict(&self, src: u32, dst: u32) -> Option<DropReason> {
        if !self.masked.node_alive(src) || !self.masked.node_alive(dst) {
            Some(DropReason::DeadEndpoint)
        } else if src != dst && !self.masked.reachable(src, dst) {
            Some(DropReason::Unreachable)
        } else {
            None
        }
    }
}

/// Epoch-scoped admission for churned runs: the same liveness and
/// reachability checks as [`MaskedAdmission`], but against a
/// [`FaultMaskingRouter`] whose masks change mid-run as churn events
/// apply. The churn engine constructs one per borrow *after* the
/// cycle's events commit, so every verdict in a cycle sees the same
/// fault epoch — the weakest stability [`FaultPolicy`] permits.
pub struct ChurnAdmission<'a, 'b, R: Router + ?Sized> {
    masked: &'a FaultMaskingRouter<'b, R>,
}

impl<'a, 'b, R: Router + ?Sized> ChurnAdmission<'a, 'b, R> {
    /// Admission against `masked`'s *current* epoch. The borrow must not
    /// outlive the cycle that created it: the next event application
    /// invalidates its verdicts.
    pub fn new(masked: &'a FaultMaskingRouter<'b, R>) -> ChurnAdmission<'a, 'b, R> {
        ChurnAdmission { masked }
    }
}

impl<R: Router + ?Sized> FaultPolicy for ChurnAdmission<'_, '_, R> {
    fn verdict(&self, src: u32, dst: u32) -> Option<DropReason> {
        if !self.masked.node_alive(src) || !self.masked.node_alive(dst) {
            Some(DropReason::DeadEndpoint)
        } else if src != dst && !self.masked.reachable(src, dst) {
            Some(DropReason::Unreachable)
        } else {
            None
        }
    }
}

/// The workload half of the store-and-forward engine: the per-cycle
/// *stages* the unified stepper (`engine/stepper.rs`)
/// drives against one lane's [`Core`]. A lane is a contiguous node
/// shard — the whole network in a serial run, one of `k` shards in a
/// sharded one — and the **same** monomorphized stage code runs either
/// way; only the outbox protocol between stages differs. Crate-internal
/// impls cover unicast routing, collective tree replication, and the
/// churn/request-reply workloads — the trait is public for
/// documentation, but a [`Core`] can only be driven from inside the
/// crate.
///
/// # Invariants (the sharding contract)
///
/// - `next_pending` feeds the lockstep idle-skip/termination decision:
///   min-folded over lanes it must equal the serial engine's
///   next-traffic cycle. It must not touch arena state.
/// - `commit_events` (the churn event-commit stage) runs first each
///   executed cycle. Event *decisions* must be lane-invariant
///   (replicated deterministic state); event *effects* (queue flushes,
///   drop accounting) must be gated on node ownership.
/// - `inject` may create packets only at nodes the lane owns
///   (`Core::owns`); admission verdicts must be identical on every
///   lane that evaluates them (same fault epoch — see [`FaultPolicy`]).
/// - `depart` observes each packet the forward scan pops **before** its
///   slab slot is released, and may fill the workload-overloaded
///   `SafMsg` fields; it must not touch link state.
/// - `commit` is called for **every** lane's messages in ascending lane
///   order — the serial pop order. Real effects (delivery, re-enqueue,
///   drop accounting) must be gated on `core.owns(msg.node)`; mirror
///   state that every lane replicates (the request/reply session
///   machine) updates unconditionally and identically on every lane.
/// - `end_cycle` runs after all of the cycle's commits and before the
///   `on_cycle_end` event (the one-port collective uses it to spawn
///   follow-up copies that must not depart until the next cycle).
pub trait ReplicationPolicy<O: SimObserver> {
    /// The earliest future cycle at which this lane can add new traffic,
    /// or `None` if it never will. Drives the idle fast-forward and the
    /// drained-run termination check.
    fn next_pending(&mut self) -> Option<u64>;

    /// Event-commit stage: applies due fault/repair events (churn).
    /// Default: no events.
    fn commit_events(&mut self, cycle: u64, core: &mut Core<'_, O>) {
        let _ = (cycle, core);
    }

    /// Injection stage: admits due traffic at this lane's own nodes.
    fn inject(&mut self, cycle: u64, core: &mut Core<'_, O>);

    /// Pop-time hook: fills workload-specific `SafMsg` fields before
    /// the slab slot is released. Default: the unicast fields stand.
    fn depart(&mut self, u: u32, id: u32, slab: &PacketSlab, msg: &mut SafMsg) {
        let _ = (u, id, slab, msg);
    }

    /// Arrival-commit stage: one message, presented to every lane in
    /// the serial pop order at the `cycle + 1` boundary.
    fn commit(&mut self, now: u64, msg: &SafMsg, core: &mut Core<'_, O>);

    /// End-of-cycle stage, after every commit of cycle `now` resolved.
    /// Default: nothing deferred.
    fn end_cycle(&mut self, now: u64, core: &mut Core<'_, O>) {
        let _ = (now, core);
    }
}

/// How packets occupy links while crossing the network. The policy owns
/// the whole engine loop for its model (the two models differ in their
/// per-link state — packet FIFOs vs flit buffers × virtual channels —
/// not just in a hook), parameterized over the same topology, router,
/// observer, and fault axes.
///
/// # Invariants
///
/// - Injection admission, idle fast-forward, self-addressed delivery,
///   forward-scan order (ascending node, then edge), and the
///   `cycle + 1` arrival boundary are identical across implementations
///   — a degenerate wormhole configuration (1 flit/packet, 1 VC,
///   unbounded buffers) must reproduce [`StoreAndForward`] exactly.
/// - Packet-level accounting ([`SimStats`], `on_hop`, hop counts)
///   follows the packet's head; flit-level movement is observable only
///   through `on_flit_hop`.
/// - `offered == delivered + dropped + still-in-flight` holds under any
///   cycle cap.
pub trait SwitchingPolicy {
    /// Runs a unicast packet workload under this switching model.
    fn run_unicast<T, R, O, F>(
        &self,
        topology: &T,
        router: &R,
        packets: &[Packet],
        max_cycles: u64,
        observer: &mut O,
        faults: &F,
    ) -> SimStats
    where
        T: Topology + ?Sized,
        R: Router + ?Sized,
        O: SimObserver,
        F: FaultPolicy;
}

/// Whole-packet store-and-forward switching: every directed link moves
/// at most one packet per cycle between unbounded FIFO queues.
pub struct StoreAndForward;

impl SwitchingPolicy for StoreAndForward {
    fn run_unicast<T, R, O, F>(
        &self,
        topology: &T,
        router: &R,
        packets: &[Packet],
        max_cycles: u64,
        observer: &mut O,
        faults: &F,
    ) -> SimStats
    where
        T: Topology + ?Sized,
        R: Router + ?Sized,
        O: SimObserver,
        F: FaultPolicy,
    {
        let plan = routing_for(topology, router, packets.len());
        let n = topology.len() as u32;
        let (stats, _) = run_core(
            topology,
            packets.len(),
            max_cycles,
            observer,
            Unicast::for_range(plan.as_ref(), packets, 0, n, faults),
        );
        stats
    }
}

/// Flit-level wormhole switching with virtual channels and credit
/// backpressure: each packet is `flits_per_packet` flits streaming
/// through a chain of (link × VC) buffers of `buf_flits` capacity. See
/// [`simulate_wormhole`](crate::simulate_wormhole) for the model and
/// [`switching`](crate::switching) for the deadlock-freedom argument.
pub struct FlitWormhole {
    /// Flits per packet (≥ 1); 1 degenerates to packet switching.
    pub flits_per_packet: u32,
    /// Virtual channels per directed link (≥ 1).
    pub vcs: u32,
    /// Flit capacity of each (link × VC) buffer (≥ 1).
    pub buf_flits: u32,
}

impl SwitchingPolicy for FlitWormhole {
    fn run_unicast<T, R, O, F>(
        &self,
        topology: &T,
        router: &R,
        packets: &[Packet],
        max_cycles: u64,
        observer: &mut O,
        faults: &F,
    ) -> SimStats
    where
        T: Topology + ?Sized,
        R: Router + ?Sized,
        O: SimObserver,
        F: FaultPolicy,
    {
        wormhole_engine(
            topology,
            router,
            self.flits_per_packet,
            self.vcs,
            self.buf_flits,
            packets,
            max_cycles,
            observer,
            faults,
        )
    }
}
