//! The seed's original full-scan engines, kept verbatim as behavioural
//! oracles: the property tests compare the arena engines against them
//! packet for packet, and the sweep binary measures speedups over them.

use std::collections::VecDeque;

use crate::fault::FaultSet;
use crate::router::{FaultMaskingRouter, LinkLoad, Router};
use crate::topology::Topology;
use crate::traffic::Packet;

use super::stats::{SimStats, StatsAcc};

/// The reference engines' per-packet record (the arena engine keeps this
/// state in the [`PacketSlab`](crate::arena::PacketSlab) columns
/// instead).
#[derive(Clone, Debug)]
struct InFlight {
    dst: u32,
    inject_time: u64,
}

/// The seed's original engine, kept verbatim as a behavioural oracle and
/// speedup baseline: scans every node every cycle and binary-searches the
/// neighbor list on every hop, routing through `Topology::next_hop`.
pub fn simulate_reference(
    topology: &dyn Topology,
    packets: &[Packet],
    max_cycles: u64,
) -> SimStats {
    let n = topology.len();
    let graph = topology.graph();
    let mut queues: Vec<Vec<VecDeque<InFlight>>> = (0..n)
        .map(|u| vec![VecDeque::new(); graph.degree(u as u32)])
        .collect();
    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let mut next_inject = 0usize;

    let slot_of = |u: u32, v: u32| -> usize {
        graph
            .neighbors(u)
            .binary_search(&v)
            .expect("next_hop must return a neighbor")
    };

    let mut acc = StatsAcc::for_network(n);
    let mut in_flight = 0usize;

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        while next_inject < inj.len() && inj[next_inject].inject_time <= cycle {
            let p = inj[next_inject];
            next_inject += 1;
            if p.src == p.dst {
                acc.deliver_instant();
                continue;
            }
            let hop = topology.next_hop(p.src, p.dst).expect("src ≠ dst");
            queues[p.src as usize][slot_of(p.src, hop)].push_back(InFlight {
                dst: p.dst,
                inject_time: p.inject_time,
            });
            in_flight += 1;
        }
        if in_flight == 0 && next_inject >= inj.len() {
            break;
        }
        let mut arrivals: Vec<(u32, InFlight)> = Vec::new();
        for u in 0..n as u32 {
            for (slot, &v) in graph.neighbors(u).iter().enumerate() {
                if let Some(pkt) = queues[u as usize][slot].pop_front() {
                    arrivals.push((v, pkt));
                    acc.total_hops += 1;
                }
            }
        }
        let now = cycle + 1;
        for (node, pkt) in arrivals {
            if node == pkt.dst {
                in_flight -= 1;
                acc.deliver(now, pkt.inject_time);
            } else {
                let hop = topology.next_hop(node, pkt.dst).expect("progressive");
                queues[node as usize][slot_of(node, hop)].push_back(pkt);
            }
        }
        cycle += 1;
    }

    acc.finish(packets.len())
}

/// Full-scan oracle for **degraded** runs, mirroring
/// [`simulate_reference`]: the same admission rules (dead or disconnected
/// endpoints become typed drops at injection) and the same
/// [`FaultMaskingRouter`] policy as
/// [`simulate_faulted`](crate::simulate_faulted), but run through the
/// seed-style engine — per-node `VecDeque`s, every node scanned every
/// cycle, routing consulted per hop with the live queue lengths. A test
/// harness, far too slow for experiments: the property tests compare the
/// arena engine against it packet for packet.
pub fn simulate_faulted_reference(
    topology: &dyn Topology,
    router: &dyn Router,
    faults: &FaultSet,
    packets: &[Packet],
    max_cycles: u64,
) -> SimStats {
    let n = topology.len();
    let graph = topology.graph();
    let masked = FaultMaskingRouter::new(graph, &router, faults);
    let mut queues: Vec<Vec<VecDeque<InFlight>>> = (0..n)
        .map(|u| vec![VecDeque::new(); graph.degree(u as u32)])
        .collect();
    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let mut next_inject = 0usize;

    struct RefLoad<'a> {
        queues: &'a [VecDeque<InFlight>],
    }
    impl LinkLoad for RefLoad<'_> {
        fn load(&self, slot: usize) -> usize {
            self.queues[slot].len()
        }
    }
    let route = |queues: &mut Vec<Vec<VecDeque<InFlight>>>, node: u32, pkt: InFlight| {
        let hop = {
            let load = RefLoad {
                queues: &queues[node as usize],
            };
            masked
                .next_hop(node, pkt.dst, &load)
                .expect("routing a packet not yet at dst")
        };
        let slot = graph
            .slot_of(node, hop)
            .expect("next_hop must return a neighbor");
        queues[node as usize][slot].push_back(pkt);
    };

    let mut acc = StatsAcc::for_network(n);
    let mut in_flight = 0usize;

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        while next_inject < inj.len() && inj[next_inject].inject_time <= cycle {
            let p = inj[next_inject];
            next_inject += 1;
            if !masked.node_alive(p.src) || !masked.node_alive(p.dst) {
                acc.dropped_dead_endpoint += 1;
                continue;
            }
            if p.src != p.dst && !masked.reachable(p.src, p.dst) {
                acc.dropped_unreachable += 1;
                continue;
            }
            if p.src == p.dst {
                acc.deliver_instant();
                continue;
            }
            route(
                &mut queues,
                p.src,
                InFlight {
                    dst: p.dst,
                    inject_time: p.inject_time,
                },
            );
            in_flight += 1;
        }
        if in_flight == 0 && next_inject >= inj.len() {
            break;
        }
        let mut arrivals: Vec<(u32, InFlight)> = Vec::new();
        for u in 0..n as u32 {
            for (slot, &v) in graph.neighbors(u).iter().enumerate() {
                if let Some(pkt) = queues[u as usize][slot].pop_front() {
                    arrivals.push((v, pkt));
                    acc.total_hops += 1;
                }
            }
        }
        let now = cycle + 1;
        for (node, pkt) in arrivals {
            if node == pkt.dst {
                in_flight -= 1;
                acc.deliver(now, pkt.inject_time);
            } else {
                route(&mut queues, node, pkt);
            }
        }
        cycle += 1;
    }

    acc.finish(packets.len())
}
