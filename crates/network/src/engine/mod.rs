//! The unified simulation engine: one composable core behind every
//! entry point.
//!
//! Model: time advances in cycles. Every node has one FIFO output queue
//! per neighbor (store-and-forward) or a set of flit buffers per
//! (link × virtual channel) (wormhole); each directed link moves at most
//! one packet — or flit — per cycle. Arriving packets are re-enqueued
//! toward their next hop (computed by a [`Router`]) or retired with
//! their latency recorded. The model is deliberately simple — the
//! experiments compare *topologies under identical rules*, which is the
//! shape of the 1993-era evaluations.
//!
//! ## One core, three policy axes
//!
//! Historically this crate grew seven engine entry points, each a
//! hand-specialized copy of the same cycle loop. They are now thin
//! shells over one generic core parameterized by compile-time policy
//! traits (see [`policy`]):
//!
//! - [`SwitchingPolicy`] — whole-packet store-and-forward vs flit-level
//!   wormhole with virtual channels;
//! - [`FaultPolicy`] — admit everything vs typed drops for
//!   dead/disconnected endpoints (paired with a [`FaultMaskingRouter`]
//!   for detours);
//! - [`ReplicationPolicy`] — unicast routing vs tree replication at
//!   intermediate nodes (the collective path);
//!
//! plus the [`SimObserver`] event axis.
//! Every combination monomorphizes: a healthy unicast run compiles to
//! the same hot loop the dedicated engine used to be, and the
//! equivalence tests gate packet-for-packet on that.
//!
//! ## The arena core
//!
//! The store-and-forward core is an **arena-backed active-set** engine.
//! All per-packet and per-link state lives in flat arrays (see
//! [`arena`](crate::arena)): in-flight packets sit in a struct-of-arrays
//! [`PacketSlab`](crate::arena::PacketSlab) and are referred to by `u32`
//! id, and every directed link owns a fixed-stride ring-buffer FIFO in
//! one contiguous [`LinkQueues`](crate::arena::LinkQueues) arena indexed
//! by the graph's directed-edge index, spilling to an overflow list only
//! when a link saturates. Each cycle touches only the worklist of nodes
//! that actually hold packets, and empty stretches between injections
//! are skipped entirely.
//!
//! Routing takes one of two monomorphized paths: when the workload
//! amortises the build, deterministic policies are tabulated once into a
//! dense [`NextHopTable`](crate::router::NextHopTable)
//! ([`Router::precompute`]) and each hop is a single load; otherwise the
//! policy is called per hop with the live link-load view.
//!
//! The seed's original engine — full node scan every cycle, binary
//! search per hop — is preserved as [`simulate_reference`] and
//! [`simulate_faulted_reference`], the behavioural oracle the property
//! tests compare against and the baseline the sweep binary measures
//! speedups over.
//!
//! ## One stepper, serial and sharded
//!
//! Every run — serial or sharded — executes the *same* cycle stepper
//! (`engine/stepper.rs`): a `LaneWorkload` advances through fixed
//! stages (begin → propose → commit → end-cycle → observe → advance)
//! under a pluggable lane `Protocol`. Serial entry points drive one
//! lane under the no-sync `Solo` protocol; the `simulate_parallel*`
//! family drives `k` lanes under the barrier-synchronized `Pooled`
//! protocol (`engine/parallel.rs`) — **bit-identical to the serial
//! engine at any thread count**, for every policy combination:
//! store-and-forward, wormhole ([`simulate_parallel_wormhole`]),
//! churned and closed-loop dynamic runs, collectives, and forked
//! observers. The parallel module's docs lay out the outbox protocol
//! and the determinism argument.

mod churn;
mod core;
mod parallel;
pub mod policy;
mod reference;
pub mod stats;
mod stepper;
mod wormhole;

pub use self::churn::{simulate_churn, simulate_request_reply, RequestReplyLoad};
pub use self::core::Core;
pub use self::parallel::{
    simulate_parallel, simulate_parallel_churn, simulate_parallel_churn_observed,
    simulate_parallel_collective, simulate_parallel_observed, simulate_parallel_request_reply,
};
pub use self::policy::{
    AdmitAll, ChurnAdmission, FaultPolicy, FlitWormhole, MaskedAdmission, ReplicationPolicy,
    StoreAndForward, SwitchingPolicy,
};
pub use self::reference::{simulate_faulted_reference, simulate_reference};
pub use self::stats::{DropReason, LogHistogram, SimStats, DENSE_HISTOGRAM_NODE_LIMIT};
pub use self::wormhole::simulate_parallel_wormhole;

use crate::collective::CopyPlan;
use crate::fault::FaultSet;
use crate::observer::{NoopObserver, SimObserver};
use crate::router::{FaultMaskingRouter, Router};
use crate::switching::SwitchingSpec;
use crate::topology::Topology;
use crate::traffic::Packet;

use self::core::{run_core, Replicate};

/// Runs the store-and-forward simulation with the topology's preferred
/// router (e-cube on hypercubes, precomputed canonical-path on Fibonacci
/// networks, the built-in rule elsewhere).
///
/// `max_cycles` caps the run so that pathological configurations
/// terminate; undelivered packets are reported via `offered − delivered`.
pub fn simulate<T: Topology + ?Sized>(
    topology: &T,
    packets: &[Packet],
    max_cycles: u64,
) -> SimStats {
    simulate_with(topology, &*topology.router(), packets, max_cycles)
}

/// Runs the active-set store-and-forward simulation under an explicit
/// routing policy, with no observer attached. Equivalent to
/// [`simulate_observed`] with a [`NoopObserver`] — which monomorphizes
/// to the identical hot loop.
pub fn simulate_with<T, R>(
    topology: &T,
    router: &R,
    packets: &[Packet],
    max_cycles: u64,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
{
    simulate_observed(topology, router, packets, max_cycles, &mut NoopObserver)
}

/// Runs the active-set store-and-forward simulation under an explicit
/// routing policy, reporting every event to `observer` (see
/// [`SimObserver`] for the event contract). Generic over all three
/// parameters, so concrete call sites monomorphize the hot loop and a
/// no-op observer costs nothing; `?Sized` keeps `&dyn` topology/router
/// callers working.
pub fn simulate_observed<T, R, O>(
    topology: &T,
    router: &R,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    StoreAndForward.run_unicast(topology, router, packets, max_cycles, observer, &AdmitAll)
}

/// Runs the active-set engine on the network degraded by `faults`: the
/// given `router` is wrapped in a [`FaultMaskingRouter`] so live packets
/// detour around dead nodes and links, while packets that *cannot* be
/// routed are counted as typed drops at injection ([`DropReason`]) —
/// dead source or destination, or surviving endpoints the faults
/// disconnect. Nothing is silently stranded:
/// `offered == delivered + dropped + still-in-flight` always holds.
///
/// An empty `faults` set delegates to [`simulate_observed`] — the
/// zero-fault run is packet-for-packet identical to the healthy engine.
pub fn simulate_faulted<T, R, O>(
    topology: &T,
    router: &R,
    faults: &FaultSet,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    if faults.is_empty() {
        return simulate_observed(topology, router, packets, max_cycles, observer);
    }
    let masked = FaultMaskingRouter::new(topology.graph(), router, faults);
    simulate_premasked(topology, &masked, packets, max_cycles, observer)
}

/// [`simulate_faulted`] against a caller-prepared [`FaultMaskingRouter`]
/// — sweeps that replay many workloads over one fault set build the
/// masked router (and the `O(n·m)` degraded distance table inside it)
/// once and run every workload through it, instead of paying the
/// rebuild per run.
pub(crate) fn simulate_premasked<T, R, O>(
    topology: &T,
    masked: &FaultMaskingRouter<'_, R>,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    let admission = MaskedAdmission::new(masked);
    StoreAndForward.run_unicast(topology, masked, packets, max_cycles, observer, &admission)
}

/// Runs a tree collective ([`CopyPlan`]) through the arena engine:
/// packets are **replicated at intermediate nodes** instead of routed
/// end to end. The source emits its first copies at cycle 0; every
/// delivery informs the receiving node, which starts forwarding to its
/// own children — all of them at once (all-port), or one per cycle
/// chained through the slab's next-copy column (one-port: the follow-up
/// copy is spawned when its predecessor departs, so an informed node
/// occupies exactly one output port per cycle). Copies travel exactly
/// one tree edge, so no routing policy is consulted; the plan resolved
/// every directed edge at compile time.
///
/// Intended recipients the plan could not cover (dead or disconnected
/// by the fault set it was compiled against) are reported as typed
/// drops at cycle 0 — packet conservation extends to replicated copies:
/// uncapped, `offered == delivered + dropped` with
/// `offered = tree copies + drops`; under a cycle cap the remainder is
/// copies still queued *or not yet spawned* (a truncated chain).
///
/// Returns the run's [`SimStats`] plus the number of *intended targets*
/// reached (relay deliveries count toward `delivered` but not toward
/// the target tally). On an uncontended network the makespan equals the
/// static schedule's round count — the gating oracle of the collective
/// path.
pub fn simulate_collective<T, O>(
    topology: &T,
    plan: &CopyPlan,
    max_cycles: u64,
    observer: &mut O,
) -> (SimStats, usize)
where
    T: Topology + ?Sized,
    O: SimObserver,
{
    let (stats, workload) = run_core(
        topology,
        plan.offered(),
        max_cycles,
        observer,
        Replicate::new(plan),
    );
    (stats, workload.reached_targets)
}

/// Runs the flit-level wormhole engine under an explicit routing policy.
/// [`SwitchingSpec::StoreAndForward`] delegates to [`simulate_observed`]
/// — one entry point covers both switching models.
///
/// Model: each packet is [`SwitchingSpec::flits_per_packet`] flits. The
/// head flit claims a chain of (directed link × virtual channel) buffers
/// of `buf_flits` capacity, routing one hop per cycle exactly like the
/// store-and-forward engine; body flits stream behind it through the
/// same chain (one injected per cycle at the source) and the tail
/// releases each buffer as it passes — so a blocked packet occupies
/// buffers along its whole path, the defining wormhole behaviour.
/// Advancement is credit-based (a flit moves only when the next buffer
/// has space, counting same-cycle reservations) and each directed link
/// still moves at most one flit per cycle, scanning VCs lowest-first.
/// Virtual channels are keyed to
/// [`Topology::channel_class`]: a hop whose class does not increase
/// bumps the packet to the next VC level (clamped to `vcs − 1`), which
/// on order-based routes makes the channel-dependency graph acyclic —
/// see [`switching`](crate::switching) for the argument.
///
/// Packet-level accounting ([`SimStats`], [`SimObserver::on_hop`],
/// hop counts) follows the **head** flit, so a degenerate configuration
/// (one flit per packet, one VC, effectively unbounded buffers)
/// reproduces [`simulate_with`] exactly. Flit-level movement is
/// observable through [`SimObserver::on_flit_hop`].
pub fn simulate_wormhole<T, R, O>(
    topology: &T,
    router: &R,
    spec: &SwitchingSpec,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    match *spec {
        SwitchingSpec::StoreAndForward => {
            simulate_observed(topology, router, packets, max_cycles, observer)
        }
        SwitchingSpec::Wormhole { vcs, buf_flits, .. } => FlitWormhole {
            flits_per_packet: spec.flits_per_packet(),
            vcs,
            buf_flits,
        }
        .run_unicast(topology, router, packets, max_cycles, observer, &AdmitAll),
    }
}

/// [`simulate_wormhole`] on the network degraded by `faults`: the same
/// [`FaultMaskingRouter`] wrapping and typed injection drops as
/// [`simulate_faulted`], with flits detouring around dead nodes and
/// links. An empty fault set delegates to the healthy wormhole engine;
/// a [`SwitchingSpec::StoreAndForward`] spec delegates to
/// [`simulate_faulted`].
///
/// Fault detours are not order-based, so on degraded networks the VC
/// level can clamp at `vcs − 1` and deadlock freedom is best-effort —
/// the experiments keep the conservation invariant
/// `offered == delivered + dropped + still-in-flight` either way.
pub fn simulate_wormhole_faulted<T, R, O>(
    topology: &T,
    router: &R,
    spec: &SwitchingSpec,
    faults: &FaultSet,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    if faults.is_empty() {
        return simulate_wormhole(topology, router, spec, packets, max_cycles, observer);
    }
    match *spec {
        SwitchingSpec::StoreAndForward => {
            simulate_faulted(topology, router, faults, packets, max_cycles, observer)
        }
        SwitchingSpec::Wormhole { vcs, buf_flits, .. } => {
            let masked = FaultMaskingRouter::new(topology.graph(), router, faults);
            let admission = MaskedAdmission::new(&masked);
            FlitWormhole {
                flits_per_packet: spec.flits_per_packet(),
                vcs,
                buf_flits,
            }
            .run_unicast(topology, &masked, packets, max_cycles, observer, &admission)
        }
    }
}
