//! The **one** cycle stepper behind every engine variant, serial or
//! sharded.
//!
//! A simulation run is a [`LaneWorkload`]: the per-cycle stages of one
//! *lane* (a contiguous shard of nodes, or the whole network), wired
//! together by [`run_lane`] under a [`Protocol`] that decides how lanes
//! exchange cross-shard effects:
//!
//! - [`Solo`] — one lane covering every node, outbox kept in a local
//!   `RefCell`, no synchronization at all. Every historical
//!   `simulate_*` entry point is a `Solo` monomorphization, so the
//!   serial engines compile to the same straight-line loops they were
//!   before the stepper existed.
//! - `Pooled` (in [`parallel`](super::parallel)) — `k` lanes on a
//!   scoped thread pool with per-lane `RwLock` outboxes, published
//!   queue counters, and a barrier per phase boundary.
//!
//! Because both protocols drive the *same* stage methods in the *same*
//! order, and every stage only reads its own lane's arena state while
//! appending cross-lane effects to an outbox that is committed in
//! ascending lane order, the full [`SimStats`](super::SimStats) (and
//! any forked observer state) is bit-identical at every lane count.
//!
//! ## The cycle skeleton
//!
//! ```text
//! exchange  — publish (queued, next-pending), read global (Σ, min):
//!             the lockstep idle-skip / termination decision
//! begin     — event-commit (churn) + inject (admission, sessions,
//!             flit streams) on this lane's own nodes
//! propose   — forward scan over this lane's active nodes; each popped
//!             packet/flit becomes an outbox message
//! commit    — visit *all* lanes' messages in ascending lane order
//!             (== the serial scan order); consume the ones this lane
//!             owns, mirror the ones it must replicate
//! end_cycle — deferred effects (chained copies, flit arrivals) and
//!             batched latency accounting
//! observe   — `on_cycle_end` with the *global* in-flight count
//! advance   — next cycle (or a workload-specific jump / stop)
//! ```
//!
//! Every decision that steers control flow — the idle fast-forward, the
//! termination test, a wormhole deadlock jump — is taken from data that
//! is identical on every lane (the exchanged global counters, or state
//! each lane replicates deterministically), so all lanes execute the
//! same number of cycles in lockstep and no lane can block on a barrier
//! another lane already left for good.

use std::cell::RefCell;

/// One lane's view of a simulation run: the per-cycle stage methods the
/// unified stepper ([`run_lane`]) drives. See the [module docs](self)
/// for the stage order and the determinism argument.
///
/// # Invariants
///
/// - `queued` / `next_pending` feed the lockstep idle/termination
///   decision; summed (resp. min-folded) over lanes they must equal the
///   serial engine's in-flight count and next-traffic cycle.
/// - `begin` and `propose` may touch **only this lane's own** arena
///   state; cross-lane effects go into the outbox.
/// - `commit` is called for **every** message of **every** lane, in
///   ascending lane order — the concatenation is exactly the serial
///   forward scan's pop order. Implementations filter by ownership
///   (and may additionally replicate lane-invariant mirror state, e.g.
///   the request/reply session machine, on every lane).
/// - `advance` must return the same value on every lane (it may only
///   consult replicated or exchanged state).
pub(crate) trait LaneWorkload {
    /// One cross-lane effect: a packet arrival, a flit grant, a credit.
    type Msg;

    /// Packets/flits this lane currently holds (the lockstep drain
    /// check sums this across lanes).
    fn queued(&self) -> u64;

    /// The earliest future cycle at which this lane can add new traffic
    /// (next injection / session action), or `None` if it never will.
    fn next_pending(&mut self) -> Option<u64>;

    /// Start-of-cycle stage: event-commit (churn) then injection, on
    /// this lane's own nodes only.
    fn begin(&mut self, cycle: u64);

    /// Forward/propose stage: scan this lane's active nodes in
    /// ascending node/edge order, appending each popped packet (or
    /// proposed flit move) to `out`.
    fn propose(&mut self, cycle: u64, out: &mut Vec<Self::Msg>);

    /// Arrival-commit stage: one message, presented to every lane in
    /// ascending lane order at the `cycle + 1` boundary.
    fn commit(&mut self, now: u64, msg: &Self::Msg);

    /// End-of-cycle stage: deferred effects that must not act before
    /// every arrival of this cycle has committed.
    fn end_cycle(&mut self, now: u64);

    /// Cycle observer event; `in_flight` is the exchanged *global*
    /// count, so forked observers see exactly the serial value.
    fn observe(&mut self, cycle: u64, in_flight: u64);

    /// Picks the next cycle (default `cycle + 1`); `None` terminates
    /// the run. Must decide identically on every lane.
    fn advance(&mut self, cycle: u64, max_cycles: u64) -> Option<u64> {
        let _ = max_cycles;
        Some(cycle + 1)
    }
}

/// How lanes exchange outbox messages and global counters: [`Solo`]
/// (one lane, no sync) or `Pooled` (scoped pool, barriers) — the only
/// two implementations, chosen at monomorphization time.
pub(crate) trait Protocol<M> {
    /// Publishes this lane's `(queued, next_pending)` and returns the
    /// global `(sum, min)` — the same pair on every lane.
    fn exchange(&self, me: usize, queued: u64, next: Option<u64>) -> (u64, Option<u64>);

    /// Runs `fill` on this lane's (cleared) outbox.
    fn propose(&self, me: usize, fill: impl FnOnce(&mut Vec<M>));

    /// Visits every lane's proposed messages in ascending lane order.
    fn commit(&self, me: usize, visit: impl FnMut(&M));
}

/// The one-lane protocol: the serial engine. The outbox lives in a
/// `RefCell` so `propose` can fill it while the lane is borrowed
/// mutably; `exchange` just echoes the lane's own counters.
pub(crate) struct Solo<M> {
    outbox: RefCell<Vec<M>>,
}

impl<M> Default for Solo<M> {
    fn default() -> Solo<M> {
        Solo {
            outbox: RefCell::new(Vec::new()),
        }
    }
}

impl<M> Protocol<M> for Solo<M> {
    #[inline]
    fn exchange(&self, _me: usize, queued: u64, next: Option<u64>) -> (u64, Option<u64>) {
        (queued, next)
    }

    #[inline]
    fn propose(&self, _me: usize, fill: impl FnOnce(&mut Vec<M>)) {
        let mut out = self.outbox.borrow_mut();
        out.clear();
        fill(&mut out);
    }

    #[inline]
    fn commit(&self, _me: usize, mut visit: impl FnMut(&M)) {
        for msg in self.outbox.borrow().iter() {
            visit(msg);
        }
    }
}

/// Drives one lane through the unified cycle skeleton until the run
/// drains, hits `max_cycles`, or the workload's `advance` stops it.
/// This is the **only** stepper in the engine: `Solo` monomorphizations
/// of it are the serial `simulate_*` functions, `Pooled` ones are the
/// sharded engine — there is no second copy of the cycle loop to drift.
pub(crate) fn run_lane<W, P>(lane: &mut W, proto: &P, me: usize, max_cycles: u64)
where
    W: LaneWorkload,
    P: Protocol<W::Msg>,
{
    let mut cycle: u64 = 0;
    let (mut queued, mut next) = proto.exchange(me, lane.queued(), lane.next_pending());
    while cycle < max_cycles {
        if queued == 0 {
            // Idle fast-forward: jump to the next traffic action, or
            // stop when there is none (or it lies past the cap). The
            // exchanged pair is identical on every lane, so the jump is
            // lockstep.
            match next {
                None => break,
                Some(t) if t >= max_cycles => break,
                Some(t) => cycle = cycle.max(t),
            }
        }
        lane.begin(cycle);
        proto.propose(me, |out| lane.propose(cycle, out));
        proto.commit(me, |msg| lane.commit(cycle + 1, msg));
        lane.end_cycle(cycle + 1);
        let (q, n) = proto.exchange(me, lane.queued(), lane.next_pending());
        queued = q;
        next = n;
        lane.observe(cycle, q);
        match lane.advance(cycle, max_cycles) {
            None => break,
            Some(t) => cycle = t,
        }
    }
}

/// Contiguous node shard bounds: lane `s` owns `[s·n/k, (s+1)·n/k)`.
/// With `k <= n` every lane is non-empty.
pub(crate) fn lane_bounds(n: usize, lanes: usize) -> Vec<(u32, u32)> {
    (0..lanes)
        .map(|s| ((s * n / lanes) as u32, ((s + 1) * n / lanes) as u32))
        .collect()
}
