//! The flit-level wormhole workload of the unified stepper — the
//! engine body behind [`simulate_wormhole`](crate::simulate_wormhole),
//! [`simulate_wormhole_faulted`](crate::simulate_wormhole_faulted) and
//! [`simulate_parallel_wormhole`], i.e. the
//! [`FlitWormhole`](super::policy::FlitWormhole) switching policy.
//!
//! Like the store-and-forward core, the cycle body lives in stage
//! methods driven by [`run_lane`](super::stepper::run_lane); the serial
//! entry points are the one-lane [`Solo`] monomorphization and the
//! sharded entry runs the identical stages under the pooled protocol.
//!
//! ## Sharding model: replicated arbitration
//!
//! Wormhole advancement is a global arbitration: whether a flit may
//! move depends on claims, credits and (for adaptive routers) link
//! loads that earlier moves of the *same* cycle just changed, anywhere
//! in the network. Instead of exchanging that state, every lane keeps a
//! full **mirror** of it (`link_load`, per-buffer occupancy, claims,
//! reservations, the packet slab and worm chains, the pending/stream
//! FIFOs and the injection cursor) and updates the mirror identically:
//!
//! - the **begin** stage (streaming, head retries, injection) runs the
//!   same deterministic decisions on every lane, touching real flit
//!   queues, per-node occupancy, statistics and the observer only on
//!   the lane that owns the node;
//! - the **propose** stage snapshots the front flit of every non-empty
//!   (edge × VC) buffer of the lane's own active nodes — the only state
//!   a lane alone knows — in ascending node/edge/VC order;
//! - the **commit** stage replays the serial forward scan over the
//!   concatenated snapshots (lane order == node order, so the replay
//!   order *is* the serial scan order) on **every** lane, deciding each
//!   move against the mirror exactly as the serial scan decides it
//!   against live state, which keeps the mirrors in lockstep — adaptive
//!   routers included, because the mirror loads evolve move by move in
//!   serial order;
//! - the **end** stage applies the deferred arrival list (identical on
//!   every lane) at the `cycle + 1` boundary, again gating real effects
//!   on ownership.
//!
//! Front-flit snapshots equal what the serial scan would read because a
//! scan pops only from the buffer it is currently serving (each edge is
//! served once per cycle) and every push is deferred to the arrival
//! boundary. The result is **bit-identical** [`SimStats`] and observer
//! output at any thread count. The mirrors cost O(E · vcs) per lane —
//! the trade the replicated-arbitration design makes for running the
//! serial decision procedure unchanged.

use std::collections::VecDeque;

use fibcube_graph::csr::CsrGraph;

use crate::arena::{FlitQueues, PacketSlab};
use crate::fault::FaultSet;
use crate::observer::SimObserver;
use crate::router::{FaultMaskingRouter, Router};
use crate::switching::SwitchingSpec;
use crate::topology::Topology;
use crate::traffic::Packet;

use super::core::{fork_observer, route_edge, routing_for, Routing};
use super::parallel::run_pool;
use super::policy::{AdmitAll, FaultPolicy, MaskedAdmission};
use super::stats::{SimStats, StatsAcc};
use super::stepper::{lane_bounds, run_lane, LaneWorkload, Solo};

/// Head-flit flag in a packed flit record (bit 56).
const FLIT_HEAD: u64 = 1 << 56;
/// Tail-flit flag in a packed flit record (bit 57). Single-flit packets
/// carry both flags.
const FLIT_TAIL: u64 = 1 << 57;
/// No packet claims this (edge × VC) buffer.
const NO_CLAIM: u32 = u32::MAX;
/// Arrival-list sentinel: the flit leaves the network at its destination
/// instead of entering a buffer.
const EJECT: u32 = u32::MAX;
/// Replay-cursor sentinel: no edge arbitrated yet this cycle.
const NO_EDGE: u32 = u32::MAX;

/// Packs one flit: packet id in the low 32 bits, the index of the buffer
/// it occupies within its packet's reserved chain in bits 32..56, flags
/// above. Everything the forward phase needs travels in the queue word.
#[inline]
fn flit(id: u32, idx: usize, head: bool, tail: bool) -> u64 {
    debug_assert!(idx < (1 << 24), "path longer than 16M hops");
    let mut f = id as u64 | ((idx as u64) << 32);
    if head {
        f |= FLIT_HEAD;
    }
    if tail {
        f |= FLIT_TAIL;
    }
    f
}

/// The chain index of a packed flit.
#[inline]
fn flit_idx(f: u64) -> usize {
    ((f >> 32) & 0xFF_FFFF) as usize
}

/// One forward-scan candidate: the front flit of one (edge × VC) buffer
/// of an active node, snapshotted at propose time. The commit replay
/// consumes these in ascending (node, edge, VC) order — the serial scan
/// order — granting at most one move per directed edge.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WormProbe {
    /// The scanning node (the edge's source); grants gate real effects
    /// on its owner lane.
    node: u32,
    /// Global directed edge id.
    edge: u32,
    /// Virtual channel of the snapshotted buffer.
    vc: u32,
    /// The buffer's front flit record.
    flit: u64,
}

/// Per-packet wormhole state in parallel columns indexed by slab id
/// (recycled with the slab's freelist, reset on allocation): the source,
/// the chain of buffer indices the head has reserved, the VC level and
/// last channel class driving VC selection, and the source-side streaming
/// progress.
#[derive(Default)]
struct WormState {
    src: Vec<u32>,
    /// Buffer indices (`edge * vcs + vc`) the head has claimed, in hop
    /// order — body flits follow this chain by their flit index.
    path: Vec<Vec<u32>>,
    level: Vec<u32>,
    last_class: Vec<u32>,
    flits_total: Vec<u32>,
    flits_sent: Vec<u32>,
    head_ejected: Vec<bool>,
}

impl WormState {
    fn reset(&mut self, id: u32, src: u32, flits: u32) {
        let i = id as usize;
        if self.src.len() <= i {
            let n = i + 1;
            self.src.resize(n, 0);
            self.path.resize_with(n, Vec::new);
            self.level.resize(n, 0);
            self.last_class.resize(n, 0);
            self.flits_total.resize(n, 0);
            self.flits_sent.resize(n, 0);
            self.head_ejected.resize(n, false);
        }
        self.src[i] = src;
        self.path[i].clear();
        self.level[i] = 0;
        self.last_class[i] = 0;
        self.flits_total[i] = flits;
        self.flits_sent[i] = 0;
        self.head_ejected[i] = false;
    }
}

/// [`Topology::channel_class`] tabulated per directed edge, so lanes
/// consult a shared plain slice instead of the topology object.
fn edge_classes<T: Topology + ?Sized>(topology: &T) -> Vec<u32> {
    let g = topology.graph();
    let mut classes = vec![0u32; g.num_directed_edges()];
    for u in 0..topology.len() as u32 {
        for e in g.edge_range(u) {
            classes[e] = topology.channel_class(u, g.target(e));
        }
    }
    classes
}

/// One lane of the wormhole workload — see the [module docs](self) for
/// the replicated-arbitration sharding model. A [`Solo`] run over
/// `[0, n)` *is* the serial engine.
struct WormLane<'a, R: Router + ?Sized, F: FaultPolicy, O: SimObserver> {
    // Static, shared across lanes.
    g: &'a CsrGraph,
    edge_class: &'a [u32],
    routing: Routing<'a, R>,
    admission: &'a F,
    vcs: usize,
    buf_flits: u64,
    fpp: u32,
    max_level: u32,
    // Ownership: nodes `[lo, hi)`, whose out-edge buffers start at
    // global buffer index `buf_lo`.
    lo: u32,
    hi: u32,
    buf_lo: usize,
    /// Lane 0 alone reports `in_flight` through `queued()`, so the
    /// exchanged global sum equals the serial count.
    lead: bool,
    // Real, lane-owned state.
    queues: FlitQueues,
    occupancy: Vec<u32>,
    on_list: Vec<bool>,
    active: Vec<u32>,
    scanned: Vec<u32>,
    lat_scratch: Vec<u64>,
    acc: StatsAcc,
    observer: O,
    // Replicated mirrors — identical on every lane at every stage edge.
    link_load: Vec<u32>,
    occ_b: Vec<u32>,
    claimed: Vec<u32>,
    reserved: Vec<u32>,
    slab: PacketSlab,
    worm: WormState,
    arrivals: Vec<(u64, u32, u32)>,
    pending: VecDeque<u32>,
    streams: Vec<u32>,
    inj: Vec<&'a Packet>,
    next_inject: usize,
    in_flight: usize,
    progressed: bool,
    // Replay cursor: the edge currently arbitrated and whether it
    // already granted its one move this cycle.
    replay_edge: u32,
    replay_done: bool,
}

impl<'a, R: Router + ?Sized, F: FaultPolicy, O: SimObserver> WormLane<'a, R, F, O> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        g: &'a CsrGraph,
        edge_class: &'a [u32],
        routing: Routing<'a, R>,
        admission: &'a F,
        observer: O,
        fpp: u32,
        vcs: usize,
        buf_flits: u64,
        packets: &'a [Packet],
        n: usize,
        lo: u32,
        hi: u32,
    ) -> WormLane<'a, R, F, O> {
        let edge_lo = if hi > lo { g.edge_range(lo).start } else { 0 };
        let edge_hi = if hi > lo { g.edge_range(hi - 1).end } else { 0 };
        let links = g.num_directed_edges();
        let mut inj: Vec<&Packet> = packets.iter().collect();
        inj.sort_by_key(|p| p.inject_time);
        WormLane {
            g,
            edge_class,
            routing,
            admission,
            vcs,
            buf_flits,
            fpp,
            max_level: vcs as u32 - 1,
            lo,
            hi,
            buf_lo: edge_lo * vcs,
            lead: lo == 0,
            queues: FlitQueues::new(edge_hi - edge_lo, vcs),
            occupancy: vec![0; (hi - lo) as usize],
            on_list: vec![false; (hi - lo) as usize],
            active: Vec::new(),
            scanned: Vec::new(),
            lat_scratch: Vec::new(),
            acc: StatsAcc::for_network(n),
            observer,
            link_load: vec![0; links],
            occ_b: vec![0; links * vcs],
            claimed: vec![NO_CLAIM; links * vcs],
            reserved: vec![0; links * vcs],
            slab: PacketSlab::new(),
            worm: WormState::default(),
            arrivals: Vec::new(),
            pending: VecDeque::new(),
            streams: Vec::new(),
            inj,
            next_inject: 0,
            in_flight: 0,
            progressed: false,
            replay_edge: NO_EDGE,
            replay_done: false,
        }
    }

    #[inline]
    fn owns(&self, node: u32) -> bool {
        self.lo <= node && node < self.hi
    }

    /// Tries to place packet `id`'s head flit into VC 0 of its first
    /// output link: routes the first hop against the mirror loads,
    /// checks the buffer's claim and credit (multi-flit packets need
    /// exclusive worm occupancy), and on success starts the packet's
    /// chain. Every decision reads replicated state, so all lanes
    /// agree; the real queue push, occupancy, worklist and observer
    /// event happen on the source's owner only. A `false` return leaves
    /// the packet unplaced (its state untouched) for retry next cycle.
    fn try_place_head(&mut self, cycle: u64, id: u32) -> bool {
        let i = id as usize;
        let src = self.worm.src[i];
        let dst = self.slab.dst(id);
        let e0 = route_edge(self.g, self.routing, &self.link_load, 0, src, dst);
        let b0 = e0 * self.vcs;
        let multi = self.worm.flits_total[i] > 1;
        if multi && self.claimed[b0] != NO_CLAIM {
            return false;
        }
        if self.occ_b[b0] as u64 + self.reserved[b0] as u64 >= self.buf_flits {
            return false;
        }
        self.worm.level[i] = 0;
        self.worm.last_class[i] = self.edge_class[e0];
        self.worm.path[i].push(b0 as u32);
        self.worm.flits_sent[i] = 1;
        if multi {
            self.claimed[b0] = id;
            self.streams.push(id);
        }
        self.occ_b[b0] += 1;
        self.link_load[e0] += 1;
        if self.owns(src) {
            self.queues
                .push(b0 - self.buf_lo, flit(id, 0, true, !multi));
            let s = (src - self.lo) as usize;
            self.occupancy[s] += 1;
            self.observer.on_flit_hop(cycle, e0, 0, self.occ_b[b0]);
            if !self.on_list[s] {
                self.on_list[s] = true;
                self.active.push(src);
            }
        }
        true
    }

    /// Removes a granted flit from its buffer: mirror decrements on
    /// every lane; the real pop (which must yield exactly the
    /// snapshotted flit) and node occupancy, plus — for head moves
    /// (`hop`) — the hop statistics and observer event, on the scanning
    /// node's owner.
    fn pop_flit(&mut self, cycle: u64, u: u32, e: usize, vc: u32, f: u64, hop: bool) {
        let b = e * self.vcs + vc as usize;
        self.occ_b[b] -= 1;
        self.link_load[e] -= 1;
        if hop {
            self.slab.record_hop(f as u32);
        }
        if self.owns(u) {
            let popped = self.queues.pop(b - self.buf_lo);
            debug_assert_eq!(popped, Some(f), "replayed flit must front its buffer");
            self.occupancy[(u - self.lo) as usize] -= 1;
            if hop {
                self.observer.on_hop(cycle, u, self.g.target(e), e);
                self.acc.total_hops += 1;
            }
        }
    }
}

impl<R: Router + ?Sized, F: FaultPolicy, O: SimObserver> LaneWorkload for WormLane<'_, R, F, O> {
    type Msg = WormProbe;

    fn queued(&self) -> u64 {
        // `in_flight` is replicated; only the lead lane reports it so
        // the exchanged sum equals the serial count.
        if self.lead {
            self.in_flight as u64
        } else {
            0
        }
    }

    fn next_pending(&mut self) -> Option<u64> {
        self.inj.get(self.next_inject).map(|p| p.inject_time)
    }

    /// Streaming continuation, head retries, then injection — all three
    /// run the identical decision sequence on every lane against the
    /// mirrors (keeping claims, credits, slab ids and the FIFOs in
    /// lockstep); flit pushes, statistics and observer events fire on
    /// the owning lane only.
    fn begin(&mut self, cycle: u64) {
        self.progressed = false;
        self.replay_edge = NO_EDGE;
        self.replay_done = false;

        // Streaming continuation: each multi-flit packet feeds at most
        // one body flit per cycle into its claimed first buffer. The
        // claim is released once the tail has entered the network.
        let mut streams = std::mem::take(&mut self.streams);
        streams.retain(|&id| {
            let i = id as usize;
            let b0 = self.worm.path[i][0] as usize;
            if self.occ_b[b0] as u64 + self.reserved[b0] as u64 >= self.buf_flits {
                return true;
            }
            let sent = self.worm.flits_sent[i];
            let is_tail = sent + 1 == self.worm.flits_total[i];
            let e0 = b0 / self.vcs;
            self.occ_b[b0] += 1;
            self.link_load[e0] += 1;
            let src = self.worm.src[i];
            if self.owns(src) {
                self.queues
                    .push(b0 - self.buf_lo, flit(id, 0, false, is_tail));
                let s = (src - self.lo) as usize;
                self.occupancy[s] += 1;
                self.observer
                    .on_flit_hop(cycle, e0, (b0 % self.vcs) as u32, self.occ_b[b0]);
                if !self.on_list[s] {
                    self.on_list[s] = true;
                    self.active.push(src);
                }
            }
            self.worm.flits_sent[i] = sent + 1;
            self.progressed = true;
            if is_tail {
                if self.claimed[b0] == id {
                    self.claimed[b0] = NO_CLAIM;
                }
                false
            } else {
                true
            }
        });
        self.streams = streams;

        // Retry heads that failed to claim their first buffer, oldest
        // first; failures keep their order without blocking later ones.
        for _ in 0..self.pending.len() {
            let id = self.pending.pop_front().expect("iteration is len-bounded");
            if self.try_place_head(cycle, id) {
                self.progressed = true;
            } else {
                self.pending.push_back(id);
            }
        }

        // Inject everything due this cycle (same admission and
        // self-addressed handling as the store-and-forward engine).
        while self.next_inject < self.inj.len() && self.inj[self.next_inject].inject_time <= cycle {
            let p = self.inj[self.next_inject];
            self.next_inject += 1;
            let (src, dst) = (p.src, p.dst);
            let own = self.owns(src);
            if own {
                self.observer.on_inject(cycle, src, dst);
            }
            if let Some(reason) = self.admission.verdict(src, dst) {
                if own {
                    self.acc.drop_packet(reason);
                    self.observer.on_drop(cycle, src, dst, reason);
                }
                continue;
            }
            if src == dst {
                if own {
                    self.acc.deliver_instant();
                    self.observer.on_deliver(cycle, dst, 0);
                }
                continue;
            }
            let id = self.slab.alloc(dst, p.inject_time);
            self.worm.reset(id, src, self.fpp);
            self.in_flight += 1;
            if self.try_place_head(cycle, id) {
                self.progressed = true;
            } else {
                self.pending.push_back(id);
            }
        }
    }

    /// Snapshots the front flit of every non-empty (edge × VC) buffer
    /// of this lane's active nodes, in ascending node/edge/VC order.
    /// Pure reads — every mutation waits for the commit replay — so the
    /// snapshots equal what the serial scan would read live (a scan
    /// pops only from the buffer it is currently serving, and pushes
    /// are deferred to the arrival boundary).
    fn propose(&mut self, _cycle: u64, out: &mut Vec<WormProbe>) {
        self.active.sort_unstable();
        std::mem::swap(&mut self.active, &mut self.scanned);
        let mut k = 0;
        while k < self.scanned.len() {
            let u = self.scanned[k];
            k += 1;
            self.on_list[(u - self.lo) as usize] = false;
            for e in self.g.edge_range(u) {
                if self.link_load[e] == 0 {
                    continue;
                }
                for vc in 0..self.vcs {
                    let b = e * self.vcs + vc;
                    if let Some(f) = self.queues.front(b - self.buf_lo) {
                        out.push(WormProbe {
                            node: u,
                            edge: e as u32,
                            vc: vc as u32,
                            flit: f,
                        });
                    }
                }
            }
        }
    }

    /// Replays the serial forward scan, one candidate at a time, on
    /// **every** lane: per directed edge the first candidate (lowest
    /// VC) that can advance — claim and credit checks against the
    /// mirror, which evolves move by move in serial order — wins the
    /// edge's one move per cycle; later VCs of a granted edge are
    /// skipped. Mirror updates run everywhere; the real pop and hop
    /// accounting fire on the scanning node's owner only.
    fn commit(&mut self, now: u64, m: &WormProbe) {
        if m.edge != self.replay_edge {
            self.replay_edge = m.edge;
            self.replay_done = false;
        }
        if self.replay_done {
            return;
        }
        let cycle = now - 1;
        let e = m.edge as usize;
        let f = m.flit;
        let id = f as u32;
        let i = id as usize;
        if f & FLIT_HEAD != 0 {
            let v = self.g.target(e);
            let dst = self.slab.dst(id);
            if v == dst {
                self.pop_flit(cycle, m.node, e, m.vc, f, true);
                self.arrivals.push((f, EJECT, v));
            } else {
                let e2 = route_edge(self.g, self.routing, &self.link_load, 0, v, dst);
                let c2 = self.edge_class[e2];
                let mut lvl = self.worm.level[i];
                if c2 <= self.worm.last_class[i] {
                    // Class order broken (a ring dateline or a fault
                    // detour): escape one VC level up.
                    lvl = (lvl + 1).min(self.max_level);
                }
                let b2 = e2 * self.vcs + lvl as usize;
                let multi = self.worm.flits_total[i] > 1;
                if multi && self.claimed[b2] != NO_CLAIM && self.claimed[b2] != id {
                    return;
                }
                if self.occ_b[b2] as u64 + self.reserved[b2] as u64 >= self.buf_flits {
                    return;
                }
                self.pop_flit(cycle, m.node, e, m.vc, f, true);
                if multi {
                    self.claimed[b2] = id;
                }
                self.reserved[b2] += 1;
                self.worm.level[i] = lvl;
                self.worm.last_class[i] = c2;
                self.worm.path[i].push(b2 as u32);
                self.arrivals.push((
                    flit(id, flit_idx(f) + 1, true, f & FLIT_TAIL != 0),
                    b2 as u32,
                    v,
                ));
            }
        } else {
            // Body/tail flit: follow the head's reserved chain.
            let idx = flit_idx(f);
            if idx + 1 < self.worm.path[i].len() {
                let b2 = self.worm.path[i][idx + 1] as usize;
                if self.occ_b[b2] as u64 + self.reserved[b2] as u64 >= self.buf_flits {
                    return;
                }
                self.pop_flit(cycle, m.node, e, m.vc, f, false);
                self.reserved[b2] += 1;
                self.arrivals.push((
                    flit(id, idx + 1, false, f & FLIT_TAIL != 0),
                    b2 as u32,
                    self.g.target(e),
                ));
            } else if self.worm.head_ejected[i] {
                // End of the chain with the head gone: this flit
                // crosses the final link into the destination.
                self.pop_flit(cycle, m.node, e, m.vc, f, false);
                self.arrivals.push((f, EJECT, self.g.target(e)));
            } else {
                // Head still parked one buffer ahead: wait.
                return;
            }
        }
        self.replay_done = true;
        self.progressed = true;
    }

    /// Re-activates scanned nodes that still hold flits (before
    /// arrivals, matching the serial order), then applies the
    /// replicated arrival list at the `cycle + 1` boundary: flits enter
    /// their reserved buffers or leave the network at the destination.
    /// Mirror credits, claims and the in-flight count update on every
    /// lane; queue pushes, worklists, observer events and the batched
    /// latency accounting ([`StatsAcc::deliver_batch`]) fire on the
    /// owning lane only.
    fn end_cycle(&mut self, now: u64) {
        let mut k = 0;
        while k < self.scanned.len() {
            let u = self.scanned[k];
            k += 1;
            let s = (u - self.lo) as usize;
            if self.occupancy[s] > 0 {
                self.on_list[s] = true;
                self.active.push(u);
            }
        }
        self.scanned.clear();

        let mut arrivals = std::mem::take(&mut self.arrivals);
        for &(f, buf, node) in &arrivals {
            let id = f as u32;
            if buf == EJECT {
                if f & FLIT_TAIL != 0 {
                    self.in_flight -= 1;
                    let inject_time = self.slab.inject(id);
                    if self.owns(node) {
                        self.lat_scratch.push(now - inject_time);
                        self.observer.on_deliver(now, node, now - inject_time);
                    }
                    self.slab.release(id);
                } else if f & FLIT_HEAD != 0 {
                    self.worm.head_ejected[id as usize] = true;
                }
                // Body flits between head and tail vanish at dst.
            } else {
                let b = buf as usize;
                let e = b / self.vcs;
                self.reserved[b] -= 1;
                self.occ_b[b] += 1;
                self.link_load[e] += 1;
                if f & FLIT_TAIL != 0 && self.claimed[b] == id {
                    self.claimed[b] = NO_CLAIM;
                }
                if self.owns(node) {
                    self.queues.push(b - self.buf_lo, f);
                    let s = (node - self.lo) as usize;
                    self.occupancy[s] += 1;
                    self.observer
                        .on_flit_hop(now, e, (b % self.vcs) as u32, self.occ_b[b]);
                    if !self.on_list[s] {
                        self.on_list[s] = true;
                        self.active.push(node);
                    }
                }
            }
        }
        arrivals.clear();
        self.arrivals = arrivals;
        self.acc.deliver_batch(now, &self.lat_scratch);
        self.lat_scratch.clear();
    }

    fn observe(&mut self, cycle: u64, in_flight: u64) {
        self.observer.on_cycle_end(cycle, in_flight as usize);
    }

    /// Replicates the serial deadlock handling: when nothing moved with
    /// flits still in flight, jump to the next injection (new packets
    /// may place on other links) or stop on a genuine deadlock — only
    /// reachable off the order-based configurations; the stranded
    /// packets surface as `offered − delivered − dropped`. All inputs
    /// (`progressed`, `in_flight`, the injection cursor) are
    /// replicated, so every lane decides identically.
    fn advance(&mut self, cycle: u64, max_cycles: u64) -> Option<u64> {
        if !self.progressed && self.in_flight > 0 {
            return match self.inj.get(self.next_inject) {
                Some(p) if p.inject_time >= max_cycles => None,
                Some(p) => Some(p.inject_time.max(cycle + 1)),
                None => None,
            };
        }
        Some(cycle + 1)
    }
}

/// The shared flit-level engine body behind
/// [`simulate_wormhole`](crate::simulate_wormhole) and
/// [`simulate_wormhole_faulted`](crate::simulate_wormhole_faulted): one
/// [`WormLane`] covering every node, driven by the unified stepper
/// under the [`Solo`] protocol. See
/// [`simulate_wormhole`](crate::simulate_wormhole) for the model; the
/// stage structure deliberately mirrors the store-and-forward core
/// phase for phase, so the degenerate configuration is event-for-event
/// identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn wormhole_engine<T, R, O, F>(
    topology: &T,
    router: &R,
    flits_per_packet: u32,
    vcs: u32,
    buf_flits: u32,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
    admission: &F,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
    F: FaultPolicy,
{
    let n = topology.len();
    let plan = routing_for(topology, router, packets.len());
    let classes = edge_classes(topology);
    let mut lane = WormLane::new(
        topology.graph(),
        &classes,
        plan.as_ref(),
        admission,
        observer,
        flits_per_packet.max(1),
        vcs.max(1) as usize,
        buf_flits.max(1) as u64,
        packets,
        n,
        0,
        n as u32,
    );
    run_lane(&mut lane, &Solo::default(), 0, max_cycles);
    lane.acc.finish(packets.len())
}

/// [`simulate_wormhole_faulted`](crate::simulate_wormhole_faulted)
/// sharded across `threads` OS threads through the
/// replicated-arbitration protocol (see `engine/wormhole.rs`'s docs) —
/// bit-identical [`SimStats`] and merged observer output at any thread
/// count, for table-routed *and* adaptive configurations. `threads` is
/// clamped to `[1, nodes]`; `threads <= 1` runs the serial engine
/// directly, and a [`SwitchingSpec::StoreAndForward`] spec delegates to
/// [`simulate_parallel_observed`](super::simulate_parallel_observed).
///
/// # Panics
///
/// Panics if `observer` does not support forking
/// ([`SimObserver::fork`] returns `None`) and `threads > 1`; the
/// experiment layer pre-checks and reports a typed error instead.
#[allow(clippy::too_many_arguments)]
pub fn simulate_parallel_wormhole<T, R, O>(
    topology: &T,
    router: &R,
    spec: &SwitchingSpec,
    faults: &FaultSet,
    packets: &[Packet],
    max_cycles: u64,
    threads: usize,
    observer: &mut O,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + Sync + ?Sized,
    O: SimObserver + Send,
{
    let n = topology.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return super::simulate_wormhole_faulted(
            topology, router, spec, faults, packets, max_cycles, observer,
        );
    }
    match *spec {
        SwitchingSpec::StoreAndForward => super::parallel::simulate_parallel_observed(
            topology, router, faults, packets, max_cycles, threads, observer,
        ),
        SwitchingSpec::Wormhole { vcs, buf_flits, .. } => {
            let fpp = spec.flits_per_packet();
            if faults.is_empty() {
                let admit = AdmitAll;
                wormhole_pool(
                    topology, router, fpp, vcs, buf_flits, packets, max_cycles, threads, observer,
                    &admit,
                )
            } else {
                let masked = FaultMaskingRouter::new(topology.graph(), router, faults);
                let admission = MaskedAdmission::new(&masked);
                wormhole_pool(
                    topology, &masked, fpp, vcs, buf_flits, packets, max_cycles, threads, observer,
                    &admission,
                )
            }
        }
    }
}

/// Builds one [`WormLane`] per thread (forking the observer), runs them
/// under the pooled protocol, and merges accumulators and observer
/// forks back in ascending lane order.
#[allow(clippy::too_many_arguments)]
fn wormhole_pool<T, R, O, F>(
    topology: &T,
    router: &R,
    flits_per_packet: u32,
    vcs: u32,
    buf_flits: u32,
    packets: &[Packet],
    max_cycles: u64,
    threads: usize,
    observer: &mut O,
    admission: &F,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + Sync + ?Sized,
    O: SimObserver + Send,
    F: FaultPolicy + Sync,
{
    let n = topology.len();
    let g = topology.graph();
    let plan = routing_for(topology, router, packets.len());
    let classes = edge_classes(topology);
    let lanes: Vec<WormLane<'_, R, F, O>> = lane_bounds(n, threads)
        .into_iter()
        .map(|(lo, hi)| {
            WormLane::new(
                g,
                &classes,
                plan.as_ref(),
                admission,
                fork_observer(observer),
                flits_per_packet.max(1),
                vcs.max(1) as usize,
                buf_flits.max(1) as u64,
                packets,
                n,
                lo,
                hi,
            )
        })
        .collect();
    let lanes = run_pool(lanes, max_cycles);
    let mut acc: Option<StatsAcc> = None;
    for lane in lanes {
        observer.merge(lane.observer);
        match &mut acc {
            None => acc = Some(lane.acc),
            Some(a) => a.merge(lane.acc),
        }
    }
    acc.expect("at least one lane").finish(packets.len())
}
