//! The flit-level wormhole engine body behind
//! [`simulate_wormhole`](crate::simulate_wormhole) /
//! [`simulate_wormhole_faulted`](crate::simulate_wormhole_faulted) —
//! the [`FlitWormhole`](super::policy::FlitWormhole) switching policy.
//! The cycle structure deliberately mirrors the store-and-forward core
//! ([`run_core`](super::core::run_core)) phase for phase, so the
//! degenerate configuration is event-for-event identical.

use std::collections::VecDeque;

use crate::arena::{FlitQueues, PacketSlab};
use crate::observer::SimObserver;
use crate::router::Router;
use crate::topology::Topology;
use crate::traffic::Packet;

use super::core::{route_edge, routing_for, Routing};
use super::policy::FaultPolicy;
use super::stats::{SimStats, StatsAcc};

/// Head-flit flag in a packed flit record (bit 56).
const FLIT_HEAD: u64 = 1 << 56;
/// Tail-flit flag in a packed flit record (bit 57). Single-flit packets
/// carry both flags.
const FLIT_TAIL: u64 = 1 << 57;
/// No packet claims this (edge × VC) buffer.
const NO_CLAIM: u32 = u32::MAX;
/// Arrival-list sentinel: the flit leaves the network at its destination
/// instead of entering a buffer.
const EJECT: u32 = u32::MAX;

/// Packs one flit: packet id in the low 32 bits, the index of the buffer
/// it occupies within its packet's reserved chain in bits 32..56, flags
/// above. Everything the forward phase needs travels in the queue word.
#[inline]
fn flit(id: u32, idx: usize, head: bool, tail: bool) -> u64 {
    debug_assert!(idx < (1 << 24), "path longer than 16M hops");
    let mut f = id as u64 | ((idx as u64) << 32);
    if head {
        f |= FLIT_HEAD;
    }
    if tail {
        f |= FLIT_TAIL;
    }
    f
}

/// The chain index of a packed flit.
#[inline]
fn flit_idx(f: u64) -> usize {
    ((f >> 32) & 0xFF_FFFF) as usize
}

/// Per-packet wormhole state in parallel columns indexed by slab id
/// (recycled with the slab's freelist, reset on allocation): the source,
/// the chain of buffer indices the head has reserved, the VC level and
/// last channel class driving VC selection, and the source-side streaming
/// progress.
#[derive(Default)]
struct WormState {
    src: Vec<u32>,
    /// Buffer indices (`edge * vcs + vc`) the head has claimed, in hop
    /// order — body flits follow this chain by their flit index.
    path: Vec<Vec<u32>>,
    level: Vec<u32>,
    last_class: Vec<u32>,
    flits_total: Vec<u32>,
    flits_sent: Vec<u32>,
    head_ejected: Vec<bool>,
}

impl WormState {
    fn reset(&mut self, id: u32, src: u32, flits: u32) {
        let i = id as usize;
        if self.src.len() <= i {
            let n = i + 1;
            self.src.resize(n, 0);
            self.path.resize_with(n, Vec::new);
            self.level.resize(n, 0);
            self.last_class.resize(n, 0);
            self.flits_total.resize(n, 0);
            self.flits_sent.resize(n, 0);
            self.head_ejected.resize(n, false);
        }
        self.src[i] = src;
        self.path[i].clear();
        self.level[i] = 0;
        self.last_class[i] = 0;
        self.flits_total[i] = flits;
        self.flits_sent[i] = 0;
        self.head_ejected[i] = false;
    }
}

/// Tries to place packet `id`'s head flit into VC 0 of its first output
/// link: routes the first hop, checks the buffer's claim (multi-flit
/// packets need exclusive worm occupancy) and credit, and on success
/// starts the packet's chain. Shared by fresh injections and the pending
/// retry queue; a `false` return leaves the packet unplaced (its state
/// untouched) for retry next cycle.
#[allow(clippy::too_many_arguments)]
#[inline]
fn try_place_head<T, R, O>(
    topology: &T,
    g: &fibcube_graph::csr::CsrGraph,
    routing: &Routing<'_, R>,
    queues: &mut FlitQueues,
    link_load: &mut [u32],
    claimed: &mut [u32],
    reserved: &[u32],
    worm: &mut WormState,
    slab: &PacketSlab,
    occupancy: &mut [u32],
    on_list: &mut [bool],
    active: &mut Vec<u32>,
    streams: &mut Vec<u32>,
    observer: &mut O,
    vcs: usize,
    buf_flits: u64,
    cycle: u64,
    id: u32,
) -> bool
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
{
    let i = id as usize;
    let src = worm.src[i];
    let dst = slab.dst(id);
    let e0 = route_edge(g, routing, link_load, src, dst);
    let b0 = e0 * vcs;
    let multi = worm.flits_total[i] > 1;
    if multi && claimed[b0] != NO_CLAIM {
        return false;
    }
    if queues.load(b0) as u64 + reserved[b0] as u64 >= buf_flits {
        return false;
    }
    worm.level[i] = 0;
    worm.last_class[i] = topology.channel_class(src, g.target(e0));
    worm.path[i].push(b0 as u32);
    worm.flits_sent[i] = 1;
    if multi {
        claimed[b0] = id;
        streams.push(id);
    }
    queues.push(b0, flit(id, 0, true, !multi));
    link_load[e0] += 1;
    occupancy[src as usize] += 1;
    observer.on_flit_hop(cycle, e0, 0, queues.load(b0) as u32);
    if !on_list[src as usize] {
        on_list[src as usize] = true;
        active.push(src);
    }
    true
}

/// The shared flit-level engine body behind
/// [`simulate_wormhole`](crate::simulate_wormhole) and
/// [`simulate_wormhole_faulted`](crate::simulate_wormhole_faulted). See
/// [`simulate_wormhole`](crate::simulate_wormhole) for the model; the
/// cycle structure deliberately mirrors the store-and-forward core phase
/// for phase (idle fast-forward, injection, forward scan in ascending
/// node and edge order, arrivals at the `cycle + 1` boundary) so the
/// degenerate configuration is event-for-event identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn wormhole_engine<T, R, O, F>(
    topology: &T,
    router: &R,
    flits_per_packet: u32,
    vcs: u32,
    buf_flits: u32,
    packets: &[Packet],
    max_cycles: u64,
    observer: &mut O,
    admission: &F,
) -> SimStats
where
    T: Topology + ?Sized,
    R: Router + ?Sized,
    O: SimObserver,
    F: FaultPolicy,
{
    let n = topology.len();
    let g = topology.graph();
    let routing = routing_for(topology, router, packets.len());
    let vcs = vcs.max(1) as usize;
    let buf_flits = buf_flits.max(1) as u64;
    let fpp = flits_per_packet.max(1);
    let max_level = vcs as u32 - 1;

    let links = g.num_directed_edges();
    let mut queues = FlitQueues::new(links, vcs);
    // Aggregated per-link flit occupancy: drives the cheap forward-scan
    // skip and doubles as the load view adaptive routers consult.
    let mut link_load: Vec<u32> = vec![0; links];
    // Which multi-flit packet holds each buffer (worms may not
    // interleave; single-flit packets are self-contained and bypass
    // claims entirely).
    let mut claimed: Vec<u32> = vec![NO_CLAIM; links * vcs];
    // Same-cycle credit reservations, consumed by the arrival phase.
    let mut reserved: Vec<u32> = vec![0; links * vcs];

    let mut slab = PacketSlab::new();
    let mut worm = WormState::default();
    // Flits queued per node (drives the active worklist).
    let mut occupancy = vec![0u32; n];
    let mut on_list = vec![false; n];
    let mut active: Vec<u32> = Vec::new();
    let mut next_active: Vec<u32> = Vec::new();
    // (flit record, buffer index or EJECT, buffer-owning/destination node)
    let mut arrivals: Vec<(u64, u32, u32)> = Vec::new();
    // Heads that could not claim their first buffer, in injection order.
    let mut pending: VecDeque<u32> = VecDeque::new();
    // Multi-flit packets still streaming body flits from their source.
    let mut streams: Vec<u32> = Vec::new();

    let mut inj: Vec<&Packet> = packets.iter().collect();
    inj.sort_by_key(|p| p.inject_time);
    let mut next_inject = 0usize;

    let mut acc = StatsAcc::for_network(n);
    let mut in_flight = 0usize;

    let mut cycle: u64 = 0;
    while cycle < max_cycles {
        // Skip straight to the next injection when the network is empty.
        if in_flight == 0 {
            match inj.get(next_inject) {
                None => break,
                Some(p) if p.inject_time > cycle => {
                    if p.inject_time >= max_cycles {
                        break;
                    }
                    cycle = p.inject_time;
                }
                Some(_) => {}
            }
        }

        let mut progressed = false;

        // Streaming continuation: each multi-flit packet feeds at most
        // one body flit per cycle into its claimed first buffer. The
        // claim is released once the tail has entered the network.
        streams.retain(|&id| {
            let i = id as usize;
            let b0 = worm.path[i][0] as usize;
            if queues.load(b0) as u64 + reserved[b0] as u64 >= buf_flits {
                return true;
            }
            let sent = worm.flits_sent[i];
            let is_tail = sent + 1 == worm.flits_total[i];
            queues.push(b0, flit(id, 0, false, is_tail));
            let e0 = b0 / vcs;
            link_load[e0] += 1;
            let src = worm.src[i] as usize;
            occupancy[src] += 1;
            observer.on_flit_hop(cycle, e0, (b0 % vcs) as u32, queues.load(b0) as u32);
            if !on_list[src] {
                on_list[src] = true;
                active.push(src as u32);
            }
            worm.flits_sent[i] = sent + 1;
            progressed = true;
            if is_tail {
                if claimed[b0] == id {
                    claimed[b0] = NO_CLAIM;
                }
                false
            } else {
                true
            }
        });

        // Retry heads that failed to claim their first buffer, oldest
        // first; failures keep their order without blocking later ones.
        for _ in 0..pending.len() {
            let id = pending.pop_front().expect("iteration is len-bounded");
            if try_place_head(
                topology,
                g,
                &routing,
                &mut queues,
                &mut link_load,
                &mut claimed,
                &reserved,
                &mut worm,
                &slab,
                &mut occupancy,
                &mut on_list,
                &mut active,
                &mut streams,
                observer,
                vcs,
                buf_flits,
                cycle,
                id,
            ) {
                progressed = true;
            } else {
                pending.push_back(id);
            }
        }

        // Inject everything due this cycle (same admission and
        // self-addressed handling as the store-and-forward engine).
        while next_inject < inj.len() && inj[next_inject].inject_time <= cycle {
            let p = inj[next_inject];
            next_inject += 1;
            observer.on_inject(cycle, p.src, p.dst);
            if let Some(reason) = admission.verdict(p.src, p.dst) {
                acc.drop_packet(reason);
                observer.on_drop(cycle, p.src, p.dst, reason);
                continue;
            }
            if p.src == p.dst {
                acc.deliver_instant();
                observer.on_deliver(cycle, p.dst, 0);
                continue;
            }
            let id = slab.alloc(p.dst, p.inject_time);
            worm.reset(id, p.src, fpp);
            in_flight += 1;
            if try_place_head(
                topology,
                g,
                &routing,
                &mut queues,
                &mut link_load,
                &mut claimed,
                &reserved,
                &mut worm,
                &slab,
                &mut occupancy,
                &mut on_list,
                &mut active,
                &mut streams,
                observer,
                vcs,
                buf_flits,
                cycle,
                id,
            ) {
                progressed = true;
            } else {
                pending.push_back(id);
            }
        }

        // Forward phase: each directed link of an active node moves at
        // most one flit, scanning VCs lowest-first for a front flit that
        // can advance. Ascending node and edge order matches the
        // store-and-forward engine's service order exactly.
        active.sort_unstable();
        for &u in &active {
            on_list[u as usize] = false;
            for e in g.edge_range(u) {
                if link_load[e] == 0 {
                    continue;
                }
                for vc in 0..vcs {
                    let b = e * vcs + vc;
                    let Some(f) = queues.front(b) else { continue };
                    let id = f as u32;
                    let i = id as usize;
                    let idx = flit_idx(f);
                    if f & FLIT_HEAD != 0 {
                        let v = g.target(e);
                        let dst = slab.dst(id);
                        if v == dst {
                            queues.pop(b);
                            link_load[e] -= 1;
                            occupancy[u as usize] -= 1;
                            observer.on_hop(cycle, u, v, e);
                            slab.record_hop(id);
                            acc.total_hops += 1;
                            arrivals.push((f, EJECT, v));
                            progressed = true;
                            break;
                        }
                        let e2 = route_edge(g, &routing, &link_load, v, dst);
                        let c2 = topology.channel_class(v, g.target(e2));
                        let mut lvl = worm.level[i];
                        if c2 <= worm.last_class[i] {
                            // Class order broken (a ring dateline or a
                            // fault detour): escape one VC level up.
                            lvl = (lvl + 1).min(max_level);
                        }
                        let b2 = e2 * vcs + lvl as usize;
                        let multi = worm.flits_total[i] > 1;
                        if multi && claimed[b2] != NO_CLAIM && claimed[b2] != id {
                            continue;
                        }
                        if queues.load(b2) as u64 + reserved[b2] as u64 >= buf_flits {
                            continue;
                        }
                        queues.pop(b);
                        link_load[e] -= 1;
                        occupancy[u as usize] -= 1;
                        if multi {
                            claimed[b2] = id;
                        }
                        reserved[b2] += 1;
                        worm.level[i] = lvl;
                        worm.last_class[i] = c2;
                        worm.path[i].push(b2 as u32);
                        observer.on_hop(cycle, u, v, e);
                        slab.record_hop(id);
                        acc.total_hops += 1;
                        arrivals.push((flit(id, idx + 1, true, f & FLIT_TAIL != 0), b2 as u32, v));
                        progressed = true;
                        break;
                    }
                    // Body/tail flit: follow the head's reserved chain.
                    let path = &worm.path[i];
                    if idx + 1 < path.len() {
                        let b2 = path[idx + 1] as usize;
                        if queues.load(b2) as u64 + reserved[b2] as u64 >= buf_flits {
                            continue;
                        }
                        queues.pop(b);
                        link_load[e] -= 1;
                        occupancy[u as usize] -= 1;
                        reserved[b2] += 1;
                        arrivals.push((
                            flit(id, idx + 1, false, f & FLIT_TAIL != 0),
                            b2 as u32,
                            g.target(e),
                        ));
                        progressed = true;
                        break;
                    }
                    if worm.head_ejected[i] {
                        // End of the chain with the head gone: this flit
                        // crosses the final link into the destination.
                        queues.pop(b);
                        link_load[e] -= 1;
                        occupancy[u as usize] -= 1;
                        arrivals.push((f, EJECT, g.target(e)));
                        progressed = true;
                        break;
                    }
                    // Head still parked one buffer ahead: wait.
                }
            }
            if occupancy[u as usize] > 0 {
                on_list[u as usize] = true;
                next_active.push(u);
            }
        }
        active.clear();
        std::mem::swap(&mut active, &mut next_active);

        // Arrivals (at the cycle + 1 boundary): flits enter their
        // reserved buffers or leave the network at the destination.
        let now = cycle + 1;
        for (f, buf, node) in arrivals.drain(..) {
            let id = f as u32;
            if buf == EJECT {
                if f & FLIT_TAIL != 0 {
                    in_flight -= 1;
                    let inject_time = slab.inject(id);
                    acc.deliver(now, inject_time);
                    observer.on_deliver(now, node, now - inject_time);
                    slab.release(id);
                } else if f & FLIT_HEAD != 0 {
                    worm.head_ejected[id as usize] = true;
                }
                // Body flits between head and tail vanish at dst.
            } else {
                let b = buf as usize;
                let e = b / vcs;
                reserved[b] -= 1;
                queues.push(b, f);
                link_load[e] += 1;
                occupancy[node as usize] += 1;
                observer.on_flit_hop(now, e, (b % vcs) as u32, queues.load(b) as u32);
                if f & FLIT_TAIL != 0 && claimed[b] == id {
                    claimed[b] = NO_CLAIM;
                }
                if !on_list[node as usize] {
                    on_list[node as usize] = true;
                    active.push(node);
                }
            }
        }
        observer.on_cycle_end(cycle, in_flight);

        if !progressed && in_flight > 0 {
            // Nothing moved. With a future injection the network may
            // unstick (new packets can place on other links): jump there.
            // With none, this is a genuine deadlock — only reachable off
            // the order-based configurations — so stop instead of
            // spinning to the cap; the stranded packets surface as
            // `offered − delivered − dropped`.
            match inj.get(next_inject) {
                Some(p) if p.inject_time >= max_cycles => break,
                Some(p) => {
                    cycle = p.inject_time.max(cycle + 1);
                    continue;
                }
                None => break,
            }
        }
        cycle += 1;
    }

    acc.finish(packets.len())
}
