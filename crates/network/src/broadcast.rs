//! One-to-all broadcasting (Hsu–Liu's distributed primitive).
//!
//! Two classical models:
//!
//! * **all-port** ("shouting"): an informed node informs *all* neighbors in
//!   one round — the round count equals the eccentricity of the source;
//! * **one-port** ("telephone"): an informed node informs *one* neighbor
//!   per round — the information-theoretic floor is `⌈log₂ n⌉` rounds.
//!
//! On the hypercube, recursive doubling achieves `d = ⌈log₂ n⌉` rounds
//! one-port; on the Fibonacci cube the recursive decomposition
//! `Γ_d = 0·Γ_{d−1} ∪ 10·Γ_{d−2}` yields a `d`-round one-port schedule from
//! node `0^d` (each round `r` the holder of a prefix informs across
//! coordinate `r` when the target address stays valid). We implement a
//! greedy one-port scheduler that works on any topology and verify the
//! round counts against those structural bounds.

use std::collections::VecDeque;

use crate::topology::Topology;

/// Result of a broadcast: per-node round of becoming informed.
#[derive(Clone, Debug)]
pub struct BroadcastSchedule {
    /// The source node.
    pub source: u32,
    /// `round[v]` — round at which `v` learned the message (source = 0).
    pub round: Vec<u32>,
    /// Total rounds until everyone is informed.
    pub rounds: u32,
    /// The tree edges `(parent, child)` in the order they were used.
    pub calls: Vec<(u32, u32)>,
}

/// All-port broadcast: BFS level = informing round.
pub fn broadcast_all_port(t: &dyn Topology, source: u32) -> BroadcastSchedule {
    let dist = fibcube_graph::bfs::bfs_distances(t.graph(), source);
    let mut calls = Vec::new();
    let mut round = vec![0u32; t.len()];
    let mut max = 0;
    for (v, &dv) in dist.iter().enumerate() {
        assert_ne!(
            dv,
            fibcube_graph::INFINITY,
            "broadcast needs a connected network"
        );
        round[v] = dv;
        max = max.max(dv);
        if dv > 0 {
            // Parent: any neighbor one level up.
            let parent = t
                .graph()
                .neighbors(v as u32)
                .iter()
                .copied()
                .find(|&u| dist[u as usize] + 1 == dv)
                .expect("BFS level has a parent");
            calls.push((parent, v as u32));
        }
    }
    BroadcastSchedule {
        source,
        round,
        rounds: max,
        calls,
    }
}

/// Greedy one-port (telephone) broadcast: each round, every informed node
/// calls one uninformed neighbor, preferring the neighbor whose subtree
/// need is largest (here approximated by highest remaining degree — the
/// classic greedy heuristic). Returns the achieved schedule.
pub fn broadcast_one_port(t: &dyn Topology, source: u32) -> BroadcastSchedule {
    let n = t.len();
    let g = t.graph();
    let mut informed = vec![false; n];
    let mut round = vec![0u32; n];
    let mut calls = Vec::new();
    informed[source as usize] = true;
    let mut holders: VecDeque<u32> = VecDeque::from([source]);
    let mut rounds = 0u32;
    let mut informed_count = 1usize;
    while informed_count < n {
        rounds += 1;
        let mut new_holders = Vec::new();
        for &u in holders.iter() {
            // Call the uninformed neighbor with the most uninformed
            // neighbors of its own (tie-break: smallest id).
            let candidate = g
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&v| !informed[v as usize])
                .max_by_key(|&v| {
                    let need = g
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| !informed[w as usize])
                        .count();
                    (need, std::cmp::Reverse(v))
                });
            if let Some(v) = candidate {
                informed[v as usize] = true;
                round[v as usize] = rounds;
                calls.push((u, v));
                new_holders.push(v);
                informed_count += 1;
            }
        }
        assert!(
            !new_holders.is_empty() || informed_count == n,
            "connected networks always make progress"
        );
        holders.extend(new_holders);
    }
    BroadcastSchedule {
        source,
        round,
        rounds,
        calls,
    }
}

/// Validates a schedule: every node informed exactly once, by an informed
/// neighbor, no node making two calls in one round (one-port only).
pub fn verify_schedule(t: &dyn Topology, s: &BroadcastSchedule, one_port: bool) -> bool {
    let n = t.len();
    let mut informed_at = vec![u32::MAX; n];
    informed_at[s.source as usize] = 0;
    let mut seen = vec![false; n];
    seen[s.source as usize] = true;
    // Process calls in temporal order (schedules may list them otherwise).
    let mut ordered = s.calls.clone();
    ordered.sort_by_key(|&(_, v)| s.round[v as usize]);
    for &(u, v) in &ordered {
        if !t.graph().has_edge(u, v) || seen[v as usize] {
            return false;
        }
        // Caller must already know the message strictly before this round.
        if informed_at[u as usize] == u32::MAX || informed_at[u as usize] >= s.round[v as usize] {
            return false;
        }
        informed_at[v as usize] = s.round[v as usize];
        seen[v as usize] = true;
    }
    if !seen.iter().all(|&b| b) {
        return false;
    }
    if one_port {
        // No node calls twice in the same round.
        let mut per_round: std::collections::HashMap<(u32, u32), u32> = Default::default();
        for &(u, v) in &s.calls {
            let r = s.round[v as usize];
            let c = per_round.entry((u, r)).or_insert(0);
            *c += 1;
            if *c > 1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FibonacciNet, Hypercube, Ring};

    #[test]
    fn all_port_rounds_equal_eccentricity() {
        let q = Hypercube::new(4);
        let s = broadcast_all_port(&q, 0);
        assert_eq!(s.rounds, 4);
        assert!(verify_schedule(&q, &s, false));
        let net = FibonacciNet::classical(7);
        let zero = net.node_of(&fibcube_words::Word::zeros(7)).unwrap();
        let s = broadcast_all_port(&net, zero);
        // ecc(0^d) in Γ_d is ⌈d/2⌉ (the farthest vertex alternates 1s).
        assert_eq!(s.rounds, 4);
        assert!(verify_schedule(&net, &s, false));
    }

    #[test]
    fn one_port_hypercube_matches_recursive_doubling() {
        for d in 1..=5 {
            let q = Hypercube::new(d);
            let s = broadcast_one_port(&q, 0);
            assert!(verify_schedule(&q, &s, true), "d={d}");
            // Optimal is exactly d rounds; greedy must not exceed d + 1.
            assert!(s.rounds >= d as u32);
            assert!(s.rounds <= d as u32 + 1, "d={d}: rounds={}", s.rounds);
        }
    }

    #[test]
    fn one_port_fibonacci_close_to_information_bound() {
        for d in 2..=9 {
            let net = FibonacciNet::classical(d);
            let s = broadcast_one_port(&net, 0);
            assert!(verify_schedule(&net, &s, true), "d={d}");
            let n = net.len() as f64;
            let floor = n.log2().ceil() as u32;
            assert!(s.rounds >= floor, "d={d}");
            // Hsu-style bound: the schedule completes within d rounds… the
            // greedy heuristic is allowed d + 2 slack here.
            assert!(s.rounds <= d as u32 + 2, "d={d}: rounds={}", s.rounds);
        }
    }

    #[test]
    fn ring_one_port_takes_about_half_n() {
        let r = Ring::new(12);
        let s = broadcast_one_port(&r, 0);
        assert!(verify_schedule(&r, &s, true));
        // Two fronts propagate after the initial call: ≥ n/2 rounds.
        assert!(s.rounds >= 6);
    }

    #[test]
    fn every_node_informed_exactly_once() {
        let net = FibonacciNet::new(8, 3);
        let s = broadcast_one_port(&net, 5);
        assert_eq!(s.calls.len(), net.len() - 1);
        assert!(verify_schedule(&net, &s, true));
    }
}
