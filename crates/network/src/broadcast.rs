//! One-to-all broadcasting (Hsu–Liu's distributed primitive).
//!
//! Two classical models:
//!
//! * **all-port** ("shouting"): an informed node informs *all* neighbors in
//!   one round — the round count equals the eccentricity of the source;
//! * **one-port** ("telephone"): an informed node informs *one* neighbor
//!   per round — the information-theoretic floor is `⌈log₂ n⌉` rounds.
//!
//! On the hypercube, recursive doubling achieves `d = ⌈log₂ n⌉` rounds
//! one-port; on the Fibonacci cube the recursive decomposition
//! `Γ_d = 0·Γ_{d−1} ∪ 10·Γ_{d−2}` yields a `d`-round one-port schedule from
//! node `0^d` (each round `r` the holder of a prefix informs across
//! coordinate `r` when the target address stays valid). We implement a
//! greedy one-port scheduler that works on any topology and verify the
//! round counts against those structural bounds.
//!
//! Disconnected networks — routine since
//! [`FaultSet::healthy_subgraph`](crate::fault::FaultSet::healthy_subgraph)
//! produces them — are typed [`BroadcastError`]s, not panics: the public
//! schedulers return `Result`, and the partial-coverage core they share
//! also powers the *live* collective workloads
//! ([`CollectiveSpec`](crate::collective::CollectiveSpec)), which
//! deliberately cover only the source's surviving component.

use core::fmt;

use fibcube_graph::csr::CsrGraph;

use crate::experiment::ExperimentError;
use crate::topology::Topology;

/// A broadcast the scheduler rejected — the disconnected-network failure
/// mode that used to be an `assert!` (all-port) or a stall (one-port), as
/// a typed, `?`-friendly error mirroring
/// [`FaultError`](crate::fault::FaultError) /
/// [`ExperimentError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BroadcastError {
    /// The source cannot reach every node: the network is disconnected
    /// (e.g. the healthy subgraph of a fault set).
    Disconnected {
        /// The broadcast source.
        source: u32,
        /// Nodes the source can reach (source included).
        reached: usize,
        /// Nodes in the network.
        nodes: usize,
    },
}

impl fmt::Display for BroadcastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BroadcastError::Disconnected {
                source,
                reached,
                nodes,
            } => write!(
                f,
                "broadcast from {source} reaches only {reached} of {nodes} nodes: \
                 the network is disconnected"
            ),
        }
    }
}

impl std::error::Error for BroadcastError {}

impl From<BroadcastError> for ExperimentError {
    fn from(e: BroadcastError) -> ExperimentError {
        ExperimentError::Broadcast(e)
    }
}

/// Result of a broadcast: per-node round of becoming informed.
#[derive(Clone, Debug)]
pub struct BroadcastSchedule {
    /// The source node.
    pub source: u32,
    /// `round[v]` — round at which `v` learned the message (source = 0).
    pub round: Vec<u32>,
    /// Total rounds until everyone is informed.
    pub rounds: u32,
    /// The tree edges `(parent, child)` in the order they were used.
    pub calls: Vec<(u32, u32)>,
}

/// A schedule over whatever the source can reach: the shared core behind
/// the public schedulers (which reject partial coverage with a typed
/// error) and the collective compiler (which wants exactly the reachable
/// component). `round[v] == u32::MAX` marks unreached nodes; `calls` are
/// in non-decreasing round order.
pub(crate) struct PartialSchedule {
    /// `round[v]`, or `u32::MAX` when `v` is unreachable from the source.
    pub round: Vec<u32>,
    /// Rounds until the reachable set is informed (0 when alone).
    pub rounds: u32,
    /// Tree edges `(parent, child)` in non-decreasing round order.
    pub calls: Vec<(u32, u32)>,
    /// Nodes informed, source included.
    pub reached: usize,
}

/// All-port partial schedule: BFS level = informing round, restricted to
/// the source's component.
pub(crate) fn partial_all_port(g: &CsrGraph, source: u32) -> PartialSchedule {
    let dist = fibcube_graph::bfs::bfs_distances(g, source);
    let mut round = vec![u32::MAX; g.num_vertices()];
    let mut order: Vec<u32> = Vec::new();
    let mut rounds = 0;
    let mut reached = 0usize;
    for (v, &dv) in dist.iter().enumerate() {
        if dv == fibcube_graph::INFINITY {
            continue;
        }
        round[v] = dv;
        rounds = rounds.max(dv);
        reached += 1;
        if dv > 0 {
            order.push(v as u32);
        }
    }
    // Emit calls in round order (BFS levels), parent = any neighbor one
    // level up.
    order.sort_by_key(|&v| round[v as usize]);
    let calls = order
        .into_iter()
        .map(|v| {
            let parent = g
                .neighbors(v)
                .iter()
                .copied()
                .find(|&u| dist[u as usize] + 1 == dist[v as usize])
                .expect("BFS level has a parent");
            (parent, v)
        })
        .collect();
    PartialSchedule {
        round,
        rounds,
        calls,
        reached,
    }
}

/// Greedy one-port partial schedule: each round, every informed node
/// calls one uninformed neighbor (preferring the neighbor with the most
/// uninformed neighbors of its own), stopping when a full round makes no
/// progress — which on a disconnected graph simply leaves the other
/// components unreached instead of stalling.
pub(crate) fn partial_one_port(g: &CsrGraph, source: u32) -> PartialSchedule {
    let n = g.num_vertices();
    let mut informed = vec![false; n];
    let mut round = vec![u32::MAX; n];
    let mut calls = Vec::new();
    informed[source as usize] = true;
    round[source as usize] = 0;
    let mut holders: Vec<u32> = vec![source];
    let mut rounds = 0u32;
    let mut reached = 1usize;
    loop {
        let r = rounds + 1;
        let mut new_holders = Vec::new();
        for &u in holders.iter() {
            // Call the uninformed neighbor with the most uninformed
            // neighbors of its own (tie-break: smallest id).
            let candidate = g
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&v| !informed[v as usize])
                .max_by_key(|&v| {
                    let need = g
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| !informed[w as usize])
                        .count();
                    (need, std::cmp::Reverse(v))
                });
            if let Some(v) = candidate {
                informed[v as usize] = true;
                round[v as usize] = r;
                calls.push((u, v));
                new_holders.push(v);
                reached += 1;
            }
        }
        if new_holders.is_empty() {
            // No informed node found an uninformed neighbor: everything
            // reachable is informed. On a connected graph this happens
            // exactly once coverage is complete; on a disconnected one it
            // is the clean termination the old loop lacked.
            break;
        }
        rounds = r;
        holders.extend(new_holders);
    }
    PartialSchedule {
        round,
        rounds,
        calls,
        reached,
    }
}

fn complete(
    t: &dyn Topology,
    source: u32,
    p: PartialSchedule,
) -> Result<BroadcastSchedule, BroadcastError> {
    if p.reached < t.len() {
        return Err(BroadcastError::Disconnected {
            source,
            reached: p.reached,
            nodes: t.len(),
        });
    }
    Ok(BroadcastSchedule {
        source,
        round: p.round,
        rounds: p.rounds,
        calls: p.calls,
    })
}

/// All-port broadcast: BFS level = informing round. `Err` when the
/// network is disconnected (the schedule cannot cover every node).
pub fn broadcast_all_port(
    t: &dyn Topology,
    source: u32,
) -> Result<BroadcastSchedule, BroadcastError> {
    complete(t, source, partial_all_port(t.graph(), source))
}

/// Greedy one-port (telephone) broadcast: each round, every informed node
/// calls one uninformed neighbor, preferring the neighbor whose subtree
/// need is largest (here approximated by highest remaining degree — the
/// classic greedy heuristic). Returns the achieved schedule, or `Err`
/// when the network is disconnected.
pub fn broadcast_one_port(
    t: &dyn Topology,
    source: u32,
) -> Result<BroadcastSchedule, BroadcastError> {
    complete(t, source, partial_one_port(t.graph(), source))
}

/// Validates a schedule: every node informed exactly once, by an informed
/// neighbor, no node making two calls in one round (one-port only).
pub fn verify_schedule(t: &dyn Topology, s: &BroadcastSchedule, one_port: bool) -> bool {
    let n = t.len();
    let mut informed_at = vec![u32::MAX; n];
    informed_at[s.source as usize] = 0;
    let mut seen = vec![false; n];
    seen[s.source as usize] = true;
    // Process calls in temporal order (schedules may list them otherwise).
    let mut ordered = s.calls.clone();
    ordered.sort_by_key(|&(_, v)| s.round[v as usize]);
    for &(u, v) in &ordered {
        if !t.graph().has_edge(u, v) || seen[v as usize] {
            return false;
        }
        // Caller must already know the message strictly before this round.
        if informed_at[u as usize] == u32::MAX || informed_at[u as usize] >= s.round[v as usize] {
            return false;
        }
        informed_at[v as usize] = s.round[v as usize];
        seen[v as usize] = true;
    }
    if !seen.iter().all(|&b| b) {
        return false;
    }
    if one_port {
        // No node calls twice in the same round.
        let mut per_round: std::collections::HashMap<(u32, u32), u32> = Default::default();
        for &(u, v) in &s.calls {
            let r = s.round[v as usize];
            let c = per_round.entry((u, r)).or_insert(0);
            *c += 1;
            if *c > 1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSet;
    use crate::topology::{FibonacciNet, Hypercube, Ring};

    #[test]
    fn all_port_rounds_equal_eccentricity() {
        let q = Hypercube::new(4);
        let s = broadcast_all_port(&q, 0).expect("Q_4 is connected");
        assert_eq!(s.rounds, 4);
        assert!(verify_schedule(&q, &s, false));
        let net = FibonacciNet::classical(7);
        let zero = net.node_of(&fibcube_words::Word::zeros(7)).unwrap();
        let s = broadcast_all_port(&net, zero).expect("Γ_7 is connected");
        // ecc(0^d) in Γ_d is ⌈d/2⌉ (the farthest vertex alternates 1s).
        assert_eq!(s.rounds, 4);
        assert!(verify_schedule(&net, &s, false));
    }

    #[test]
    fn one_port_hypercube_matches_recursive_doubling() {
        for d in 1..=5 {
            let q = Hypercube::new(d);
            let s = broadcast_one_port(&q, 0).expect("hypercubes are connected");
            assert!(verify_schedule(&q, &s, true), "d={d}");
            // Optimal is exactly d rounds; greedy must not exceed d + 1.
            assert!(s.rounds >= d as u32);
            assert!(s.rounds <= d as u32 + 1, "d={d}: rounds={}", s.rounds);
        }
    }

    #[test]
    fn one_port_fibonacci_close_to_information_bound() {
        for d in 2..=9 {
            let net = FibonacciNet::classical(d);
            let s = broadcast_one_port(&net, 0).expect("Γ_d is connected");
            assert!(verify_schedule(&net, &s, true), "d={d}");
            let n = net.len() as f64;
            let floor = n.log2().ceil() as u32;
            assert!(s.rounds >= floor, "d={d}");
            // Hsu-style bound: the schedule completes within d rounds… the
            // greedy heuristic is allowed d + 2 slack here.
            assert!(s.rounds <= d as u32 + 2, "d={d}: rounds={}", s.rounds);
        }
    }

    #[test]
    fn ring_one_port_takes_about_half_n() {
        let r = Ring::new(12);
        let s = broadcast_one_port(&r, 0).expect("rings are connected");
        assert!(verify_schedule(&r, &s, true));
        // Two fronts propagate after the initial call: ≥ n/2 rounds.
        assert!(s.rounds >= 6);
    }

    #[test]
    fn every_node_informed_exactly_once() {
        let net = FibonacciNet::new(8, 3);
        let s = broadcast_one_port(&net, 5).expect("Q_8(1^3) is connected");
        assert_eq!(s.calls.len(), net.len() - 1);
        assert!(verify_schedule(&net, &s, true));
    }

    /// A graph-only test topology: the healthy subgraph of a fault set,
    /// as the collective path sees it. Routing is never consulted by the
    /// schedulers.
    struct Subnet {
        graph: CsrGraph,
    }

    impl Topology for Subnet {
        fn name(&self) -> String {
            "Subnet".into()
        }
        fn len(&self) -> usize {
            self.graph.num_vertices()
        }
        fn graph(&self) -> &CsrGraph {
            &self.graph
        }
        fn next_hop(&self, _cur: u32, _dst: u32) -> Option<u32> {
            unreachable!("broadcast schedulers never route")
        }
    }

    #[test]
    fn disconnected_networks_are_typed_errors_not_panics_or_stalls() {
        // Satellite regression: isolate node 1 of Γ_16 by failing all its
        // neighbors, then broadcast on the healthy subgraph — exactly what
        // `FaultSet::healthy_subgraph` hands the collective path. The old
        // all-port asserted and the old one-port never terminated here.
        let net = FibonacciNet::classical(16);
        // Isolate a node whose neighborhood does not contain the source.
        let isolated = (1..net.len() as u32)
            .find(|&v| !net.graph().neighbors(v).contains(&0))
            .expect("Γ_16 has nodes not adjacent to 0");
        let cut: Vec<u32> = net.graph().neighbors(isolated).to_vec();
        let faults = FaultSet::new(cut, []);
        let (healthy, survivors) = faults.healthy_subgraph(net.graph());
        let sub = Subnet { graph: healthy };
        // The isolated node survives but is cut off from the source.
        let zero = survivors.iter().position(|&v| v == 0).unwrap() as u32;
        let isolated_new = survivors.iter().position(|&v| v == isolated).unwrap();
        for schedule in [
            broadcast_all_port(&sub, zero),
            broadcast_one_port(&sub, zero),
        ] {
            let err = schedule.expect_err("isolated survivor ⇒ disconnected");
            let BroadcastError::Disconnected {
                source,
                reached,
                nodes,
            } = err.clone();
            assert_eq!(source, zero);
            assert_eq!(nodes, sub.len());
            assert!(reached < nodes, "{err}");
            assert!(err.to_string().contains("disconnected"), "{err}");
            // And the satellite's `?`-friendliness: From<BroadcastError>.
            let exp: ExperimentError = err.into();
            assert!(matches!(exp, ExperimentError::Broadcast(_)));
            assert!(exp.to_string().contains("disconnected"), "{exp}");
        }
        // The partial core still schedules the reachable component — the
        // isolated node stays unreached, everything scheduled got a call.
        let p = partial_one_port(sub.graph(), zero);
        assert!(p.reached < sub.len());
        assert_eq!(p.round[isolated_new], u32::MAX, "isolated node unreached");
        assert_eq!(p.calls.len(), p.reached - 1);
    }

    #[test]
    fn partial_calls_are_in_round_order_with_consecutive_sibling_rounds() {
        // The property the live one-port replication relies on: the calls
        // a node makes occupy consecutive rounds starting right after it
        // was informed, and the call list is round-sorted.
        for t in [
            &FibonacciNet::classical(9) as &dyn Topology,
            &Hypercube::new(5),
            &Ring::new(14),
        ] {
            for port in [
                partial_one_port(t.graph(), 0),
                partial_all_port(t.graph(), 0),
            ] {
                let rounds: Vec<u32> = port
                    .calls
                    .iter()
                    .map(|&(_, v)| port.round[v as usize])
                    .collect();
                assert!(rounds.windows(2).all(|w| w[0] <= w[1]), "{}", t.name());
            }
            let p = partial_one_port(t.graph(), 0);
            let mut next_round: Vec<u32> =
                (0..t.len()).map(|v| p.round[v].saturating_add(1)).collect();
            for &(u, v) in &p.calls {
                assert_eq!(
                    p.round[v as usize],
                    next_round[u as usize],
                    "{}: caller {u} must fire on consecutive rounds",
                    t.name()
                );
                next_round[u as usize] += 1;
            }
        }
    }
}
