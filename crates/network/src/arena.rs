//! The arena-backed storage core of the simulation engine: a
//! struct-of-arrays in-flight packet slab ([`PacketSlab`]) and fixed-stride
//! ring-buffer link FIFOs ([`LinkQueues`]).
//!
//! The first engine kept one heap-allocated `VecDeque` of 16-byte packet
//! structs per directed link — ~2m independent allocations that appear and
//! die over a run, every queue header on its own cache line, every queued
//! packet moved by value on each hop. This module replaces that with two
//! flat arenas:
//!
//! * packets live in **one** slab for the whole run and are referred to by
//!   `u32` id everywhere (queues, arrival lists), with a freelist so ids
//!   are recycled as packets are delivered;
//! * every directed link owns a fixed `RING_STRIDE`-slot window of one
//!   shared ring array, indexed by the CSR directed-edge id. Pushing and
//!   popping a shallow queue is a couple of loads and stores with no
//!   allocation at all; queues deeper than the stride spill their tail to
//!   a per-link overflow list (headers only — an overflow `VecDeque`
//!   allocates on first use, i.e. only for links that actually saturate).
//!
//! The occupancy column [`LinkQueues::loads`] doubles as the live load
//! view the adaptive routers consult, so a whole node's output occupancy
//! sits in one or two cache lines.

use std::collections::VecDeque;

/// Per-link ring capacity (slots), a power of two. Queues only grow past
/// this under congestion, where the simulated network is the bottleneck
/// anyway; at light and moderate load every FIFO operation stays inside
/// the ring. Kept small deliberately: the ring arena is `4 · stride`
/// bytes per directed link and the engine is cache-bound, so a lean ring
/// beats a roomy one.
pub const RING_STRIDE: usize = 4;

/// Sentinel for the [`PacketSlab::next_copy`] column: this packet chains
/// no follow-up copy (every non-collective packet, and the last sibling
/// copy of a one-port replication chain).
pub const NO_COPY: u32 = u32::MAX;

/// Struct-of-arrays packet arena: destination, injection cycle, hop
/// count, and the collective-replication chain live in parallel vectors
/// indexed by packet id, with freelist recycling. The engine's queues and
/// arrival lists carry only the ids.
#[derive(Clone, Debug, Default)]
pub struct PacketSlab {
    dst: Vec<u32>,
    inject: Vec<u64>,
    hops: Vec<u32>,
    /// Collective tree-forwarding chain: the copy-plan edge the packet's
    /// origin emits next, once this copy departs ([`NO_COPY`] otherwise).
    /// Lives in the slab so replication allocates nothing per packet —
    /// spawned copies reuse freelisted ids like every other packet.
    next_copy: Vec<u32>,
    free: Vec<u32>,
}

impl PacketSlab {
    /// An empty slab.
    pub fn new() -> PacketSlab {
        PacketSlab::default()
    }

    /// A slab with room for `capacity` concurrently live packets before
    /// the columns reallocate.
    pub fn with_capacity(capacity: usize) -> PacketSlab {
        PacketSlab {
            dst: Vec::with_capacity(capacity),
            inject: Vec::with_capacity(capacity),
            hops: Vec::with_capacity(capacity),
            next_copy: Vec::with_capacity(capacity),
            free: Vec::new(),
        }
    }

    /// Admits a packet, reusing a retired id when one is free. The
    /// replication chain starts empty ([`NO_COPY`]).
    #[inline]
    pub fn alloc(&mut self, dst: u32, inject: u64) -> u32 {
        if let Some(id) = self.free.pop() {
            self.dst[id as usize] = dst;
            self.inject[id as usize] = inject;
            self.hops[id as usize] = 0;
            self.next_copy[id as usize] = NO_COPY;
            id
        } else {
            self.dst.push(dst);
            self.inject.push(inject);
            self.hops.push(0);
            self.next_copy.push(NO_COPY);
            (self.dst.len() - 1) as u32
        }
    }

    /// Retires a delivered packet; its id goes back on the freelist.
    #[inline]
    pub fn release(&mut self, id: u32) {
        self.free.push(id);
    }

    /// Destination of packet `id`.
    #[inline]
    pub fn dst(&self, id: u32) -> u32 {
        self.dst[id as usize]
    }

    /// Injection cycle of packet `id`.
    #[inline]
    pub fn inject(&self, id: u32) -> u64 {
        self.inject[id as usize]
    }

    /// Link traversals packet `id` has made so far.
    #[inline]
    pub fn hops(&self, id: u32) -> u32 {
        self.hops[id as usize]
    }

    /// Records one link traversal for packet `id`.
    #[inline]
    pub fn record_hop(&mut self, id: u32) {
        self.hops[id as usize] += 1;
    }

    /// Restores a carried hop count onto a freshly allocated id — the
    /// sharded engine releases a packet's slot when it departs a lane
    /// and re-allocates at the committing lane, so the cumulative count
    /// rides along in the outbox message.
    #[inline]
    pub fn set_hops(&mut self, id: u32, hops: u32) {
        self.hops[id as usize] = hops;
    }

    /// The copy-plan edge the origin of packet `id` emits after this copy
    /// departs, or [`NO_COPY`] — the one-port tree-forwarding chain of
    /// [`simulate_collective`](crate::simulator::simulate_collective).
    #[inline]
    pub fn next_copy(&self, id: u32) -> u32 {
        self.next_copy[id as usize]
    }

    /// Chains the follow-up copy-plan edge `next` onto packet `id`.
    #[inline]
    pub fn set_next_copy(&mut self, id: u32, next: u32) {
        self.next_copy[id as usize] = next;
    }

    /// Packets currently live (allocated and not yet released).
    pub fn live(&self) -> usize {
        self.dst.len() - self.free.len()
    }
}

/// Fixed-stride ring-buffer FIFOs, one per directed link, in a single
/// contiguous arena indexed by CSR directed-edge id. Values are
/// [`PacketSlab`] packet ids. See the [module docs](self) for the layout
/// rationale and the overflow (saturation) behaviour.
#[derive(Clone, Debug)]
pub struct LinkQueues {
    /// `ring[e * RING_STRIDE + slot]` — the ring window of link `e`.
    ring: Vec<u32>,
    /// Front cursor of each link's ring, `0..RING_STRIDE`.
    head: Vec<u32>,
    /// Total occupancy per link (ring **plus** overflow) — also the load
    /// figure adaptive routers see.
    len: Vec<u32>,
    /// Spill lists for links deeper than the ring, indexed by link id.
    /// **Lazily sized**: empty until the first spill anywhere, so light
    /// and moderate runs never pay for `links` deque headers, while
    /// saturated runs pay once and then index directly (no hashing on
    /// the congested path).
    overflow: Vec<VecDeque<u32>>,
}

impl LinkQueues {
    /// Empty FIFOs for `links` directed links.
    pub fn new(links: usize) -> LinkQueues {
        LinkQueues {
            ring: vec![0; links * RING_STRIDE],
            head: vec![0; links],
            len: vec![0; links],
            overflow: Vec::new(),
        }
    }

    /// Number of links.
    pub fn links(&self) -> usize {
        self.len.len()
    }

    /// Enqueues packet `id` on link `e`.
    #[inline]
    pub fn push(&mut self, e: usize, id: u32) {
        let l = self.len[e] as usize;
        if l < RING_STRIDE {
            let slot = (self.head[e] as usize + l) & (RING_STRIDE - 1);
            self.ring[e * RING_STRIDE + slot] = id;
        } else {
            if self.overflow.is_empty() {
                // First spill of the run: materialise the header column.
                self.overflow = vec![VecDeque::new(); self.len.len()];
            }
            self.overflow[e].push_back(id);
        }
        self.len[e] = (l + 1) as u32;
    }

    /// Dequeues the front packet of link `e`, or `None` when it is idle.
    #[inline]
    pub fn pop(&mut self, e: usize) -> Option<u32> {
        let l = self.len[e] as usize;
        if l == 0 {
            return None;
        }
        let head = self.head[e] as usize;
        let id = self.ring[e * RING_STRIDE + head];
        if l > RING_STRIDE {
            // The ring was full: the eldest spilled packet is promoted into
            // the slot just vacated, which (head + RING_STRIDE ≡ head) is
            // exactly where FIFO order wants it. O(1), no shifting.
            let promoted = self.overflow[e]
                .pop_front()
                .expect("occupancy beyond the stride implies a spill list");
            self.ring[e * RING_STRIDE + head] = promoted;
        }
        self.head[e] = ((head + 1) & (RING_STRIDE - 1)) as u32;
        self.len[e] = (l - 1) as u32;
        Some(id)
    }

    /// Occupancy of link `e`.
    #[inline]
    pub fn load(&self, e: usize) -> usize {
        self.len[e] as usize
    }

    /// The per-link occupancy column, indexed by directed-edge id — the
    /// slice a node-local [`LinkLoad`](crate::router::LinkLoad) view
    /// windows into.
    #[inline]
    pub fn loads(&self) -> &[u32] {
        &self.len
    }
}

/// Fixed-stride ring-buffer flit FIFOs for the wormhole engine: one
/// buffer per (directed link × virtual channel), in a single contiguous
/// arena, holding packed `u64` flit records
/// (see [`simulate_wormhole`](crate::simulator::simulate_wormhole)).
///
/// The layout is [`LinkQueues`]' exactly — `RING_STRIDE` slots per buffer
/// with lazily materialised overflow spill — because the capacity a
/// wormhole buffer advertises (`buf_flits`) is enforced *logically* by the
/// engine's credit check, not by the ring allocation: a degenerate
/// configuration with an effectively unbounded buffer costs no memory
/// beyond the flits actually queued.
#[derive(Clone, Debug)]
pub struct FlitQueues {
    /// `ring[b * RING_STRIDE + slot]` — the ring window of buffer `b`,
    /// where `b = edge * vcs + vc`.
    ring: Vec<u64>,
    /// Front cursor of each buffer's ring, `0..RING_STRIDE`.
    head: Vec<u32>,
    /// Total occupancy per buffer (ring **plus** overflow).
    len: Vec<u32>,
    /// Spill lists past the ring, lazily sized like [`LinkQueues`]'.
    overflow: Vec<VecDeque<u64>>,
}

impl FlitQueues {
    /// Empty flit buffers for `links` directed links × `vcs` virtual
    /// channels. Buffer `b = edge * vcs + vc`.
    pub fn new(links: usize, vcs: usize) -> FlitQueues {
        let buffers = links * vcs;
        FlitQueues {
            ring: vec![0; buffers * RING_STRIDE],
            head: vec![0; buffers],
            len: vec![0; buffers],
            overflow: Vec::new(),
        }
    }

    /// Number of (link × VC) buffers.
    pub fn buffers(&self) -> usize {
        self.len.len()
    }

    /// Enqueues flit record `f` on buffer `b`.
    #[inline]
    pub fn push(&mut self, b: usize, f: u64) {
        let l = self.len[b] as usize;
        if l < RING_STRIDE {
            let slot = (self.head[b] as usize + l) & (RING_STRIDE - 1);
            self.ring[b * RING_STRIDE + slot] = f;
        } else {
            if self.overflow.is_empty() {
                self.overflow = vec![VecDeque::new(); self.len.len()];
            }
            self.overflow[b].push_back(f);
        }
        self.len[b] = (l + 1) as u32;
    }

    /// The front flit of buffer `b` without dequeuing it — what the
    /// wormhole forward phase inspects to decide whether the flit can
    /// advance before spending the link's cycle on it.
    #[inline]
    pub fn front(&self, b: usize) -> Option<u64> {
        if self.len[b] == 0 {
            return None;
        }
        Some(self.ring[b * RING_STRIDE + self.head[b] as usize])
    }

    /// Dequeues the front flit of buffer `b`, or `None` when it is idle.
    #[inline]
    pub fn pop(&mut self, b: usize) -> Option<u64> {
        let l = self.len[b] as usize;
        if l == 0 {
            return None;
        }
        let head = self.head[b] as usize;
        let f = self.ring[b * RING_STRIDE + head];
        if l > RING_STRIDE {
            let promoted = self.overflow[b]
                .pop_front()
                .expect("occupancy beyond the stride implies a spill list");
            self.ring[b * RING_STRIDE + head] = promoted;
        }
        self.head[b] = ((head + 1) & (RING_STRIDE - 1)) as u32;
        self.len[b] = (l - 1) as u32;
        Some(f)
    }

    /// Occupancy of buffer `b`.
    #[inline]
    pub fn load(&self, b: usize) -> usize {
        self.len[b] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_recycles_ids() {
        let mut slab = PacketSlab::new();
        let a = slab.alloc(7, 100);
        let b = slab.alloc(9, 200);
        assert_eq!((slab.dst(a), slab.inject(a)), (7, 100));
        assert_eq!((slab.dst(b), slab.inject(b)), (9, 200));
        assert_eq!(slab.live(), 2);
        slab.record_hop(a);
        slab.record_hop(a);
        assert_eq!(slab.hops(a), 2);
        slab.release(a);
        assert_eq!(slab.live(), 1);
        let c = slab.alloc(3, 300);
        assert_eq!(c, a, "freelist recycles the retired id");
        assert_eq!(slab.hops(c), 0, "recycled ids start fresh");
        assert_eq!(slab.dst(c), 3);
        assert_eq!(slab.live(), 2);
    }

    #[test]
    fn copy_chain_column_defaults_clear_and_survives_recycling() {
        let mut slab = PacketSlab::with_capacity(2);
        let a = slab.alloc(1, 0);
        assert_eq!(slab.next_copy(a), NO_COPY, "fresh packets chain nothing");
        slab.set_next_copy(a, 17);
        assert_eq!(slab.next_copy(a), 17);
        slab.release(a);
        let b = slab.alloc(2, 5);
        assert_eq!(b, a, "freelist recycles");
        assert_eq!(slab.next_copy(b), NO_COPY, "recycled ids chain nothing");
    }

    #[test]
    fn queues_are_fifo_within_the_ring() {
        let mut q = LinkQueues::new(3);
        for id in 0..RING_STRIDE as u32 {
            q.push(1, id);
        }
        assert_eq!(q.load(1), RING_STRIDE);
        assert_eq!(q.load(0), 0);
        for id in 0..RING_STRIDE as u32 {
            assert_eq!(q.pop(1), Some(id));
        }
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn queues_spill_and_drain_in_order_past_the_stride() {
        // Push 5× the stride through one link, interleaving pops, and the
        // FIFO order must survive the ring/overflow boundary crossings.
        let mut q = LinkQueues::new(2);
        let total = 5 * RING_STRIDE as u32;
        let mut next_pop = 0u32;
        for id in 0..total {
            q.push(0, id);
            if id % 3 == 2 {
                assert_eq!(q.pop(0), Some(next_pop));
                next_pop += 1;
            }
        }
        while let Some(id) = q.pop(0) {
            assert_eq!(id, next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, total);
        assert_eq!(q.load(0), 0);
        // The drained link is immediately reusable.
        q.push(0, 99);
        assert_eq!(q.pop(0), Some(99));
    }

    #[test]
    fn flit_queues_front_pop_and_spill_stay_fifo() {
        // Two links × two VCs; buffer index = edge * vcs + vc.
        let mut q = FlitQueues::new(2, 2);
        assert_eq!(q.buffers(), 4);
        let b = 3; // edge 1, vc 1
        let total = 3 * RING_STRIDE as u64;
        for f in 0..total {
            q.push(b, f << 40 | f); // wide payloads survive intact
        }
        assert_eq!(q.load(b), 3 * RING_STRIDE);
        assert_eq!(q.load(2), 0, "sibling VC untouched");
        for f in 0..total {
            assert_eq!(q.front(b), Some(f << 40 | f), "front peeks, no dequeue");
            assert_eq!(q.pop(b), Some(f << 40 | f));
        }
        assert_eq!(q.front(b), None);
        assert_eq!(q.pop(b), None);
        // Drained buffers are immediately reusable.
        q.push(b, 99);
        assert_eq!(q.pop(b), Some(99));
    }

    #[test]
    fn loads_column_tracks_total_occupancy() {
        let mut q = LinkQueues::new(4);
        for id in 0..(RING_STRIDE as u32 + 3) {
            q.push(2, id);
        }
        assert_eq!(q.load(2), RING_STRIDE + 3, "overflow counts toward load");
        assert_eq!(q.loads()[2] as usize, q.load(2));
        assert_eq!(q.links(), 4);
        q.pop(2);
        assert_eq!(q.load(2), RING_STRIDE + 2);
    }
}
