//! Switching-model selection: store-and-forward vs flit-level wormhole
//! with virtual channels.
//!
//! [`SwitchingSpec`] is the switching half of an
//! [`Experiment`](crate::experiment::Experiment), parallel to
//! [`TrafficSpec`](crate::traffic::TrafficSpec) /
//! [`FaultSpec`](crate::fault::FaultSpec): a declarative, round-tripping
//! description of how packets occupy the network while they move.
//!
//! Canonical text forms ([`Display`](core::fmt::Display) /
//! [`FromStr`] round-trip):
//!
//! | Variant | Text |
//! |---|---|
//! | `StoreAndForward` | `store_and_forward` |
//! | `Wormhole` | `wormhole(flit_size=8,vcs=2,buf_flits=4)` |
//!
//! Under store-and-forward (the model of the '93 paper) a packet is an
//! indivisible unit that fully leaves one link queue before entering the
//! next. Under wormhole switching each packet of
//! [`PACKET_LENGTH_UNITS`] phits is split into
//! `ceil(PACKET_LENGTH_UNITS / flit_size)` flits that advance as a
//! pipelined *worm*: the head flit allocates a chain of per-(link ×
//! virtual-channel) buffers and the body follows it, so one blocked
//! packet holds buffer space on every link it spans — the
//! characteristic coupling that makes wormhole latency
//! distance-insensitive at low load and makes deadlock a real hazard at
//! high load. The engine behind it is
//! [`simulate_wormhole`](crate::simulator::simulate_wormhole), with
//! credit-based backpressure (a flit only advances when the next buffer
//! has a free slot) and one flit crossing per physical link per cycle.
//!
//! # Deadlock freedom: order-based routing ⇒ acyclic channel dependencies
//!
//! A wormhole deadlock is a cycle in the *channel-dependency graph*
//! (CDG): buffer `(e₁,v₁)` depends on `(e₂,v₂)` when a packet holding a
//! flit in the former must wait for space in the latter. Dally & Seitz:
//! if the CDG restricted to the dependencies routing can actually
//! generate is acyclic, no deadlocked configuration exists.
//!
//! The repo's deterministic routers are **order-based**:
//! [`Topology::channel_class`](crate::topology::Topology::channel_class)
//! assigns every directed link a class such that the classes visited
//! along any route are strictly increasing — e-cube on `Q_d` fixes bit
//! positions in ascending order, the canonical `Γ_d` router clears 1→0
//! positions left-to-right and then sets 0→1 positions left-to-right
//! (two disjoint ascending phases), X-then-Y on the mesh and the
//! direction-split ring are classed the same way. The engine gives each
//! packet a VC *level*, starting at 0, and bumps it (saturating at
//! `vcs − 1`) exactly when the next hop's class does not exceed the
//! previous hop's class. A flit in buffer `(e, v)` therefore only ever
//! waits for a buffer `(e', v')` with `(v', class(e'))` strictly greater
//! than `(v, class(e))` in lexicographic order — as long as the level
//! never saturates, every CDG edge increases that key, so no cycle can
//! close and blocking always resolves. For strictly order-based routes
//! the level never moves at all on `Γ_d`/`Q_d`/mesh (one VC suffices)
//! and moves at most once on the ring (the wrap-around link is the
//! dateline; two VCs suffice). Adaptive and fault-masked detours are
//! *not* order-based: they may burn levels until the clamp, after which
//! the construction is best-effort — the equivalence and deadlock gates
//! therefore run on the deterministic routers, and faulted wormhole
//! runs are validated through the degenerate single-flit configuration.
//!
//! # Degenerate equivalence
//!
//! `wormhole(flit_size ≥ PACKET_LENGTH_UNITS, vcs=1, buf_flits ≫ 1)`
//! collapses to store-and-forward: one flit per packet, no worm ever
//! spans two links, and ample buffers never exert backpressure. The
//! engine is constructed so this configuration is packet-for-packet
//! identical to the store-and-forward arena engine — the oracle that
//! gates the whole subsystem.

use core::fmt;
use core::str::FromStr;

use crate::experiment::ExperimentError;
use crate::observer::SimObserver;
use crate::report::JsonValue;
use crate::traffic::{num, parse_kv, split_call};

/// Fixed packet length in phits: every packet carries this much payload,
/// so `flit_size` alone decides how many flits a packet splits into.
/// Chosen to match a 32-byte header+word message on a phit-wide channel.
pub const PACKET_LENGTH_UNITS: u32 = 32;

/// A declarative switching-model description, attached to an experiment
/// with [`Experiment::switching`](crate::experiment::Experiment::switching).
/// See the [module docs](self) for the semantics of each model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum SwitchingSpec {
    /// Whole packets hop queue-to-queue — the synchronous
    /// store-and-forward model of the '93 paper (the default).
    #[default]
    StoreAndForward,
    /// Flit-level wormhole switching with virtual channels and
    /// credit-based backpressure.
    Wormhole {
        /// Flit payload in phits; packets split into
        /// `ceil(PACKET_LENGTH_UNITS / flit_size)` flits.
        flit_size: u32,
        /// Virtual channels per physical link (VC levels available for
        /// the deadlock-avoidance scheme).
        vcs: u32,
        /// Buffer capacity per (link × VC) in flits — the credit pool
        /// backpressure is counted against.
        buf_flits: u32,
    },
}

impl SwitchingSpec {
    /// Checks the spec's parameters, returning a typed error instead of
    /// a downstream panic: every wormhole figure must be at least 1.
    pub fn validate(&self) -> Result<(), ExperimentError> {
        if let SwitchingSpec::Wormhole {
            flit_size,
            vcs,
            buf_flits,
        } = *self
        {
            let invalid = |reason: String| {
                Err(ExperimentError::InvalidSwitching {
                    spec: self.to_string(),
                    reason,
                })
            };
            if flit_size == 0 {
                return invalid("flit_size must be at least 1 phit".to_string());
            }
            if vcs == 0 {
                return invalid("vcs must be at least 1".to_string());
            }
            if buf_flits == 0 {
                return invalid("buf_flits must be at least 1".to_string());
            }
        }
        Ok(())
    }

    /// `true` for the wormhole variant.
    pub fn is_wormhole(&self) -> bool {
        matches!(self, SwitchingSpec::Wormhole { .. })
    }

    /// Flits per packet under this model: 1 for store-and-forward (the
    /// packet is the unit), `ceil(PACKET_LENGTH_UNITS / flit_size)` for
    /// wormhole — so `flit_size ≥ PACKET_LENGTH_UNITS` is the degenerate
    /// single-flit configuration.
    pub fn flits_per_packet(&self) -> u32 {
        match *self {
            SwitchingSpec::StoreAndForward => 1,
            SwitchingSpec::Wormhole { flit_size, .. } => {
                PACKET_LENGTH_UNITS.div_ceil(flit_size.max(1))
            }
        }
    }
}

impl fmt::Display for SwitchingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchingSpec::StoreAndForward => write!(f, "store_and_forward"),
            SwitchingSpec::Wormhole {
                flit_size,
                vcs,
                buf_flits,
            } => write!(
                f,
                "wormhole(flit_size={flit_size},vcs={vcs},buf_flits={buf_flits})"
            ),
        }
    }
}

fn parse_err(input: &str, reason: impl Into<String>) -> ExperimentError {
    ExperimentError::ParseSpec {
        what: "switching",
        input: input.to_string(),
        reason: reason.into(),
    }
}

impl FromStr for SwitchingSpec {
    type Err = ExperimentError;

    fn from_str(s: &str) -> Result<SwitchingSpec, ExperimentError> {
        let s = s.trim();
        let (name, body) = split_call(s).map_err(|e| parse_err(s, e))?;
        match name {
            "store_and_forward" => match body {
                None | Some("") => Ok(SwitchingSpec::StoreAndForward),
                Some(extra) => Err(parse_err(
                    s,
                    format!("`store_and_forward` takes no arguments: `{extra}`"),
                )),
            },
            "wormhole" => {
                let body = body.ok_or_else(|| {
                    parse_err(
                        s,
                        "`wormhole` needs arguments, e.g. \
                         `wormhole(flit_size=8,vcs=2,buf_flits=4)`",
                    )
                })?;
                let v = parse_kv(body, &["flit_size", "vcs", "buf_flits"])
                    .map_err(|e| parse_err(s, e))?;
                let spec = SwitchingSpec::Wormhole {
                    flit_size: num(v[0], "flit_size").map_err(|e| parse_err(s, e))?,
                    vcs: num(v[1], "vcs").map_err(|e| parse_err(s, e))?,
                    buf_flits: num(v[2], "buf_flits").map_err(|e| parse_err(s, e))?,
                };
                spec.validate()?;
                Ok(spec)
            }
            other => Err(parse_err(
                s,
                format!("unknown switching model `{other}` (expected store_and_forward, wormhole)"),
            )),
        }
    }
}

/// Observer that aggregates the wormhole engine's
/// [`on_flit_hop`](SimObserver::on_flit_hop) stream into a per-VC
/// profile: flit-buffer entries and peak buffer occupancy per virtual
/// channel. Attach with
/// [`Experiment::observe`](crate::experiment::Experiment::observe); the
/// report gains a `vc_occupancy` section. Under store-and-forward (no
/// flit events) the section is empty but present.
#[derive(Clone, Debug, Default)]
pub struct VcOccupancy {
    flit_hops: Vec<u64>,
    peak_occupancy: Vec<u32>,
}

impl VcOccupancy {
    /// Creates an empty profile; VC lanes appear as flits touch them.
    pub fn new() -> VcOccupancy {
        VcOccupancy::default()
    }

    /// Flit-buffer entries observed on virtual channel `vc` (0 for lanes
    /// never touched).
    pub fn flit_hops(&self, vc: u32) -> u64 {
        self.flit_hops.get(vc as usize).copied().unwrap_or(0)
    }

    /// Highest buffer occupancy observed on virtual channel `vc`.
    pub fn peak_occupancy(&self, vc: u32) -> u32 {
        self.peak_occupancy.get(vc as usize).copied().unwrap_or(0)
    }

    /// Total flit-buffer entries across all VCs.
    pub fn total_flit_hops(&self) -> u64 {
        self.flit_hops.iter().sum()
    }
}

impl SimObserver for VcOccupancy {
    fn on_flit_hop(&mut self, _cycle: u64, _edge: usize, vc: u32, occupancy: u32) {
        let lane = vc as usize;
        if lane >= self.flit_hops.len() {
            self.flit_hops.resize(lane + 1, 0);
            self.peak_occupancy.resize(lane + 1, 0);
        }
        self.flit_hops[lane] += 1;
        self.peak_occupancy[lane] = self.peak_occupancy[lane].max(occupancy);
    }

    fn sections(&self) -> Vec<(String, JsonValue)> {
        vec![(
            "vc_occupancy".to_string(),
            JsonValue::obj([
                ("vcs_touched", JsonValue::Int(self.flit_hops.len() as u64)),
                ("total_flit_hops", JsonValue::Int(self.total_flit_hops())),
                (
                    "flit_hops",
                    JsonValue::Arr(self.flit_hops.iter().map(|&h| JsonValue::Int(h)).collect()),
                ),
                (
                    "peak_occupancy",
                    JsonValue::Arr(
                        self.peak_occupancy
                            .iter()
                            .map(|&p| JsonValue::Int(p as u64))
                            .collect(),
                    ),
                ),
            ]),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_from_str_round_trips() {
        let specs = [
            SwitchingSpec::StoreAndForward,
            SwitchingSpec::Wormhole {
                flit_size: 8,
                vcs: 2,
                buf_flits: 4,
            },
            SwitchingSpec::Wormhole {
                flit_size: PACKET_LENGTH_UNITS,
                vcs: 1,
                buf_flits: 1,
            },
        ];
        for spec in specs {
            let text = spec.to_string();
            let parsed: SwitchingSpec = text.parse().unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(parsed, spec, "round-trip of `{text}`");
        }
    }

    #[test]
    fn from_str_accepts_whitespace_and_key_order() {
        let spec: SwitchingSpec = " wormhole(vcs=2, buf_flits=4, flit_size=8) "
            .parse()
            .unwrap();
        assert_eq!(
            spec,
            SwitchingSpec::Wormhole {
                flit_size: 8,
                vcs: 2,
                buf_flits: 4
            }
        );
    }

    #[test]
    fn from_str_rejects_malformed_specs() {
        for bad in [
            "cut_through",
            "wormhole",
            "wormhole()",
            "wormhole(flit_size=8)",
            "wormhole(flit_size=8,vcs=2,buf_flits=4,extra=1)",
            "wormhole(flit_size=eight,vcs=2,buf_flits=4)",
            "wormhole(flit_size=8,flit_size=8,vcs=2)",
            "wormhole(flit_size=8,vcs=2,buf_flits=4",
            "wormhole(flit_size=0,vcs=2,buf_flits=4)",
            "wormhole(flit_size=8,vcs=0,buf_flits=4)",
            "wormhole(flit_size=8,vcs=2,buf_flits=0)",
            "store_and_forward(1)",
            "",
        ] {
            let err = bad.parse::<SwitchingSpec>().expect_err(bad);
            assert!(err.to_string().contains("switching"), "{bad}: {err}");
        }
    }

    #[test]
    fn flit_count_tracks_flit_size() {
        let worm = |flit_size| SwitchingSpec::Wormhole {
            flit_size,
            vcs: 1,
            buf_flits: 1,
        };
        assert_eq!(SwitchingSpec::StoreAndForward.flits_per_packet(), 1);
        assert_eq!(worm(PACKET_LENGTH_UNITS).flits_per_packet(), 1);
        assert_eq!(worm(PACKET_LENGTH_UNITS + 9).flits_per_packet(), 1);
        assert_eq!(worm(PACKET_LENGTH_UNITS / 2).flits_per_packet(), 2);
        assert_eq!(worm(1).flits_per_packet(), PACKET_LENGTH_UNITS);
        assert_eq!(worm(5).flits_per_packet(), 7); // ceil(32 / 5)
    }

    #[test]
    fn validate_rejects_zero_parameters() {
        for (flit_size, vcs, buf_flits) in [(0, 1, 1), (1, 0, 1), (1, 1, 0)] {
            let err = SwitchingSpec::Wormhole {
                flit_size,
                vcs,
                buf_flits,
            }
            .validate()
            .expect_err("zero parameter");
            assert!(matches!(err, ExperimentError::InvalidSwitching { .. }));
            assert!(err.to_string().contains("switching"), "{err}");
        }
        assert!(SwitchingSpec::StoreAndForward.validate().is_ok());
    }

    #[test]
    fn vc_occupancy_profiles_flit_hops() {
        let mut vc = VcOccupancy::new();
        vc.on_flit_hop(0, 3, 0, 1);
        vc.on_flit_hop(1, 3, 0, 3);
        vc.on_flit_hop(1, 7, 2, 2);
        assert_eq!(vc.flit_hops(0), 2);
        assert_eq!(vc.flit_hops(1), 0);
        assert_eq!(vc.flit_hops(2), 1);
        assert_eq!(vc.peak_occupancy(0), 3);
        assert_eq!(vc.peak_occupancy(2), 2);
        assert_eq!(vc.total_flit_hops(), 3);
        let sections = vc.sections();
        assert_eq!(sections[0].0, "vc_occupancy");
        let text = format!("{}", sections[0].1);
        assert!(text.contains("\"vcs_touched\": 3"), "{text}");
        assert!(text.contains("\"total_flit_hops\": 3"), "{text}");
    }
}
