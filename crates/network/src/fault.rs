//! Fault injection: declarative failure scenarios ([`FaultSpec`]), their
//! materialised form ([`FaultSet`]), and the *static* survivability
//! analysis — connectivity of the healthy part and the dilation of
//! rerouted paths (cf. Gregor, *Recursive fault-tolerance of Fibonacci
//! cubes in hypercubes*, and the robustness claims of the 1993 line).
//!
//! A [`FaultSpec`] is the fault half of an
//! [`Experiment`](crate::experiment::Experiment): seeded random node
//! faults, seeded random link faults, explicit lists, or mixes, all
//! round-tripping through `Display`/`FromStr`
//! (`nodes(count=4)`, `links(count=8)`, `node_list(0,3,9)`,
//! `link_list(0-1,4-7)`, `mix(nodes(count=2)+links(count=3))`, `none`)
//! so a failure scenario lives on a CLI flag or in a JSON report exactly
//! like a [`TrafficSpec`](crate::traffic::TrafficSpec). Sampling a spec
//! against a concrete graph yields a [`FaultSet`], which the *live*
//! simulation path (the fault-masking router and
//! [`simulate_faulted`](crate::simulator::simulate_faulted)) routes
//! around and the static path ([`fault_set_trial`]) analyses.
//!
//! Degenerate inputs are typed [`FaultError`]s, not panics: asking to
//! fail every node, naming a node outside the network, or sweeping with
//! zero trials all return `Err`.

use core::fmt;
use core::str::FromStr;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use fibcube_graph::bfs::INFINITY;
use fibcube_graph::csr::{CsrGraph, GraphBuilder};

use crate::topology::Topology;
use crate::traffic::{num, parse_kv, split_call, split_mix};

/// A fault configuration the module rejected — every failure mode that
/// used to be an `assert!` at a call site, as a typed, `?`-friendly
/// error (mirroring [`ExperimentError`](crate::experiment::ExperimentError)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// Node faults must leave at least one survivor.
    TooManyNodeFaults {
        /// Distinct node failures requested.
        requested: usize,
        /// Nodes in the network.
        nodes: usize,
    },
    /// More link faults requested than the network has links.
    TooManyLinkFaults {
        /// Link failures requested.
        requested: usize,
        /// Undirected links in the network.
        links: usize,
    },
    /// An explicit node id outside the network.
    UnknownNode {
        /// The offending id.
        node: u32,
        /// Nodes in the network.
        nodes: usize,
    },
    /// An explicit link that is not an edge of the network.
    UnknownLink {
        /// One endpoint.
        from: u32,
        /// The other endpoint.
        to: u32,
    },
    /// A sweep over zero trials has no mean to report.
    ZeroTrials,
    /// A churn scenario with unusable parameters (negative or non-finite
    /// rates, non-positive MTTR, or churn nested inside `mix`).
    InvalidChurn {
        /// What made the scenario unusable.
        reason: String,
    },
    /// A static analysis needs an all-pairs distance table and the
    /// topology exceeds the table byte budget
    /// ([`TABLE_BYTE_BUDGET`](crate::router::TABLE_BYTE_BUDGET)).
    TableTooLarge {
        /// Nodes in the network.
        nodes: usize,
        /// Bytes the all-pairs table would need.
        bytes: u128,
    },
    /// A spec string failed to parse (`FromStr` for [`FaultSpec`]).
    ParseSpec {
        /// The rejected input.
        input: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::TooManyNodeFaults { requested, nodes } => write!(
                f,
                "cannot fail {requested} of {nodes} nodes: at least one must survive"
            ),
            FaultError::TooManyLinkFaults { requested, links } => {
                write!(f, "cannot fail {requested} links: the network has {links}")
            }
            FaultError::UnknownNode { node, nodes } => {
                write!(f, "node {node} does not exist (network has {nodes} nodes)")
            }
            FaultError::UnknownLink { from, to } => {
                write!(f, "link {from}-{to} is not an edge of the network")
            }
            FaultError::ZeroTrials => write!(f, "a fault sweep needs at least one trial"),
            FaultError::InvalidChurn { reason } => {
                write!(f, "invalid churn scenario: {reason}")
            }
            FaultError::TableTooLarge { nodes, bytes } => write!(
                f,
                "static fault analysis needs an all-pairs table: {nodes} nodes would take \
                 {bytes} bytes, over the table byte budget"
            ),
            FaultError::ParseSpec { input, reason } => {
                write!(f, "cannot parse fault spec `{input}`: {reason}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

fn parse_err(input: &str, reason: impl Into<String>) -> FaultError {
    FaultError::ParseSpec {
        input: input.to_string(),
        reason: reason.into(),
    }
}

/// Maps the experiment-layer table-budget refusal into the fault
/// vocabulary. [`DistanceTable::healthy`](crate::dist::DistanceTable::healthy)
/// fails only on the byte budget; any other variant is passed through
/// rendered so no information is lost.
fn table_err(e: crate::experiment::ExperimentError) -> FaultError {
    match e {
        crate::experiment::ExperimentError::TableTooLarge { nodes, bytes } => {
            FaultError::TableTooLarge { nodes, bytes }
        }
        other => FaultError::ParseSpec {
            input: "distance table".to_string(),
            reason: other.to_string(),
        },
    }
}

/// A declarative failure scenario, the fault half of an
/// [`Experiment`](crate::experiment::Experiment). Sampled against a
/// concrete graph (with a seed) by [`FaultSpec::sample`] to produce the
/// materialised [`FaultSet`].
///
/// Canonical text forms (round-tripping through `Display`/`FromStr`):
///
/// | Variant | Text |
/// |---|---|
/// | `None` | `none` |
/// | `Nodes` | `nodes(count=4)` |
/// | `Links` | `links(count=8)` |
/// | `NodeList` | `node_list(0,3,9)` |
/// | `LinkList` | `link_list(0-1,4-7)` |
/// | `Mixed` | `mix(nodes(count=2)+links(count=3))` |
/// | `Churn` | `churn(node_rate=0.001,link_rate=0.002,mttr=500)` |
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// No faults: the healthy network. An `Experiment` with this spec is
    /// packet-for-packet identical to one without a spec at all.
    None,
    /// `count` distinct nodes fail, chosen uniformly at random (seeded).
    Nodes {
        /// Number of node failures.
        count: usize,
    },
    /// `count` distinct undirected links fail, chosen uniformly at
    /// random (seeded). Endpoints stay alive.
    Links {
        /// Number of link failures.
        count: usize,
    },
    /// Exactly these nodes fail.
    NodeList(Vec<u32>),
    /// Exactly these undirected links fail (each pair must be an edge).
    LinkList(Vec<(u32, u32)>),
    /// Union of component scenarios; random components draw from
    /// decorrelated seeds.
    Mixed(Vec<FaultSpec>),
    /// Dynamic churn: failures arrive *during* the run as a seeded
    /// Poisson-like event stream and (when `mttr` is finite) heal after
    /// an exponentially distributed repair time. Materialised not as a
    /// static [`FaultSet`] but as a [`ChurnTimeline`] of fail/recover
    /// events the churn engine commits at cycle boundaries.
    Churn {
        /// Expected node failures per cycle, network-wide.
        node_rate: f64,
        /// Expected link failures per cycle, network-wide.
        link_rate: f64,
        /// Mean time to repair, cycles. `f64::INFINITY` (spelled `inf`
        /// in the text form) means failures never heal.
        mttr: f64,
    },
}

impl FaultSpec {
    /// Checks the spec against `g`, returning a typed error for scenarios
    /// the graph cannot express (failing every node, more link faults
    /// than links, ids outside the network, non-edges).
    pub fn validate(&self, g: &CsrGraph) -> Result<(), FaultError> {
        let n = g.num_vertices();
        match self {
            FaultSpec::None => Ok(()),
            FaultSpec::Nodes { count } => {
                if *count >= n {
                    Err(FaultError::TooManyNodeFaults {
                        requested: *count,
                        nodes: n,
                    })
                } else {
                    Ok(())
                }
            }
            FaultSpec::Links { count } => {
                if *count > g.num_edges() {
                    Err(FaultError::TooManyLinkFaults {
                        requested: *count,
                        links: g.num_edges(),
                    })
                } else {
                    Ok(())
                }
            }
            FaultSpec::NodeList(nodes) => {
                for &v in nodes {
                    if v as usize >= n {
                        return Err(FaultError::UnknownNode { node: v, nodes: n });
                    }
                }
                let mut distinct: Vec<u32> = nodes.clone();
                distinct.sort_unstable();
                distinct.dedup();
                if distinct.len() >= n {
                    return Err(FaultError::TooManyNodeFaults {
                        requested: distinct.len(),
                        nodes: n,
                    });
                }
                Ok(())
            }
            FaultSpec::LinkList(links) => {
                for &(u, v) in links {
                    if u as usize >= n {
                        return Err(FaultError::UnknownNode { node: u, nodes: n });
                    }
                    if v as usize >= n {
                        return Err(FaultError::UnknownNode { node: v, nodes: n });
                    }
                    if !g.has_edge(u, v) {
                        return Err(FaultError::UnknownLink { from: u, to: v });
                    }
                }
                Ok(())
            }
            FaultSpec::Mixed(parts) => {
                for p in parts {
                    if matches!(p, FaultSpec::Churn { .. }) {
                        return Err(FaultError::InvalidChurn {
                            reason: "churn cannot be a `mix` component; use it standalone"
                                .to_string(),
                        });
                    }
                    p.validate(g)?;
                }
                Ok(())
            }
            FaultSpec::Churn {
                node_rate,
                link_rate,
                mttr,
            } => {
                for (name, rate) in [("node_rate", *node_rate), ("link_rate", *link_rate)] {
                    if !rate.is_finite() || rate < 0.0 {
                        return Err(FaultError::InvalidChurn {
                            reason: format!("`{name}` must be finite and ≥ 0, got {rate}"),
                        });
                    }
                }
                if mttr.is_nan() || *mttr <= 0.0 {
                    return Err(FaultError::InvalidChurn {
                        reason: format!("`mttr` must be > 0 (or inf), got {mttr}"),
                    });
                }
                Ok(())
            }
        }
    }

    /// `true` for the dynamic [`Churn`](FaultSpec::Churn) scenario, whose
    /// faults materialise as a [`ChurnTimeline`] rather than a static
    /// [`FaultSet`].
    pub fn is_churn(&self) -> bool {
        matches!(self, FaultSpec::Churn { .. })
    }

    /// Materialises the spec against `g`: random variants draw from
    /// `seed` (deterministic in `(self, g, seed)`), explicit lists pass
    /// through. The combined set must still leave a survivor.
    pub fn sample(&self, g: &CsrGraph, seed: u64) -> Result<FaultSet, FaultError> {
        self.validate(g)?;
        let mut nodes = Vec::new();
        let mut links = Vec::new();
        self.collect(g, seed, &mut nodes, &mut links);
        let set = FaultSet::new(nodes, links);
        if !set.failed_nodes().is_empty() && set.failed_nodes().len() >= g.num_vertices() {
            return Err(FaultError::TooManyNodeFaults {
                requested: set.failed_nodes().len(),
                nodes: g.num_vertices(),
            });
        }
        Ok(set)
    }

    fn collect(&self, g: &CsrGraph, seed: u64, nodes: &mut Vec<u32>, links: &mut Vec<(u32, u32)>) {
        match self {
            FaultSpec::None => {}
            FaultSpec::Nodes { count } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut ids: Vec<u32> = (0..g.num_vertices() as u32).collect();
                ids.shuffle(&mut rng);
                nodes.extend_from_slice(&ids[..*count]);
            }
            FaultSpec::Links { count } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut edges: Vec<(u32, u32)> = g.edges().collect();
                edges.shuffle(&mut rng);
                links.extend_from_slice(&edges[..*count]);
            }
            FaultSpec::NodeList(list) => nodes.extend_from_slice(list),
            FaultSpec::LinkList(list) => links.extend_from_slice(list),
            // Churn contributes no *static* faults: its failures live on
            // the timeline (`ChurnTimeline::generate`), not in the set.
            FaultSpec::Churn { .. } => {}
            FaultSpec::Mixed(parts) => {
                for (i, part) in parts.iter().enumerate() {
                    // Golden-ratio stride decorrelates component draws.
                    let part_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    part.collect(g, part_seed, nodes, links);
                }
            }
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::None => write!(f, "none"),
            FaultSpec::Nodes { count } => write!(f, "nodes(count={count})"),
            FaultSpec::Links { count } => write!(f, "links(count={count})"),
            FaultSpec::NodeList(nodes) => {
                write!(f, "node_list(")?;
                for (i, v) in nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            FaultSpec::LinkList(links) => {
                write!(f, "link_list(")?;
                for (i, (u, v)) in links.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{u}-{v}")?;
                }
                write!(f, ")")
            }
            FaultSpec::Mixed(parts) => {
                write!(f, "mix(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            FaultSpec::Churn {
                node_rate,
                link_rate,
                mttr,
            } => write!(
                f,
                "churn(node_rate={node_rate},link_rate={link_rate},mttr={mttr})"
            ),
        }
    }
}

impl FromStr for FaultSpec {
    type Err = FaultError;

    fn from_str(s: &str) -> Result<FaultSpec, FaultError> {
        let s = s.trim();
        let (name, body) = split_call(s).map_err(|e| parse_err(s, e))?;
        let body_or = |kind: &str| {
            body.ok_or_else(|| {
                parse_err(s, format!("`{kind}` needs arguments, e.g. `{kind}(...)`"))
            })
        };
        match name {
            "none" => match body {
                None | Some("") => Ok(FaultSpec::None),
                Some(extra) => Err(parse_err(
                    s,
                    format!("`none` takes no arguments: `{extra}`"),
                )),
            },
            "nodes" => {
                let v = parse_kv(body_or("nodes")?, &["count"]).map_err(|e| parse_err(s, e))?;
                Ok(FaultSpec::Nodes {
                    count: num(v[0], "count").map_err(|e| parse_err(s, e))?,
                })
            }
            "links" => {
                let v = parse_kv(body_or("links")?, &["count"]).map_err(|e| parse_err(s, e))?;
                Ok(FaultSpec::Links {
                    count: num(v[0], "count").map_err(|e| parse_err(s, e))?,
                })
            }
            "node_list" => {
                let body = body_or("node_list")?;
                let mut nodes = Vec::new();
                if !body.trim().is_empty() {
                    for part in body.split(',') {
                        nodes.push(num(part.trim(), "node").map_err(|e| parse_err(s, e))?);
                    }
                }
                Ok(FaultSpec::NodeList(nodes))
            }
            "link_list" => {
                let body = body_or("link_list")?;
                let mut links = Vec::new();
                if !body.trim().is_empty() {
                    for part in body.split(',') {
                        let (u, v) = part.trim().split_once('-').ok_or_else(|| {
                            parse_err(s, format!("expected `from-to`, got `{part}`"))
                        })?;
                        links.push((
                            num(u.trim(), "from").map_err(|e| parse_err(s, e))?,
                            num(v.trim(), "to").map_err(|e| parse_err(s, e))?,
                        ));
                    }
                }
                Ok(FaultSpec::LinkList(links))
            }
            "mix" => {
                let body = body_or("mix")?;
                if body.trim().is_empty() {
                    return Err(parse_err(s, "mix needs at least one component"));
                }
                let parts = split_mix(body)
                    .into_iter()
                    .map(FaultSpec::from_str)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(FaultSpec::Mixed(parts))
            }
            "churn" => {
                let v = parse_kv(body_or("churn")?, &["node_rate", "link_rate", "mttr"])
                    .map_err(|e| parse_err(s, e))?;
                Ok(FaultSpec::Churn {
                    node_rate: num(v[0], "node_rate").map_err(|e| parse_err(s, e))?,
                    link_rate: num(v[1], "link_rate").map_err(|e| parse_err(s, e))?,
                    mttr: num(v[2], "mttr").map_err(|e| parse_err(s, e))?,
                })
            }
            other => Err(parse_err(
                s,
                format!(
                    "unknown scenario `{other}` (expected none, nodes, links, node_list, \
                     link_list, mix, churn)"
                ),
            )),
        }
    }
}

/// A materialised set of failures: the failed node ids and failed
/// undirected links, normalised (sorted, deduplicated, links stored as
/// `(min, max)`). Produced by [`FaultSpec::sample`]; consumed by the
/// live engine ([`simulate_faulted`](crate::simulator::simulate_faulted)
/// via the [`FaultMaskingRouter`](crate::router::FaultMaskingRouter))
/// and the static analysis ([`fault_set_trial`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSet {
    failed_nodes: Vec<u32>,
    failed_links: Vec<(u32, u32)>,
}

impl FaultSet {
    /// The empty set: nothing failed.
    pub fn empty() -> FaultSet {
        FaultSet::default()
    }

    /// Builds a set from explicit failures, normalising as it goes
    /// (orientation, order, duplicates).
    pub fn new(
        nodes: impl IntoIterator<Item = u32>,
        links: impl IntoIterator<Item = (u32, u32)>,
    ) -> FaultSet {
        let mut failed_nodes: Vec<u32> = nodes.into_iter().collect();
        failed_nodes.sort_unstable();
        failed_nodes.dedup();
        let mut failed_links: Vec<(u32, u32)> = links
            .into_iter()
            .map(|(u, v)| (u.min(v), u.max(v)))
            .collect();
        failed_links.sort_unstable();
        failed_links.dedup();
        FaultSet {
            failed_nodes,
            failed_links,
        }
    }

    /// `true` when nothing failed.
    pub fn is_empty(&self) -> bool {
        self.failed_nodes.is_empty() && self.failed_links.is_empty()
    }

    /// Failed node ids, sorted.
    pub fn failed_nodes(&self) -> &[u32] {
        &self.failed_nodes
    }

    /// Failed undirected links as `(min, max)` pairs, sorted.
    pub fn failed_links(&self) -> &[(u32, u32)] {
        &self.failed_links
    }

    /// `true` when node `v` did not fail.
    pub fn node_alive(&self, v: u32) -> bool {
        self.failed_nodes.binary_search(&v).is_err()
    }

    /// `true` when the undirected link `u–v` and both its endpoints are
    /// alive.
    pub fn link_alive(&self, u: u32, v: u32) -> bool {
        self.node_alive(u)
            && self.node_alive(v)
            && self
                .failed_links
                .binary_search(&(u.min(v), u.max(v)))
                .is_err()
    }

    /// Materialises the per-node / per-directed-link liveness masks of
    /// this set against `g` — the form the live engine, the
    /// [`DistanceTable`](crate::dist::DistanceTable), and the
    /// fault-masking router all index in their hot paths. Fault entries
    /// outside the graph are ignored.
    pub fn masks(&self, g: &CsrGraph) -> FaultMasks {
        let n = g.num_vertices();
        let mut node_dead = vec![false; n];
        for &v in self.failed_nodes() {
            if (v as usize) < n {
                node_dead[v as usize] = true;
            }
        }
        let mut edge_dead = vec![false; g.num_directed_edges()];
        for u in 0..n as u32 {
            let base = g.edge_range(u).start;
            for (slot, &v) in g.neighbors(u).iter().enumerate() {
                edge_dead[base + slot] =
                    node_dead[u as usize] || node_dead[v as usize] || !self.link_alive(u, v);
            }
        }
        FaultMasks {
            node_dead,
            edge_dead,
        }
    }

    /// The subgraph of `g` induced by the alive nodes, minus the failed
    /// links, with an id map back to the original network
    /// (`new id → old id`).
    pub fn healthy_subgraph(&self, g: &CsrGraph) -> (CsrGraph, Vec<u32>) {
        let n = g.num_vertices();
        let survivors: Vec<u32> = (0..n as u32).filter(|&v| self.node_alive(v)).collect();
        let mut new_id = vec![u32::MAX; n];
        for (i, &v) in survivors.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let mut builder = GraphBuilder::new(survivors.len());
        for &v in &survivors {
            for &w in g.neighbors(v) {
                if v < w && self.link_alive(v, w) {
                    builder.add_edge(new_id[v as usize], new_id[w as usize]);
                }
            }
        }
        (builder.build(), survivors)
    }
}

/// Boolean liveness masks of a degraded network: one flag per node and
/// one per CSR *directed* edge (dead when the undirected link failed or
/// either endpoint did). Produced by [`FaultSet::masks`]; consumed by the
/// masked BFS of [`DistanceTable::degraded`](crate::dist::DistanceTable::degraded)
/// and by the [`FaultMaskingRouter`](crate::router::FaultMaskingRouter)'s
/// per-hop surviving-link checks.
#[derive(Clone, Debug)]
pub struct FaultMasks {
    node_dead: Vec<bool>,
    edge_dead: Vec<bool>,
}

impl FaultMasks {
    /// `true` when node `v` survived the faults.
    #[inline]
    pub fn node_alive(&self, v: u32) -> bool {
        !self.node_dead[v as usize]
    }

    /// `true` when the directed edge with CSR index `e` survived (its
    /// undirected link and both endpoints are alive).
    #[inline]
    pub fn edge_alive(&self, e: usize) -> bool {
        !self.edge_dead[e]
    }

    /// Flips node `v`'s liveness — churn support. The caller (the
    /// fault-masking router) is responsible for refreshing the composite
    /// per-edge flags of `v`'s incident links afterwards.
    pub(crate) fn set_node(&mut self, v: u32, dead: bool) {
        self.node_dead[v as usize] = dead;
    }

    /// Flips the composite liveness of directed edge `e` — churn support.
    pub(crate) fn set_edge(&mut self, e: usize, dead: bool) {
        self.edge_dead[e] = dead;
    }
}

/// Backstop on the number of events one timeline may carry — far above
/// any realistic run, so a runaway rate cannot allocate unboundedly.
pub const MAX_CHURN_EVENTS: usize = 1 << 16;

/// What a single churn event fails or recovers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChurnTarget {
    /// A node; its incident links die and revive with it.
    Node(u32),
    /// An undirected link, stored as `(min, max)`. Endpoints stay alive.
    Link(u32, u32),
}

/// One scheduled churn event: at the boundary of `cycle` (before that
/// cycle's injections), `target` fails (`failed`) or recovers
/// (`!failed`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Cycle boundary at which the event commits.
    pub cycle: u64,
    /// The node or link affected.
    pub target: ChurnTarget,
    /// `true` to fail the target, `false` to bring it back.
    pub failed: bool,
}

/// A precomputed per-run timeline of fail/recover events — the
/// materialised form of [`FaultSpec::Churn`], playing the role
/// [`FaultSet`] plays for static scenarios. Events are sorted by cycle
/// (recoveries due at a cycle precede failures at the same cycle) and
/// alternate fail/recover per target, so replaying them in order keeps
/// every mask consistent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnTimeline {
    events: Vec<ChurnEvent>,
}

impl ChurnTimeline {
    /// A timeline from explicit events (sorted by cycle, stably, so
    /// same-cycle events keep their given order). The caller is
    /// responsible for per-target fail/recover alternation.
    pub fn from_events(events: impl IntoIterator<Item = ChurnEvent>) -> ChurnTimeline {
        let mut events: Vec<ChurnEvent> = events.into_iter().collect();
        events.sort_by_key(|e| e.cycle);
        ChurnTimeline { events }
    }

    /// Samples a timeline for `g` over `[0, horizon)` cycles,
    /// deterministic in `(g, rates, mttr, seed)`. Failures arrive as a
    /// Poisson-like process with `node_rate + link_rate` expected events
    /// per cycle (exponential inter-arrival, rounded up to ≥ 1 cycle),
    /// targets drawn uniformly; each finite-`mttr` failure schedules a
    /// recovery an exponential(`mttr`) time later. Already-down targets
    /// are skipped (strict per-target alternation), the last alive node
    /// never fails, and generation stops at [`MAX_CHURN_EVENTS`].
    pub fn generate(
        g: &CsrGraph,
        node_rate: f64,
        link_rate: f64,
        mttr: f64,
        seed: u64,
        horizon: u64,
    ) -> ChurnTimeline {
        let n = g.num_vertices();
        let total = node_rate + link_rate;
        if n == 0 || total.is_nan() || total <= 0.0 || horizon == 0 {
            return ChurnTimeline::default();
        }
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // 53 random bits → uniform in (0, 1], so `ln` stays finite.
        fn unit(rng: &mut StdRng) -> f64 {
            ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
        }
        let mut node_down = vec![false; n];
        let mut link_down = vec![false; edges.len()];
        let mut alive_nodes = n;
        let mut events: Vec<ChurnEvent> = Vec::new();
        // Pending recoveries, earliest first; `seq` breaks ties
        // deterministically. Entries are `(cycle, seq, index, is_node)`.
        let mut pending: BinaryHeap<Reverse<(u64, u64, usize, bool)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let commit_recovery =
            |events: &mut Vec<ChurnEvent>,
             node_down: &mut Vec<bool>,
             link_down: &mut Vec<bool>,
             alive_nodes: &mut usize,
             (cycle, _, idx, is_node): (u64, u64, usize, bool)| {
                let target = if is_node {
                    node_down[idx] = false;
                    *alive_nodes += 1;
                    ChurnTarget::Node(idx as u32)
                } else {
                    link_down[idx] = false;
                    let (u, v) = edges[idx];
                    ChurnTarget::Link(u, v)
                };
                events.push(ChurnEvent {
                    cycle,
                    target,
                    failed: false,
                });
            };
        let mut cycle = 0u64;
        loop {
            let dt = ((-unit(&mut rng).ln() / total).ceil() as u64).max(1);
            cycle = cycle.saturating_add(dt);
            if cycle >= horizon || events.len() >= MAX_CHURN_EVENTS {
                break;
            }
            // Recoveries due at or before this failure commit first.
            while let Some(&Reverse(entry)) = pending.peek() {
                if entry.0 > cycle || events.len() >= MAX_CHURN_EVENTS {
                    break;
                }
                pending.pop();
                commit_recovery(
                    &mut events,
                    &mut node_down,
                    &mut link_down,
                    &mut alive_nodes,
                    entry,
                );
            }
            let pick_node = rng.gen_bool(node_rate / total);
            let (idx, is_node) = if pick_node {
                (rng.gen_range(0..n), true)
            } else if edges.is_empty() {
                continue;
            } else {
                (rng.gen_range(0..edges.len()), false)
            };
            let down = if is_node {
                node_down[idx] || alive_nodes <= 1
            } else {
                link_down[idx]
            };
            if down {
                continue; // already failed (or last survivor): no event
            }
            let target = if is_node {
                node_down[idx] = true;
                alive_nodes -= 1;
                ChurnTarget::Node(idx as u32)
            } else {
                link_down[idx] = true;
                let (u, v) = edges[idx];
                ChurnTarget::Link(u, v)
            };
            events.push(ChurnEvent {
                cycle,
                target,
                failed: true,
            });
            if mttr.is_finite() {
                let repair = ((-unit(&mut rng).ln() * mttr).ceil() as u64).max(1);
                pending.push(Reverse((cycle.saturating_add(repair), seq, idx, is_node)));
                seq += 1;
            }
        }
        // Recoveries still pending inside the horizon.
        while let Some(Reverse(entry)) = pending.pop() {
            if entry.0 >= horizon || events.len() >= MAX_CHURN_EVENTS {
                break;
            }
            commit_recovery(
                &mut events,
                &mut node_down,
                &mut link_down,
                &mut alive_nodes,
                entry,
            );
        }
        ChurnTimeline { events }
    }

    /// The events, sorted by commit cycle.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// `true` when the timeline holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// Outcome of one fault-injection trial (static analysis).
#[derive(Clone, Debug)]
pub struct FaultTrial {
    /// Failed node ids.
    pub failed: Vec<u32>,
    /// Failed undirected links.
    pub failed_links: Vec<(u32, u32)>,
    /// Number of connected components among surviving nodes.
    pub surviving_components: usize,
    /// Fraction of surviving ordered pairs that remain mutually
    /// reachable, or `None` when fewer than two nodes survive (no pairs
    /// exist, so no fraction is defined).
    pub reachable_pair_fraction: Option<f64>,
    /// Mean ratio (rerouted distance / original distance) over surviving
    /// reachable pairs that were connected before, or `None` when no
    /// such pair exists.
    pub mean_dilation: Option<f64>,
}

/// The subgraph induced by the healthy nodes, with an id map back to the
/// original network (`new id → old id`).
pub fn healthy_subgraph(g: &CsrGraph, failed: &[u32]) -> (CsrGraph, Vec<u32>) {
    FaultSet::new(failed.iter().copied(), []).healthy_subgraph(g)
}

/// Static survivability analysis of one explicit [`FaultSet`]:
/// component count, reachable-pair fraction, and mean dilation of the
/// rerouted shortest paths. Distances come from one
/// [`DistanceTable`](crate::dist::DistanceTable) per (graph, fault set) —
/// the same type the live fault-masking router and the metrics table
/// share. `O(n²)` — meant for the static comparisons, not the live
/// engine.
///
/// The static analysis is inherently dense, so there is no implicit
/// fallback: topologies over the table byte budget
/// ([`TABLE_BYTE_BUDGET`](crate::router::TABLE_BYTE_BUDGET)) are a
/// typed [`FaultError::TableTooLarge`], not a panic.
pub fn fault_set_trial(t: &dyn Topology, set: &FaultSet) -> Result<FaultTrial, FaultError> {
    let before = crate::dist::DistanceTable::healthy(t.graph()).map_err(table_err)?;
    Ok(fault_set_trial_with(t, set, &before))
}

/// [`fault_set_trial`] against a caller-provided healthy (pre-fault)
/// distance table, so repeated trials on the same topology —
/// [`fault_sweep`] runs `trials × fault_counts` of them — build the
/// fault-invariant table once instead of per trial.
fn fault_set_trial_with(
    t: &dyn Topology,
    set: &FaultSet,
    before: &crate::dist::DistanceTable,
) -> FaultTrial {
    let g = t.graph();
    let (healthy, survivors) = set.healthy_subgraph(g);
    let components = fibcube_graph::distance::component_count(&healthy);
    let after = crate::dist::DistanceTable::degraded(g, &set.masks(g));
    let mut reachable = 0u64;
    let mut pairs = 0u64;
    let mut dilation_sum = 0.0f64;
    let mut dilation_count = 0u64;
    for &u in &survivors {
        let after_row = after.to_dst(u);
        let before_row = before.to_dst(u);
        for &v in &survivors {
            if u == v {
                continue;
            }
            pairs += 1;
            let d_after = after_row[v as usize];
            if d_after != INFINITY {
                reachable += 1;
                let d_before = before_row[v as usize];
                if d_before != 0 && d_before != INFINITY {
                    dilation_sum += d_after as f64 / d_before as f64;
                    dilation_count += 1;
                }
            }
        }
    }
    FaultTrial {
        failed: set.failed_nodes().to_vec(),
        failed_links: set.failed_links().to_vec(),
        surviving_components: components,
        reachable_pair_fraction: (pairs > 0).then(|| reachable as f64 / pairs as f64),
        mean_dilation: (dilation_count > 0).then(|| dilation_sum / dilation_count as f64),
    }
}

/// Runs one fault trial: fail `faults` random distinct nodes (seeded),
/// then analyse the survivors. `Err` when `faults` would leave no
/// survivor.
pub fn fault_trial(t: &dyn Topology, faults: usize, seed: u64) -> Result<FaultTrial, FaultError> {
    let set = FaultSpec::Nodes { count: faults }.sample(t.graph(), seed)?;
    fault_set_trial(t, &set)
}

/// One aggregated row of a [`fault_sweep`].
#[derive(Clone, Debug)]
pub struct FaultSweepRow {
    /// Node faults injected per trial.
    pub faults: usize,
    /// Mean reachable-pair fraction over the trials that had survivor
    /// pairs (`None` when none did).
    pub mean_reachable_fraction: Option<f64>,
    /// Mean dilation over the trials that had rerouted pairs (`None`
    /// when none did).
    pub mean_dilation: Option<f64>,
}

/// Sweep: average reachable-pair fraction over `trials` seeds for each
/// fault count in `fault_counts`. `Err` on zero trials (no mean exists)
/// or on fault counts the topology cannot express.
pub fn fault_sweep(
    t: &dyn Topology,
    fault_counts: &[usize],
    trials: u64,
) -> Result<Vec<FaultSweepRow>, FaultError> {
    if trials == 0 {
        return Err(FaultError::ZeroTrials);
    }
    // The pre-fault distance table depends only on the graph: build it
    // once for the whole trials × fault_counts grid.
    let before = crate::dist::DistanceTable::healthy(t.graph()).map_err(table_err)?;
    fault_counts
        .iter()
        .map(|&k| {
            let mut frac = (0.0, 0u64);
            let mut dil = (0.0, 0u64);
            for s in 0..trials {
                let set = FaultSpec::Nodes { count: k }.sample(t.graph(), s * 7919 + k as u64)?;
                let tr = fault_set_trial_with(t, &set, &before);
                if let Some(x) = tr.reachable_pair_fraction {
                    frac = (frac.0 + x, frac.1 + 1);
                }
                if let Some(x) = tr.mean_dilation {
                    dil = (dil.0 + x, dil.1 + 1);
                }
            }
            Ok(FaultSweepRow {
                faults: k,
                mean_reachable_fraction: (frac.1 > 0).then(|| frac.0 / frac.1 as f64),
                mean_dilation: (dil.1 > 0).then(|| dil.0 / dil.1 as f64),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FibonacciNet, Hypercube, Ring};

    #[test]
    fn no_faults_changes_nothing() {
        let q = Hypercube::new(4);
        let tr = fault_trial(&q, 0, 1).unwrap();
        assert_eq!(tr.surviving_components, 1);
        assert_eq!(tr.reachable_pair_fraction, Some(1.0));
        assert_eq!(tr.mean_dilation, Some(1.0));
    }

    #[test]
    fn healthy_subgraph_structure() {
        let q = Hypercube::new(3);
        let (h, survivors) = healthy_subgraph(q.graph(), &[0]);
        assert_eq!(h.num_vertices(), 7);
        assert_eq!(survivors.len(), 7);
        // Q3 minus a vertex loses exactly its 3 incident edges.
        assert_eq!(h.num_edges(), 12 - 3);
    }

    #[test]
    fn single_fault_keeps_hypercube_connected() {
        // Q_d is d-connected: one failure never disconnects (d ≥ 2).
        for seed in 0..10 {
            let q = Hypercube::new(4);
            let tr = fault_trial(&q, 1, seed).unwrap();
            assert_eq!(tr.surviving_components, 1, "seed={seed}");
            assert_eq!(tr.reachable_pair_fraction, Some(1.0));
            assert!(tr.mean_dilation.unwrap() >= 1.0);
        }
    }

    #[test]
    fn fibonacci_cube_degrades_gracefully() {
        let net = FibonacciNet::classical(8); // 55 nodes
        let rows = fault_sweep(&net, &[0, 1, 4], 5).unwrap();
        assert_eq!(rows.len(), 3);
        let frac = |i: usize| rows[i].mean_reachable_fraction.unwrap();
        assert_eq!(frac(0), 1.0);
        // More faults never improve mean reachability.
        assert!(frac(0) >= frac(1));
        assert!(frac(1) >= frac(2) - 1e-9);
        // Γ_8 survives a single fault overwhelmingly: > 90% pairs reachable.
        assert!(frac(1) > 0.90, "{}", frac(1));
    }

    #[test]
    fn ring_splits_after_two_faults() {
        // Two failures cut a ring into ≤ 2 arcs; with random placement some
        // seeds must produce 2 components among survivors.
        let r = Ring::new(16);
        let mut saw_split = false;
        for seed in 0..20 {
            let tr = fault_trial(&r, 2, seed).unwrap();
            assert!(tr.surviving_components <= 2);
            if tr.surviving_components == 2 {
                saw_split = true;
            }
        }
        assert!(saw_split, "some seed must split the ring");
    }

    #[test]
    fn dilation_grows_with_detours() {
        // Failing a cut-ish vertex of Γ_5 forces longer reroutes.
        let net = FibonacciNet::classical(5);
        let tr = fault_trial(&net, 2, 3).unwrap();
        assert!(tr.mean_dilation.unwrap() >= 1.0);
    }

    #[test]
    fn over_large_fault_counts_are_typed_errors_not_panics() {
        // Satellite: `fault_trial` used to `assert!(faults < n)`.
        let q = Hypercube::new(3);
        assert_eq!(
            fault_trial(&q, 8, 0).unwrap_err(),
            FaultError::TooManyNodeFaults {
                requested: 8,
                nodes: 8
            }
        );
        assert!(fault_trial(&q, 100, 0).is_err());
        // And the error propagates through the sweep.
        let err = fault_sweep(&q, &[1, 8], 3).unwrap_err();
        assert!(
            err.to_string().contains("at least one must survive"),
            "{err}"
        );
    }

    #[test]
    fn zero_trial_sweep_is_an_error_not_nan() {
        // Satellite regression: trials == 0 used to divide by zero.
        let q = Hypercube::new(3);
        assert_eq!(
            fault_sweep(&q, &[1], 0).unwrap_err(),
            FaultError::ZeroTrials
        );
    }

    #[test]
    fn degenerate_survivor_counts_report_none() {
        // Satellite: n − 1 faults leave one survivor — zero pairs, so the
        // fractions are undefined, not a misleading 1.0.
        let q = Hypercube::new(2);
        let tr = fault_trial(&q, 3, 5).unwrap();
        assert_eq!(tr.failed.len(), 3);
        assert_eq!(tr.surviving_components, 1);
        assert_eq!(tr.reachable_pair_fraction, None);
        assert_eq!(tr.mean_dilation, None);
        // An all-degenerate sweep row carries the None through.
        let rows = fault_sweep(&q, &[3], 4).unwrap();
        assert_eq!(rows[0].mean_reachable_fraction, None);
        assert_eq!(rows[0].mean_dilation, None);
    }

    #[test]
    fn link_faults_remove_exactly_those_links() {
        let q = Hypercube::new(3);
        let set = FaultSpec::Links { count: 4 }.sample(q.graph(), 9).unwrap();
        assert_eq!(set.failed_links().len(), 4);
        assert!(set.failed_nodes().is_empty());
        let (h, survivors) = set.healthy_subgraph(q.graph());
        assert_eq!(survivors.len(), 8, "link faults keep every node");
        assert_eq!(h.num_edges(), 12 - 4);
        for &(u, v) in set.failed_links() {
            assert!(q.graph().has_edge(u, v));
            assert!(!h.has_edge(u, v));
            assert!(!set.link_alive(u, v));
        }
    }

    #[test]
    fn sampling_is_deterministic_and_in_bounds() {
        let net = FibonacciNet::classical(7);
        let spec = FaultSpec::Mixed(vec![
            FaultSpec::Nodes { count: 3 },
            FaultSpec::Links { count: 2 },
        ]);
        let a = spec.sample(net.graph(), 42).unwrap();
        assert_eq!(a, spec.sample(net.graph(), 42).unwrap());
        assert_ne!(a, spec.sample(net.graph(), 43).unwrap());
        assert_eq!(a.failed_nodes().len(), 3);
        assert_eq!(a.failed_links().len(), 2);
        for &v in a.failed_nodes() {
            assert!((v as usize) < net.len());
        }
    }

    #[test]
    fn explicit_lists_validate_against_the_graph() {
        let q = Hypercube::new(3);
        assert!(FaultSpec::NodeList(vec![0, 5]).validate(q.graph()).is_ok());
        assert_eq!(
            FaultSpec::NodeList(vec![9])
                .validate(q.graph())
                .unwrap_err(),
            FaultError::UnknownNode { node: 9, nodes: 8 }
        );
        // 0–3 differ in two bits: not a hypercube edge.
        assert_eq!(
            FaultSpec::LinkList(vec![(0, 3)])
                .validate(q.graph())
                .unwrap_err(),
            FaultError::UnknownLink { from: 0, to: 3 }
        );
        // Duplicates don't dodge the survivor check.
        let all = FaultSpec::NodeList((0..8).chain(0..8).collect());
        assert!(matches!(
            all.validate(q.graph()).unwrap_err(),
            FaultError::TooManyNodeFaults { requested: 8, .. }
        ));
    }

    #[test]
    fn fault_spec_round_trips_through_text() {
        let specs = [
            FaultSpec::None,
            FaultSpec::Nodes { count: 4 },
            FaultSpec::Links { count: 8 },
            FaultSpec::NodeList(vec![0, 3, 9]),
            FaultSpec::NodeList(vec![]),
            FaultSpec::LinkList(vec![(0, 1), (4, 7)]),
            FaultSpec::Mixed(vec![
                FaultSpec::Nodes { count: 2 },
                FaultSpec::Links { count: 3 },
            ]),
        ];
        for spec in specs {
            let text = spec.to_string();
            let parsed: FaultSpec = text.parse().unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(parsed, spec, "round-trip of `{text}`");
        }
        // Whitespace tolerance.
        assert_eq!(
            " node_list( 1 , 2 ) ".parse::<FaultSpec>().unwrap(),
            FaultSpec::NodeList(vec![1, 2])
        );
    }

    #[test]
    fn fault_spec_rejects_malformed_text() {
        for bad in [
            "nonsense",
            "nodes",
            "nodes(count=three)",
            "nodes(n=3)",
            "links(count=1,count=2)",
            "link_list(1)",
            "link_list(1-)",
            "none(3)",
            "mix()",
            "",
        ] {
            let err = bad.parse::<FaultSpec>().expect_err(bad);
            assert!(err.to_string().contains("fault spec"), "{bad}: {err}");
        }
    }

    #[test]
    fn churn_spec_round_trips_and_validates() {
        let q = Hypercube::new(3);
        for spec in [
            FaultSpec::Churn {
                node_rate: 0.001,
                link_rate: 0.002,
                mttr: 500.0,
            },
            FaultSpec::Churn {
                node_rate: 0.0,
                link_rate: 0.0,
                mttr: f64::INFINITY,
            },
        ] {
            let text = spec.to_string();
            let parsed: FaultSpec = text.parse().unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(parsed, spec, "round-trip of `{text}`");
            assert!(spec.validate(q.graph()).is_ok(), "{text}");
            assert!(spec.is_churn());
            // Churn carries no static faults: sampling yields the empty set.
            assert!(spec.sample(q.graph(), 7).unwrap().is_empty());
        }
        assert!("churn(node_rate=0,link_rate=0.01,mttr=inf)"
            .parse::<FaultSpec>()
            .is_ok());
        for (bad, why) in [
            (
                FaultSpec::Churn {
                    node_rate: -0.1,
                    link_rate: 0.0,
                    mttr: 1.0,
                },
                "node_rate",
            ),
            (
                FaultSpec::Churn {
                    node_rate: 0.0,
                    link_rate: f64::NAN,
                    mttr: 1.0,
                },
                "link_rate",
            ),
            (
                FaultSpec::Churn {
                    node_rate: 0.1,
                    link_rate: 0.0,
                    mttr: 0.0,
                },
                "mttr",
            ),
        ] {
            let err = bad.validate(q.graph()).unwrap_err();
            assert!(err.to_string().contains(why), "{err}");
        }
        // Churn is standalone: nesting it in `mix` is a typed error.
        let nested = FaultSpec::Mixed(vec![FaultSpec::Churn {
            node_rate: 0.1,
            link_rate: 0.0,
            mttr: 1.0,
        }]);
        assert!(matches!(
            nested.validate(q.graph()).unwrap_err(),
            FaultError::InvalidChurn { .. }
        ));
        // Malformed text forms are parse errors.
        for bad in [
            "churn",
            "churn(node_rate=1)",
            "churn(node_rate=x,link_rate=0,mttr=1)",
        ] {
            assert!(bad.parse::<FaultSpec>().is_err(), "{bad}");
        }
    }

    #[test]
    fn churn_timeline_is_seeded_ordered_and_alternating() {
        let net = FibonacciNet::classical(8);
        let g = net.graph();
        let gen = |seed| ChurnTimeline::generate(g, 0.01, 0.02, 50.0, seed, 4_000);
        let a = gen(42);
        assert_eq!(a, gen(42), "deterministic in the seed");
        assert_ne!(a, gen(43), "distinct seeds decorrelate");
        assert!(!a.is_empty(), "these rates over 4k cycles must fire");
        assert!(a.len() <= MAX_CHURN_EVENTS);
        // Sorted by cycle, inside the horizon, strictly alternating per
        // target, starting with a failure.
        let mut last = 0u64;
        let mut state: std::collections::HashMap<ChurnTarget, bool> = Default::default();
        for e in a.events() {
            assert!(e.cycle >= last, "events out of order");
            assert!(e.cycle < 4_000);
            last = e.cycle;
            let down = state.entry(e.target).or_insert(false);
            assert_ne!(*down, e.failed, "fail/recover must alternate: {e:?}");
            *down = e.failed;
        }
        // Finite MTTR heals: some recoveries appear.
        assert!(a.events().iter().any(|e| !e.failed), "no recoveries");
        // Infinite MTTR never heals.
        let forever = ChurnTimeline::generate(g, 0.01, 0.02, f64::INFINITY, 42, 4_000);
        assert!(forever.events().iter().all(|e| e.failed));
        // Zero rate → empty timeline.
        assert!(ChurnTimeline::generate(g, 0.0, 0.0, 50.0, 1, 4_000).is_empty());
    }

    #[test]
    fn oversized_static_analyses_are_typed_errors() {
        // Satellite: `fault_set_trial`/`fault_sweep` used to `expect` on
        // the table budget. 20 000 isolated nodes → 1.6 GB dense table.
        struct Big(CsrGraph);
        impl Topology for Big {
            fn name(&self) -> String {
                "big".to_string()
            }
            fn len(&self) -> usize {
                self.0.num_vertices()
            }
            fn graph(&self) -> &CsrGraph {
                &self.0
            }
            fn next_hop(&self, _cur: u32, _dst: u32) -> Option<u32> {
                None
            }
        }
        let big = Big(CsrGraph::empty(20_000));
        let err = fault_set_trial(&big, &FaultSet::empty()).unwrap_err();
        assert!(matches!(err, FaultError::TableTooLarge { .. }), "{err}");
        assert!(err.to_string().contains("byte budget"), "{err}");
        let err = fault_sweep(&big, &[1], 2).unwrap_err();
        assert!(matches!(err, FaultError::TableTooLarge { .. }), "{err}");
    }

    #[test]
    fn fault_set_normalises_and_answers_queries() {
        let set = FaultSet::new([5, 1, 5], [(4, 2), (2, 4), (0, 1)]);
        assert_eq!(set.failed_nodes(), &[1, 5]);
        assert_eq!(set.failed_links(), &[(0, 1), (2, 4)]);
        assert!(!set.node_alive(1));
        assert!(set.node_alive(0));
        // Link 0–1 failed explicitly; 0–2 dies with neither endpoint.
        assert!(!set.link_alive(0, 1));
        assert!(set.link_alive(0, 2));
        // A link incident to a dead node is dead regardless of the list.
        assert!(!set.link_alive(5, 0));
        assert!(FaultSet::empty().is_empty());
        assert!(!set.is_empty());
    }
}
