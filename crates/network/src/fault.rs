//! Fault tolerance experiments: knock out random nodes and measure what
//! survives — connectivity of the healthy part and the dilation of
//! rerouted paths (cf. Gregor, *Recursive fault-tolerance of Fibonacci
//! cubes in hypercubes*, and the robustness claims of the 1993 line).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fibcube_graph::bfs::INFINITY;
use fibcube_graph::csr::{CsrGraph, GraphBuilder};

use crate::topology::Topology;

/// Outcome of one fault-injection trial.
#[derive(Clone, Debug)]
pub struct FaultTrial {
    /// Failed node ids.
    pub failed: Vec<u32>,
    /// Number of connected components among surviving nodes.
    pub surviving_components: usize,
    /// Fraction of surviving ordered pairs that remain mutually reachable.
    pub reachable_pair_fraction: f64,
    /// Mean ratio (rerouted distance / original distance) over surviving
    /// reachable pairs that were connected before.
    pub mean_dilation: f64,
}

/// The subgraph induced by the healthy nodes, with an id map back to the
/// original network (`new id → old id`).
pub fn healthy_subgraph(g: &CsrGraph, failed: &[u32]) -> (CsrGraph, Vec<u32>) {
    let n = g.num_vertices();
    let mut dead = vec![false; n];
    for &f in failed {
        dead[f as usize] = true;
    }
    let survivors: Vec<u32> = (0..n as u32).filter(|&v| !dead[v as usize]).collect();
    let mut new_id = vec![u32::MAX; n];
    for (i, &v) in survivors.iter().enumerate() {
        new_id[v as usize] = i as u32;
    }
    let mut builder = GraphBuilder::new(survivors.len());
    for &v in &survivors {
        for &w in g.neighbors(v) {
            if !dead[w as usize] && v < w {
                builder.add_edge(new_id[v as usize], new_id[w as usize]);
            }
        }
    }
    (builder.build(), survivors)
}

/// Runs one fault trial: fail `faults` random distinct nodes (seeded).
pub fn fault_trial(t: &dyn Topology, faults: usize, seed: u64) -> FaultTrial {
    let n = t.len();
    assert!(faults < n, "cannot fail every node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    let failed: Vec<u32> = ids[..faults].to_vec();
    let (healthy, survivors) = healthy_subgraph(t.graph(), &failed);
    let components = fibcube_graph::distance::component_count(&healthy);
    let before = fibcube_graph::parallel::parallel_distance_matrix(t.graph());
    let after = fibcube_graph::parallel::parallel_distance_matrix(&healthy);
    let m = survivors.len();
    let mut reachable = 0u64;
    let mut pairs = 0u64;
    let mut dilation_sum = 0.0f64;
    let mut dilation_count = 0u64;
    for i in 0..m {
        for j in 0..m {
            if i == j {
                continue;
            }
            pairs += 1;
            let d_after = after[i][j];
            if d_after != INFINITY {
                reachable += 1;
                let d_before = before[survivors[i] as usize][survivors[j] as usize];
                if d_before != 0 && d_before != INFINITY {
                    dilation_sum += d_after as f64 / d_before as f64;
                    dilation_count += 1;
                }
            }
        }
    }
    FaultTrial {
        failed,
        surviving_components: components,
        reachable_pair_fraction: if pairs > 0 {
            reachable as f64 / pairs as f64
        } else {
            1.0
        },
        mean_dilation: if dilation_count > 0 {
            dilation_sum / dilation_count as f64
        } else {
            1.0
        },
    }
}

/// Sweep: average reachable-pair fraction over `trials` seeds for each
/// fault count in `fault_counts`. Returns `(faults, mean_fraction,
/// mean_dilation)` rows.
pub fn fault_sweep(
    t: &dyn Topology,
    fault_counts: &[usize],
    trials: u64,
) -> Vec<(usize, f64, f64)> {
    fault_counts
        .iter()
        .map(|&k| {
            let mut frac = 0.0;
            let mut dil = 0.0;
            for s in 0..trials {
                let tr = fault_trial(t, k, s * 7919 + k as u64);
                frac += tr.reachable_pair_fraction;
                dil += tr.mean_dilation;
            }
            (k, frac / trials as f64, dil / trials as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FibonacciNet, Hypercube, Ring};

    #[test]
    fn no_faults_changes_nothing() {
        let q = Hypercube::new(4);
        let tr = fault_trial(&q, 0, 1);
        assert_eq!(tr.surviving_components, 1);
        assert_eq!(tr.reachable_pair_fraction, 1.0);
        assert_eq!(tr.mean_dilation, 1.0);
    }

    #[test]
    fn healthy_subgraph_structure() {
        let q = Hypercube::new(3);
        let (h, survivors) = healthy_subgraph(q.graph(), &[0]);
        assert_eq!(h.num_vertices(), 7);
        assert_eq!(survivors.len(), 7);
        // Q3 minus a vertex loses exactly its 3 incident edges.
        assert_eq!(h.num_edges(), 12 - 3);
    }

    #[test]
    fn single_fault_keeps_hypercube_connected() {
        // Q_d is d-connected: one failure never disconnects (d ≥ 2).
        for seed in 0..10 {
            let q = Hypercube::new(4);
            let tr = fault_trial(&q, 1, seed);
            assert_eq!(tr.surviving_components, 1, "seed={seed}");
            assert_eq!(tr.reachable_pair_fraction, 1.0);
            assert!(tr.mean_dilation >= 1.0);
        }
    }

    #[test]
    fn fibonacci_cube_degrades_gracefully() {
        let net = FibonacciNet::classical(8); // 55 nodes
        let rows = fault_sweep(&net, &[0, 1, 4], 5);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, 1.0);
        // More faults never improve mean reachability.
        assert!(rows[0].1 >= rows[1].1);
        assert!(rows[1].1 >= rows[2].1 - 1e-9);
        // Γ_8 survives a single fault overwhelmingly: > 90% pairs reachable.
        assert!(rows[1].1 > 0.90, "{}", rows[1].1);
    }

    #[test]
    fn ring_splits_after_two_faults() {
        // Two failures cut a ring into ≤ 2 arcs; with random placement some
        // seeds must produce 2 components among survivors.
        let r = Ring::new(16);
        let mut saw_split = false;
        for seed in 0..20 {
            let tr = fault_trial(&r, 2, seed);
            assert!(tr.surviving_components <= 2);
            if tr.surviving_components == 2 {
                saw_split = true;
            }
        }
        assert!(saw_split, "some seed must split the ring");
    }

    #[test]
    fn dilation_grows_with_detours() {
        // Failing a cut-ish vertex of Γ_5 forces longer reroutes.
        let net = FibonacciNet::classical(5);
        let tr = fault_trial(&net, 2, 3);
        assert!(tr.mean_dilation >= 1.0);
    }
}
